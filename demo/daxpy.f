subroutine daxpy(y, x, a, n)
  real y(n), x(n), a
  integer i, n
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end

subroutine daxpy_unrolled(y, x, a, n)
  real y(n), x(n), a
  integer i, n
  do i = 1, n - 3, 4
    y(i) = y(i) + a * x(i)
    y(i+1) = y(i+1) + a * x(i+1)
    y(i+2) = y(i+2) + a * x(i+2)
    y(i+3) = y(i+3) + a * x(i+3)
  end do
end
