//! Differential oracle for epoch-based arena reclamation: a long-lived
//! prediction session that advances the reclamation epoch between job
//! waves must produce predictions **bit-identical** to a fresh, uncached
//! predictor — before any reclamation, while it is happening, and after
//! arena slots have been recycled.
//!
//! This is the id-stability acceptance test for the epoch layer: if a
//! reclaimed polynomial or block id ever leaked through a memo table into
//! a later wave, some prediction here would diverge from its oracle.

use presage::core::predictor::{Predictor, PredictorOptions};
use presage::core::transcache::TranslationCache;
use presage::machine::{machines, MachineDesc};
use presage::symbolic::epoch;
use std::sync::Arc;

/// A distinct kernel per index (distinct names, constants, and bounds so
/// every program has its own translation and memo footprint).
fn program(k: usize) -> String {
    format!(
        "subroutine epo{k}(y, x, a, n)
           real y(n), x(n), a
           integer i, j, n
           do i = 1, n
             do j = i, n
               y(j) = y(j) + {c}.0 * x(j) + a * {d}.0
             end do
           end do
           do i = {lb}, n
             x(i) = x(i) * {c}.0
           end do
         end",
        c = k % 53 + 2,
        d = (k * 11) % 43 + 3,
        lb = k % 4 + 1,
    )
}

#[test]
fn predictions_stay_bit_identical_across_reclaiming_epochs() {
    const WAVES: usize = 4;
    const PER_WAVE: usize = 12;
    let machines = [machines::power_like(), machines::risc1()];
    let programs: Vec<String> = (0..WAVES * PER_WAVE).map(program).collect();

    // The uncached oracle: fresh sema + translation + aggregation per
    // call, no shared translation cache.
    let oracle: Vec<Vec<String>> = programs
        .iter()
        .map(|src| {
            machines
                .iter()
                .map(|m| {
                    Predictor::new(m.clone()).predict_source(src).unwrap()[0]
                        .total
                        .to_string()
                })
                .collect()
        })
        .collect();

    // The epoch-advancing session: one shared cache, waves of batch
    // jobs, an advance + generation eviction between waves — the server
    // loop in miniature.
    let opts = PredictorOptions::default();
    let cache = Arc::new(TranslationCache::new());
    let mut advances = 0u64;
    let mut reclaimed = 0usize;
    for wave in 0..WAVES {
        let slice = &programs[wave * PER_WAVE..(wave + 1) * PER_WAVE];
        let jobs: Vec<(&MachineDesc, &str)> = slice
            .iter()
            .flat_map(|p| machines.iter().map(move |m| (m, p.as_str())))
            .collect();
        let results = Predictor::predict_batch(&jobs, &opts, &cache, 4);
        for (j, result) in results.iter().enumerate() {
            let (prog_idx, machine_idx) =
                (wave * PER_WAVE + j / machines.len(), j % machines.len());
            let served = &result.as_ref().expect("soak programs are well-formed")[0];
            assert_eq!(
                served.total.to_string(),
                oracle[prog_idx][machine_idx],
                "wave {wave}, program {prog_idx}, machine {machine_idx} diverged after {advances} advances"
            );
        }
        let report = epoch::advance();
        advances += 1;
        reclaimed += report.total_reclaimed();
    }
    assert!(
        advances >= 3,
        "the differential must span at least 3 epochs"
    );
    assert!(
        reclaimed > 0,
        "no reclamation happened — the differential proved nothing"
    );

    // And the oracle still agrees *after* the last reclamation, on
    // recycled arena slots.
    for (prog_idx, src) in programs.iter().enumerate().take(PER_WAVE) {
        for (machine_idx, m) in machines.iter().enumerate() {
            let fresh = Predictor::new(m.clone()).predict_source(src).unwrap()[0]
                .total
                .to_string();
            assert_eq!(
                fresh, oracle[prog_idx][machine_idx],
                "post-reclaim divergence"
            );
        }
    }
}
