//! Differential proof that the optimized placement engine is
//! schedule-identical to the preserved seed algorithm.
//!
//! The optimized [`Placer`](presage::core::tetris::Placer) replaces the
//! seed's per-op dependence vectors, per-atomic clones, full-bin rescans,
//! and capacity-growing probes with CSR adjacency, borrows, incremental
//! bookkeeping, and read-only probes. None of that may change a single
//! predicted cycle: every kernel of the Figure 7 suite, on every shipped
//! machine description, across repeated drops and focus spans, must yield
//! bit-identical [`DropSchedule`]s.

use presage::core::reference::NaivePlacer;
use presage::core::tetris::{PlaceOptions, Placer, PreparedBlock};
use presage::machine::MachineDesc;
use presage_bench::kernels::{figure7, innermost_block};

/// All four shipped machine-description files, loaded from JSON (not the
/// builtins) so the differential covers the parse path too.
fn shipped_machines() -> Vec<MachineDesc> {
    [
        include_str!("../machines/power-like.json"),
        include_str!("../machines/risc1.json"),
        include_str!("../machines/wide4.json"),
        include_str!("../machines/wide8.json"),
    ]
    .into_iter()
    .map(|src| MachineDesc::from_json(src).expect("shipped description validates"))
    .collect()
}

const FOCUS_OPTIONS: [Option<u32>; 3] = [None, Some(4), Some(64)];
const DROPS: usize = 4;

#[test]
fn optimized_placer_is_schedule_identical_to_seed() {
    for machine in shipped_machines() {
        for kernel in figure7() {
            let block = innermost_block(kernel.source, &machine);
            for focus in FOCUS_OPTIONS {
                let opts = PlaceOptions { focus_span: focus };
                let mut seed = NaivePlacer::new(&machine, opts);
                let mut opt = Placer::new(&machine, opts);
                for drop in 0..DROPS {
                    let want = seed.drop_block_detailed(&block);
                    let got = opt.drop_block_detailed(&block);
                    assert_eq!(
                        want,
                        got,
                        "schedule diverged: {} on {} (focus {focus:?}, drop {drop})",
                        kernel.name,
                        machine.name()
                    );
                }
                assert_eq!(
                    seed.cost_block(),
                    opt.cost_block(),
                    "cost block diverged: {} on {} (focus {focus:?})",
                    kernel.name,
                    machine.name()
                );
                assert_eq!(seed.ops_placed(), opt.ops_placed());
            }
        }
    }
}

#[test]
fn prepared_drops_match_unprepared_drops() {
    // drop_prepared is the same placement with dependence analysis
    // hoisted; it must agree with drop_block exactly.
    for machine in shipped_machines() {
        for kernel in figure7() {
            let block = innermost_block(kernel.source, &machine);
            let prepared = PreparedBlock::new(&block);
            let opts = PlaceOptions::with_focus_span(64);
            let mut by_block = Placer::new(&machine, opts);
            let mut by_prepared = Placer::new(&machine, opts);
            for _ in 0..DROPS {
                assert_eq!(
                    by_block.drop_block(&block),
                    by_prepared.drop_prepared(&prepared),
                    "{} on {}",
                    kernel.name,
                    machine.name()
                );
            }
            assert_eq!(by_block.cost_block(), by_prepared.cost_block());
        }
    }
}

#[test]
fn clear_then_redrop_matches_seed() {
    // The incremental `highest`/floor bookkeeping must reset correctly:
    // interleave clears with drops and compare against the seed.
    for machine in shipped_machines() {
        let block = innermost_block(presage_bench::kernels::MATMUL, &machine);
        let opts = PlaceOptions::with_focus_span(16);
        let mut seed = NaivePlacer::new(&machine, opts);
        let mut opt = Placer::new(&machine, opts);
        for round in 0..3 {
            for _ in 0..2 {
                assert_eq!(
                    seed.drop_block_detailed(&block),
                    opt.drop_block_detailed(&block),
                    "round {round} on {}",
                    machine.name()
                );
            }
            seed.clear();
            opt.clear();
        }
    }
}
