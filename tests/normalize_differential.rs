//! Differential proof that AST-level structural canonicalization agrees
//! with the re-emit + re-parse oracle it replaces.
//!
//! The optimizer's hot path used to canonicalize every search variant by
//! printing it and re-parsing the text ([`canonical_key`]); the
//! [`normalize`] pass now computes the same-or-finer equivalence directly
//! on the AST. Three properties are proven over the whole transform
//! corpus (every Figure 7 kernel under every catalog transformation at
//! every loop path, plus bounded depth-2 compositions):
//!
//! - **P1 (roundtrip invariance):** `structural_hash(v)` equals
//!   `structural_hash(parse(v.to_string()))` — normalizing before or
//!   after a print/parse roundtrip is indistinguishable, so the hash
//!   never depends on having gone through text. Alongside,
//!   [`validate_emittable`] accepts exactly the variants the parser
//!   accepts (it is the reparse-success oracle, minus the parse).
//! - **P2 (refinement):** textually-equal variants are structurally
//!   equal — every textual class maps into exactly one structural
//!   class, so switching keys can only merge, never split.
//! - **P3 (cost uniformity):** members of one structural class have
//!   equal predicted costs on all four shipped machines. This is what
//!   makes it sound for the e-graph and the prediction cache to cost a
//!   class once via its representative.
//!
//! Commutative-operand merging used to be *excluded* from P3: the greedy
//! placement was not invariant under operand emission order (Jacobi on
//! wide8 shifted by ~12% — see EXPERIMENTS.md E15). The canonical
//! operation ordering pass (`translate::passes::canonical_order`) closed
//! that hole: commuted variants now translate to the same op sequence,
//! so the commuted-variant test below asserts *cost equality* on every
//! shipped machine, not just key equality. The textual oracle is
//! retained in-tree to keep the (now-closed) boundary observable.

use std::collections::{HashMap, HashSet};

use presage::core::predictor::Predictor;
use presage::frontend::ast::{BinOp, Expr, Stmt, Subroutine};
use presage::frontend::fold::subroutine_hash;
use presage::frontend::normalize::{normalize, structural_hash, validate_emittable};
use presage::frontend::parse;
use presage::frontend::span::Span;
use presage::machine::machines;
use presage::opt::transforms::Transform;
use presage::opt::whatif::{loop_paths, transformed};
use presage::opt::{canonical_key, structural_key};
use presage_bench::kernels::figure7;

fn catalog() -> Vec<Transform> {
    vec![
        Transform::Unroll(2),
        Transform::Unroll(4),
        Transform::Tile(32),
        Transform::Interchange,
        Transform::Fuse,
        Transform::Distribute,
    ]
}

/// Every transformation-reachable variant of a kernel: the original,
/// all single applications, and depth-2 compositions seeded from the
/// first three depth-1 variants (bounded so the suite stays fast; the
/// composition *pattern* coverage is what matters, not exhaustiveness).
fn variants_of(source: &str) -> Vec<Subroutine> {
    let sub = parse(source).expect("kernel parses").units.remove(0);
    let mut depth1 = Vec::new();
    for path in loop_paths(&sub) {
        for t in catalog() {
            if let Ok(v) = transformed(&sub, &path, &t) {
                depth1.push(v);
            }
        }
    }
    let mut out = vec![sub];
    for v in depth1.iter().take(3) {
        for path in loop_paths(v) {
            for t in catalog() {
                if let Ok(v2) = transformed(v, &path, &t) {
                    out.push(v2);
                }
            }
        }
    }
    out.extend(depth1);
    out
}

fn corpus() -> Vec<Subroutine> {
    figure7()
        .into_iter()
        .flat_map(|k| variants_of(k.source))
        .collect()
}

/// Appends `_r` to one loop variable everywhere it occurs — an
/// alpha-renaming, the equivalence the search actually exercises through
/// tile-variable freshening.
fn alpha_rename(sub: &Subroutine, from: &str) -> Subroutine {
    fn rename_expr(e: &Expr, from: &str, to: &str) -> Expr {
        match e {
            Expr::Var(name) if name == from => Expr::Var(to.to_string()),
            Expr::ArrayRef { name, indices } => Expr::ArrayRef {
                name: name.clone(),
                indices: indices.iter().map(|i| rename_expr(i, from, to)).collect(),
            },
            Expr::Unary { op, operand } => Expr::Unary {
                op: *op,
                operand: Box::new(rename_expr(operand, from, to)),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(rename_expr(lhs, from, to)),
                rhs: Box::new(rename_expr(rhs, from, to)),
            },
            Expr::Intrinsic { func, args } => Expr::Intrinsic {
                func: *func,
                args: args.iter().map(|a| rename_expr(a, from, to)).collect(),
            },
            other => other.clone(),
        }
    }
    fn rename_stmts(stmts: &[Stmt], from: &str, to: &str) -> Vec<Stmt> {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Assign {
                    target,
                    value,
                    span,
                } => Stmt::Assign {
                    target: rename_expr(target, from, to),
                    value: rename_expr(value, from, to),
                    span: *span,
                },
                Stmt::Do {
                    var,
                    lb,
                    ub,
                    step,
                    body,
                    span,
                } => Stmt::Do {
                    var: if var == from {
                        to.to_string()
                    } else {
                        var.clone()
                    },
                    lb: rename_expr(lb, from, to),
                    ub: rename_expr(ub, from, to),
                    step: step.as_ref().map(|e| rename_expr(e, from, to)),
                    body: rename_stmts(body, from, to),
                    span: *span,
                },
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                } => Stmt::If {
                    cond: rename_expr(cond, from, to),
                    then_body: rename_stmts(then_body, from, to),
                    else_body: rename_stmts(else_body, from, to),
                    span: *span,
                },
                other => other.clone(),
            })
            .collect()
    }
    let to = format!("{from}_r");
    let mut renamed = sub.clone();
    renamed.body = rename_stmts(&sub.body, from, &to);
    for d in &mut renamed.decls {
        for v in &mut d.vars {
            if v.name == from && v.dims.is_empty() {
                v.name = to.clone();
            }
        }
    }
    renamed
}

/// Reverses every commutative operand pair, recursively.
fn commute(sub: &Subroutine) -> Subroutine {
    fn commute_expr(e: &Expr) -> Expr {
        match e {
            Expr::Binary { op, lhs, rhs } => {
                let l = Box::new(commute_expr(lhs));
                let r = Box::new(commute_expr(rhs));
                match op {
                    BinOp::Add | BinOp::Mul => Expr::Binary {
                        op: *op,
                        lhs: r,
                        rhs: l,
                    },
                    _ => Expr::Binary {
                        op: *op,
                        lhs: l,
                        rhs: r,
                    },
                }
            }
            Expr::Unary { op, operand } => Expr::Unary {
                op: *op,
                operand: Box::new(commute_expr(operand)),
            },
            Expr::ArrayRef { name, indices } => Expr::ArrayRef {
                name: name.clone(),
                indices: indices.iter().map(commute_expr).collect(),
            },
            Expr::Intrinsic { func, args } => Expr::Intrinsic {
                func: *func,
                args: args.iter().map(commute_expr).collect(),
            },
            other => other.clone(),
        }
    }
    fn commute_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Assign {
                    target,
                    value,
                    span,
                } => Stmt::Assign {
                    target: commute_expr(target),
                    value: commute_expr(value),
                    span: *span,
                },
                Stmt::Do {
                    var,
                    lb,
                    ub,
                    step,
                    body,
                    span,
                } => Stmt::Do {
                    var: var.clone(),
                    lb: commute_expr(lb),
                    ub: commute_expr(ub),
                    step: step.as_ref().map(commute_expr),
                    body: commute_stmts(body),
                    span: *span,
                },
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                } => Stmt::If {
                    cond: commute_expr(cond),
                    then_body: commute_stmts(then_body),
                    else_body: commute_stmts(else_body),
                    span: *span,
                },
                other => other.clone(),
            })
            .collect()
    }
    let mut c = sub.clone();
    c.body = commute_stmts(&sub.body);
    c
}

fn shipped_machines() -> Vec<presage::machine::MachineDesc> {
    vec![
        machines::risc1(),
        machines::power_like(),
        machines::wide4(),
        machines::wide8(),
    ]
}

#[test]
fn p1_roundtrip_preserves_the_structural_hash() {
    let corpus = corpus();
    assert!(corpus.len() > 100, "corpus too small: {}", corpus.len());
    let mut roundtripped = 0usize;
    for v in &corpus {
        let text = v.to_string();
        let reparsed = parse(&text);
        assert_eq!(
            validate_emittable(v).is_ok(),
            reparsed.is_ok(),
            "validator must be the reparse-success oracle for:\n{text}"
        );
        if let Ok(mut program) = reparsed {
            let back = program.units.remove(0);
            assert_eq!(
                structural_hash(v),
                structural_hash(&back),
                "print/parse roundtrip changed the structural hash of:\n{text}"
            );
            roundtripped += 1;
        }
    }
    assert_eq!(
        roundtripped,
        corpus.len(),
        "every transform output must be emittable"
    );
}

#[test]
fn streaming_hash_equals_reference_hash_on_the_corpus() {
    // `structural_hash` streams the normalized encoding without
    // building the normalized AST; the reference path materializes it.
    // They must agree byte-for-byte (hence hash-for-hash) on every
    // transform-reachable variant, or the two pipelines would partition
    // the search space differently.
    for v in corpus() {
        assert_eq!(
            structural_hash(&v),
            subroutine_hash(&normalize(&v)),
            "streaming hash diverged from hash-of-normalized for:\n{v}"
        );
    }
}

#[test]
fn validator_rejects_exactly_what_the_parser_rejects() {
    // Unrepresentable shapes the transforms could in principle produce:
    // each must fail validation AND fail to reparse, never just one.
    let base = parse(presage_bench::kernels::F1).unwrap().units.remove(0);
    let mut bad_name = base.clone();
    bad_name.body.push(Stmt::Assign {
        target: Expr::Var("end do".into()),
        value: Expr::IntLit(0),
        span: Span::default(),
    });
    let mut keyword_target = base.clone();
    keyword_target.body.push(Stmt::Assign {
        target: Expr::Var("return".into()),
        value: Expr::IntLit(0),
        span: Span::default(),
    });
    let mut intrinsic_target = base.clone();
    intrinsic_target.body.push(Stmt::Assign {
        target: Expr::ArrayRef {
            name: "max".into(),
            indices: vec![Expr::IntLit(1)],
        },
        value: Expr::IntLit(0),
        span: Span::default(),
    });
    for (what, sub) in [
        ("space in a name", &bad_name),
        ("keyword as assign target", &keyword_target),
        ("intrinsic-named array target", &intrinsic_target),
    ] {
        assert!(
            validate_emittable(sub).is_err(),
            "{what}: validator accepted"
        );
        assert!(
            parse(&sub.to_string()).is_err(),
            "{what}: parser accepted what the validator models as rejected"
        );
    }
}

#[test]
fn p2_textual_classes_refine_structural_classes() {
    let mut textual_to_structural: HashMap<u128, HashSet<u128>> = HashMap::new();
    for v in corpus() {
        let textual = canonical_key(&v).expect("corpus variants are emittable");
        let structural = structural_key(&v).expect("corpus variants are representable");
        textual_to_structural
            .entry(textual)
            .or_default()
            .insert(structural);
    }
    for (textual, structurals) in &textual_to_structural {
        assert_eq!(
            structurals.len(),
            1,
            "textual class {textual:032x} split across structural classes {structurals:?}"
        );
    }
}

#[test]
fn p3_structural_classes_are_cost_uniform() {
    // Group the corpus (plus an alpha-renamed copy of every original
    // kernel — the equivalence tile freshening exercises) by structural
    // key, then demand every multi-member class predicts one cost.
    let mut classes: HashMap<u128, Vec<Subroutine>> = HashMap::new();
    for k in figure7() {
        let sub = parse(k.source).unwrap().units.remove(0);
        if let Some(Stmt::Do { var, .. }) = sub.body.iter().find(|s| matches!(s, Stmt::Do { .. })) {
            let renamed = alpha_rename(&sub, &var.clone());
            assert_eq!(
                structural_key(&sub).unwrap(),
                structural_key(&renamed).unwrap(),
                "{}: alpha-renaming must not change the structural key",
                k.name
            );
            classes
                .entry(structural_key(&sub).unwrap())
                .or_default()
                .push(renamed);
        }
    }
    for v in corpus() {
        let key = structural_key(&v).unwrap();
        classes.entry(key).or_default().push(v);
    }
    let multi: Vec<&Vec<Subroutine>> = classes.values().filter(|c| c.len() > 1).collect();
    assert!(
        !multi.is_empty(),
        "corpus must contain at least one non-trivial structural class"
    );
    let eval_points = [64.0, 500.0];
    for machine in shipped_machines() {
        let name = machine.name().to_string();
        let predictor = Predictor::new(machine);
        for members in &multi {
            let costs: Vec<Vec<f64>> = members
                .iter()
                .map(|m| {
                    let expr = predictor
                        .predict_subroutine_cost(m)
                        .expect("class members predict");
                    eval_points
                        .iter()
                        .map(|&n| {
                            let mut bind = HashMap::new();
                            bind.insert(presage::symbolic::Symbol::new("n"), n);
                            expr.eval_with_defaults(&bind)
                        })
                        .collect()
                })
                .collect();
            for c in &costs[1..] {
                for (a, b) in costs[0].iter().zip(c) {
                    assert!(
                        (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                        "structural class is not cost-uniform on {name}: {a} vs {b}\nfirst member:\n{}",
                        members[0]
                    );
                }
            }
        }
    }
}

#[test]
fn commuted_operands_share_a_structural_key_and_a_cost() {
    // Operand order merges structurally (the normal form sorts
    // commutative operands), and since the canonical operation ordering
    // pass it also merges *behaviorally*: commuted sources translate to
    // one op sequence, so the order-sensitive greedy placement predicts
    // one cost. Before that pass, Jacobi on wide8 shifted by ~12% under
    // operand commutation (E15) — this test is the regression fence.
    let eval_points = [64.0, 500.0];
    for k in figure7() {
        let sub = parse(k.source).unwrap().units.remove(0);
        let commuted = commute(&sub);
        assert_eq!(
            structural_key(&sub).unwrap(),
            structural_key(&commuted).unwrap(),
            "{}: commuted operands must share a structural class",
            k.name
        );
        if commuted.to_string() != sub.to_string() {
            assert_ne!(
                canonical_key(&sub).unwrap(),
                canonical_key(&commuted).unwrap(),
                "{}: the textual oracle keeps commuted operands distinct",
                k.name
            );
        }
        for machine in shipped_machines() {
            let name = machine.name().to_string();
            let predictor = Predictor::new(machine);
            let a = predictor.predict_subroutine_cost(&sub).unwrap();
            let b = predictor.predict_subroutine_cost(&commuted).unwrap();
            for &n in &eval_points {
                let mut bind = HashMap::new();
                bind.insert(presage::symbolic::Symbol::new("n"), n);
                let (ca, cb) = (a.eval_with_defaults(&bind), b.eval_with_defaults(&bind));
                assert!(
                    (ca - cb).abs() <= 1e-9 * ca.abs().max(1.0),
                    "{} on {name}: commuted variant predicts {cb}, original {ca}",
                    k.name
                );
            }
        }
    }
}
