//! Soundness of the §3.1 symbolic comparison: whenever `compare` issues a
//! definite verdict, dense numeric sampling over the unknowns' ranges must
//! agree. A verdict that sampling contradicts would send the optimizer the
//! wrong way — the one failure mode the paper's framework cannot afford.
//!
//! Formerly proptest-based; rewritten on an in-tree splitmix64 generator so
//! the suite builds with no external dependencies (the build environment is
//! offline).

use presage::symbolic::{CompareOutcome, Monomial, PerfExpr, Poly, Rational, Symbol, VarInfo};
use std::collections::HashMap;

/// Splitmix64: tiny, high-quality, dependency-free PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random cost-shaped expression: non-negative combinations of n, n²,
/// and a constant over a positive range (performance expressions are
/// cycle counts, so the interesting inputs are cost-like).
fn cost_expr(rng: &mut Rng) -> PerfExpr {
    let c2 = rng.below(31) as i64;
    let c1 = rng.below(31) as i64;
    let c0 = rng.below(201) as i64;
    let n = Symbol::new("n");
    let hi = match rng.below(3) {
        0 => 10.0,
        1 => 1000.0,
        _ => 100000.0,
    };
    let poly = Poly::term(Rational::from_int(c2), Monomial::power(n.clone(), 2))
        + Poly::term(Rational::from_int(c1), Monomial::var(n.clone()))
        + Poly::from(c0);
    PerfExpr::from_poly(poly, [(n, VarInfo::loop_bound(1.0, hi))])
}

fn sample_signs(diff: &PerfExpr) -> (bool, bool) {
    let n = Symbol::new("n");
    let info = diff.vars().get(&n).copied();
    let (lo, hi) = info
        .map(|i| (i.range.lo(), i.range.hi()))
        .unwrap_or((1.0, 1.0));
    let mut any_pos = false;
    let mut any_neg = false;
    for k in 0..=100 {
        let x = lo + (hi - lo) * k as f64 / 100.0;
        let mut b = HashMap::new();
        b.insert(n.clone(), x);
        let v = diff.eval_with_defaults(&b);
        if v > 1e-9 {
            any_pos = true;
        }
        if v < -1e-9 {
            any_neg = true;
        }
    }
    (any_pos, any_neg)
}

#[test]
fn verdicts_agree_with_sampling() {
    let mut rng = Rng(0xC0DE_0001);
    for _ in 0..256 {
        let a = cost_expr(&mut rng);
        let b = cost_expr(&mut rng);
        let cmp = a.compare(&b);
        let (any_pos, any_neg) = sample_signs(&cmp.difference);
        match cmp.outcome {
            CompareOutcome::FirstCheaper => {
                // diff = a − b must never be positive on the range.
                assert!(
                    !any_pos,
                    "FirstCheaper but diff positive somewhere: {}",
                    cmp.difference
                );
            }
            CompareOutcome::SecondCheaper => {
                assert!(
                    !any_neg,
                    "SecondCheaper but diff negative somewhere: {}",
                    cmp.difference
                );
            }
            CompareOutcome::AlwaysEqual => {
                assert!(
                    !any_pos && !any_neg,
                    "AlwaysEqual but diff nonzero: {}",
                    cmp.difference
                );
            }
            CompareOutcome::DependsOnUnknowns => {
                // The winner flips: evaluating at each reported sign
                // region's midpoint must find both signs (uniform sampling
                // can miss narrow regions like (5, 6) in (n−5)(n−6)).
                let n = Symbol::new("n");
                let regions = cmp.regions.as_ref().expect("univariate case has regions");
                let mut pos = false;
                let mut neg = false;
                for r in regions {
                    let mut bnd = HashMap::new();
                    bnd.insert(n.clone(), 0.5 * (r.lo + r.hi));
                    let v = cmp.difference.eval_with_defaults(&bnd);
                    if v > 1e-9 {
                        pos = true;
                    }
                    if v < -1e-9 {
                        neg = true;
                    }
                }
                assert!(
                    pos && neg,
                    "DependsOnUnknowns but single-signed: {}",
                    cmp.difference
                );
            }
            CompareOutcome::Undetermined => {
                // Conservative fallback — allowed, never wrong.
            }
        }
    }
}

#[test]
fn crossovers_are_sign_changes() {
    let mut rng = Rng(0xC0DE_0002);
    for _ in 0..256 {
        let a = cost_expr(&mut rng);
        let b = cost_expr(&mut rng);
        let cmp = a.compare(&b);
        let n = Symbol::new("n");
        for x in &cmp.crossovers {
            let eps = 1e-3 * (1.0 + x.abs());
            let mut lo_b = HashMap::new();
            lo_b.insert(n.clone(), x - eps);
            let mut hi_b = HashMap::new();
            hi_b.insert(n.clone(), x + eps);
            let v_lo = cmp.difference.eval_with_defaults(&lo_b);
            let v_hi = cmp.difference.eval_with_defaults(&hi_b);
            // At a genuine crossover, values straddle or touch zero.
            assert!(
                v_lo.signum() != v_hi.signum() || v_lo.abs() < 1.0 || v_hi.abs() < 1.0,
                "crossover {x} not a sign change: {v_lo} vs {v_hi}"
            );
        }
    }
}

#[test]
fn comparison_is_antisymmetric() {
    let mut rng = Rng(0xC0DE_0003);
    for _ in 0..256 {
        let a = cost_expr(&mut rng);
        let b = cost_expr(&mut rng);
        let ab = a.compare(&b).outcome;
        let ba = b.compare(&a).outcome;
        let expected = match ab {
            CompareOutcome::FirstCheaper => CompareOutcome::SecondCheaper,
            CompareOutcome::SecondCheaper => CompareOutcome::FirstCheaper,
            other => other,
        };
        assert_eq!(ba, expected);
    }
}

#[test]
fn drop_negligible_preserves_value_within_epsilon() {
    let mut rng = Rng(0xC0DE_0004);
    for _ in 0..256 {
        let a = cost_expr(&mut rng);
        let simplified = a.drop_negligible_terms(1e-4);
        let n = Symbol::new("n");
        let info = a.vars().get(&n).copied();
        let (lo, hi) = info
            .map(|i| (i.range.lo(), i.range.hi()))
            .unwrap_or((1.0, 1.0));
        for k in 0..=20 {
            let x = lo + (hi - lo) * k as f64 / 20.0;
            let mut bnd = HashMap::new();
            bnd.insert(n.clone(), x);
            let v0 = a.eval_with_defaults(&bnd);
            let v1 = simplified.eval_with_defaults(&bnd);
            // Dropping ε-negligible terms moves the value by at most a
            // small relative amount.
            assert!(
                (v0 - v1).abs() <= 1e-2 * (1.0 + v0.abs()),
                "{v0} vs {v1} at {x}"
            );
        }
    }
}
