//! End-to-end tests of the `presage` command-line tool.

use std::process::Command;

const DAXPY: &str = "subroutine daxpy(y, x, a, n)
  real y(n), x(n), a
  integer i, n
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end

subroutine zero(y, n)
  real y(n)
  integer i, n
  do i = 1, n
    y(i) = 0.0
  end do
end
";

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("presage-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn presage(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_presage"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn machines_lists_predefined() {
    let (stdout, _, ok) = presage(&["machines"]);
    assert!(ok);
    for name in ["power-like", "risc1", "wide4"] {
        assert!(stdout.contains(name), "{stdout}");
    }
}

#[test]
fn predict_reports_symbolic_cost() {
    let f = write_temp("daxpy.f", DAXPY);
    let (stdout, _, ok) = presage(&["predict", f.to_str().unwrap(), "--at", "n=1000"]);
    assert!(ok);
    assert!(stdout.contains("daxpy: C = 7*n cycles"), "{stdout}");
    assert!(stdout.contains("7000 cycles"), "{stdout}");
    assert!(stdout.contains("zero: C ="), "{stdout}");
}

#[test]
fn predict_on_alternate_machine() {
    let f = write_temp("daxpy2.f", DAXPY);
    let (stdout, _, ok) = presage(&["predict", f.to_str().unwrap(), "--machine", "risc1"]);
    assert!(ok);
    assert!(stdout.contains("daxpy: C ="), "{stdout}");
}

#[test]
fn compare_gives_verdict() {
    let f = write_temp("daxpy3.f", DAXPY);
    let (stdout, _, ok) = presage(&["compare", f.to_str().unwrap(), "zero", "daxpy"]);
    assert!(ok);
    assert!(stdout.contains("verdict: first is cheaper"), "{stdout}");
}

#[test]
fn listing_shows_cycles() {
    let f = write_temp("daxpy4.f", DAXPY);
    let (stdout, _, ok) = presage(&["listing", f.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("fma"), "{stdout}");
    assert!(stdout.contains("total:"), "{stdout}");
}

#[test]
fn search_improves_daxpy() {
    let f = write_temp("daxpy5.f", DAXPY);
    let (stdout, _, ok) = presage(&[
        "search",
        f.to_str().unwrap(),
        "--at",
        "n=10000",
        "--depth",
        "1",
        "--expansions",
        "6",
    ]);
    assert!(ok);
    assert!(stdout.contains("original:"), "{stdout}");
    assert!(stdout.contains("best"), "{stdout}");
}

#[test]
fn bad_file_reports_error() {
    let (_, stderr, ok) = presage(&["predict", "/nonexistent/x.f"]);
    assert!(!ok);
    assert!(stderr.contains("reading"), "{stderr}");
}

#[test]
fn unknown_command_reports_usage() {
    let (_, stderr, ok) = presage(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn parse_errors_surface_with_position() {
    let f = write_temp("bad.f", "subroutine s(\nend");
    let (_, stderr, ok) = presage(&["predict", f.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
}
