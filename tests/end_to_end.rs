//! Cross-crate integration: the full pipeline from source text to
//! symbolic decisions, exercising the paper's §3 workflows end to end.

use presage::core::aggregate::AggregateOptions;
use presage::core::incremental::CostTree;
use presage::core::predictor::{Predictor, PredictorOptions};
use presage::machine::machines;
use presage::opt::rtt::plan_from_comparison;
use presage::opt::search::{astar_search, SearchOptions};
use presage::opt::transforms::Transform;
use presage::opt::whatif::compare_transform;
use presage::symbolic::{CompareOutcome, Symbol};
use std::collections::HashMap;

const TRIAD: &str = "subroutine triad(a, b, c, s, n)
   real a(n), b(n), c(n), s
   integer i, n
   do i = 1, n
     a(i) = b(i) + s * c(i)
   end do
 end";

#[test]
fn prediction_is_symbolic_and_evaluates() {
    let predictor = Predictor::new(machines::power_like());
    let pred = &predictor.predict_source(TRIAD).unwrap()[0];
    assert!(!pred.total.is_concrete());
    let n = Symbol::new("n");
    assert_eq!(
        pred.total.poly().degree_in(&n),
        1,
        "streaming kernel is linear in n"
    );

    let mut b = HashMap::new();
    b.insert(n, 1000.0);
    let at_1k = pred.total.eval_with_defaults(&b);
    assert!(
        at_1k > 1000.0 && at_1k < 100_000.0,
        "plausible cycle count: {at_1k}"
    );
}

#[test]
fn predictions_scale_across_machines() {
    // risc1 (scalar) must predict slower than power-like, which must be
    // slower than wide4, for the same FP-heavy kernel.
    let n = Symbol::new("n");
    let mut at = HashMap::new();
    at.insert(n, 10_000.0);
    let eval = |m: presage::machine::MachineDesc| {
        Predictor::new(m).predict_source(TRIAD).unwrap()[0]
            .total
            .eval_with_defaults(&at)
    };
    let scalar = eval(machines::risc1());
    let power = eval(machines::power_like());
    let wide = eval(machines::wide4());
    assert!(scalar > power, "scalar {scalar} vs superscalar {power}");
    assert!(power > wide, "1-wide {power} vs 4-wide {wide}");
}

#[test]
fn transformation_decision_workflow() {
    // §3.1: symbolic what-if on a nest where interchange is clearly bad
    // (it breaks stride-1 access? — in the compute-only model it changes
    // steady state little; distribute splits a fused pair).
    let fused = presage::frontend::parse(
        "subroutine s(a, b, n)
           real a(n), b(n)
           integer i, n
           do i = 1, n
             a(i) = a(i) * 2.0
             b(i) = b(i) * 3.0
           end do
         end",
    )
    .unwrap()
    .units
    .remove(0);
    let predictor = Predictor::new(machines::power_like());
    let (variant, cmp) =
        compare_transform(&fused, &[0], &Transform::Distribute, &predictor).unwrap();
    // Splitting doubles the loop-control work: distribution should not win.
    assert!(
        matches!(
            cmp.outcome,
            CompareOutcome::SecondCheaper | CompareOutcome::AlwaysEqual
        ),
        "distribute outcome {:?} (Δ = {})",
        cmp.outcome,
        cmp.difference
    );
    assert_ne!(variant.to_string(), fused.to_string());
}

#[test]
fn runtime_test_workflow_produces_thresholds() {
    // Two library-style variants with a genuine crossover in n.
    let mut opts = PredictorOptions::default();
    opts.aggregate.var_ranges.insert("n".into(), (1.0, 1000.0));
    let p = Predictor::with_options(machines::power_like(), opts);
    let with_setup = &p
        .predict_source(
            "subroutine f(a, w, n)
               real a(n), w(32)
               integer i, n
               do i = 1, 32
                 w(i) = 0.5
               end do
               do i = 1, n
                 a(i) = a(i) * 0.5
               end do
             end",
        )
        .unwrap()[0];
    let heavy_body = &p
        .predict_source(
            "subroutine g(a, n)
               real a(n)
               integer i, n
               do i = 1, n
                 a(i) = a(i) / 3.0
               end do
             end",
        )
        .unwrap()[0];
    let cmp = with_setup.total.compare(&heavy_body.total);
    assert_eq!(cmp.outcome, CompareOutcome::DependsOnUnknowns);
    let plan = plan_from_comparison(&cmp).expect("crossover yields a plan");
    assert_eq!(plan.variable.name(), "n");
    assert_eq!(plan.test_count(), 1);
    assert!(plan.thresholds[0] > 1.0 && plan.thresholds[0] < 1000.0);
}

#[test]
fn incremental_tree_agrees_with_predictor() {
    let predictor = Predictor::new(machines::power_like());
    let pred = &predictor.predict_source(TRIAD).unwrap()[0];
    let tree = CostTree::build(
        &pred.ir,
        predictor.machine(),
        None,
        AggregateOptions::default(),
    );
    assert_eq!(tree.total(), &pred.compute);
}

#[test]
fn search_workflow_improves_or_preserves() {
    let sub = presage::frontend::parse(
        "subroutine s(a, b, n)
           real a(n), b(n)
           integer i, n
           do i = 1, n
             a(i) = 0.0
           end do
           do i = 1, n
             b(i) = 0.0
           end do
         end",
    )
    .unwrap()
    .units
    .remove(0);
    let predictor = Predictor::new(machines::power_like());
    let mut opts = SearchOptions {
        max_expansions: 16,
        ..SearchOptions::default()
    };
    opts.eval_point.insert("n".into(), 10_000.0);
    let r = astar_search(&sub, &predictor, &opts);
    assert!(r.best_cost <= r.original_cost);
    // Fusing the two loops saves one loop's control overhead: the search
    // should find at least that.
    assert!(
        r.speedup() > 1.05,
        "expected fusion win, got {:.3}× ({} -> {})",
        r.speedup(),
        r.original_cost,
        r.best_cost
    );
}

#[test]
fn memory_model_changes_blocking_decision() {
    // Compute-only: tiling the k loop looks like pure overhead. With the
    // memory model and large n, tiling must look strictly better than it
    // does without (the relative Δ improves).
    let sub = presage::frontend::parse(
        "subroutine mm(a, b, c, n)
           real a(n,n), b(n,n), c(n,n)
           integer i, j, k, n
           do j = 1, n
             do i = 1, n
               do k = 1, n
                 c(i,j) = c(i,j) + a(i,k) * b(k,j)
               end do
             end do
           end do
         end",
    )
    .unwrap()
    .units
    .remove(0);

    let n = Symbol::new("n");
    let mut at = HashMap::new();
    at.insert(n, 1024.0);

    let compute_only = Predictor::new(machines::power_like());
    let mut mem_opts = PredictorOptions {
        include_memory: true,
        ..PredictorOptions::default()
    };
    mem_opts
        .aggregate
        .var_ranges
        .insert("n".into(), (1024.0, 1024.0));
    let with_memory = Predictor::with_options(machines::power_like(), mem_opts);

    let ratio = |p: &Predictor| {
        let base = p
            .predict_subroutine(&sub)
            .unwrap()
            .total
            .eval_with_defaults(&at);
        let tiled = presage::opt::transformed(&sub, &[0, 0, 0], &Transform::Tile(32)).unwrap();
        let tiled_cost = p
            .predict_subroutine(&tiled)
            .unwrap()
            .total
            .eval_with_defaults(&at);
        tiled_cost / base
    };
    let r_compute = ratio(&compute_only);
    let r_memory = ratio(&with_memory);
    assert!(
        r_memory < r_compute,
        "memory model should favor tiling: compute ratio {r_compute:.3}, memory ratio {r_memory:.3}"
    );
    assert!(
        r_memory < 1.0,
        "tiling should win outright with memory costs: {r_memory:.3}"
    );
}

#[test]
fn library_table_flows_through_prediction() {
    use presage::core::library::LibraryCostTable;
    use presage::symbolic::{PerfExpr, Poly, VarInfo};
    let mut lib = LibraryCostTable::new();
    let m = Symbol::new("m");
    lib.insert(
        "dgemv",
        vec!["m".into()],
        PerfExpr::from_poly(
            (&Poly::var(m.clone()) * &Poly::var(m.clone())).scale(2),
            [(m.clone(), VarInfo::param(1.0, 1e5))],
        ),
    );
    let opts = PredictorOptions {
        library: Some(lib),
        ..PredictorOptions::default()
    };
    let p = Predictor::with_options(machines::power_like(), opts);
    let pred = &p
        .predict_source(
            "subroutine s(a, n, k)
               real a(n)
               integer i, n, k
               do i = 1, k
                 call dgemv(a, n)
               end do
             end",
        )
        .unwrap()[0];
    // k calls, each 2m²: the total must contain a k·m² term.
    let poly = pred.total.poly();
    assert_eq!(poly.degree_in(&m), 2);
    assert_eq!(poly.degree_in(&Symbol::new("k")), 1);
}

#[test]
fn triangular_nest_sums_in_closed_form() {
    // do i = 1, n { do j = i, n }: the inner trip count (n − i + 1) must be
    // summed over i — Σ = n(n+1)/2 — not multiplied by n, and no stray `i`
    // may survive in the expression.
    let predictor = Predictor::new(machines::power_like());
    let pred = &predictor
        .predict_source(
            "subroutine tri(a, n)
               real a(n,n)
               integer i, j, n
               do i = 1, n
                 do j = i, n
                   a(i,j) = a(i,j) * 0.5
                 end do
               end do
             end",
        )
        .unwrap()[0];
    let n = Symbol::new("n");
    let i = Symbol::new("i");
    assert!(
        !pred.total.poly().contains_symbol(&i),
        "loop index summed away: {}",
        pred.total
    );
    assert_eq!(pred.total.poly().degree_in(&n), 2);

    // The n² coefficient must be half the per-iteration cost: compare the
    // triangular nest against the full rectangular nest.
    let full = &predictor
        .predict_source(
            "subroutine rect(a, n)
               real a(n,n)
               integer i, j, n
               do i = 1, n
                 do j = 1, n
                   a(i,j) = a(i,j) * 0.5
                 end do
               end do
             end",
        )
        .unwrap()[0];
    let lead = |e: &presage::symbolic::PerfExpr| {
        e.poly()
            .as_univariate(&n)
            .last()
            .unwrap()
            .1
            .constant_value()
            .unwrap()
            .to_f64()
    };
    let ratio = lead(&full.total) / lead(&pred.total);
    assert!(
        (ratio - 2.0).abs() < 0.05,
        "triangular is half the square: {ratio}"
    );
}
