//! `do while` support: the statically unknowable trip count becomes a
//! fresh symbolic unknown — the purest case of the paper's "delay the
//! guess" principle.

use presage::core::predictor::Predictor;
use presage::frontend::{parse, Stmt};
use presage::machine::machines;
use presage::opt::profile::ProfileData;

const NEWTON: &str = "subroutine newton(x, eps)
   real x, eps, err
   integer iters
   err = 1.0
   do while (err .gt. eps)
     x = x - (x * x - 2.0) / (2.0 * x)
     err = abs(x * x - 2.0)
     iters = iters + 1
   end do
 end";

#[test]
fn parses_do_while() {
    let p = parse(NEWTON).unwrap();
    let body = &p.units[0].body;
    assert!(matches!(body[1], Stmt::DoWhile { .. }));
}

#[test]
fn display_roundtrips() {
    let p1 = parse(NEWTON).unwrap();
    let emitted = p1.units[0].to_string();
    let p2 = parse(&emitted).expect("re-parses");
    assert_eq!(emitted, p2.units[0].to_string());
}

#[test]
fn rejects_non_logical_condition() {
    let err = Predictor::new(machines::power_like())
        .predict_source("subroutine s(n)\ninteger n\ndo while (n)\nn = n - 1\nend do\nend")
        .unwrap_err();
    assert!(err.to_string().contains("logical"), "{err}");
}

#[test]
fn cost_is_linear_in_fresh_trip_symbol() {
    let predictor = Predictor::new(machines::power_like());
    let pred = &predictor.predict_source(NEWTON).unwrap()[0];
    assert!(!pred.total.is_concrete());
    let trip = pred
        .total
        .vars()
        .keys()
        .find(|s| s.name().starts_with("trip$"))
        .expect("fresh trip-count unknown")
        .clone();
    assert_eq!(pred.total.poly().degree_in(&trip), 1, "{}", pred.total);
}

#[test]
fn profiling_eliminates_the_trip_count() {
    // §3.4: an observed average iteration count makes the cost concrete.
    let predictor = Predictor::new(machines::power_like());
    let pred = &predictor.predict_source(NEWTON).unwrap()[0];
    let trip = pred
        .total
        .vars()
        .keys()
        .find(|s| s.name().starts_with("trip$"))
        .unwrap()
        .clone();
    let mut prof = ProfileData::new();
    prof.observe(trip.name(), 6.0); // Newton converges in ~6 iterations
    let narrowed = prof.apply(&pred.total);
    assert!(narrowed.is_concrete(), "{narrowed}");
    assert!(narrowed.concrete_cycles().unwrap().to_f64() > 0.0);
}

#[test]
fn while_loop_condition_charged_per_iteration() {
    // A heavier condition must show up in the trip coefficient.
    let light = "subroutine s(x, eps)
       real x, eps
       do while (x .gt. eps)
         x = x * 0.5
       end do
     end";
    let heavy = "subroutine s(x, eps)
       real x, eps
       do while (sqrt(x * x + 1.0) .gt. eps)
         x = x * 0.5
       end do
     end";
    let predictor = Predictor::new(machines::power_like());
    let coeff = |src: &str| {
        let pred = &predictor.predict_source(src).unwrap()[0];
        let trip = pred
            .total
            .vars()
            .keys()
            .find(|s| s.name().starts_with("trip$"))
            .unwrap()
            .clone();
        pred.total
            .poly()
            .as_univariate(&trip)
            .last()
            .unwrap()
            .1
            .constant_value()
            .unwrap()
            .to_f64()
    };
    assert!(
        coeff(heavy) > coeff(light) + 5.0,
        "sqrt-condition per-iteration cost"
    );
}

#[test]
fn nested_while_inside_do() {
    let src = "subroutine s(a, n, eps)
       real a(n), eps, x
       integer i, n
       do i = 1, n
         x = a(i)
         do while (x .gt. eps)
           x = x * 0.5
         end do
         a(i) = x
       end do
     end";
    let predictor = Predictor::new(machines::power_like());
    let pred = &predictor.predict_source(src).unwrap()[0];
    let poly = pred.total.poly();
    // n × trip cross term: the while body runs trip times per outer iter.
    let has_cross = poly.terms().any(|(mono, _)| {
        mono.factors().count() == 2 && mono.symbols().any(|s| s.name().starts_with("trip$"))
    });
    assert!(has_cross, "{}", pred.total);
}
