//! The headline result (paper Figure 7): the Tetris cost model predicts
//! straight-line superscalar cost within a few percent of a detailed
//! reference, while the conventional operation-count model is far off —
//! worst on the FMA-rich Matmul block and on wider machines.

use presage::core::tetris::PlaceOptions;
use presage::machine::machines;
use presage_bench::tables::fig7_rows;

#[test]
fn tetris_model_tracks_reference_on_power_like() {
    let rows = fig7_rows(&machines::power_like(), PlaceOptions::default()).unwrap();
    assert_eq!(rows.len(), 10);
    for r in &rows {
        assert!(
            r.error_pct().abs() <= 12.0,
            "{}: predicted {} vs reference {} ({:+.1}%)",
            r.name,
            r.predicted,
            r.reference,
            r.error_pct()
        );
    }
    let mean: f64 = rows.iter().map(|r| r.error_pct().abs()).sum::<f64>() / rows.len() as f64;
    assert!(mean <= 5.0, "mean |error| {mean:.2}% too high");
}

#[test]
fn tetris_model_tracks_reference_on_all_machines() {
    for machine in machines::all() {
        let rows = fig7_rows(&machine, PlaceOptions::default()).unwrap();
        for r in &rows {
            assert!(
                r.error_pct().abs() <= 15.0,
                "{} on {}: {:+.1}%",
                r.name,
                machine.name(),
                r.error_pct()
            );
        }
    }
}

#[test]
fn naive_model_overestimates_superscalar_kernels() {
    // The paper: "a conventional cost estimation model may be off by a
    // factor of ten or more". On the 1-FPU power-like machine the worst
    // factor is ~2×; on the 4-wide machine the Matmul block reaches 6×.
    let rows = fig7_rows(&machines::power_like(), PlaceOptions::default()).unwrap();
    let matmul = rows.iter().find(|r| r.name == "Matmul").unwrap();
    assert!(
        matmul.naive_factor() >= 1.8,
        "naive factor {:.2} too small on power-like",
        matmul.naive_factor()
    );

    let wide = fig7_rows(&machines::wide4(), PlaceOptions::default()).unwrap();
    let matmul_wide = wide.iter().find(|r| r.name == "Matmul").unwrap();
    assert!(
        matmul_wide.naive_factor() >= 4.0,
        "naive factor {:.2} too small on wide4",
        matmul_wide.naive_factor()
    );
    // And the tetris model stays accurate where the naive model explodes.
    assert!(matmul_wide.error_pct().abs() <= 10.0);
}

#[test]
fn naive_model_never_underestimates_reference() {
    for machine in machines::all() {
        for r in fig7_rows(&machine, PlaceOptions::default()).unwrap() {
            assert!(
                r.naive >= r.reference,
                "{} on {}: naive {} < reference {}",
                r.name,
                machine.name(),
                r.naive,
                r.reference
            );
        }
    }
}

#[test]
fn focus_span_trades_accuracy_monotonically_at_extremes() {
    // A focus span of 1 must be no more accurate than the unbounded search.
    let machine = machines::power_like();
    let tight = fig7_rows(&machine, PlaceOptions::with_focus_span(1)).unwrap();
    let free = fig7_rows(&machine, PlaceOptions::default()).unwrap();
    let err = |rows: &[presage_bench::tables::Fig7Row]| {
        rows.iter().map(|r| r.error_pct().abs()).sum::<f64>() / rows.len() as f64
    };
    assert!(
        err(&tight) >= err(&free) - 1e-9,
        "tight {:.2}% vs free {:.2}%",
        err(&tight),
        err(&free)
    );
}

#[test]
fn imitation_ablation_shape() {
    // §2.2.2: translating without back-end imitation seriously distorts
    // source-level estimates — beyond 10× on the reduction-heavy Matmul.
    use presage::core::tetris::place_block;
    use presage::frontend::{parse, sema};
    use presage::machine::BackendFlags;
    use presage::sim::simulate_block;
    use presage::translate::translate;

    let imitating = machines::power_like();
    let mut oblivious = machines::power_like();
    oblivious.backend = BackendFlags {
        cse: false,
        licm: false,
        dce: false,
        fma_fusion: false,
        reduction_recognition: false,
        strength_reduction: false,
    };
    let prog = parse(presage_bench::kernels::MATMUL).unwrap();
    let symbols = sema::analyze(&prog.units[0]).unwrap();

    let opt_ir = translate(&prog.units[0], &symbols, &imitating).unwrap();
    let reference = simulate_block(&imitating, opt_ir.innermost_block().unwrap())
        .unwrap()
        .makespan;

    let naive_ir = translate(&prog.units[0], &symbols, &oblivious).unwrap();
    let distorted = place_block(
        &imitating,
        naive_ir.innermost_block().unwrap(),
        PlaceOptions::default(),
    )
    .completion;

    assert!(
        distorted as f64 / reference as f64 >= 5.0,
        "imitation-oblivious estimate should be severely distorted: {distorted} vs {reference}"
    );
}
