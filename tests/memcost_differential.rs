//! Differential oracle for the §2.3 memory cost model: the predicted
//! distinct-cache-line counts (symbolic in the loop bounds) must equal
//! the miss counts of the line-counting cache simulator on the Figure 7
//! suite, kernel by kernel, machine by machine.
//!
//! The simulated cache is sized to cover every kernel's footprint and
//! made fully associative (`ways: 0`), so its misses are *exactly* the
//! distinct lines touched — the quantity the model predicts. Both sides
//! implement the same layout contract (column-major, 8-byte elements,
//! line-aligned bases, leading dimension padded to the line size), so
//! any disagreement is a modelling bug, not a layout convention.
//!
//! Two prediction paths are checked:
//!
//! 1. [`count_lines_concrete`] — exact counting at arbitrary concrete
//!    bounds, including unaligned trip counts and block origins.
//! 2. The symbolic polynomial from [`mem_cost_fresh`], evaluated at
//!    bounds satisfying the alignment discipline the closed form
//!    assumes (line-size-divisible trips, parameters ≡ 1 mod the line
//!    width).
//!
//! A third test pins the compatibility contract: machines without a
//! `cache` section (all shipped builtins) predict a total identical to
//! the pure compute cost, with no memory attribution at all.

use presage::core::aggregate::AggregateOptions;
use presage::core::memcost::{count_lines_concrete, mem_cost_fresh};
use presage::core::predictor::Predictor;
use presage::machine::{machines, CacheParams, MachineDesc};
use presage::sim::simulate_cache;
use presage::symbolic::Symbol;
use presage_bench::kernels::{self, figure7};
use std::collections::HashMap;

/// The oracle geometry: 64-byte lines (8 doubles), fully associative,
/// capacity far beyond any Figure 7 footprint — misses == distinct lines.
fn covering_cache(line_bytes: u64) -> CacheParams {
    CacheParams {
        line_bytes,
        size_bytes: 1 << 24,
        miss_penalty: 10,
        ways: 0,
        ..CacheParams::default()
    }
}

fn shipped_machines() -> Vec<MachineDesc> {
    vec![
        machines::power_like(),
        machines::risc1(),
        machines::wide4(),
        machines::wide8(),
    ]
}

fn bind(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
    pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
}

/// Concrete integer bindings per kernel: one deliberately unaligned set
/// (odd bounds, off-line block origins) and one aligned set. Matmul's
/// free parameters `i`, `j` are the register-block origin.
fn concrete_bindings(kernel: &str) -> Vec<HashMap<String, i64>> {
    match kernel {
        "Matmul" => vec![
            bind(&[("n", 37), ("i", 5), ("j", 9)]),
            bind(&[("n", 64), ("i", 1), ("j", 1)]),
        ],
        _ => vec![bind(&[("n", 37)]), bind(&[("n", 64)])],
    }
}

/// Bindings satisfying the symbolic form's alignment discipline for
/// 8-element lines: trip counts divisible by the line width and
/// parameters ≡ 1 (mod 8). Jacobi runs 2..n-1 (trip n-2, so n = 66);
/// red-black steps by 2 over 2..n-1 (n = 65 keeps the span even and the
/// trip a multiple of 4).
fn aligned_bindings(kernel: &str) -> HashMap<String, i64> {
    match kernel {
        "Matmul" => bind(&[("n", 64), ("i", 1), ("j", 1)]),
        "Jacobi" => bind(&[("n", 66)]),
        "RB" => bind(&[("n", 65)]),
        _ => bind(&[("n", 64)]),
    }
}

#[test]
fn concrete_line_counts_match_the_simulated_cache() {
    for machine in shipped_machines() {
        for k in figure7() {
            let ir = kernels::translate_kernel(k.source, &machine);
            for line_bytes in [32, 64, 128] {
                let cache = covering_cache(line_bytes);
                for bindings in concrete_bindings(k.name) {
                    let predicted =
                        count_lines_concrete(&ir, &cache, &bindings).unwrap_or_else(|| {
                            panic!("{} on {}: model defeated", k.name, machine.name())
                        });
                    let counts = simulate_cache(&ir, &cache, &bindings).unwrap_or_else(|e| {
                        panic!("{} on {}: simulator failed: {e}", k.name, machine.name())
                    });
                    assert_eq!(
                        predicted,
                        counts.misses,
                        "{} on {} ({}B lines, bindings {bindings:?}): predicted {predicted} \
                         distinct lines, simulator missed {}",
                        k.name,
                        machine.name(),
                        line_bytes,
                        counts.misses
                    );
                }
            }
        }
    }
}

#[test]
fn symbolic_polynomials_match_the_simulated_cache_under_the_discipline() {
    let opts = AggregateOptions::default();
    let cache = covering_cache(64);
    for machine in shipped_machines() {
        for k in figure7() {
            let ir = kernels::translate_kernel(k.source, &machine);
            let mc = mem_cost_fresh(&ir, &cache, &opts);
            assert!(
                mc.exact,
                "{} on {}: symbolic count fell back to a bound: {:?}",
                k.name,
                machine.name(),
                mc.groups
            );
            let bindings = aligned_bindings(k.name);
            let point: HashMap<Symbol, f64> = bindings
                .iter()
                .map(|(name, v)| (Symbol::new(name), *v as f64))
                .collect();
            let predicted = mc.lines.eval_with_defaults(&point);
            let counts = simulate_cache(&ir, &cache, &bindings).unwrap_or_else(|e| {
                panic!("{} on {}: simulator failed: {e}", k.name, machine.name())
            });
            assert_eq!(
                predicted,
                counts.misses as f64,
                "{} on {} (bindings {bindings:?}): polynomial {} evaluates to {predicted}, \
                 simulator missed {}",
                k.name,
                machine.name(),
                mc.lines,
                counts.misses
            );
        }
    }
}

#[test]
fn machines_without_a_cache_section_predict_pure_compute() {
    // The compatibility half of the bugfix: every shipped machine has no
    // `cache` section, so its predictions carry no memory attribution and
    // the total is bit-identical to the compute cost — exactly what these
    // machines predicted before the memory model existed.
    for machine in shipped_machines() {
        assert!(machine.cache.is_none(), "builtins stay perfect-cache");
        let predictor = Predictor::new(machine.clone());
        for k in figure7() {
            let preds = predictor
                .predict_source(k.source)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", k.name, machine.name()));
            let p = &preds[0];
            assert!(p.memcost.is_none(), "{}: no cache, no memcost", k.name);
            assert_eq!(
                p.total.to_string(),
                p.compute.to_string(),
                "{} on {}: total must be the compute cost verbatim",
                k.name,
                machine.name()
            );
        }
    }
}
