//! Search-level guarantees of the structural e-graph engine.
//!
//! Two claims beyond the normalizer differential
//! (`normalize_differential.rs`):
//!
//! - **Transposition collapse:** commuting transformation sequences
//!   (the same in-place moves applied at disjoint sibling paths in any
//!   order) land in ONE structural class, cost ONE prediction-cache
//!   entry, and both search engines observe the merge
//!   (`merged_variants > 0`).
//! - **Extraction dominance:** on the full Figure 7 corpus across all
//!   four shipped machines, the e-graph's extracted variant never
//!   predicts worse than the A* winner — the new engine is a strict
//!   upgrade, not a trade.

use presage::core::predictor::Predictor;
use presage::frontend::ast::Subroutine;
use presage::machine::machines;
use presage::opt::cache::PredictionCache;
use presage::opt::transforms::Transform;
use presage::opt::whatif::transformed;
use presage::opt::{
    astar_search_cached, canonical_key, search, search_cached, structural_key, SearchConfig,
    SearchOptions, SearchStrategy,
};
use presage_bench::kernels::figure7;

fn sub(src: &str) -> Subroutine {
    presage::frontend::parse(src).unwrap().units.remove(0)
}

/// A 2-deep nest (interchangeable at path [0]) followed by a sibling
/// loop (tileable at path [1]): the two moves touch disjoint statements,
/// so applying them in either order reaches the same program.
const SIBLINGS: &str = "subroutine s(a, b, n)
    real a(n,n), b(n)
    integer i, j, n
    do i = 1, n
      do j = 1, n
        a(i,j) = a(i,j) * 2.0
      end do
    end do
    do i = 1, n
      b(i) = b(i) + 1.0
    end do
  end";

/// Three sibling nests for the 6-permutation collapse.
const TRIPLE: &str = "subroutine s(a, b, c, n)
    real a(n,n), b(n), c(n,n)
    integer i, j, n
    do i = 1, n
      do j = 1, n
        a(i,j) = a(i,j) * 2.0
      end do
    end do
    do i = 1, n
      b(i) = b(i) + 1.0
    end do
    do i = 1, n
      do j = 1, n
        c(i,j) = c(i,j) + a(i,j)
      end do
    end do
  end";

fn apply(s: &Subroutine, moves: &[(&[usize], Transform)]) -> Subroutine {
    let mut cur = s.clone();
    for (path, t) in moves {
        cur = transformed(&cur, path, t).expect("move applies");
    }
    cur
}

#[test]
fn transposed_sequences_share_one_class() {
    let s = sub(SIBLINGS);
    let ab = apply(
        &s,
        &[(&[0], Transform::Interchange), (&[1], Transform::Tile(32))],
    );
    let ba = apply(
        &s,
        &[(&[1], Transform::Tile(32)), (&[0], Transform::Interchange)],
    );
    assert_eq!(
        structural_key(&ab).unwrap(),
        structural_key(&ba).unwrap(),
        "interchange∘tile and tile∘interchange must merge structurally"
    );
    // Disjoint in-place moves yield the identical program, so even the
    // textual oracle agrees — the structural key merges at least as much.
    assert_eq!(canonical_key(&ab).unwrap(), canonical_key(&ba).unwrap());
}

#[test]
fn all_six_orders_of_three_disjoint_moves_collapse() {
    let s = sub(TRIPLE);
    let moves: [(&[usize], Transform); 3] = [
        (&[0], Transform::Interchange),
        (&[1], Transform::Tile(32)),
        (&[2], Transform::Interchange),
    ];
    let orders: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    let keys: Vec<u128> = orders
        .iter()
        .map(|o| {
            let seq: Vec<(&[usize], Transform)> = o.iter().map(|&i| moves[i].clone()).collect();
            structural_key(&apply(&s, &seq)).unwrap()
        })
        .collect();
    assert!(
        keys.iter().all(|k| *k == keys[0]),
        "all 6 permutations must share one structural class: {keys:x?}"
    );
}

#[test]
fn a_transposition_costs_one_cache_entry() {
    let s = sub(SIBLINGS);
    let ab = apply(
        &s,
        &[(&[0], Transform::Interchange), (&[1], Transform::Tile(32))],
    );
    let ba = apply(
        &s,
        &[(&[1], Transform::Tile(32)), (&[0], Transform::Interchange)],
    );
    let predictor = Predictor::new(machines::power_like());
    let cache = PredictionCache::new();
    let first = cache
        .cost_of(structural_key(&ab).unwrap(), &ab, &predictor)
        .unwrap();
    let second = cache
        .cost_of(structural_key(&ba).unwrap(), &ba, &predictor)
        .unwrap();
    assert_eq!(cache.misses(), 1, "first order predicts");
    assert_eq!(cache.hits(), 1, "second order is served from the class");
    assert_eq!(cache.len(), 1, "one class, one entry");
    assert_eq!(first.to_string(), second.to_string());
}

#[test]
fn both_engines_observe_the_merge() {
    let s = sub(SIBLINGS);
    let predictor = Predictor::new(machines::power_like());
    // No unroll moves: the catalog is just tile/interchange, so both
    // engines exhaust the depth-2 space inside the budget and must
    // encounter the interchange∘tile / tile∘interchange transposition.
    let options = SearchOptions {
        unroll_factors: vec![],
        tile_sizes: vec![32],
        max_expansions: 48,
        max_depth: 2,
        ..Default::default()
    };
    let astar = astar_search_cached(&s, &predictor, &options, &PredictionCache::new());
    assert!(
        astar.merged_variants > 0,
        "A* must hit its closed set on the transposition: {astar:?}"
    );
    let config = SearchConfig {
        strategy: SearchStrategy::EGraph,
        options,
        node_budget: 256,
        heuristic: true,
        prune: true,
    };
    let egraph = search(&s, &predictor, &config);
    assert!(
        egraph.merged_variants > 0,
        "the e-graph must merge the transposition: {egraph:?}"
    );
    assert!(
        egraph.best_cost <= astar.best_cost + 1e-6,
        "same budget class, e-graph must not lose: {} vs {}",
        egraph.best_cost,
        astar.best_cost
    );
}

#[test]
fn egraph_extraction_never_regresses_the_astar_winner() {
    // Hard acceptance bar: Figure 7 × all four machines, generous
    // e-graph budgets vs the A* defaults. The engines explore the same
    // move catalog, so with a superset budget the e-graph's extracted
    // cost must be <= the A* winner's everywhere.
    let astar_opts = SearchOptions {
        max_expansions: 4,
        max_depth: 2,
        workers: 4,
        ..Default::default()
    };
    let egraph_config = SearchConfig {
        strategy: SearchStrategy::EGraph,
        options: SearchOptions {
            max_expansions: 16,
            max_depth: 2,
            workers: 4,
            ..Default::default()
        },
        node_budget: 256,
        heuristic: true,
        prune: true,
    };
    for machine in [
        machines::risc1(),
        machines::power_like(),
        machines::wide4(),
        machines::wide8(),
    ] {
        let name = machine.name().to_string();
        let predictor = Predictor::new(machine);
        for k in figure7() {
            let s = sub(k.source);
            // One shared cache per (kernel, machine): the engines visit
            // overlapping variants, and predictions are pure.
            let cache = PredictionCache::new();
            let astar = astar_search_cached(&s, &predictor, &astar_opts, &cache);
            let egraph = search_cached(&s, &predictor, &egraph_config, &cache);
            assert!(
                egraph.best_cost <= astar.best_cost + 1e-6,
                "{} on {name}: e-graph {} worse than A* {}",
                k.name,
                egraph.best_cost,
                astar.best_cost
            );
            assert!(egraph.best_cost <= egraph.original_cost + 1e-9);
        }
    }
}
