//! Property-based tests on the framework's core invariants.

use presage::core::slots::{BlockList, FlatSlots};
use presage::core::tetris::{place_block, PlaceOptions};
use presage::machine::{machines, BasicOp};
use presage::sim::{naive_block_cost, simulate_block};
use presage::symbolic::roots::{horner, real_roots};
use presage::symbolic::signs::{sign_regions, Sign};
use presage::symbolic::{Monomial, Poly, Rational, Symbol};
use presage::translate::{BlockIr, ValueDef};
use proptest::prelude::*;
use std::collections::HashMap;

// ---------- rational arithmetic ------------------------------------------

fn rational() -> impl Strategy<Value = Rational> {
    (-1000i128..1000, 1i128..200).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #[test]
    fn rational_add_commutes(a in rational(), b in rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rational_mul_distributes(a in rational(), b in rational(), c in rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_ordering_consistent_with_f64(a in rational(), b in rational()) {
        if (a.to_f64() - b.to_f64()).abs() > 1e-9 {
            prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
        }
    }

    #[test]
    fn rational_recip_roundtrip(a in rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.recip().recip(), a);
        prop_assert_eq!(a * a.recip(), Rational::ONE);
    }
}

// ---------- polynomial algebra --------------------------------------------

/// Random small polynomial over {n, m} with integer coefficients.
fn poly() -> impl Strategy<Value = Poly> {
    proptest::collection::vec((-20i64..=20, 0u32..3, 0u32..3), 0..6).prop_map(|terms| {
        let n = Symbol::new("n");
        let m = Symbol::new("m");
        let mut p = Poly::zero();
        for (c, en, em) in terms {
            let mono = Monomial::from_pairs([(n.clone(), en as i32), (m.clone(), em as i32)]);
            p += Poly::term(Rational::from_int(c), mono);
        }
        p
    })
}

fn bindings(nv: i64, mv: i64) -> HashMap<Symbol, Rational> {
    let mut b = HashMap::new();
    b.insert(Symbol::new("n"), Rational::from_int(nv));
    b.insert(Symbol::new("m"), Rational::from_int(mv));
    b
}

proptest! {
    #[test]
    fn poly_add_evaluates_pointwise(p in poly(), q in poly(), nv in -50i64..50, mv in -50i64..50) {
        let b = bindings(nv, mv);
        let lhs = (&p + &q).eval(&b).unwrap();
        let rhs = p.eval(&b).unwrap() + q.eval(&b).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn poly_mul_evaluates_pointwise(p in poly(), q in poly(), nv in -20i64..20, mv in -20i64..20) {
        let b = bindings(nv, mv);
        let lhs = (&p * &q).eval(&b).unwrap();
        let rhs = p.eval(&b).unwrap() * q.eval(&b).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn poly_sub_self_is_zero(p in poly()) {
        prop_assert!((&p - &p).is_zero());
    }

    #[test]
    fn poly_subst_then_eval_commutes(p in poly(), k in -10i64..10, nv in -10i64..10, mv in -10i64..10) {
        // p[n := m + k] evaluated == p evaluated with n = m + k.
        let n = Symbol::new("n");
        let rep = Poly::var(Symbol::new("m")) + Poly::from(k);
        let substituted = p.subst(&n, &rep).unwrap();
        let b = bindings(nv, mv);
        let direct = {
            let mut b2 = bindings(mv + k, mv);
            b2.insert(Symbol::new("m"), Rational::from_int(mv));
            p.eval(&b2).unwrap()
        };
        prop_assert_eq!(substituted.eval(&b).unwrap(), direct);
    }

    #[test]
    fn poly_derivative_of_sum(p in poly(), q in poly()) {
        let n = Symbol::new("n");
        prop_assert_eq!((&p + &q).derivative(&n), &p.derivative(&n) + &q.derivative(&n));
    }

    #[test]
    fn poly_antiderivative_inverts_derivative(p in poly()) {
        let n = Symbol::new("n");
        let ad = p.antiderivative(&n).unwrap();
        prop_assert_eq!(ad.derivative(&n), p);
    }
}

// ---------- root finding ---------------------------------------------------

proptest! {
    #[test]
    fn roots_from_factored_polynomials(mut rs in proptest::collection::vec(-8i32..8, 1..5)) {
        rs.sort();
        rs.dedup();
        // Build Π (x − r) as dense coefficients.
        let mut coeffs = vec![1.0f64];
        for &r in &rs {
            let mut next = vec![0.0; coeffs.len() + 1];
            for (i, &c) in coeffs.iter().enumerate() {
                next[i + 1] += c;
                next[i] -= c * r as f64;
            }
            coeffs = next;
        }
        let found = real_roots(&coeffs);
        prop_assert_eq!(found.len(), rs.len(), "{:?} vs {:?}", found, rs);
        for (f, r) in found.iter().zip(&rs) {
            prop_assert!((f - *r as f64).abs() < 1e-6, "{} vs {}", f, r);
        }
    }

    #[test]
    fn all_reported_roots_are_roots(coeffs in proptest::collection::vec(-50f64..50.0, 1..6)) {
        let scale = coeffs.iter().fold(1.0f64, |a, c| a.max(c.abs()));
        for r in real_roots(&coeffs) {
            let v = horner(&coeffs, r);
            prop_assert!(v.abs() <= 1e-4 * scale * (1.0 + r.abs()).powi(coeffs.len() as i32), "P({r}) = {v}");
        }
    }
}

// ---------- sign regions ----------------------------------------------------

proptest! {
    #[test]
    fn sign_regions_match_sampling(coeffs in proptest::collection::vec(-10f64..10.0, 1..5)) {
        let x = Symbol::new("x");
        let p = coeffs.iter().enumerate().fold(Poly::zero(), |acc, (i, &c)| {
            acc + Poly::term(
                Rational::new((c * 16.0).round() as i128, 16),
                Monomial::power(x.clone(), i as i32),
            )
        });
        let regions = sign_regions(&p, &x, -5.0, 5.0).unwrap();
        // Regions tile the range.
        prop_assert!((regions.first().unwrap().lo - -5.0).abs() < 1e-9);
        prop_assert!((regions.last().unwrap().hi - 5.0).abs() < 1e-9);
        for w in regions.windows(2) {
            prop_assert!((w[0].hi - w[1].lo).abs() < 1e-9);
        }
        // Sampling agrees with the reported sign away from boundaries.
        for r in &regions {
            if r.hi - r.lo < 1e-3 {
                continue;
            }
            let mid = 0.5 * (r.lo + r.hi);
            let v = p.eval_univariate(&x, mid).unwrap();
            match r.sign {
                Sign::Positive => prop_assert!(v > -1e-9, "{v} at {mid}"),
                Sign::Negative => prop_assert!(v < 1e-9, "{v} at {mid}"),
                Sign::Zero => prop_assert!(v.abs() < 1e-6, "{v} at {mid}"),
            }
        }
    }
}

// ---------- slot lists -------------------------------------------------------

proptest! {
    #[test]
    fn blocklist_equals_flat_bitmap(ops in proptest::collection::vec((0usize..128, 1usize..6), 1..100)) {
        let mut list = BlockList::new();
        let mut flat = FlatSlots::new();
        for (from, len) in ops {
            let a = list.find_fit(from, len);
            let b = flat.find_fit(from, len);
            prop_assert_eq!(a, b, "find_fit({}, {})", from, len);
            list.fill(a, len);
            flat.fill(b, len);
        }
    }

    #[test]
    fn blocklist_runs_alternate_and_cover(ops in proptest::collection::vec((0usize..64, 1usize..5), 1..40)) {
        let mut list = BlockList::new();
        let mut total = 0;
        for (from, len) in ops {
            let t = list.find_fit(from, len);
            list.fill(t, len);
            total += len;
        }
        prop_assert_eq!(list.busy(), total);
        let runs: Vec<_> = list.runs().collect();
        // Runs abut and alternate.
        let mut pos = 0;
        let mut last_filled = None;
        for (start, len, filled) in runs {
            prop_assert_eq!(start, pos);
            prop_assert!(len > 0);
            if let Some(lf) = last_filled {
                prop_assert_ne!(lf, filled, "adjacent runs must alternate");
            }
            last_filled = Some(filled);
            pos = start + len;
        }
    }
}

// ---------- placement vs. simulator vs. naive --------------------------------

/// Random operation stream generator.
fn op_stream() -> impl Strategy<Value = BlockIr> {
    proptest::collection::vec((0usize..7, proptest::bool::ANY), 1..40).prop_map(|ops| {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let mut prev = x;
        for (kind, dep) in ops {
            let basic = [
                BasicOp::FAdd,
                BasicOp::FMul,
                BasicOp::Fma,
                BasicOp::IAdd,
                BasicOp::LoadFloat,
                BasicOp::IMul,
                BasicOp::FDiv,
            ][kind];
            let args = if dep { vec![prev, x] } else { vec![x, x] };
            prev = b.emit(basic, args);
        }
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn naive_upper_bounds_everything(block in op_stream()) {
        for machine in [machines::power_like(), machines::risc1(), machines::wide4()] {
            let naive = naive_block_cost(&machine, &block);
            let sim = simulate_block(&machine, &block).makespan;
            let placed = place_block(&machine, &block, PlaceOptions::default()).completion;
            prop_assert!(sim <= naive, "sim {} > naive {} on {}", sim, naive, machine.name());
            prop_assert!(placed <= naive, "placed {} > naive {} on {}", placed, naive, machine.name());
        }
    }

    #[test]
    fn placement_respects_critical_path(block in op_stream()) {
        // Completion can never beat the dependence-chain lower bound.
        let machine = machines::power_like();
        let mut chain_bound = vec![0u32; block.ops.len()];
        for (i, op) in block.ops.iter().enumerate() {
            let ready = block
                .deps_of(op)
                .into_iter()
                .map(|d| chain_bound[d.0 as usize])
                .max()
                .unwrap_or(0);
            let lat: u32 = machine
                .expand(op.basic)
                .iter()
                .map(|id| machine.atomic(*id).latency())
                .sum();
            chain_bound[i] = ready + lat;
        }
        let bound = chain_bound.iter().copied().max().unwrap_or(0);
        let placed = place_block(&machine, &block, PlaceOptions::default()).completion;
        prop_assert!(placed >= bound, "placed {} < critical path {}", placed, bound);
        let sim = simulate_block(&machine, &block).makespan;
        prop_assert!(sim >= bound, "sim {} < critical path {}", sim, bound);
    }

    #[test]
    fn prediction_tracks_simulator_within_factor(block in op_stream()) {
        // Random adversarial streams (e.g. unpipelined divides stacked in
        // program order) can diverge more than real compiler output — the
        // Figure 7 suite stays within a few percent — but greedy placement
        // and the priority scheduler must remain the same order of
        // magnitude on anything.
        let machine = machines::power_like();
        let placed = place_block(&machine, &block, PlaceOptions::default()).completion;
        let sim = simulate_block(&machine, &block).makespan.max(1);
        let ratio = placed as f64 / sim as f64;
        prop_assert!((0.4..=2.0).contains(&ratio), "placed {placed} vs sim {sim}");
    }

    #[test]
    fn focus_span_never_improves_on_unbounded(block in op_stream()) {
        let machine = machines::power_like();
        let free = place_block(&machine, &block, PlaceOptions::default()).completion;
        let tight = place_block(&machine, &block, PlaceOptions::with_focus_span(1)).completion;
        prop_assert!(tight >= free, "tight {} < free {}", tight, free);
    }
}

// ---------- end-to-end prediction sanity --------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_loops_predict_linear_cost(stmts in 1usize..4, mul in proptest::bool::ANY) {
        let mut body = String::new();
        for k in 0..stmts {
            if mul {
                body.push_str(&format!("a(i) = a(i) * b(i) + {k}.0\n"));
            } else {
                body.push_str(&format!("a(i) = a(i) + b(i) + {k}.0\n"));
            }
        }
        let src = format!(
            "subroutine s(a, b, n)\nreal a(n), b(n)\ninteger i, n\ndo i = 1, n\n{body}end do\nend"
        );
        let predictor = presage::core::predictor::Predictor::new(machines::power_like());
        let pred = &predictor.predict_source(&src).unwrap()[0];
        let n = Symbol::new("n");
        prop_assert_eq!(pred.total.poly().degree_in(&n), 1);
        // Per-iteration coefficient grows with statement count and is
        // bounded by the naive per-iteration cost.
        let coeff = pred.total.poly().as_univariate(&n).last().unwrap().1.constant_value().unwrap();
        prop_assert!(coeff.to_f64() > 0.0);
        prop_assert!(coeff.to_f64() < 100.0 * stmts as f64);
    }
}
