//! Randomized property tests on the framework's core invariants.
//!
//! Formerly proptest-based; rewritten on an in-tree splitmix64 generator so
//! the suite builds with no external dependencies (the build environment is
//! offline). Each test draws a fixed number of cases from a fixed seed, so
//! failures reproduce exactly.

use presage::core::slots::{BlockList, FlatSlots};
use presage::core::tetris::{place_block, PlaceOptions};
use presage::machine::{machines, BasicOp};
use presage::sim::{naive_block_cost, simulate_block};
use presage::symbolic::roots::{horner, real_roots};
use presage::symbolic::signs::{sign_regions, Sign};
use presage::symbolic::{Monomial, Poly, Rational, Symbol};
use presage::translate::{BlockIr, ValueDef};
use std::collections::HashMap;

/// Splitmix64: tiny, high-quality, dependency-free PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform integer in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------- rational arithmetic ------------------------------------------

fn rational(rng: &mut Rng) -> Rational {
    Rational::new(rng.range(-1000, 1000) as i128, rng.range(1, 200) as i128)
}

#[test]
fn rational_add_commutes() {
    let mut rng = Rng(1);
    for _ in 0..256 {
        let (a, b) = (rational(&mut rng), rational(&mut rng));
        assert_eq!(a + b, b + a);
    }
}

#[test]
fn rational_mul_distributes() {
    let mut rng = Rng(2);
    for _ in 0..256 {
        let (a, b, c) = (rational(&mut rng), rational(&mut rng), rational(&mut rng));
        assert_eq!(a * (b + c), a * b + a * c);
    }
}

#[test]
fn rational_ordering_consistent_with_f64() {
    let mut rng = Rng(3);
    for _ in 0..256 {
        let (a, b) = (rational(&mut rng), rational(&mut rng));
        if (a.to_f64() - b.to_f64()).abs() > 1e-9 {
            assert_eq!(a < b, a.to_f64() < b.to_f64());
        }
    }
}

#[test]
fn rational_recip_roundtrip() {
    let mut rng = Rng(4);
    for _ in 0..256 {
        let a = rational(&mut rng);
        if a.is_zero() {
            continue;
        }
        assert_eq!(a.recip().recip(), a);
        assert_eq!(a * a.recip(), Rational::ONE);
    }
}

// ---------- polynomial algebra --------------------------------------------

/// Random small polynomial over {n, m} with integer coefficients.
fn poly(rng: &mut Rng) -> Poly {
    let n = Symbol::new("n");
    let m = Symbol::new("m");
    let mut p = Poly::zero();
    for _ in 0..rng.below(6) {
        let c = rng.range(-20, 21);
        let en = rng.below(3) as i32;
        let em = rng.below(3) as i32;
        let mono = Monomial::from_pairs([(n.clone(), en), (m.clone(), em)]);
        p += Poly::term(Rational::from_int(c), mono);
    }
    p
}

fn bindings(nv: i64, mv: i64) -> HashMap<Symbol, Rational> {
    let mut b = HashMap::new();
    b.insert(Symbol::new("n"), Rational::from_int(nv));
    b.insert(Symbol::new("m"), Rational::from_int(mv));
    b
}

#[test]
fn poly_add_evaluates_pointwise() {
    let mut rng = Rng(5);
    for _ in 0..128 {
        let (p, q) = (poly(&mut rng), poly(&mut rng));
        let b = bindings(rng.range(-50, 50), rng.range(-50, 50));
        let lhs = (&p + &q).eval(&b).unwrap();
        let rhs = p.eval(&b).unwrap() + q.eval(&b).unwrap();
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn poly_mul_evaluates_pointwise() {
    let mut rng = Rng(6);
    for _ in 0..128 {
        let (p, q) = (poly(&mut rng), poly(&mut rng));
        let b = bindings(rng.range(-20, 20), rng.range(-20, 20));
        let lhs = (&p * &q).eval(&b).unwrap();
        let rhs = p.eval(&b).unwrap() * q.eval(&b).unwrap();
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn poly_sub_self_is_zero() {
    let mut rng = Rng(7);
    for _ in 0..128 {
        let p = poly(&mut rng);
        assert!((&p - &p).is_zero());
    }
}

#[test]
fn poly_subst_then_eval_commutes() {
    let mut rng = Rng(8);
    for _ in 0..128 {
        let p = poly(&mut rng);
        let k = rng.range(-10, 10);
        let (nv, mv) = (rng.range(-10, 10), rng.range(-10, 10));
        // p[n := m + k] evaluated == p evaluated with n = m + k.
        let n = Symbol::new("n");
        let rep = Poly::var(Symbol::new("m")) + Poly::from(k);
        let substituted = p.subst(&n, &rep).unwrap();
        let b = bindings(nv, mv);
        let direct = {
            let mut b2 = bindings(mv + k, mv);
            b2.insert(Symbol::new("m"), Rational::from_int(mv));
            p.eval(&b2).unwrap()
        };
        assert_eq!(substituted.eval(&b).unwrap(), direct);
    }
}

#[test]
fn poly_derivative_of_sum() {
    let mut rng = Rng(9);
    for _ in 0..128 {
        let (p, q) = (poly(&mut rng), poly(&mut rng));
        let n = Symbol::new("n");
        assert_eq!(
            (&p + &q).derivative(&n),
            &p.derivative(&n) + &q.derivative(&n)
        );
    }
}

#[test]
fn poly_antiderivative_inverts_derivative() {
    let mut rng = Rng(10);
    for _ in 0..128 {
        let p = poly(&mut rng);
        let n = Symbol::new("n");
        let ad = p.antiderivative(&n).unwrap();
        assert_eq!(ad.derivative(&n), p);
    }
}

// ---------- root finding ---------------------------------------------------

#[test]
fn roots_from_factored_polynomials() {
    let mut rng = Rng(11);
    for _ in 0..128 {
        let mut rs: Vec<i32> = (0..1 + rng.below(4))
            .map(|_| rng.range(-8, 8) as i32)
            .collect();
        rs.sort();
        rs.dedup();
        // Build Π (x − r) as dense coefficients.
        let mut coeffs = vec![1.0f64];
        for &r in &rs {
            let mut next = vec![0.0; coeffs.len() + 1];
            for (i, &c) in coeffs.iter().enumerate() {
                next[i + 1] += c;
                next[i] -= c * r as f64;
            }
            coeffs = next;
        }
        let found = real_roots(&coeffs);
        assert_eq!(found.len(), rs.len(), "{found:?} vs {rs:?}");
        for (f, r) in found.iter().zip(&rs) {
            assert!((f - *r as f64).abs() < 1e-6, "{f} vs {r}");
        }
    }
}

#[test]
fn all_reported_roots_are_roots() {
    let mut rng = Rng(12);
    for _ in 0..128 {
        let coeffs: Vec<f64> = (0..1 + rng.below(5))
            .map(|_| rng.f64_in(-50.0, 50.0))
            .collect();
        let scale = coeffs.iter().fold(1.0f64, |a, c| a.max(c.abs()));
        for r in real_roots(&coeffs) {
            let v = horner(&coeffs, r);
            assert!(
                v.abs() <= 1e-4 * scale * (1.0 + r.abs()).powi(coeffs.len() as i32),
                "P({r}) = {v}"
            );
        }
    }
}

// ---------- sign regions ----------------------------------------------------

#[test]
fn sign_regions_match_sampling() {
    let mut rng = Rng(13);
    for _ in 0..128 {
        let x = Symbol::new("x");
        let ncoef = 1 + rng.below(4);
        let p = (0..ncoef).fold(Poly::zero(), |acc, i| {
            let c = rng.f64_in(-10.0, 10.0);
            acc + Poly::term(
                Rational::new((c * 16.0).round() as i128, 16),
                Monomial::power(x.clone(), i as i32),
            )
        });
        let regions = sign_regions(&p, &x, -5.0, 5.0).unwrap();
        // Regions tile the range.
        assert!((regions.first().unwrap().lo - -5.0).abs() < 1e-9);
        assert!((regions.last().unwrap().hi - 5.0).abs() < 1e-9);
        for w in regions.windows(2) {
            assert!((w[0].hi - w[1].lo).abs() < 1e-9);
        }
        // Sampling agrees with the reported sign away from boundaries.
        for r in &regions {
            if r.hi - r.lo < 1e-3 {
                continue;
            }
            let mid = 0.5 * (r.lo + r.hi);
            let v = p.eval_univariate(&x, mid).unwrap();
            match r.sign {
                Sign::Positive => assert!(v > -1e-9, "{v} at {mid}"),
                Sign::Negative => assert!(v < 1e-9, "{v} at {mid}"),
                Sign::Zero => assert!(v.abs() < 1e-6, "{v} at {mid}"),
            }
        }
    }
}

// ---------- slot lists -------------------------------------------------------

#[test]
fn blocklist_equals_flat_bitmap() {
    let mut rng = Rng(14);
    for _ in 0..64 {
        let mut list = BlockList::new();
        let mut flat = FlatSlots::new();
        for _ in 0..1 + rng.below(99) {
            let from = rng.below(128) as usize;
            let len = 1 + rng.below(5) as usize;
            let a = list.find_fit(from, len);
            let b = flat.find_fit(from, len);
            assert_eq!(a, b, "find_fit({from}, {len})");
            list.fill(a, len);
            flat.fill(b, len);
        }
    }
}

#[test]
fn blocklist_runs_alternate_and_cover() {
    let mut rng = Rng(15);
    for _ in 0..64 {
        let mut list = BlockList::new();
        let mut total = 0;
        for _ in 0..1 + rng.below(39) {
            let from = rng.below(64) as usize;
            let len = 1 + rng.below(4) as usize;
            let t = list.find_fit(from, len);
            list.fill(t, len);
            total += len;
        }
        assert_eq!(list.busy(), total);
        let runs: Vec<_> = list.runs().collect();
        // Runs abut and alternate.
        let mut pos = 0;
        let mut last_filled = None;
        for (start, len, filled) in runs {
            assert_eq!(start, pos);
            assert!(len > 0);
            if let Some(lf) = last_filled {
                assert_ne!(lf, filled, "adjacent runs must alternate");
            }
            last_filled = Some(filled);
            pos = start + len;
        }
    }
}

// ---------- placement vs. simulator vs. naive --------------------------------

/// Random operation stream generator.
fn op_stream(rng: &mut Rng) -> BlockIr {
    let mut b = BlockIr::new();
    let x = b.add_value(ValueDef::External("x".into()));
    let mut prev = x;
    for _ in 0..1 + rng.below(39) {
        let basic = [
            BasicOp::FAdd,
            BasicOp::FMul,
            BasicOp::Fma,
            BasicOp::IAdd,
            BasicOp::LoadFloat,
            BasicOp::IMul,
            BasicOp::FDiv,
        ][rng.below(7) as usize];
        let args = if rng.flip() {
            vec![prev, x]
        } else {
            vec![x, x]
        };
        prev = b.emit(basic, args);
    }
    b
}

#[test]
fn naive_upper_bounds_everything() {
    let mut rng = Rng(16);
    for _ in 0..64 {
        let block = op_stream(&mut rng);
        for machine in [machines::power_like(), machines::risc1(), machines::wide4()] {
            let naive = naive_block_cost(&machine, &block);
            let sim = simulate_block(&machine, &block).unwrap().makespan;
            let placed = place_block(&machine, &block, PlaceOptions::default()).completion;
            assert!(
                sim <= naive,
                "sim {} > naive {} on {}",
                sim,
                naive,
                machine.name()
            );
            assert!(
                placed <= naive,
                "placed {} > naive {} on {}",
                placed,
                naive,
                machine.name()
            );
        }
    }
}

#[test]
fn placement_respects_critical_path() {
    let mut rng = Rng(17);
    for _ in 0..64 {
        let block = op_stream(&mut rng);
        // Completion can never beat the dependence-chain lower bound.
        let machine = machines::power_like();
        let mut chain_bound = vec![0u32; block.ops.len()];
        for (i, op) in block.ops.iter().enumerate() {
            let ready = block
                .deps_of(op)
                .into_iter()
                .map(|d| chain_bound[d.0 as usize])
                .max()
                .unwrap_or(0);
            let lat: u32 = machine
                .expand(op.basic)
                .iter()
                .map(|id| machine.atomic(*id).latency())
                .sum();
            chain_bound[i] = ready + lat;
        }
        let bound = chain_bound.iter().copied().max().unwrap_or(0);
        let placed = place_block(&machine, &block, PlaceOptions::default()).completion;
        assert!(placed >= bound, "placed {placed} < critical path {bound}");
        let sim = simulate_block(&machine, &block).unwrap().makespan;
        assert!(sim >= bound, "sim {sim} < critical path {bound}");
    }
}

#[test]
fn block_lower_bound_is_admissible() {
    // The pruning bound must never exceed what any execution engine
    // charges: neither greedy placement (the prediction's cost source)
    // nor the cycle-accurate simulator may beat it. Random streams on
    // all four machines, including the wide ones where per-pool port
    // quotients are loosest.
    let mut rng = Rng(21);
    for _ in 0..64 {
        let block = op_stream(&mut rng);
        for machine in machines::all() {
            let bound = presage::core::bounds::block_lower_bound(&machine, &block);
            let placed = place_block(&machine, &block, PlaceOptions::default()).completion;
            let sim = simulate_block(&machine, &block).unwrap().makespan;
            assert!(
                bound <= placed,
                "bound {} > placed {} on {}",
                bound,
                placed,
                machine.name()
            );
            assert!(
                bound <= sim,
                "bound {} > sim {} on {}",
                bound,
                sim,
                machine.name()
            );
        }
    }
}

#[test]
fn prediction_tracks_simulator_within_factor() {
    let mut rng = Rng(18);
    for _ in 0..64 {
        let block = op_stream(&mut rng);
        // Random adversarial streams (e.g. unpipelined divides stacked in
        // program order) can diverge more than real compiler output — the
        // Figure 7 suite stays within a few percent — but greedy placement
        // and the priority scheduler must remain the same order of
        // magnitude on anything.
        let machine = machines::power_like();
        let placed = place_block(&machine, &block, PlaceOptions::default()).completion;
        let sim = simulate_block(&machine, &block).unwrap().makespan.max(1);
        let ratio = placed as f64 / sim as f64;
        assert!((0.4..=2.0).contains(&ratio), "placed {placed} vs sim {sim}");
    }
}

#[test]
fn focus_span_never_improves_on_unbounded() {
    let mut rng = Rng(19);
    for _ in 0..64 {
        let block = op_stream(&mut rng);
        let machine = machines::power_like();
        let free = place_block(&machine, &block, PlaceOptions::default()).completion;
        let tight = place_block(&machine, &block, PlaceOptions::with_focus_span(1)).completion;
        assert!(tight >= free, "tight {tight} < free {free}");
    }
}

// ---------- end-to-end prediction sanity --------------------------------------

#[test]
fn generated_loops_predict_linear_cost() {
    let mut rng = Rng(20);
    for _ in 0..24 {
        let stmts = 1 + rng.below(3) as usize;
        let mul = rng.flip();
        let mut body = String::new();
        for k in 0..stmts {
            if mul {
                body.push_str(&format!("a(i) = a(i) * b(i) + {k}.0\n"));
            } else {
                body.push_str(&format!("a(i) = a(i) + b(i) + {k}.0\n"));
            }
        }
        let src = format!(
            "subroutine s(a, b, n)\nreal a(n), b(n)\ninteger i, n\ndo i = 1, n\n{body}end do\nend"
        );
        let predictor = presage::core::predictor::Predictor::new(machines::power_like());
        let pred = &predictor.predict_source(&src).unwrap()[0];
        let n = Symbol::new("n");
        assert_eq!(pred.total.poly().degree_in(&n), 1);
        // Per-iteration coefficient grows with statement count and is
        // bounded by the naive per-iteration cost.
        let coeff = pred
            .total
            .poly()
            .as_univariate(&n)
            .last()
            .unwrap()
            .1
            .constant_value()
            .unwrap();
        assert!(coeff.to_f64() > 0.0);
        assert!(coeff.to_f64() < 100.0 * stmts as f64);
    }
}
