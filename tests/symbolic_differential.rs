//! Differential proof that the hash-consed symbolic engine is
//! operation-for-operation identical to the preserved seed engine.
//!
//! The optimized [`Poly`](presage::symbolic::Poly) replaces the seed's
//! per-monomial `BTreeMap`s with interned monomial ids, flat sorted term
//! vectors, and memoized `pow`/`subst`/summation. None of that may change
//! a single canonical form: a seeded random workload of
//! add/sub/mul/scale/pow/substitute/summation chains, degree-≤4
//! root/sign analyses, the full Figure 7 aggregation suite on every
//! shipped machine, seeded random loop nests (triangular bounds, non-unit
//! steps, index-keyed conditionals), the [`PredictionCache`] key scheme,
//! and the parallel [`Predictor::predict_batch`] fan-out must all agree
//! exactly between the two engines — same `Display` strings, same exact
//! rational evaluations, on every worker count.

use std::collections::HashMap;
use std::sync::Arc;

use presage::core::aggregate::{aggregate, AggregateOptions};
use presage::core::predictor::{Predictor, PredictorOptions};
use presage::core::refagg::reference_aggregate;
use presage::core::TranslationCache;
use presage::frontend::parse;
use presage::machine::MachineDesc;
use presage::opt::cache::PredictionCache;
use presage::symbolic::{reference, roots, signs, summation, Poly, Rational, Symbol};
use presage_bench::kernels::{self, figure7};

/// All four shipped machine-description files, loaded from JSON so the
/// differential covers exactly what users run.
fn shipped_machines() -> Vec<MachineDesc> {
    [
        include_str!("../machines/power-like.json"),
        include_str!("../machines/risc1.json"),
        include_str!("../machines/wide4.json"),
        include_str!("../machines/wide8.json"),
    ]
    .into_iter()
    .map(|src| MachineDesc::from_json(src).expect("shipped description validates"))
    .collect()
}

/// Deterministic xorshift64 generator — no external RNG dependency, and
/// fixed literal seeds keep every run identical.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    fn rational(&mut self) -> Rational {
        let mut num = self.int(-9, 9);
        if num == 0 {
            num = 1;
        }
        Rational::new(num as i128, self.int(1, 5) as i128)
    }
}

const SYMS: [&str; 4] = ["x", "y", "z", "n"];

/// The same polynomial carried through both engines in lock-step.
#[derive(Clone)]
struct Pair {
    fast: Poly,
    slow: reference::Poly,
}

impl Pair {
    fn constant(c: Rational) -> Pair {
        Pair {
            fast: Poly::constant(c),
            slow: reference::Poly::constant(c),
        }
    }

    fn var(name: &str) -> Pair {
        Pair {
            fast: Poly::var(Symbol::new(name)),
            slow: reference::Poly::var(Symbol::new(name)),
        }
    }

    /// Asserts the two representations are indistinguishable: identical
    /// canonical `Display` form, and lossless conversion in both
    /// directions.
    fn check(self, ctx: &str) -> Pair {
        assert_eq!(
            self.fast.to_string(),
            self.slow.to_string(),
            "canonical form diverged after {ctx}"
        );
        assert_eq!(
            self.slow.to_optimized(),
            self.fast,
            "reference→optimized conversion diverged after {ctx}"
        );
        assert_eq!(
            reference::Poly::from_optimized(&self.fast).to_string(),
            self.slow.to_string(),
            "optimized→reference conversion diverged after {ctx}"
        );
        self
    }
}

/// Exact rational evaluation at a random nonzero point must agree.
fn check_eval(pair: &Pair, rng: &mut Rng, ctx: &str) {
    let mut fast_bind = HashMap::new();
    let mut slow_bind = HashMap::new();
    for name in SYMS {
        let v = rng.rational();
        fast_bind.insert(Symbol::new(name), v);
        slow_bind.insert(Symbol::new(name), v);
    }
    assert_eq!(
        pair.fast.eval(&fast_bind),
        pair.slow.eval(&slow_bind),
        "exact evaluation diverged on {ctx}"
    );
}

#[test]
fn random_operation_chains_are_canonically_identical() {
    for seed in [0xC0FFEE_u64, 0xDECAFBAD, 0x5EED5EED, 1994] {
        let mut rng = Rng::new(seed);
        let mut pool: Vec<Pair> = SYMS.iter().map(|s| Pair::var(s)).collect();
        pool.push(Pair::constant(Rational::new(1, 1)));

        for step in 0..250 {
            let a = pool[rng.below(pool.len() as u64) as usize].clone();
            let b = pool[rng.below(pool.len() as u64) as usize].clone();
            let ctx = format!("seed {seed:#x} step {step}");
            let next = match rng.below(7) {
                0 => Pair {
                    fast: &a.fast + &b.fast,
                    slow: &a.slow + &b.slow,
                },
                1 => Pair {
                    fast: &a.fast - &b.fast,
                    slow: &a.slow - &b.slow,
                },
                2 if a.fast.total_degree() + b.fast.total_degree() <= 6 => Pair {
                    fast: &a.fast * &b.fast,
                    slow: &a.slow * &b.slow,
                },
                3 => {
                    let c = rng.rational();
                    Pair {
                        fast: a.fast.scale(c),
                        slow: a.slow.scale(c),
                    }
                }
                4 if a.fast.total_degree() <= 3 => {
                    let exp = rng.below(3) as u32;
                    Pair {
                        fast: a.fast.pow(exp),
                        slow: a.slow.pow(exp),
                    }
                }
                5 => {
                    // Substitute a random symbol by a linear form; the
                    // workload never builds negative exponents, so both
                    // engines must accept.
                    let sym = Symbol::new(SYMS[rng.below(SYMS.len() as u64) as usize]);
                    let lin = Pair::var(SYMS[rng.below(SYMS.len() as u64) as usize]);
                    let shift = Pair::constant(rng.rational());
                    let repl = Pair {
                        fast: &lin.fast + &shift.fast,
                        slow: &lin.slow + &shift.slow,
                    };
                    let fast = a
                        .fast
                        .subst(&sym, &repl.fast)
                        .expect("no negative exponents");
                    let slow = a
                        .slow
                        .subst(&sym, &repl.slow)
                        .expect("no negative exponents");
                    Pair { fast, slow }
                }
                6 if a.fast.total_degree() <= 4 => {
                    // Closed-form summation over a loop variable with a
                    // polynomial upper bound, exactly as loop aggregation
                    // uses it.
                    let i = Symbol::new("i");
                    let lb_f = Poly::one();
                    let lb_s = reference::Poly::one();
                    let ub = if rng.below(2) == 0 {
                        Pair::var("n")
                    } else {
                        b.clone()
                    };
                    if ub.fast.total_degree() > 2 {
                        continue;
                    }
                    let fast = summation::sum_range(&a.fast, &i, &lb_f, &ub.fast);
                    let slow = reference::summation::sum_range(&a.slow, &i, &lb_s, &ub.slow);
                    assert_eq!(
                        fast.is_some(),
                        slow.is_some(),
                        "summation feasibility diverged at {ctx}"
                    );
                    match (fast, slow) {
                        (Some(fast), Some(slow)) => Pair { fast, slow },
                        _ => continue,
                    }
                }
                _ => continue,
            };
            let next = next.check(&ctx);
            check_eval(&next, &mut rng, &ctx);

            // Derived quantities the aggregator relies on must agree too.
            assert_eq!(next.fast.num_terms(), next.slow.num_terms(), "{ctx}");
            assert_eq!(next.fast.total_degree(), next.slow.total_degree(), "{ctx}");
            assert_eq!(
                next.fast.constant_term(),
                next.slow.constant_term(),
                "{ctx}"
            );
            assert_eq!(next.fast.symbols(), next.slow.symbols(), "{ctx}");
            for name in SYMS {
                let sym = Symbol::new(name);
                assert_eq!(
                    next.fast.degree_in(&sym),
                    next.slow.degree_in(&sym),
                    "degree_in({name}) diverged at {ctx}"
                );
            }

            let slot = rng.below(pool.len() as u64) as usize;
            if pool.len() < 48 && rng.below(2) == 0 {
                pool.push(next);
            } else {
                pool[slot] = next;
            }
        }
    }
}

#[test]
fn degree_four_roots_and_signs_agree() {
    let mut rng = Rng::new(0xD1FF5);
    let x = Symbol::new("x");
    for case in 0..200 {
        let len = rng.int(2, 5) as usize;
        let mut coeffs: Vec<Rational> = (0..len).map(|_| rng.rational()).collect();
        if rng.below(3) == 0 {
            coeffs[0] = Rational::ZERO;
        }
        let fast = Poly::from_coeffs(&x, &coeffs);
        let slow = reference::Poly::from_coeffs(&x, &coeffs);
        let pair = Pair { fast, slow }.check(&format!("from_coeffs case {case}"));

        // Univariate coefficient extraction feeds the root finder; both
        // engines must hand it the same dense vector.
        let fast_cs = pair.fast.univariate_coeffs(&x);
        let slow_cs = pair.slow.univariate_coeffs(&x);
        assert_eq!(fast_cs, slow_cs, "univariate coeffs diverged (case {case})");

        if let Some(cs) = fast_cs {
            let as_f64: Vec<f64> = cs.iter().map(|c| c.to_f64()).collect();
            let via_fast = roots::real_roots(&as_f64);
            let via_slow: Vec<f64> = pair
                .slow
                .univariate_coeffs(&x)
                .map(|cs| roots::real_roots(&cs.iter().map(|c| c.to_f64()).collect::<Vec<_>>()))
                .unwrap_or_default();
            assert_eq!(via_fast, via_slow, "real roots diverged (case {case})");
        }

        // Sign regions over a symmetric window: the converted reference
        // polynomial must drive the sign machinery to the same verdicts.
        let via_fast = signs::sign_regions(&pair.fast, &x, -4.0, 4.0);
        let via_slow = signs::sign_regions(&pair.slow.to_optimized(), &x, -4.0, 4.0);
        match (via_fast, via_slow) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "sign regions diverged (case {case})"),
            (a, b) => assert_eq!(
                a.is_err(),
                b.is_err(),
                "sign feasibility diverged (case {case})"
            ),
        }
    }
}

#[test]
fn figure7_aggregation_is_engine_identical() {
    let opts = AggregateOptions::default();
    for machine in shipped_machines() {
        for kernel in figure7() {
            let ir = kernels::translate_kernel(kernel.source, &machine);
            let slow = reference_aggregate(&ir, &machine, &opts);
            let fast = aggregate(&ir, &machine, None, &opts);
            assert_eq!(
                slow.to_string(),
                fast.to_string(),
                "aggregate expression diverged: {} on {}",
                kernel.name,
                machine.name()
            );
            assert_eq!(
                slow.poly().to_string(),
                fast.poly().to_string(),
                "aggregate polynomial diverged: {} on {}",
                kernel.name,
                machine.name()
            );
        }
    }
}

/// Emits one random (but seeded) loop nest in mini-Fortran: up to three
/// nested `do` loops with optionally triangular bounds, non-unit steps,
/// and index-keyed conditionals — the aggregation shapes of §2.4 that
/// exercise trip counts, Faulhaber summation, and branch splitting.
fn random_nest_source(rng: &mut Rng) -> String {
    let vars = ["i", "j", "k"];
    let depth = rng.int(1, 3) as usize;
    let mut src = String::from("subroutine nest(a, n)\n   real a(n)\n   integer i, j, k, n\n");
    for d in 0..depth {
        let v = vars[d];
        let lb = if d > 0 && rng.below(3) == 0 {
            // Triangular nest: the inner trip count depends on the outer
            // index, forcing the closed-form summation path.
            vars[d - 1].to_string()
        } else {
            ["1", "2"][rng.below(2) as usize].to_string()
        };
        let ub = ["n", "n-1", "12"][rng.below(3) as usize];
        let step = if rng.below(4) == 0 { ", 2" } else { "" };
        src.push_str(&format!("   do {v} = {lb}, {ub}{step}\n"));
        // A statement at every level keeps outer bodies compound.
        let iv = vars[rng.below((d + 1) as u64) as usize];
        src.push_str(&format!("     a({iv}) = a({iv}) * 2.0 + 1.0\n"));
    }
    let v = vars[depth - 1];
    if rng.below(2) == 0 {
        src.push_str(&format!(
            "     if ({v} .le. n/2) then\n       a({v}) = a({v}) + 3.0\n     \
             else\n       a({v}) = a({v}) * 0.5\n     end if\n"
        ));
    }
    for _ in 0..depth {
        src.push_str("   end do\n");
    }
    src.push_str(" end");
    src
}

#[test]
fn random_loop_nests_aggregate_engine_identical() {
    let opts = AggregateOptions::default();
    let machines = shipped_machines();
    let risc1 = machines
        .iter()
        .find(|m| m.name() == "risc1")
        .expect("risc1 ships");
    // Deep risc1 sweep (the enforced prediction-floor machine), then a
    // shorter sweep across every other shipped machine.
    let mut rng = Rng::new(0x1994_1994);
    for case in 0..24 {
        let src = random_nest_source(&mut rng);
        let ir = kernels::translate_kernel(&src, risc1);
        let slow = reference_aggregate(&ir, risc1, &opts);
        let fast = aggregate(&ir, risc1, None, &opts);
        assert_eq!(
            slow.to_string(),
            fast.to_string(),
            "risc1 nest {case} diverged:\n{src}"
        );
    }
    for machine in &machines {
        for case in 0..8 {
            let src = random_nest_source(&mut rng);
            let ir = kernels::translate_kernel(&src, machine);
            let slow = reference_aggregate(&ir, machine, &opts);
            let fast = aggregate(&ir, machine, None, &opts);
            assert_eq!(
                slow.to_string(),
                fast.to_string(),
                "{} nest {case} diverged:\n{src}",
                machine.name()
            );
        }
    }
}

#[test]
fn predict_batch_matches_sequential_predict_source() {
    let machines = shipped_machines();
    let kernels = figure7();
    let jobs: Vec<(&MachineDesc, &str)> = machines
        .iter()
        .flat_map(|m| kernels.iter().map(move |k| (m, k.source)))
        .collect();
    let opts = PredictorOptions::default();

    // Sequential oracle: a fresh uncached predictor per job.
    let expected: Vec<Vec<String>> = jobs
        .iter()
        .map(|(m, src)| {
            Predictor::new((*m).clone())
                .predict_source(src)
                .expect("kernel predicts")
                .iter()
                .map(|p| p.total.to_string())
                .collect()
        })
        .collect();

    for workers in [1, 2, 4, 8, 16] {
        let cache = Arc::new(TranslationCache::new());
        let got = Predictor::predict_batch(&jobs, &opts, &cache, workers);
        assert_eq!(got.len(), jobs.len());
        for ((exp, got), (m, _)) in expected.iter().zip(&got).zip(&jobs) {
            let got: Vec<String> = got
                .as_ref()
                .expect("kernel predicts in batch")
                .iter()
                .map(|p| p.total.to_string())
                .collect();
            assert_eq!(&got, exp, "{} diverged at workers={workers}", m.name());
        }
        assert_eq!(
            cache.len(),
            machines.len() * kernels.len(),
            "every (machine, kernel) pair translated exactly once"
        );
    }
}

#[test]
fn contended_identical_jobs_stay_bit_identical() {
    // Adversarial contention: every worker predicts the *same* program on
    // the same machine concurrently, so every intern call and every memo
    // lookup across every thread collides on the same shards and keys.
    // Results must match the sequential oracle bit-for-bit, and the
    // telemetry must account for every job.
    let machines = shipped_machines();
    let machine = &machines[3]; // wide8 — the heaviest scheduling workload
    let kernel = figure7()[0].source;
    let opts = PredictorOptions::default();

    let oracle: Vec<String> = Predictor::new(machine.clone())
        .predict_source(kernel)
        .expect("kernel predicts")
        .iter()
        .map(|p| p.total.to_string())
        .collect();

    let jobs: Vec<(&MachineDesc, &str)> = std::iter::repeat_n((machine, kernel), 64).collect();
    for workers in [4, 8, 16] {
        let cache = Arc::new(TranslationCache::new());
        let report = Predictor::predict_batch_report(&jobs, &opts, &cache, workers);
        for (i, got) in report.results.iter().enumerate() {
            let got: Vec<String> = got
                .as_ref()
                .expect("kernel predicts in batch")
                .iter()
                .map(|p| p.total.to_string())
                .collect();
            assert_eq!(got, oracle, "job {i} diverged at workers={workers}");
        }
        // Sane accounting: every job ran exactly once across workers, and
        // 64 identical jobs through the two-level memos must mostly hit
        // (each distinct shape misses at most once per worker at L1 and
        // once process-wide at L2).
        let run: u64 = report.workers.iter().map(|w| w.jobs).sum();
        assert_eq!(run, jobs.len() as u64, "workers={workers}");
        let totals = report.memo_totals();
        assert!(totals.lookups() > 0, "workers={workers}");
        assert!(
            totals.l1_hits + totals.l2_hits > totals.misses,
            "identical jobs should be memo-dominated at workers={workers}: {totals:?}"
        );
        assert_eq!(
            cache.len(),
            1,
            "one (machine, program) shape in the shared translation cache"
        );
    }
}

#[test]
fn prediction_cache_keys_are_engine_independent() {
    let machine = shipped_machines().remove(0);
    let predictor = Predictor::new(machine);
    let cache = PredictionCache::new();

    for kernel in figure7().iter().take(3) {
        let program = parse(kernel.source).expect("kernel parses");
        let sub = &program.units[0];
        // The cache key is the canonical structural hash — a property of
        // the program alone, never of the symbolic representation.
        let key = presage_opt::canonical_key(sub).expect("kernel canonicalizes");

        let first = cache
            .cost_of(key, sub, &predictor)
            .expect("kernel predicts");
        let again = cache
            .cost_of(key, sub, &predictor)
            .expect("kernel predicts");
        assert_eq!(first.to_string(), again.to_string());

        let fresh = predictor
            .predict_subroutine_cost(sub)
            .expect("kernel predicts");
        assert_eq!(
            first.to_string(),
            fresh.to_string(),
            "cached cost diverged from direct prediction for {}",
            kernel.name
        );
    }

    assert_eq!(cache.len(), 3, "one entry per distinct canonical source");
    assert_eq!(cache.hits(), 3);
    assert_eq!(cache.misses(), 3);
}
