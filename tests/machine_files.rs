//! The shipped machine-description JSON files load, validate, and agree
//! with the built-in definitions (the paper's portability claim as data),
//! and corrupted descriptions are rejected with a named diagnosis rather
//! than loading into a machine that predicts garbage.

use presage::machine::{machines, CacheParams, MachineDesc, MachineError};

#[test]
fn shipped_json_machines_match_builtins() {
    for (file, builtin) in [
        (
            include_str!("../machines/power-like.json"),
            machines::power_like(),
        ),
        (include_str!("../machines/risc1.json"), machines::risc1()),
        (include_str!("../machines/wide4.json"), machines::wide4()),
        (include_str!("../machines/wide8.json"), machines::wide8()),
    ] {
        let loaded = MachineDesc::from_json(file).expect("shipped description validates");
        assert_eq!(loaded, builtin);
    }
}

#[test]
fn json_loaded_machine_predicts_identically() {
    let loaded = MachineDesc::from_json(include_str!("../machines/power-like.json")).unwrap();
    let src =
        "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = a(i) * 2.0\nend do\nend";
    let a = presage::core::predictor::Predictor::new(loaded)
        .predict_source(src)
        .unwrap();
    let b = presage::core::predictor::Predictor::new(machines::power_like())
        .predict_source(src)
        .unwrap();
    assert_eq!(a[0].total, b[0].total);
}

/// The shipped file with one textual mutation applied — the corruption a
/// hand-edited description picks up, not a synthetic fixture.
fn corrupted(from: &str, to: &str) -> String {
    let base = include_str!("../machines/power-like.json");
    assert!(base.contains(from), "mutation target {from:?} not in file");
    base.replacen(from, to, 1)
}

#[test]
fn duplicate_atomic_names_are_rejected() {
    // Renaming `muli.s` to `a` collides with the existing `a` atomic.
    let bad = corrupted("\"name\": \"muli.s\"", "\"name\": \"a\"");
    match MachineDesc::from_json(&bad) {
        Err(MachineError::DuplicateAtomic(name)) => assert_eq!(name, "a"),
        other => panic!("expected DuplicateAtomic, got {other:?}"),
    }
}

#[test]
fn zero_count_unit_pools_are_rejected() {
    // The first `count` in the file is the Fxu pool's.
    let bad = corrupted("\"count\": 1", "\"count\": 0");
    assert!(
        matches!(
            MachineDesc::from_json(&bad),
            Err(MachineError::EmptyPool(_))
        ),
        "a zero-unit pool must not validate"
    );
}

#[test]
fn unknown_cache_fields_are_rejected() {
    // A `cache` section with a typoed field must name the stranger, not
    // silently ignore it (a misspelled `ways` would change predictions).
    let bad = corrupted(
        "\"name\": \"power-like\",",
        "\"name\": \"power-like\",\n  \"cache\": { \"line_bytes\": 64, \"size_bytes\": 65536, \"miss_penalty\": 15, \"waze\": 2 },",
    );
    match MachineDesc::from_json(&bad) {
        Err(MachineError::UnknownCacheField(field)) => assert_eq!(field, "waze"),
        other => panic!("expected UnknownCacheField, got {other:?}"),
    }
}

#[test]
fn cache_sections_round_trip_through_json() {
    // A valid cache section loads into the documented parameters, and the
    // shipped (cache-less) files stay perfect-cache machines.
    let with_cache = corrupted(
        "\"name\": \"power-like\",",
        "\"name\": \"power-like\",\n  \"cache\": { \"line_bytes\": 128, \"size_bytes\": 65536, \"miss_penalty\": 15, \"ways\": 4 },",
    );
    let loaded = MachineDesc::from_json(&with_cache).expect("cache section validates");
    let cache = loaded.cache.expect("cache section is parsed");
    assert_eq!(
        (
            cache.line_bytes,
            cache.size_bytes,
            cache.miss_penalty,
            cache.ways
        ),
        (128, 65536, 15, 4)
    );
    // Unspecified fields fall back to the documented defaults.
    let defaults = CacheParams::default();
    assert_eq!(cache.page_bytes, defaults.page_bytes);
    assert_eq!(cache.tlb_entries, defaults.tlb_entries);
    let plain = MachineDesc::from_json(include_str!("../machines/power-like.json")).unwrap();
    assert!(plain.cache.is_none(), "shipped files stay perfect-cache");
}
