//! The shipped machine-description JSON files load, validate, and agree
//! with the built-in definitions (the paper's portability claim as data).

use presage::machine::{machines, MachineDesc};

#[test]
fn shipped_json_machines_match_builtins() {
    for (file, builtin) in [
        (
            include_str!("../machines/power-like.json"),
            machines::power_like(),
        ),
        (include_str!("../machines/risc1.json"), machines::risc1()),
        (include_str!("../machines/wide4.json"), machines::wide4()),
        (include_str!("../machines/wide8.json"), machines::wide8()),
    ] {
        let loaded = MachineDesc::from_json(file).expect("shipped description validates");
        assert_eq!(loaded, builtin);
    }
}

#[test]
fn json_loaded_machine_predicts_identically() {
    let loaded = MachineDesc::from_json(include_str!("../machines/power-like.json")).unwrap();
    let src =
        "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = a(i) * 2.0\nend do\nend";
    let a = presage::core::predictor::Predictor::new(loaded)
        .predict_source(src)
        .unwrap();
    let b = presage::core::predictor::Predictor::new(machines::power_like())
        .predict_source(src)
        .unwrap();
    assert_eq!(a[0].total, b[0].total);
}
