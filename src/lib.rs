//! # Presage
//!
//! A full implementation of Wang, *Precise Compile-Time Performance
//! Prediction for Superscalar-Based Computers* (PLDI 1994): a portable,
//! architecture-parameterized cost model for straight-line code on
//! superscalar processors, symbolic aggregation of loop and conditional
//! costs into polynomial performance expressions, symbolic comparison for
//! transformation decisions, and performance-guided program optimization.
//!
//! This façade crate re-exports the workspace:
//!
//! - [`symbolic`]: polynomials, performance expressions, sign analysis,
//!   sensitivity.
//! - [`machine`]: machine descriptions (functional units, atomic operation
//!   cost tables).
//! - [`frontend`]: the mini-Fortran front end.
//! - [`translate`]: two-level instruction translation with back-end
//!   imitation.
//! - [`core`]: the Tetris placement model, cost blocks, aggregation,
//!   memory/communication models, incremental update, and the
//!   [`Predictor`](core::predictor::Predictor) facade.
//! - [`sim`]: the reference cycle-accurate scheduler and naive baselines.
//! - [`opt`]: transformations, what-if costing, A* search, run-time tests.
//!
//! # Quick start
//!
//! ```
//! use presage::core::predictor::Predictor;
//! use presage::machine::machines;
//!
//! let predictor = Predictor::new(machines::power_like());
//! let pred = &predictor.predict_source(
//!     "subroutine daxpy(y, x, a, n)
//!        real y(n), x(n), a
//!        integer i, n
//!        do i = 1, n
//!          y(i) = y(i) + a * x(i)
//!        end do
//!      end").unwrap()[0];
//! println!("C(daxpy) = {} cycles", pred.total);
//! ```

pub use presage_core as core;
pub use presage_frontend as frontend;
pub use presage_machine as machine;
pub use presage_opt as opt;
pub use presage_sim as sim;
pub use presage_symbolic as symbolic;
pub use presage_translate as translate;
