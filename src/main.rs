//! `presage` — command-line interface to the performance predictor.
//!
//! ```text
//! presage machines
//! presage predict  <file.f> [--machine M] [--memory] [--interprocedural] [--at var=value]...
//! presage compare  <file.f> <subA> <subB> [--machine M] [--at var=value]...
//! presage listing  <file.f> [--machine M]
//! presage search   <file.f> [--machine M] [--at var=value]... [--depth N] [--expansions N]
//! ```
//!
//! `--machine` accepts a predefined name (`power-like`, `risc1`, `wide4`)
//! or a path to a JSON machine description.

use presage::core::predictor::{Predictor, PredictorOptions};
use presage::core::render::{render_cost_block, render_listing};
use presage::core::tetris::{PlaceOptions, Placer};
use presage::machine::{machines, MachineDesc};
use presage::opt::rtt::plan_from_comparison;
use presage::opt::search::{astar_search, SearchOptions};
use presage::symbolic::Symbol;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("presage: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  presage machines
  presage predict  <file.f> [--machine M] [--memory] [--interprocedural] [--at var=value]...
  presage compare  <file.f> <subA> <subB> [--machine M] [--at var=value]...
  presage listing  <file.f> [--machine M]
  presage search   <file.f> [--machine M] [--at var=value]... [--depth N] [--expansions N]";

struct Cli {
    positional: Vec<String>,
    machine: MachineDesc,
    memory: bool,
    interprocedural: bool,
    at: HashMap<String, f64>,
    depth: usize,
    expansions: usize,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        positional: Vec::new(),
        machine: machines::power_like(),
        memory: false,
        interprocedural: false,
        at: HashMap::new(),
        depth: 3,
        expansions: 64,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machine" => {
                let v = it.next().ok_or("--machine needs a value")?;
                cli.machine = match machines::by_name(v) {
                    Some(m) => m,
                    None => {
                        let text = std::fs::read_to_string(v).map_err(|e| {
                            format!("machine `{v}`: not predefined and not readable ({e})")
                        })?;
                        MachineDesc::from_json(&text).map_err(|e| format!("machine `{v}`: {e}"))?
                    }
                };
            }
            "--memory" => cli.memory = true,
            "--interprocedural" => cli.interprocedural = true,
            "--at" => {
                let v = it.next().ok_or("--at needs var=value")?;
                let (name, value) = v.split_once('=').ok_or("--at expects var=value")?;
                let value: f64 = value
                    .parse()
                    .map_err(|_| format!("bad value in --at {v}"))?;
                cli.at.insert(name.to_string(), value);
            }
            "--depth" => {
                cli.depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--depth needs an integer")?;
            }
            "--expansions" => {
                cli.expansions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--expansions needs an integer")?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            other => cli.positional.push(other.to_string()),
        }
    }
    Ok(cli)
}

fn predictor_of(cli: &Cli) -> Predictor {
    let mut opts = PredictorOptions {
        include_memory: cli.memory,
        ..PredictorOptions::default()
    };
    for (k, v) in &cli.at {
        opts.aggregate.var_ranges.insert(k.clone(), (*v, *v));
    }
    Predictor::with_options(cli.machine.clone(), opts)
}

fn bindings_of(cli: &Cli) -> HashMap<Symbol, f64> {
    cli.at.iter().map(|(k, v)| (Symbol::new(k), *v)).collect()
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    let cli = parse_cli(&args[1..])?;

    match cmd.as_str() {
        "machines" => {
            for m in machines::all() {
                println!("{m}");
            }
            Ok(())
        }
        "predict" => {
            let src = read_source(&cli, 0)?;
            let predictor = predictor_of(&cli);
            let preds = if cli.interprocedural {
                predictor.predict_source_interprocedural(&src)
            } else {
                predictor.predict_source(&src)
            }
            .map_err(|e| e.to_string())?;
            let bindings = bindings_of(&cli);
            for p in &preds {
                println!("{}: C = {} cycles", p.name, p.total);
                if !p.total.is_concrete() {
                    let v = p.total.eval_with_defaults(&bindings);
                    if !cli.at.is_empty() {
                        println!("    at {:?}: {v:.0} cycles", cli.at);
                    }
                }
                if let Some(mc) = &p.memory {
                    println!("    memory stalls: {}", mc.cycles);
                }
            }
            Ok(())
        }
        "compare" => {
            if cli.positional.len() < 3 {
                return Err("compare needs <file> <subA> <subB>".into());
            }
            let src = read_source(&cli, 0)?;
            let predictor = predictor_of(&cli);
            let preds = predictor.predict_source(&src).map_err(|e| e.to_string())?;
            let find = |name: &str| {
                preds
                    .iter()
                    .find(|p| p.name == name)
                    .ok_or_else(|| format!("no subroutine `{name}` in file"))
            };
            let a = find(&cli.positional[1])?;
            let b = find(&cli.positional[2])?;
            println!("C({}) = {}", a.name, a.total);
            println!("C({}) = {}", b.name, b.total);
            let cmp = a.total.compare(&b.total);
            println!("verdict: {}", cmp.outcome);
            println!("difference: {}", cmp.difference);
            for x in &cmp.crossovers {
                println!("crossover at {x:.3}");
            }
            if let Some(plan) = plan_from_comparison(&cmp) {
                if plan.test_count() > 0 {
                    println!("{plan}");
                }
            }
            Ok(())
        }
        "listing" => {
            let src = read_source(&cli, 0)?;
            let predictor = predictor_of(&cli);
            let preds = predictor.predict_source(&src).map_err(|e| e.to_string())?;
            let p = preds.first().ok_or("no subroutines in file")?;
            let block =
                p.ir.innermost_block()
                    .ok_or("no straight-line code to list")?;
            let mut placer = Placer::new(&cli.machine, PlaceOptions::default());
            let sched = placer.drop_block_detailed(block);
            println!(
                "{}: innermost basic block on {}",
                p.name,
                cli.machine.name()
            );
            print!("{}", render_listing(block, &sched, &cli.machine));
            println!("\n{}", render_cost_block(&placer.cost_block()));
            Ok(())
        }
        "search" => {
            let src = read_source(&cli, 0)?;
            let program = presage::frontend::parse(&src).map_err(|e| e.to_string())?;
            let sub = program.units.first().ok_or("no subroutines in file")?;
            let predictor = predictor_of(&cli);
            let opts = SearchOptions {
                max_depth: cli.depth,
                max_expansions: cli.expansions,
                eval_point: cli.at.clone(),
                ..SearchOptions::default()
            };
            let r = astar_search(sub, &predictor, &opts);
            println!("original: {:.0} cycles", r.original_cost);
            println!("best    : {:.0} cycles ({:.2}×)", r.best_cost, r.speedup());
            for s in &r.sequence {
                println!("  {} at {:?}", s.transform, s.path);
            }
            if !r.sequence.is_empty() {
                println!("\n{}", r.best);
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn read_source(cli: &Cli, idx: usize) -> Result<String, String> {
    let path = cli
        .positional
        .get(idx)
        .ok_or("missing input file argument")?;
    std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))
}
