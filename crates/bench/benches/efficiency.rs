//! E12 bench — end-to-end prediction efficiency: the whole pipeline
//! (parse → sema → translate → place → aggregate) per kernel, against the
//! cycle-accurate simulation of the same block, quantifying the paper's
//! "efficient but detailed" positioning.

use criterion::{criterion_group, criterion_main, Criterion};
use presage_bench::kernels::{innermost_block, JACOBI, MATMUL};
use presage_core::predictor::Predictor;
use presage_machine::machines;
use presage_sim::{simulate_blocks, simulate_loop};
use std::hint::black_box;

fn bench_efficiency(c: &mut Criterion) {
    let machine = machines::power_like();
    let predictor = Predictor::new(machine.clone());

    c.bench_function("predict_e2e/jacobi", |b| {
        b.iter(|| black_box(predictor.predict_source(black_box(JACOBI)).unwrap()))
    });
    c.bench_function("predict_e2e/matmul4", |b| {
        b.iter(|| black_box(predictor.predict_source(black_box(MATMUL)).unwrap()))
    });

    // Simulating 64 loop iterations of the same kernels — what a
    // simulation-based estimate of a single loop-size data point costs.
    let jac = innermost_block(JACOBI, &machine);
    let mm = innermost_block(MATMUL, &machine);
    c.bench_function("simulate_64_iters/jacobi", |b| {
        b.iter(|| {
            let copies: Vec<&presage_translate::BlockIr> = std::iter::repeat(&jac).take(64).collect();
            black_box(simulate_blocks(&machine, copies.into_iter()))
        })
    });
    c.bench_function("simulate_64_iters/matmul4", |b| {
        b.iter(|| black_box(simulate_loop(&machine, &mm, 64)))
    });
}

criterion_group!(benches, bench_efficiency);
criterion_main!(benches);
