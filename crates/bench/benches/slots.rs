//! E3 bench — the Figure 4 data structure: run-encoded block lists vs. a
//! flat bitmap under fragmented find-fit/fill workloads. "By looking at
//! blocks instead of individual array elements, simultaneously searching
//! for empty spaces ... can be done much more efficiently."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use presage_core::slots::{BlockList, FlatSlots};
use std::hint::black_box;

/// Deterministic placement mix: `ops` placements with spread-out `from`
/// hints. `max_len` controls run lengths: short runs fragment the
/// timeline (worst case for run hopping), long runs give the paper's
/// claimed advantage — the block list skips a whole filled run per step
/// where the bitmap scans every slot.
fn workload(ops: usize, max_len: usize) -> Vec<(usize, usize)> {
    let mut seed = 0x9E3779B97F4A7C15u64;
    (0..ops)
        .map(|_| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let from = (seed >> 33) as usize % (ops * 2);
            let len = 1 + (seed >> 13) as usize % max_len;
            (from, len)
        })
        .collect()
}

fn bench_slots(c: &mut Criterion) {
    for (regime, max_len) in [("short_runs", 4usize), ("long_runs", 64)] {
        let mut group = c.benchmark_group(format!("slots_{regime}"));
        for ops in [64usize, 512, 2048] {
            let w = workload(ops, max_len);
            group.bench_with_input(BenchmarkId::new("blocklist", ops), &w, |b, w| {
                b.iter(|| {
                    let mut list = BlockList::new();
                    for &(from, len) in w {
                        let t = list.find_fit(from, len);
                        list.fill(t, len);
                    }
                    black_box(list.busy())
                })
            });
            group.bench_with_input(BenchmarkId::new("flat_bitmap", ops), &w, |b, w| {
                b.iter(|| {
                    let mut flat = FlatSlots::new();
                    for &(from, len) in w {
                        let t = flat.find_fit(from, len);
                        flat.fill(t, len);
                    }
                    black_box(flat.highest())
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_slots);
criterion_main!(benches);
