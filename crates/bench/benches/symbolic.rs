//! E6 bench — the symbolic layer's throughput: polynomial arithmetic,
//! closed-form roots, sign regions, and whole-expression comparison. The
//! paper's framework calls these "repeatedly ... in the decision making
//! process", so they must be fast.

use criterion::{criterion_group, criterion_main, Criterion};
use presage_symbolic::roots::real_roots;
use presage_symbolic::signs::sign_regions;
use presage_symbolic::{PerfExpr, Poly, Symbol, VarInfo};
use std::hint::black_box;

fn bench_symbolic(c: &mut Criterion) {
    let n = Symbol::new("n");
    let m = Symbol::new("m");
    let np = Poly::var(n.clone());
    let mp = Poly::var(m.clone());

    c.bench_function("poly_mul_quadratic", |b| {
        let p1 = &(&np * &np).scale(3) + &np.scale(2);
        let p2 = &(&mp * &np).scale(5) + &Poly::from(7);
        b.iter(|| black_box(black_box(&p1) * black_box(&p2)))
    });

    c.bench_function("poly_subst", |b| {
        let p = (&np * &np).scale(4) + np.scale(2) + Poly::from(1);
        let rep = &mp + &Poly::from(1);
        b.iter(|| black_box(p.subst(&n, black_box(&rep)).unwrap()))
    });

    c.bench_function("roots_quartic", |b| {
        // (x-1)(x-2)(x-3)(x-4)
        let coeffs = [24.0, -50.0, 35.0, -10.0, 1.0];
        b.iter(|| black_box(real_roots(black_box(&coeffs))))
    });

    c.bench_function("sign_regions_cubic", |b| {
        let x = Symbol::new("x");
        let p = (Poly::var(x.clone()) + Poly::from(1))
            * (Poly::var(x.clone()) - Poly::from(2))
            * (Poly::var(x.clone()) - Poly::from(5));
        b.iter(|| black_box(sign_regions(black_box(&p), &x, -10.0, 10.0).unwrap()))
    });

    c.bench_function("perf_expr_compare_crossover", |b| {
        let info = VarInfo::loop_bound(1.0, 1e6);
        let a = PerfExpr::cycles(2).repeat_symbolic(n.clone(), info) + PerfExpr::cycles(100);
        let bb = PerfExpr::cycles(10).repeat_symbolic(n.clone(), info);
        b.iter(|| black_box(black_box(&a).compare(black_box(&bb))))
    });

    c.bench_function("perf_expr_compare_multivariate", |b| {
        let info = VarInfo::loop_bound(1.0, 1e3);
        let prod = PerfExpr::cycles(3)
            .repeat_symbolic(n.clone(), info)
            .repeat_symbolic(m.clone(), info);
        let other = prod.clone() + PerfExpr::cycles(5).repeat_symbolic(n.clone(), info);
        b.iter(|| black_box(black_box(&other).compare(black_box(&prod))))
    });
}

criterion_group!(benches, bench_symbolic);
criterion_main!(benches);
