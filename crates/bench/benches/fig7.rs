//! E1 bench — prediction throughput per Figure 7 kernel: how fast the
//! Tetris model costs each innermost basic block (the paper's efficiency
//! requirement: repeated calls during restructuring must be cheap).

use criterion::{criterion_group, criterion_main, Criterion};
use presage_bench::kernels::{figure7, innermost_block};
use presage_core::tetris::{place_block, PlaceOptions};
use presage_machine::machines;
use presage_sim::{naive_block_cost, simulate_block};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let machine = machines::power_like();
    let mut group = c.benchmark_group("fig7_place");
    for k in figure7() {
        let block = innermost_block(k.source, &machine);
        group.bench_function(k.name, |b| {
            b.iter(|| black_box(place_block(&machine, black_box(&block), PlaceOptions::default())))
        });
    }
    group.finish();

    // The reference scheduler and the naive model on the same blocks, for
    // the cost-of-accuracy comparison.
    let mut group = c.benchmark_group("fig7_reference");
    let matmul = innermost_block(presage_bench::kernels::MATMUL, &machine);
    group.bench_function("simulate/Matmul", |b| {
        b.iter(|| black_box(simulate_block(&machine, black_box(&matmul))))
    });
    group.bench_function("naive/Matmul", |b| {
        b.iter(|| black_box(naive_block_cost(&machine, black_box(&matmul))))
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
