//! E7 bench — incremental update vs. full recompute (paper §3.3.1): the
//! cost of maintaining up-to-date predictions while transformations churn
//! one region of a large program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use presage_core::aggregate::AggregateOptions;
use presage_core::incremental::CostTree;
use presage_frontend::{parse, sema};
use presage_machine::machines;
use presage_translate::{translate, IrNode, ProgramIr};
use std::hint::black_box;

fn program_with_loops(loops: usize) -> ProgramIr {
    let machine = machines::power_like();
    let mut body = String::new();
    for k in 0..loops {
        body.push_str(&format!(
            "do i = 1, n\n  a(i) = a(i) * 2.0 + {k}.0\nend do\n"
        ));
    }
    let src = format!("subroutine s(a, n)\nreal a(n)\ninteger i, n\n{body}end");
    let prog = parse(&src).expect("valid");
    let symbols = sema::analyze(&prog.units[0]).expect("sema");
    translate(&prog.units[0], &symbols, &machine).expect("translate")
}

fn bench_incremental(c: &mut Criterion) {
    let machine = machines::power_like();
    let mut group = c.benchmark_group("incremental_vs_full");
    for loops in [8usize, 32, 128] {
        let ir = program_with_loops(loops);
        let opts = AggregateOptions::default();

        group.bench_with_input(BenchmarkId::new("full_rebuild", loops), &ir, |b, ir| {
            b.iter(|| black_box(CostTree::build(ir, &machine, None, opts.clone())))
        });

        let mut tree = CostTree::build(&ir, &machine, None, opts.clone());
        let replacement: IrNode = ir.root[0].clone();
        group.bench_with_input(BenchmarkId::new("incremental_replace", loops), &(), |b, _| {
            b.iter(|| black_box(tree.replace(&[0], replacement.clone())).is_some())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
