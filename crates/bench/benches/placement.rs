//! E2 bench — the linear-time claim (paper §2.1): placement time vs.
//! operation count for dependence-light and dependence-heavy streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use presage_core::tetris::{place_block, PlaceOptions};
use presage_machine::{machines, BasicOp};
use presage_translate::{BlockIr, ValueDef};
use std::hint::black_box;

fn mixed_block(n: usize, chain: bool) -> BlockIr {
    let mut b = BlockIr::new();
    let x = b.add_value(ValueDef::External("x".into()));
    let mut prev = x;
    for i in 0..n {
        let basic = match i % 4 {
            0 => BasicOp::FAdd,
            1 => BasicOp::Fma,
            2 => BasicOp::IAdd,
            _ => BasicOp::LoadFloat,
        };
        let args = if chain { vec![prev, x] } else { vec![x, x] };
        prev = b.emit(basic, args);
    }
    b
}

fn bench_placement(c: &mut Criterion) {
    let machine = machines::power_like();
    for (label, chain) in [("independent", false), ("chained", true)] {
        let mut group = c.benchmark_group(format!("placement_{label}"));
        for n in [16usize, 64, 256, 1024, 4096] {
            let block = mixed_block(n, chain);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::from_parameter(n), &block, |b, block| {
                b.iter(|| {
                    black_box(place_block(
                        &machine,
                        black_box(block),
                        PlaceOptions::with_focus_span(32),
                    ))
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
