//! E4 bench — placement cost as a function of the focus span ("allowing
//! more flexible allocation of computing resources based on accuracy and
//! efficiency considerations"). Pair with `focus_span_sweep` for the
//! accuracy half of the trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use presage_bench::kernels::{innermost_block, MATMUL};
use presage_core::tetris::{PlaceOptions, Placer};
use presage_machine::machines;
use std::hint::black_box;

fn bench_focus_span(c: &mut Criterion) {
    let machine = machines::power_like();
    let block = innermost_block(MATMUL, &machine);
    let mut group = c.benchmark_group("focus_span_loop_drop");
    for span in [1u32, 4, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(span), &span, |b, &span| {
            b.iter(|| {
                // Re-drop 16 iterations: a loop-costing call pattern.
                let mut p = Placer::new(&machine, PlaceOptions::with_focus_span(span));
                for _ in 0..16 {
                    p.drop_block(black_box(&block));
                }
                black_box(p.cost_block().span())
            })
        });
    }
    group.bench_function("unbounded", |b| {
        b.iter(|| {
            let mut p = Placer::new(&machine, PlaceOptions::default());
            for _ in 0..16 {
                p.drop_block(black_box(&block));
            }
            black_box(p.cost_block().span())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_focus_span);
criterion_main!(benches);
