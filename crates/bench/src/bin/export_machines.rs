//! Exports the predefined machine descriptions as JSON data files under
//! `machines/` — demonstrating that "adding a new architecture ... is a
//! matter of defining the atomic operation mapping and the atomic
//! operation cost table" as data, not code.
//!
//! Run with `cargo run -p presage-bench --bin export_machines`.

fn main() {
    for m in presage_machine::machines::all() {
        let path = format!("machines/{}.json", m.name());
        std::fs::write(&path, m.to_json()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
