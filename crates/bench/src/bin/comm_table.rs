//! E10 — the communication cost model: block vs cyclic distribution for a
//! 2-D stencil exchange and for triangular load balance, in the style of
//! the data-partitioning comparisons the paper cites (Balasundaram et al.).
//!
//! Run with `cargo run -p presage-bench --bin comm_table`.

use presage_core::comm::{
    message_cost, redistribution_cost, stencil_exchange_cost, triangular_max_load, CommParams,
    Distribution,
};
use presage_symbolic::Symbol;
use std::collections::HashMap;

fn main() {
    let params = CommParams::default();
    let n = Symbol::new("n");
    let range = (64.0, 8192.0);
    println!(
        "machine: P = {}, α = {} cycles/message, β = {} cycles/byte",
        params.procs, params.alpha, params.beta
    );
    println!(
        "one message of 1 KiB costs {} cycles\n",
        message_cost(&params, 1024.0)
    );

    println!("2-D stencil halo exchange, per sweep (symbolic in n):");
    for (label, dist) in [
        ("block", Distribution::Block),
        ("cyclic", Distribution::Cyclic),
        ("blkcyc(4)", Distribution::BlockCyclic(4)),
    ] {
        let c = stencil_exchange_cost(&params, dist, &n, 1, range);
        println!("  {label:<10} C(n) = {c}");
    }
    println!("\nevaluated:");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "n", "block", "cyclic", "ratio"
    );
    for nv in [256.0, 1024.0, 4096.0] {
        let mut b = HashMap::new();
        b.insert(n.clone(), nv);
        let block = stencil_exchange_cost(&params, Distribution::Block, &n, 1, range)
            .eval_with_defaults(&b);
        let cyclic = stencil_exchange_cost(&params, Distribution::Cyclic, &n, 1, range)
            .eval_with_defaults(&b);
        println!(
            "{nv:>8} {block:>14.0} {cyclic:>14.0} {:>9.1}×",
            cyclic / block
        );
    }

    println!("\ntriangular iteration space, max per-processor load:");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "n", "block", "cyclic", "ratio"
    );
    for nv in [256.0, 1024.0, 4096.0] {
        let mut b = HashMap::new();
        b.insert(n.clone(), nv);
        let block =
            triangular_max_load(&params, Distribution::Block, &n, range).eval_with_defaults(&b);
        let cyclic =
            triangular_max_load(&params, Distribution::Cyclic, &n, range).eval_with_defaults(&b);
        println!(
            "{nv:>8} {block:>14.0} {cyclic:>14.0} {:>9.2}×",
            block / cyclic
        );
    }
    println!("\nblock wins stencils (surface-to-volume); cyclic wins triangular");
    println!("load balance — the symbolic comparison picks per program.");

    let mut b = HashMap::new();
    b.insert(n.clone(), 1_000_000.0);
    let redist = redistribution_cost(&params, &n, (1.0, 1e7)).eval_with_defaults(&b);
    println!("\nredistributing 1M elements block→cyclic: {redist:.0} cycles");
}
