//! E6 — symbolic comparison of performance expressions (paper §3.1 and
//! Figure 10): sign regions of polynomial differences, crossover
//! detection, the P+/P− measures and integrals, and the term-dropping
//! simplification example from the paper.
//!
//! Run with `cargo run -p presage-bench --bin symbolic_compare`.

use presage_core::predictor::Predictor;
use presage_machine::machines;
use presage_opt::transforms::Transform;
use presage_opt::whatif::compare_transform;
use presage_symbolic::signs::{sign_measures, sign_regions, signed_areas};
use presage_symbolic::{Monomial, PerfExpr, Poly, Rational, Symbol, VarInfo};

fn figure10_demo() {
    println!("— Figure 10: sign regions of a cubic over a bounded range —");
    let x = Symbol::new("x");
    // y = (x+1)(x-2)(x-5) = x^3 - 6x^2 + 3x + 10, a > 0.
    let p = (Poly::var(x.clone()) + Poly::from(1))
        * (Poly::var(x.clone()) - Poly::from(2))
        * (Poly::var(x.clone()) - Poly::from(5));
    println!("P(x) = {p}   over x ∈ [-3, 7]");
    for r in sign_regions(&p, &x, -3.0, 7.0).expect("univariate") {
        println!("  {r}");
    }
    let (pos_w, neg_w) = sign_measures(&p, &x, -3.0, 7.0).unwrap();
    let (pos_a, neg_a) = signed_areas(&p, &x, -3.0, 7.0).unwrap();
    println!("  widths: P+ {pos_w:.2}, P− {neg_w:.2}; areas: ∫P+ {pos_a:.1}, ∫P− {neg_a:.1}");
}

fn term_dropping_demo() {
    println!("\n— §3.1 term dropping: 4x⁴ + 2x³ − 4x + 1/x³ on x ∈ [3, 100] —");
    let x = Symbol::new("x");
    let poly = Poly::term(4, Monomial::power(x.clone(), 4))
        + Poly::term(2, Monomial::power(x.clone(), 3))
        + Poly::term(-4, Monomial::var(x.clone()))
        + Poly::term(Rational::ONE, Monomial::power(x.clone(), -3));
    let e = PerfExpr::from_poly(poly, [(x, VarInfo::param(3.0, 100.0))]);
    println!("  before: {}", e.poly());
    println!("  after : {}", e.drop_negligible_terms(1e-3).poly());
}

fn transformation_comparison() {
    println!("\n— comparing transformations symbolically (matmul-like nest) —");
    let sub = presage_frontend::parse(
        "subroutine mm(a, b, c, n)
           real a(n,n), b(n,n), c(n,n)
           integer i, j, k, n
           do j = 1, n
             do i = 1, n
               do k = 1, n
                 c(i,j) = c(i,j) + a(i,k) * b(k,j)
               end do
             end do
           end do
         end",
    )
    .expect("valid")
    .units
    .remove(0);
    let predictor = Predictor::new(machines::power_like());
    for (label, path, t) in [
        ("unroll k×2", vec![0usize, 0, 0], Transform::Unroll(2)),
        ("unroll k×4", vec![0, 0, 0], Transform::Unroll(4)),
        ("interchange", vec![0, 0], Transform::Interchange),
        ("distribute", vec![0], Transform::Distribute),
    ] {
        match compare_transform(&sub, &path, &t, &predictor) {
            Ok((_, cmp)) => {
                print!(
                    "  {label:<12}: {:<22} Δ = {}",
                    cmp.outcome.to_string(),
                    cmp.difference
                );
                if !cmp.crossovers.is_empty() {
                    print!("   crossovers at n = {:?}", cmp.crossovers);
                }
                println!();
            }
            Err(e) => println!("  {label:<12}: {e}"),
        }
    }
}

fn main() {
    figure10_demo();
    term_dropping_demo();
    transformation_comparison();
}
