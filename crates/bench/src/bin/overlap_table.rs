//! E5 — loop-iteration overlap (paper Figures 8/9, §2.2.2): steady-state
//! cycles per iteration from (a) re-dropping the body into the bins, (b)
//! the shape-matching estimate, and (c) no-overlap back-to-back execution,
//! all against the reference simulator.
//!
//! Loop measurements are served from the persisted baseline store
//! (`BENCH_sim_baselines.json`) when the (kernel, machine) pair is
//! unchanged; only misses re-simulate.
//!
//! Run with `cargo run -p presage-bench --bin overlap_table`.

use presage_bench::kernels::{figure7, innermost_block};
use presage_core::overlap::{shape_estimate, steady_state, unroll_profile};
use presage_core::tetris::PlaceOptions;
use presage_machine::machines;
use presage_sim::BaselineStore;
use std::path::Path;

fn main() {
    let baseline_path = Path::new("BENCH_sim_baselines.json");
    let mut store = BaselineStore::load(baseline_path);
    let machine = machines::power_like();
    println!("steady-state cycles per iteration on {}", machine.name());
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "kernel", "re-drop", "shape", "no-ovlp", "simulator"
    );
    for k in figure7() {
        let block = innermost_block(k.source, &machine);
        let ss = steady_state(&machine, &block, PlaceOptions::default(), 8);
        let shape = shape_estimate(&machine, &block, PlaceOptions::default());
        let sim = match store.loop_cycles(&machine, &block, 8) {
            Ok((_, steady)) => steady,
            Err(e) => {
                eprintln!("skipping {}: {e}", k.name);
                continue;
            }
        };
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>10} {:>10.2}",
            k.name, ss.per_iteration, shape, ss.first_iteration, sim
        );
    }

    println!("\nunroll profile for F2 (cycles per original iteration):");
    let block = innermost_block(presage_bench::kernels::F2, &machine);
    for (factor, cost) in unroll_profile(&machine, &block, PlaceOptions::default(), 8) {
        println!("  unroll {factor}: {cost:.2}");
    }
    println!("\nfocus span vs steady-state per-iteration cost for F4 (a");
    println!("dependent Horner chain — overlap comes only from backfilling");
    println!("other iterations below the ceiling, which the span forbids):");
    for span in [1u32, 2, 4, 8, 16] {
        let ss = steady_state(
            &machine,
            &innermost_block(presage_bench::kernels::F4, &machine),
            PlaceOptions::with_focus_span(span),
            8,
        );
        println!("  span {span:>2}: {:.2} cycles/iteration", ss.per_iteration);
    }
    println!("  span  ∞: {:.2} cycles/iteration", {
        let ss = steady_state(
            &machine,
            &innermost_block(presage_bench::kernels::F4, &machine),
            PlaceOptions::default(),
            8,
        );
        ss.per_iteration
    });
    println!("\nnote: with a tight span, unrolling without interleaving does not");
    println!("recover the overlap — placement follows program order, so the");
    println!("model correctly charges un-scheduled unrolled code.");
    let (hits, misses) = store.stats();
    println!("\nsimulator baselines: {hits} served from store, {misses} simulated fresh");
    if let Err(e) = store.save(baseline_path) {
        eprintln!("could not persist {}: {e}", baseline_path.display());
    }
}
