//! E9 — the §2.3 memory cost model: cache-line counts for stride-1 vs
//! strided scans, reuse vs capacity overflow, and the blocked-matmul
//! crossover.
//!
//! Run with `cargo run -p presage-bench --bin memory_table`.

use presage_bench::kernels::translate_kernel;
use presage_core::aggregate::AggregateOptions;
use presage_core::memory::memory_cost;
use presage_machine::machines;
use presage_symbolic::Symbol;
use std::collections::HashMap;

fn lines_at(src: &str, n: f64, extra: &[(&str, f64)]) -> f64 {
    let machine = machines::power_like();
    let cache = machine.cache.unwrap_or_default();
    let mut opts = AggregateOptions::default();
    opts.var_ranges.insert("n".into(), (n, n));
    for (v, val) in extra {
        opts.var_ranges.insert(v.to_string(), (*val, *val));
    }
    let ir = translate_kernel(src, &machine);
    let mc = memory_cost(&ir, &cache, &opts);
    let mut bindings = HashMap::new();
    bindings.insert(Symbol::new("n"), n);
    for (v, val) in extra {
        bindings.insert(Symbol::new(v), *val);
    }
    mc.lines.eval_with_defaults(&bindings)
}

const COL_SCAN: &str = "subroutine s(a, n)
   real a(n,n)
   integer i, j, n
   do j = 1, n
     do i = 1, n
       a(i,j) = 0.0
     end do
   end do
 end";

const ROW_SCAN: &str = "subroutine s(a, n)
   real a(n,n)
   integer i, j, n
   do j = 1, n
     do i = 1, n
       a(j,i) = 0.0
     end do
   end do
 end";

const MATMUL: &str = "subroutine mm(a, b, c, n)
   real a(n,n), b(n,n), c(n,n)
   integer i, j, k, n
   do j = 1, n
     do i = 1, n
       do k = 1, n
         c(i,j) = c(i,j) + a(i,k) * b(k,j)
       end do
     end do
   end do
 end";

/// Tiled matmul over k and i with tile size t (as source, t fixed at 32).
const MATMUL_TILED: &str = "subroutine mmt(a, b, c, n)
   real a(n,n), b(n,n), c(n,n)
   integer i, j, k, kk, ii, n
   do kk = 1, n, 32
     do ii = 1, n, 32
       do j = 1, n
         do i = ii, min(ii + 31, n)
           do k = kk, min(kk + 31, n)
             c(i,j) = c(i,j) + a(i,k) * b(k,j)
           end do
         end do
       end do
     end do
   end do
 end";

fn main() {
    let machine = machines::power_like();
    let cache = machine.cache.unwrap_or_default();
    println!(
        "cache: {} KiB, {}-byte lines, miss {} cycles\n",
        cache.size_bytes / 1024,
        cache.line_bytes,
        cache.miss_penalty
    );

    println!("column-major scan direction (n = 2048):");
    let col = lines_at(COL_SCAN, 2048.0, &[]);
    let row = lines_at(ROW_SCAN, 2048.0, &[]);
    println!("  stride-1 scan a(i,j): {col:>14.0} line fills");
    println!(
        "  strided  scan a(j,i): {row:>14.0} line fills ({:.1}× worse)",
        row / col
    );

    println!("\nmatmul line fills vs n (blocked 32×32 vs untiled):");
    println!(
        "{:>8} {:>16} {:>16} {:>8}",
        "n", "untiled", "tiled(32)", "ratio"
    );
    for n in [64.0, 128.0, 256.0, 512.0, 1024.0] {
        let untiled = lines_at(MATMUL, n, &[]);
        let tiled = lines_at(MATMUL_TILED, n, &[]);
        println!(
            "{n:>8} {untiled:>16.0} {tiled:>16.0} {:>8.2}",
            untiled / tiled
        );
    }
    println!("\nonce a row of the working set no longer fits in cache, the");
    println!("untiled version loses reuse and the tiled version wins — the");
    println!("classical blocking crossover the model must reproduce.");
}
