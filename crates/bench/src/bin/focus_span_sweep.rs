//! E4 — the focus-span ablation (paper §2.1): the span is "an adjustable
//! parameter, thus allowing more flexible allocation of computing
//! resources based on accuracy and efficiency considerations". Sweeps the
//! span and reports prediction error and placement time over the kernel
//! suite.
//!
//! Run with `cargo run --release -p presage-bench --bin focus_span_sweep`.

use presage_bench::kernels::{figure7, innermost_block};
use presage_core::tetris::{place_block, PlaceOptions};
use presage_machine::machines;
use presage_sim::simulate_block;
use std::time::Instant;

fn main() {
    let machine = machines::power_like();
    let blocks: Vec<_> = figure7()
        .into_iter()
        .map(|k| (k.name, innermost_block(k.source, &machine)))
        .collect();
    let references: Vec<u32> = match blocks
        .iter()
        .map(|(_, b)| simulate_block(&machine, b).map(|r| r.makespan))
        .collect::<Result<_, _>>()
    {
        Ok(refs) => refs,
        Err(e) => {
            eprintln!("reference simulation failed: {e}");
            return;
        }
    };

    println!(
        "focus-span sweep on {} ({} kernels)",
        machine.name(),
        blocks.len()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "span", "mean |err|%", "max |err|%", "time/block µs"
    );
    let spans: Vec<Option<u32>> = vec![
        Some(1),
        Some(2),
        Some(4),
        Some(8),
        Some(16),
        Some(32),
        Some(64),
        None,
    ];
    for span in spans {
        let opts = match span {
            Some(s) => PlaceOptions::with_focus_span(s),
            None => PlaceOptions::default(),
        };
        let mut errs = Vec::new();
        let reps = 200;
        let t0 = Instant::now();
        for _ in 0..reps {
            for ((_, b), _) in blocks.iter().zip(&references) {
                std::hint::black_box(place_block(&machine, b, opts));
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        for ((_, b), r) in blocks.iter().zip(&references) {
            let p = place_block(&machine, b, opts).completion;
            errs.push(((p as f64 - *r as f64) / *r as f64 * 100.0).abs());
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let max = errs.iter().cloned().fold(0.0, f64::max);
        let label = span.map(|s| s.to_string()).unwrap_or_else(|| "∞".into());
        println!(
            "{label:>10} {mean:>12.2} {max:>12.2} {:>14.2}",
            elapsed / (reps as f64 * blocks.len() as f64) * 1e6
        );
    }
}
