//! E11 — transformation-sequence search (paper §3.2): the A* search
//! against exhaustive enumeration on a small space, verifying it finds the
//! optimum while expanding fewer states.
//!
//! Run with `cargo run --release -p presage-bench --bin astar_search`.

use presage_core::predictor::Predictor;
use presage_machine::machines;
use presage_opt::search::{astar_search, SearchOptions};
use presage_opt::transforms::Transform;
use presage_opt::whatif::{cost_of, loop_paths, transformed};
use presage_symbolic::Symbol;
use std::collections::HashMap;

const KERNEL: &str = "subroutine sweep(a, b, n)
   real a(n,n), b(n,n)
   integer i, j, n
   do i = 1, n
     do j = 1, n
       a(i,j) = b(i,j) * 2.0 + 1.0
     end do
   end do
   do i = 1, n
     do j = 1, n
       b(i,j) = a(i,j) * 0.5
     end do
   end do
 end";

fn eval(predictor: &Predictor, sub: &presage_frontend::Subroutine, n: f64) -> f64 {
    let expr = cost_of(sub, predictor).expect("predicts");
    let mut b = HashMap::new();
    b.insert(Symbol::new("n"), n);
    expr.eval_with_defaults(&b)
}

/// Exhaustive depth-2 enumeration over the same move set.
fn exhaustive(predictor: &Predictor, sub: &presage_frontend::Subroutine, n: f64) -> (f64, usize) {
    let moves = |s: &presage_frontend::Subroutine| {
        let mut out = Vec::new();
        for p in loop_paths(s) {
            for t in [
                Transform::Unroll(2),
                Transform::Unroll(4),
                Transform::Tile(32),
                Transform::Interchange,
                Transform::Fuse,
                Transform::Distribute,
            ] {
                out.push((p.clone(), t));
            }
        }
        out
    };
    let mut best = eval(predictor, sub, n);
    let mut evaluated = 0;
    for (p1, t1) in moves(sub) {
        let Ok(v1) = transformed(sub, &p1, &t1) else {
            continue;
        };
        evaluated += 1;
        best = best.min(eval(predictor, &v1, n));
        for (p2, t2) in moves(&v1) {
            let Ok(v2) = transformed(&v1, &p2, &t2) else {
                continue;
            };
            evaluated += 1;
            best = best.min(eval(predictor, &v2, n));
        }
    }
    (best, evaluated)
}

fn main() {
    let sub = presage_frontend::parse(KERNEL)
        .expect("valid")
        .units
        .remove(0);
    let predictor = Predictor::new(machines::power_like());
    let n = 1000.0;

    let mut opts = SearchOptions::default();
    opts.max_depth = 2;
    opts.max_expansions = 120;
    opts.eval_point.insert("n".into(), n);
    let astar = astar_search(&sub, &predictor, &opts);

    let (exhaustive_best, exhaustive_evals) = exhaustive(&predictor, &sub, n);

    println!("search space: depth ≤ 2 over unroll/tile/interchange/fuse/distribute");
    println!("original cost             : {:>12.0}", astar.original_cost);
    println!(
        "A* best ({} evals)       : {:>12.0}  (speedup {:.2}×)",
        astar.evaluated,
        astar.best_cost,
        astar.speedup()
    );
    println!(
        "exhaustive best ({} evals): {:>12.0}",
        exhaustive_evals, exhaustive_best
    );
    let gap = (astar.best_cost - exhaustive_best) / exhaustive_best * 100.0;
    println!("gap to optimum            : {gap:>11.1}%");
    println!("\nA* sequence:");
    for s in &astar.sequence {
        println!("  {} at {:?} -> {:.0}", s.transform, s.path, s.cost);
    }
}
