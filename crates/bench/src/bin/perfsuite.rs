//! In-tree performance suite: throughput of the predictor itself.
//!
//! Tools in this lineage treat predictor throughput as a first-class
//! metric; `perfsuite` measures the six hot paths this repo optimizes —
//! Tetris placement, end-to-end prediction throughput, the symbolic
//! engine, the translation cache, the A* transformation search, and the
//! event-driven reference simulator — against the preserved seed
//! implementations, and writes the numbers to `BENCH_placement.json`. No
//! external dependencies: timing is `std::time::Instant`, output is the
//! hand-rolled JSON writer.
//!
//! Usage:
//!
//! ```text
//! perfsuite [--smoke] [--batch-only] [--search-only] [--server-only] [--memory-only] [--out PATH]
//! ```
//!
//! `--smoke` runs a fast sanity pass (no timing thresholds, tiny
//! workloads) for CI; the full run enforces the targets (≥3× placement
//! ops/sec on wide8, ≥5× predictions/sec on wide8 and ≥8× on risc1,
//! ≥1.5× source-level predictions/sec on wide8 with a warmed translation
//! cache, ≥2× A* wall-time, ≥3× variants/sec for the structural e-graph
//! engine over the textual A* baseline on wide8, ≥4× event-driven
//! simulator sims/sec vs the cycle-driven reference on wide8, and two
//! batch-scaling floors: on hosts with ≥4 cores `predict_batch`
//! throughput must be monotonically non-decreasing from 1→4 workers, and
//! on hosts with ≥8 cores the 8-worker speedup must be ≥3× the single
//! worker) and exits nonzero when missed. The soak footprint ceilings
//! (interned arena + L2 memo entries after a batch of distinct generated
//! programs) are deterministic and enforced in every mode. `--batch-only`
//! runs just the batch-scaling rows and the soak check — the CI scaling
//! gate — without touching the output file. `--search-only` runs just the
//! variant-search rows and writes `BENCH_search.json` — the CI gate for
//! the structural search engine. `--server-only` runs the server-loop
//! soak — ≥192 distinct programs through `presage_server::Server` with
//! epoch advances between waves, every response checked bit-identical
//! against a fresh uncached predictor, and the arena + L2 footprint
//! ceilings enforced after reclamation — and writes `BENCH_server.json`.
//! `--memory-only` runs just the §2.3 memory-model rows — memoized
//! `mem_cost` throughput ≥2× the naive per-nest recount on wide8, plus
//! the memory-vs-compute split per Figure 7 kernel — and writes
//! `BENCH_memory.json`.
//!
//! Prediction throughput is measured at the prediction-engine boundary
//! ([`Predictor::predict_cost`] over pre-translated IR, warmed caches)
//! against [`presage_core::refagg::reference_aggregate`] — the identical
//! aggregation walk over the seed symbolic engine with no scheduling
//! memo. Both sides share the front end and translation, so the ratio
//! isolates exactly what this repo's symbolic/scheduling layers changed,
//! the same way the placement rows isolate the placer.

use presage_bench::kernels::{self, figure7};
use presage_core::aggregate::AggregateOptions;
use presage_core::memcost::{mem_cost, mem_cost_fresh};
use presage_core::refagg::reference_aggregate;
use presage_core::reference::NaivePlacer;
use presage_core::tetris::{PlaceOptions, Placer, PreparedBlock};
use presage_core::TranslationCache;
use presage_core::{Predictor, PredictorOptions};
use presage_machine::json::Json;
use presage_machine::{machines, CacheParams, MachineDesc};
use presage_opt::{
    astar_search_cached, search_cached, PredictionCache, SearchConfig, SearchOptions,
    SearchStrategy,
};
use presage_symbolic::memo::MemoStats;
use presage_symbolic::Symbol;
use presage_translate::{BlockIr, ProgramIr};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Config {
    smoke: bool,
    batch_only: bool,
    search_only: bool,
    server_only: bool,
    memory_only: bool,
    out: String,
    search_out: String,
    server_out: String,
    memory_out: String,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        smoke: false,
        batch_only: false,
        search_only: false,
        server_only: false,
        memory_only: false,
        out: "BENCH_placement.json".to_string(),
        search_out: "BENCH_search.json".to_string(),
        server_out: "BENCH_server.json".to_string(),
        memory_out: "BENCH_memory.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => cfg.smoke = true,
            "--batch-only" => cfg.batch_only = true,
            "--search-only" => cfg.search_only = true,
            "--server-only" => cfg.server_only = true,
            "--memory-only" => cfg.memory_only = true,
            "--out" => match args.next() {
                Some(path) => cfg.out = path,
                None => {
                    eprintln!("--out takes a path; see --help");
                    std::process::exit(2);
                }
            },
            "--search-out" => match args.next() {
                Some(path) => cfg.search_out = path,
                None => {
                    eprintln!("--search-out takes a path; see --help");
                    std::process::exit(2);
                }
            },
            "--server-out" => match args.next() {
                Some(path) => cfg.server_out = path,
                None => {
                    eprintln!("--server-out takes a path; see --help");
                    std::process::exit(2);
                }
            },
            "--memory-out" => match args.next() {
                Some(path) => cfg.memory_out = path,
                None => {
                    eprintln!("--memory-out takes a path; see --help");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: perfsuite [--smoke] [--batch-only] [--search-only] [--server-only] [--memory-only] [--out PATH] [--search-out PATH] [--server-out PATH] [--memory-out PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// Labeled bench abort: an unusable input (a kernel that stopped
/// parsing, a simulator that fails to converge, a soak response that
/// went missing) fails the perf gate with a diagnosis naming the bench
/// and the job, never a panic backtrace.
fn bail(msg: String) -> ! {
    eprintln!("perfsuite: FAIL: {msg}");
    std::process::exit(1);
}

/// The placement workload: every Figure 7 innermost block, re-dropped to
/// model loop-overlap probing (`overlap::steady_state`'s access pattern),
/// under the paper's bounded focus span.
const DROPS_PER_BLOCK: u32 = 16;
const FOCUS_SPAN: u32 = 64;

fn placement_blocks(machine: &MachineDesc) -> Vec<BlockIr> {
    figure7()
        .iter()
        .map(|k| kernels::innermost_block(k.source, machine))
        .collect()
}

/// Runs `work` repeatedly until `budget` elapses, returning the measured
/// throughput denominator: (units of work done, elapsed seconds).
fn time_until<F: FnMut() -> u64>(budget: Duration, mut work: F) -> (u64, f64) {
    let start = Instant::now();
    let mut done = 0u64;
    loop {
        done += work();
        let elapsed = start.elapsed();
        if elapsed >= budget {
            return (done, elapsed.as_secs_f64());
        }
    }
}

fn placement_round(machine: &MachineDesc, blocks: &[BlockIr], naive: bool) -> u64 {
    let opts = PlaceOptions::with_focus_span(FOCUS_SPAN);
    let mut ops = 0u64;
    if naive {
        let mut p = NaivePlacer::new(machine, opts);
        for b in blocks {
            p.clear();
            for _ in 0..DROPS_PER_BLOCK {
                black_box(p.drop_block(b));
            }
            ops += p.ops_placed();
        }
    } else {
        let mut p = Placer::new(machine, opts);
        for b in blocks {
            // Dependence analysis is per block, not per drop — the
            // optimized overlap prober works exactly like this.
            let prepared = PreparedBlock::new(b);
            p.clear();
            for _ in 0..DROPS_PER_BLOCK {
                black_box(p.drop_prepared(&prepared));
            }
            ops += p.ops_placed();
        }
    }
    ops
}

struct PlacementRow {
    machine: String,
    naive_ops_per_sec: f64,
    opt_ops_per_sec: f64,
    speedup: f64,
}

fn bench_placement(budget: Duration) -> Vec<PlacementRow> {
    let mut rows = Vec::new();
    for machine in machines::all() {
        let blocks = placement_blocks(&machine);
        // Warm up both paths once so first-touch allocation is off-clock.
        placement_round(&machine, &blocks, true);
        placement_round(&machine, &blocks, false);
        let (naive_ops, naive_s) = time_until(budget, || placement_round(&machine, &blocks, true));
        let (opt_ops, opt_s) = time_until(budget, || placement_round(&machine, &blocks, false));
        let naive_rate = naive_ops as f64 / naive_s;
        let opt_rate = opt_ops as f64 / opt_s;
        rows.push(PlacementRow {
            machine: machine.name().to_string(),
            naive_ops_per_sec: naive_rate,
            opt_ops_per_sec: opt_rate,
            speedup: opt_rate / naive_rate,
        });
    }
    rows
}

/// The restructuring workload of §3.2: the compiler re-predicts program
/// variants over and over, so throughput is predictions completed per
/// second over pre-translated IR — the optimized engine
/// ([`Predictor::predict_cost`], warmed scheduling memo and symbolic
/// caches, its steady state) against the seed aggregation walk
/// ([`reference_aggregate`], which has none of either, *its* steady
/// state).
struct PredictionRow {
    machine: String,
    ref_preds_per_sec: f64,
    opt_preds_per_sec: f64,
    speedup: f64,
}

fn prediction_irs(machine: &MachineDesc) -> Vec<ProgramIr> {
    figure7()
        .iter()
        .map(|k| kernels::translate_kernel(k.source, machine))
        .collect()
}

fn bench_prediction(budget: Duration) -> Vec<PredictionRow> {
    let mut rows = Vec::new();
    for machine in machines::all() {
        let predictor = Predictor::new(machine.clone());
        let opts = AggregateOptions::default();
        let irs = prediction_irs(&machine);
        // Warm both engines: first-touch allocation and cold caches are
        // off-clock on both sides.
        for ir in &irs {
            black_box(predictor.predict_cost(ir));
            black_box(reference_aggregate(ir, &machine, &opts));
        }
        let (opt_n, opt_s) = time_until(budget, || {
            for ir in &irs {
                black_box(predictor.predict_cost(ir));
            }
            irs.len() as u64
        });
        let (ref_n, ref_s) = time_until(budget, || {
            for ir in &irs {
                black_box(reference_aggregate(ir, &machine, &opts));
            }
            irs.len() as u64
        });
        let ref_rate = ref_n as f64 / ref_s;
        let opt_rate = opt_n as f64 / opt_s;
        rows.push(PredictionRow {
            machine: machine.name().to_string(),
            ref_preds_per_sec: ref_rate,
            opt_preds_per_sec: opt_rate,
            speedup: opt_rate / ref_rate,
        });
    }
    rows
}

/// Parallel batch prediction: [`Predictor::predict_batch_report`] over
/// the full `(machine, kernel)` cross product with one shared (sharded)
/// [`TranslationCache`], the sharded polynomial arena, and the sharded L2
/// memo tables, at several worker counts. Workers re-spawn per round
/// (scoped threads), so each round pays realistic per-thread warm-up —
/// thread-local L1 memos start empty every round and refill from the L2,
/// which is exactly the contention the sharded design absorbs.
struct BatchRow {
    workers: usize,
    preds_per_sec: f64,
    /// Two-level memo telemetry summed over all rounds at this count.
    l1_hits: u64,
    l2_hits: u64,
    misses: u64,
    /// Work-stealing chunk claims beyond each worker's first.
    steals: u64,
}

const BATCH_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_batch(budget: Duration) -> Vec<BatchRow> {
    let machines = machines::all();
    let ks = figure7();
    let jobs: Vec<(&MachineDesc, &str)> = machines
        .iter()
        .flat_map(|m| ks.iter().map(move |k| (m, k.source)))
        .collect();
    let opts = PredictorOptions::default();
    let cache = Arc::new(TranslationCache::new());
    // Warm the shared translation cache and L2 memos so every timed round
    // runs the warm steady state.
    black_box(Predictor::predict_batch(&jobs, &opts, &cache, 1));
    let mut rows = Vec::new();
    for workers in BATCH_WORKER_COUNTS {
        let mut memo = MemoStats::default();
        let mut steals = 0u64;
        let (n, s) = time_until(budget, || {
            let report = Predictor::predict_batch_report(&jobs, &opts, &cache, workers);
            black_box(&report.results);
            memo = memo.merged(&report.memo_totals());
            steals += report.total_steals();
            jobs.len() as u64
        });
        rows.push(BatchRow {
            workers,
            preds_per_sec: n as f64 / s,
            l1_hits: memo.l1_hits,
            l2_hits: memo.l2_hits,
            misses: memo.misses,
            steals,
        });
    }
    rows
}

/// Soak check toward the prediction-as-a-service roadmap item: many
/// *distinct* generated programs through `predict_batch`, then assert the
/// process-wide interned arena and L2 memo footprint stay under fixed
/// ceilings. Distinct shapes stress the cap-clear and content-fallback
/// paths under concurrency — a leak here means a long-lived server grows
/// without bound.
struct SoakResult {
    programs: usize,
    jobs: usize,
    arena_symbols: usize,
    arena_monomials: usize,
    arena_polynomials: usize,
    l2_entries: usize,
    ok: bool,
}

/// Arena entries (symbols + monomials + polynomials) after the soak must
/// stay under this — far below the `POLY_ARENA_CAP` backstop, so growth
/// per distinct program is what is actually being bounded.
const SOAK_ARENA_CEILING: usize = 400_000;
/// L2 memo entries after the soak; the per-shard caps bound this by
/// construction (~90k across all tables), so the ceiling catches any
/// future unbounded L2.
const SOAK_L2_CEILING: usize = 100_000;

/// A distinct triangular-nest kernel per index: distinct names, constants
/// and bound structure produce distinct translation shapes, intern
/// entries, and memo keys.
fn soak_program(k: usize) -> String {
    format!(
        "subroutine soak{k}(y, x, a, n)
           real y(n), x(n), a
           integer i, j, n
           do i = 1, n
             do j = i, n
               y(j) = y(j) + {c}.0 * x(j) + a * {d}.0
             end do
           end do
           do i = {lb}, n
             x(i) = x(i) * {c}.0
           end do
         end",
        c = k % 97 + 2,
        d = (k * 7) % 89 + 3,
        lb = k % 5 + 1,
    )
}

fn bench_soak(smoke: bool) -> SoakResult {
    let n_programs = if smoke { 48 } else { 192 };
    let machines = machines::all();
    let programs: Vec<String> = (0..n_programs).map(soak_program).collect();
    let jobs: Vec<(&MachineDesc, &str)> = machines
        .iter()
        .flat_map(|m| programs.iter().map(move |p| (m, p.as_str())))
        .collect();
    let opts = PredictorOptions::default();
    let cache = Arc::new(TranslationCache::new());
    let report = Predictor::predict_batch_report(&jobs, &opts, &cache, 8);
    let failures = report.results.iter().filter(|r| r.is_err()).count();
    if failures != 0 {
        bail(format!(
            "batch soak: {failures} of {} generated soak jobs failed to predict",
            jobs.len()
        ));
    }
    let arena = presage_symbolic::arena_stats();
    let l2_entries = presage_core::l2_memo_entries();
    let arena_total = arena.symbols + arena.monomials + arena.polynomials;
    SoakResult {
        programs: n_programs,
        jobs: jobs.len(),
        arena_symbols: arena.symbols,
        arena_monomials: arena.monomials,
        arena_polynomials: arena.polynomials,
        l2_entries,
        ok: arena_total <= SOAK_ARENA_CEILING && l2_entries <= SOAK_L2_CEILING,
    }
}

/// Server-loop soak: the epoch-reclamation acceptance gate. Drives every
/// distinct generated program through [`presage_server::Server`] over the
/// real JSON-lines wire format, with epoch advances (and translation
/// generation eviction) between waves, then checks three things:
///
/// 1. **Bit-identity.** Every response cost equals a fresh, uncached
///    predictor's answer for the same `(machine, program)` — computed
///    before the server ran, so reclamation mid-stream cannot have bent
///    a prediction. A post-run re-check on recycled arena slots proves
///    the oracle still agrees *after* the last reclamation.
/// 2. **Epochs.** The run must span at least [`SERVER_SOAK_MIN_ADVANCES`]
///    epoch advances, so reclamation actually exercised the id-recycling
///    paths rather than idling.
/// 3. **Footprint.** The interned arena and L2 memo entries after the
///    run obey the same ceilings as the batch soak — a long-lived server
///    must not grow with the distinct-program count it has ever seen.
struct ServerSoakResult {
    programs: usize,
    jobs: usize,
    waves: u64,
    advances: u64,
    latency_p50_us: u64,
    latency_p99_us: u64,
    translation_hits: u64,
    translation_misses: u64,
    translations_evicted: u64,
    memo: MemoStats,
    polys_reclaimed: u64,
    blocks_reclaimed: u64,
    sched_entries_cleared: u64,
    arena_symbols: usize,
    arena_monomials: usize,
    arena_polynomials: usize,
    l2_entries: usize,
    ok: bool,
}

/// The soak must reclaim across at least this many epochs to count.
const SERVER_SOAK_MIN_ADVANCES: u64 = 3;

fn bench_server_soak(smoke: bool) -> ServerSoakResult {
    use presage_server::{Server, ServerConfig};
    let n_programs = if smoke { 48 } else { 192 };
    let machines = machines::all();
    let programs: Vec<String> = (0..n_programs).map(soak_program).collect();
    let n_jobs = n_programs * machines.len();

    // The uncached oracle, computed before the server touches anything:
    // fresh sema + translation + aggregation per job, no shared caches.
    let oracle: Vec<Vec<String>> = programs
        .iter()
        .enumerate()
        .map(|(pi, src)| {
            machines
                .iter()
                .map(|m| {
                    let preds = Predictor::new(m.clone())
                        .predict_source(src)
                        .unwrap_or_else(|e| {
                            bail(format!(
                                "server soak oracle: program {pi} on {}: {e}",
                                m.name()
                            ))
                        });
                    match preds.first() {
                        Some(p) => p.total.to_string(),
                        None => bail(format!(
                            "server soak oracle: program {pi} on {}: no predictions",
                            m.name()
                        )),
                    }
                })
                .collect()
        })
        .collect();

    // The request stream, in the daemon's wire format (one JSON object
    // per line; the writer escapes the embedded newlines).
    let mut input = String::new();
    for (pi, src) in programs.iter().enumerate() {
        for (mi, m) in machines.iter().enumerate() {
            let req = Json::Obj(vec![
                ("id".into(), Json::Num((pi * machines.len() + mi) as f64)),
                ("machine".into(), Json::Str(m.name().to_string())),
                ("source".into(), Json::Str(src.clone())),
            ]);
            input.push_str(&req.to_string_compact());
            input.push('\n');
        }
    }

    let mut server = Server::new(ServerConfig {
        workers: 8,
        wave_size: 64,
        advance_every: 1,
    });
    let mut out: Vec<u8> = Vec::new();
    let stats = server
        .run(std::io::Cursor::new(input.into_bytes()), &mut out)
        .unwrap_or_else(|e| bail(format!("server soak: in-memory server run failed: {e}")));

    // Every response must be ok and bit-identical to its oracle.
    let text = String::from_utf8(out)
        .unwrap_or_else(|e| bail(format!("server soak: server emitted non-UTF-8 output: {e}")));
    let mut seen = 0usize;
    for line in text.lines() {
        let v = Json::parse(line)
            .unwrap_or_else(|e| bail(format!("server soak: unparseable response {line}: {e}")));
        if v.get("stats").is_some() {
            continue;
        }
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            bail(format!("server soak: job failed: {line}"));
        }
        let id = match v.get("id").and_then(Json::as_u64) {
            Some(id) => id as usize,
            None => bail(format!("server soak: response without an id: {line}")),
        };
        let cost = match v
            .get("predictions")
            .and_then(Json::as_arr)
            .and_then(|preds| preds.first())
            .and_then(|p| p.get("cost"))
            .and_then(Json::as_str)
        {
            Some(cost) => cost,
            None => bail(format!("server soak: ok response without a cost: {line}")),
        };
        let (pi, mi) = (id / machines.len(), id % machines.len());
        let expected = match oracle.get(pi).and_then(|row| row.get(mi)) {
            Some(e) => e,
            None => bail(format!(
                "server soak: response id {id} out of range: {line}"
            )),
        };
        if cost != expected {
            bail(format!(
                "server soak: prediction diverged from the uncached oracle \
                 (program {pi}, machine {mi}): got {cost}, expected {expected}"
            ));
        }
        seen += 1;
    }
    if seen != n_jobs {
        bail(format!(
            "server soak: expected one response per job ({n_jobs}), saw {seen}"
        ));
    }

    // Post-reclaim differential: arena slots from the early waves have
    // been recycled by now, so a fresh predictor agreeing with the
    // pre-run oracle proves reclamation never corrupted global state.
    for (pi, src) in programs.iter().enumerate().take(n_programs.min(24)) {
        for (mi, m) in machines.iter().enumerate() {
            let preds = Predictor::new(m.clone())
                .predict_source(src)
                .unwrap_or_else(|e| {
                    bail(format!(
                        "server soak re-check: program {pi} on {}: {e}",
                        m.name()
                    ))
                });
            let fresh = match preds.first() {
                Some(p) => p.total.to_string(),
                None => bail(format!(
                    "server soak re-check: program {pi} on {}: no predictions",
                    m.name()
                )),
            };
            if fresh != oracle[pi][mi] {
                bail(format!(
                    "server soak: post-reclaim divergence (program {pi}, machine {mi}): \
                     got {fresh}, expected {}",
                    oracle[pi][mi]
                ));
            }
        }
    }

    let arena = presage_symbolic::arena_stats();
    let l2_entries = presage_core::l2_memo_entries();
    let arena_total = arena.symbols + arena.monomials + arena.polynomials;
    ServerSoakResult {
        programs: n_programs,
        jobs: n_jobs,
        waves: stats.waves,
        advances: stats.advances,
        latency_p50_us: stats.latency.p50_us,
        latency_p99_us: stats.latency.p99_us,
        translation_hits: stats.translation_hits,
        translation_misses: stats.translation_misses,
        translations_evicted: stats.translations_evicted,
        memo: stats.memo,
        polys_reclaimed: stats.polys_reclaimed,
        blocks_reclaimed: stats.blocks_reclaimed,
        sched_entries_cleared: stats.sched_entries_cleared,
        arena_symbols: arena.symbols,
        arena_monomials: arena.monomials,
        arena_polynomials: arena.polynomials,
        l2_entries,
        ok: stats.advances >= SERVER_SOAK_MIN_ADVANCES
            && arena_total <= SOAK_ARENA_CEILING
            && l2_entries <= SOAK_L2_CEILING,
    }
}

/// Runs the server-loop soak, writes `BENCH_server.json`, and returns
/// whether the epoch/footprint gate held. Bit-identity violations panic
/// inside [`bench_server_soak`] — a wrong answer is a bug, not a missed
/// target.
fn run_server_bench(cfg: &Config) -> bool {
    eprintln!(
        "perfsuite: server soak ({} mode, JSON-lines loop, epoch advance per wave)",
        if cfg.smoke { "smoke" } else { "full" }
    );
    let soak = bench_server_soak(cfg.smoke);
    eprintln!(
        "  {} programs × {} jobs over {} waves, {} advances: p50 {}us p99 {}us",
        soak.programs,
        soak.jobs,
        soak.waves,
        soak.advances,
        soak.latency_p50_us,
        soak.latency_p99_us
    );
    eprintln!(
        "  reclaimed {} polys, {} blocks, {} sched entries; evicted {} translations ({} hits / {} misses)",
        soak.polys_reclaimed,
        soak.blocks_reclaimed,
        soak.sched_entries_cleared,
        soak.translations_evicted,
        soak.translation_hits,
        soak.translation_misses
    );
    eprintln!(
        "  footprint after reclaim: arena {} syms + {} monos + {} polys, L2 memos {} entries  ({})",
        soak.arena_symbols,
        soak.arena_monomials,
        soak.arena_polynomials,
        soak.l2_entries,
        if soak.ok {
            "within ceilings"
        } else {
            "OVER CEILING / TOO FEW EPOCHS"
        }
    );
    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("presage-server-bench-v1".into())),
        (
            "mode".into(),
            Json::Str(if cfg.smoke { "smoke" } else { "full" }.into()),
        ),
        ("programs".into(), Json::Num(soak.programs as f64)),
        ("jobs".into(), Json::Num(soak.jobs as f64)),
        ("waves".into(), Json::Num(soak.waves as f64)),
        ("advances".into(), Json::Num(soak.advances as f64)),
        (
            "latency_us".into(),
            Json::Obj(vec![
                ("p50".into(), Json::Num(soak.latency_p50_us as f64)),
                ("p99".into(), Json::Num(soak.latency_p99_us as f64)),
            ]),
        ),
        (
            "translation".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(soak.translation_hits as f64)),
                ("misses".into(), Json::Num(soak.translation_misses as f64)),
                (
                    "evicted".into(),
                    Json::Num(soak.translations_evicted as f64),
                ),
            ]),
        ),
        (
            "memo".into(),
            Json::Obj(vec![
                ("l1_hits".into(), Json::Num(soak.memo.l1_hits as f64)),
                ("l2_hits".into(), Json::Num(soak.memo.l2_hits as f64)),
                ("misses".into(), Json::Num(soak.memo.misses as f64)),
            ]),
        ),
        (
            "reclaimed".into(),
            Json::Obj(vec![
                ("polys".into(), Json::Num(soak.polys_reclaimed as f64)),
                ("blocks".into(), Json::Num(soak.blocks_reclaimed as f64)),
                (
                    "sched_entries".into(),
                    Json::Num(soak.sched_entries_cleared as f64),
                ),
            ]),
        ),
        (
            "footprint".into(),
            Json::Obj(vec![
                ("arena_symbols".into(), Json::Num(soak.arena_symbols as f64)),
                (
                    "arena_monomials".into(),
                    Json::Num(soak.arena_monomials as f64),
                ),
                (
                    "arena_polynomials".into(),
                    Json::Num(soak.arena_polynomials as f64),
                ),
                ("l2_entries".into(), Json::Num(soak.l2_entries as f64)),
                ("arena_ceiling".into(), Json::Num(SOAK_ARENA_CEILING as f64)),
                ("l2_ceiling".into(), Json::Num(SOAK_L2_CEILING as f64)),
            ]),
        ),
        (
            "min_advances".into(),
            Json::Num(SERVER_SOAK_MIN_ADVANCES as f64),
        ),
        ("ok".into(), Json::Bool(soak.ok)),
    ]);
    if let Err(err) = std::fs::write(&cfg.server_out, report.to_string_pretty() + "\n") {
        eprintln!("perfsuite: cannot write {}: {err}", cfg.server_out);
        std::process::exit(1);
    }
    eprintln!("perfsuite: wrote {}", cfg.server_out);
    if !soak.ok {
        eprintln!(
            "FAIL: server soak gate (advances {} >= {SERVER_SOAK_MIN_ADVANCES}, arena {} <= {SOAK_ARENA_CEILING}, L2 {} <= {SOAK_L2_CEILING})",
            soak.advances,
            soak.arena_symbols + soak.arena_monomials + soak.arena_polynomials,
            soak.l2_entries
        );
        return false;
    }
    eprintln!(
        "perfsuite: server soak gate met ({} advances, bit-identical to the uncached oracle)",
        soak.advances
    );
    true
}

/// Memory-model micro-benchmark: the memoized [`mem_cost`] against the
/// naive per-nest recount [`mem_cost_fresh`] over the Figure 7 suite on
/// cache-extended machines. A restructuring session or a batch server
/// re-costs the same nests over and over, so the warmed steady state is
/// the design point; the fresh recount is what every prediction would
/// pay without the memo.
struct MemoryRow {
    machine: String,
    fresh_costs_per_sec: f64,
    memo_costs_per_sec: f64,
    speedup: f64,
}

/// One kernel's memory-vs-compute split on the cache-extended wide8 —
/// the data behind the EXPERIMENTS.md E16 sweep table. The crossover
/// penalty (compute cycles ÷ distinct lines) is the miss cost at which
/// the kernel tips from compute- to memory-bound: the sweep axis.
struct MemoryScenarioRow {
    kernel: String,
    compute_cycles: f64,
    memory_cycles: f64,
    lines: f64,
    crossover_penalty: f64,
    memory_bound: bool,
}

/// Prints any non-fatal description warnings for a machine entering the
/// suite (e.g. a cache section whose declared TLB fields are parsed but
/// never charged), so benchmark numbers are not read against knobs that
/// silently do nothing.
fn print_machine_warnings(machine: &MachineDesc) {
    for w in machine.warnings() {
        eprintln!("perfsuite: warning: machine `{}`: {w}", machine.name());
    }
}

/// The cache geometry the memory gate runs: 64-byte lines (8 doubles),
/// 1 MiB, fully associative, a POWER1-flavoured 15-cycle line fill.
fn gate_cache() -> CacheParams {
    CacheParams {
        line_bytes: 64,
        size_bytes: 1 << 20,
        miss_penalty: 15,
        ways: 0,
        ..CacheParams::default()
    }
}

fn bench_memory(budget: Duration) -> Vec<MemoryRow> {
    let cache = gate_cache();
    let opts = AggregateOptions::default();
    let mut rows = Vec::new();
    for machine in machines::all() {
        let irs = prediction_irs(&machine);
        // Warm both paths: first-touch allocation off-clock, and the
        // memoized side's L1/L2 tables filled so the timed rounds hit.
        for ir in &irs {
            black_box(mem_cost(ir, &cache, &opts));
            black_box(mem_cost_fresh(ir, &cache, &opts));
        }
        let (memo_n, memo_s) = time_until(budget, || {
            for ir in &irs {
                black_box(mem_cost(ir, &cache, &opts));
            }
            irs.len() as u64
        });
        let (fresh_n, fresh_s) = time_until(budget, || {
            for ir in &irs {
                black_box(mem_cost_fresh(ir, &cache, &opts));
            }
            irs.len() as u64
        });
        let fresh_rate = fresh_n as f64 / fresh_s;
        let memo_rate = memo_n as f64 / memo_s;
        rows.push(MemoryRow {
            machine: machine.name().to_string(),
            fresh_costs_per_sec: fresh_rate,
            memo_costs_per_sec: memo_rate,
            speedup: memo_rate / fresh_rate,
        });
    }
    rows
}

/// Classifies every Figure 7 kernel as memory- or compute-bound on the
/// cache-extended wide8 at n = 512 (Matmul's register block at the
/// origin). Wide issue makes compute cheap, so the streaming kernels tip
/// memory-bound while the divide/√-heavy ones stay compute-bound.
fn memory_scenarios() -> Vec<MemoryScenarioRow> {
    let mut machine = machines::wide8();
    machine.cache = Some(gate_cache());
    print_machine_warnings(&machine);
    let predictor = Predictor::new(machine);
    let point: HashMap<Symbol, f64> = [("n", 512.0), ("i", 1.0), ("j", 1.0)]
        .into_iter()
        .map(|(name, v)| (Symbol::new(name), v))
        .collect();
    figure7()
        .iter()
        .map(|k| {
            let preds = predictor.predict_source(k.source).unwrap_or_else(|e| {
                bail(format!("memory bench: {} failed to predict: {e}", k.name))
            });
            let p = match preds.first() {
                Some(p) => p,
                None => bail(format!("memory bench: {}: no predictions", k.name)),
            };
            let mc = match &p.memcost {
                Some(mc) => mc,
                None => bail(format!(
                    "memory bench: {}: cache-extended machine produced no memory cost",
                    k.name
                )),
            };
            let compute_cycles = p.compute.eval_with_defaults(&point);
            let memory_cycles = mc.cycles.eval_with_defaults(&point);
            let lines = mc.lines.eval_with_defaults(&point);
            MemoryScenarioRow {
                kernel: k.name.to_string(),
                compute_cycles,
                memory_cycles,
                lines,
                crossover_penalty: compute_cycles / lines.max(1.0),
                memory_bound: memory_cycles > compute_cycles,
            }
        })
        .collect()
}

/// Runs the memory-model rows, writes `BENCH_memory.json`, and returns
/// whether the wide8 floor held (always true in smoke mode).
fn run_memory_bench(cfg: &Config, budget: Duration) -> bool {
    eprintln!(
        "perfsuite: memory model ({} mode, memoized mem_cost vs naive recount, Figure 7 suite)",
        if cfg.smoke { "smoke" } else { "full" }
    );
    let rows = bench_memory(budget);
    for row in &rows {
        eprintln!(
            "  {:>10}: fresh {:>9.0} costs/s, memoized {:>9.0} costs/s  ({:.2}x)",
            row.machine, row.fresh_costs_per_sec, row.memo_costs_per_sec, row.speedup
        );
    }
    let scenarios = memory_scenarios();
    eprintln!("perfsuite: memory-vs-compute split (cache-extended wide8, n = 512)");
    for s in &scenarios {
        eprintln!(
            "  {:>8}: compute {:>12.0} cycles, memory {:>12.0} cycles over {:>8.0} lines, crossover at {:>6.1}-cycle misses  ({})",
            s.kernel,
            s.compute_cycles,
            s.memory_cycles,
            s.lines,
            s.crossover_penalty,
            if s.memory_bound {
                "memory-bound"
            } else {
                "compute-bound"
            }
        );
    }
    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("presage-memory-bench-v1".into())),
        (
            "mode".into(),
            Json::Str(if cfg.smoke { "smoke" } else { "full" }.into()),
        ),
        (
            "memory".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("machine".into(), Json::Str(r.machine.clone())),
                            (
                                "fresh_costs_per_sec".into(),
                                Json::Num(r.fresh_costs_per_sec.round()),
                            ),
                            (
                                "memo_costs_per_sec".into(),
                                Json::Num(r.memo_costs_per_sec.round()),
                            ),
                            ("speedup".into(), Json::Num(round2(r.speedup))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "scenarios".into(),
            Json::Arr(
                scenarios
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("kernel".into(), Json::Str(s.kernel.clone())),
                            ("compute_cycles".into(), Json::Num(s.compute_cycles.round())),
                            ("memory_cycles".into(), Json::Num(s.memory_cycles.round())),
                            ("lines".into(), Json::Num(s.lines.round())),
                            (
                                "crossover_penalty".into(),
                                Json::Num(round2(s.crossover_penalty)),
                            ),
                            ("memory_bound".into(), Json::Bool(s.memory_bound)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "targets".into(),
            Json::Obj(vec![(
                "memory_wide8_min".into(),
                Json::Num(MEMORY_WIDE8_MIN),
            )]),
        ),
    ]);
    if let Err(err) = std::fs::write(&cfg.memory_out, report.to_string_pretty() + "\n") {
        eprintln!("perfsuite: cannot write {}: {err}", cfg.memory_out);
        std::process::exit(1);
    }
    eprintln!("perfsuite: wrote {}", cfg.memory_out);
    if cfg.smoke {
        return true;
    }
    let wide8 = rows
        .iter()
        .find(|r| r.machine == "wide8")
        .map(|r| r.speedup)
        .unwrap_or(0.0);
    if wide8 < MEMORY_WIDE8_MIN {
        eprintln!(
            "FAIL: memoized memory-model speedup on wide8 is {wide8:.2}x (target {MEMORY_WIDE8_MIN}x)"
        );
        return false;
    }
    eprintln!("perfsuite: memory target met (wide8 {wide8:.2}x >= {MEMORY_WIDE8_MIN}x)");
    true
}

/// Translation micro-benchmark: source-level prediction throughput
/// ([`Predictor::predict_source`] over the Figure 7 suite) with and
/// without a warmed [`TranslationCache`]. Both sides parse the source
/// each round — the cache keys on the canonical AST hash, so a hit skips
/// exactly sema + translation + interning, which is what this measures.
struct TranslationRow {
    machine: String,
    uncached_preds_per_sec: f64,
    cached_preds_per_sec: f64,
    speedup: f64,
}

fn bench_translation(budget: Duration) -> Vec<TranslationRow> {
    let mut rows = Vec::new();
    for machine in machines::all() {
        let uncached = Predictor::new(machine.clone());
        let cached = Predictor::new(machine.clone())
            .with_translation_cache(Arc::new(TranslationCache::new()));
        let sources: Vec<&str> = figure7().iter().map(|k| k.source).collect();
        let predict = |p: &Predictor, src: &str| {
            p.predict_source(src).unwrap_or_else(|e| {
                bail(format!(
                    "translation bench: Figure 7 kernel failed on {}: {e}",
                    machine.name()
                ))
            })
        };
        // Warm both predictors; the cached one's warm-up round populates
        // the translation cache, so the timed rounds are all hits.
        for src in &sources {
            black_box(predict(&uncached, src));
            black_box(predict(&cached, src));
        }
        let (cold_n, cold_s) = time_until(budget, || {
            for src in &sources {
                black_box(predict(&uncached, src));
            }
            sources.len() as u64
        });
        let (warm_n, warm_s) = time_until(budget, || {
            for src in &sources {
                black_box(predict(&cached, src));
            }
            sources.len() as u64
        });
        let cold_rate = cold_n as f64 / cold_s;
        let warm_rate = warm_n as f64 / warm_s;
        rows.push(TranslationRow {
            machine: machine.name().to_string(),
            uncached_preds_per_sec: cold_rate,
            cached_preds_per_sec: warm_rate,
            speedup: warm_rate / cold_rate,
        });
    }
    rows
}

/// Symbolic-engine micro-benchmark: the four polynomial operations the
/// aggregator leans on, hash-consed engine vs the verbatim seed engine.
/// 64 distinct input variants per round, so steady-state memo behavior
/// (the optimized engine's design point) is what is measured.
struct SymbolicRow {
    op: &'static str,
    ref_ops_per_sec: f64,
    opt_ops_per_sec: f64,
    speedup: f64,
}

const SYM_VARIANTS: i64 = 64;

/// Builds the micro-benchmark workload and measures one engine's four
/// operation rates, in order: add, mul, substitute, summation.
macro_rules! sym_engine_rates {
    ($poly:ty, $sum_range:path, $budget:expr) => {{
        let x = Symbol::new("x");
        let y = Symbol::new("y");
        let i = Symbol::new("i");
        let n = Symbol::new("n");
        // (x + y + k)^2 — multivariate degree-2 inputs.
        let quads: Vec<$poly> = (0..SYM_VARIANTS)
            .map(|k| {
                let b = <$poly>::var(x.clone()) + <$poly>::var(y.clone()) + <$poly>::from(k);
                &b * &b
            })
            .collect();
        // x - k — small factors for products.
        let lins: Vec<$poly> = (0..SYM_VARIANTS)
            .map(|k| <$poly>::var(x.clone()) - <$poly>::from(k))
            .collect();
        // k·i² + i + 1 — summation bodies over the index i.
        let bodies: Vec<$poly> = (0..SYM_VARIANTS)
            .map(|k| {
                <$poly>::var(i.clone()).pow(2).scale(k) + <$poly>::var(i.clone()) + <$poly>::one()
            })
            .collect();
        let repl = <$poly>::var(n.clone()) + <$poly>::one();
        let ub = <$poly>::var(n.clone());
        let one = <$poly>::one();

        let add = |_: ()| {
            let mut acc = <$poly>::zero();
            for q in &quads {
                acc += q.clone();
            }
            black_box(&acc);
            quads.len() as u64
        };
        let mul = |_: ()| {
            for (q, l) in quads.iter().zip(&lins) {
                black_box(q * l);
            }
            quads.len() as u64
        };
        let subst =
            |_: ()| {
                for q in &quads {
                    black_box(q.subst(&x, &repl).unwrap_or_else(|e| {
                        bail(format!("symbolic bench: substitution failed: {e}"))
                    }));
                }
                quads.len() as u64
            };
        let sum = |_: ()| {
            for b in &bodies {
                black_box($sum_range(b, &i, &one, &ub).unwrap_or_else(|| {
                    bail("symbolic bench: degree <= 4 summation returned none".to_string())
                }));
            }
            bodies.len() as u64
        };

        // Warm each op once (first-touch allocation, cold memo tables).
        add(());
        mul(());
        subst(());
        sum(());
        let rate = |work: &dyn Fn(()) -> u64| {
            let (ops, secs) = time_until($budget, || work(()));
            ops as f64 / secs
        };
        [rate(&add), rate(&mul), rate(&subst), rate(&sum)]
    }};
}

fn bench_symbolic(budget: Duration) -> Vec<SymbolicRow> {
    let opt = sym_engine_rates!(
        presage_symbolic::Poly,
        presage_symbolic::summation::sum_range,
        budget
    );
    let refr = sym_engine_rates!(
        presage_symbolic::reference::Poly,
        presage_symbolic::reference::summation::sum_range,
        budget
    );
    ["add", "mul", "substitute", "summation"]
        .into_iter()
        .zip(opt)
        .zip(refr)
        .map(|((op, o), r)| SymbolicRow {
            op,
            ref_ops_per_sec: r,
            opt_ops_per_sec: o,
            speedup: o / r,
        })
        .collect()
}

/// The restructuring workload of §3.2: the same programs searched at
/// several evaluation points, as a compiler would while restructuring.
/// Seed behavior re-predicts every candidate from scratch each time
/// (fresh cache per search); the optimized path shares one memo table.
struct AstarResult {
    uncached_ms: f64,
    cached_ms: f64,
    speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
}

/// MATMUL, JACOBI and F4 parsed for a restructuring session. A kernel
/// that stops parsing aborts the named bench with the diagnostic.
fn session_kernels(bench: &str) -> Vec<presage_frontend::Subroutine> {
    [kernels::MATMUL, kernels::JACOBI, kernels::F4]
        .iter()
        .map(|s| {
            let mut prog = presage_frontend::parse(s)
                .unwrap_or_else(|e| bail(format!("{bench}: session kernel failed to parse: {e}")));
            if prog.units.is_empty() {
                bail(format!("{bench}: session kernel parsed to no units"));
            }
            prog.units.remove(0)
        })
        .collect()
}

fn bench_astar(smoke: bool) -> AstarResult {
    let predictor = Predictor::new(machines::wide8());
    let subs = session_kernels("A* bench");
    let eval_points: &[f64] = if smoke {
        &[64.0, 256.0]
    } else {
        &[64.0, 128.0, 256.0, 512.0]
    };
    let max_expansions = if smoke { 4 } else { 12 };
    let opts_at = |n: f64| SearchOptions {
        max_expansions,
        max_depth: 2,
        eval_point: HashMap::from([("n".to_string(), n)]),
        ..Default::default()
    };

    // Both modes run as best-of-3 sessions: single-shot timings on a
    // loaded box jitter enough to flip the enforced floor, and the
    // minimum is the standard noise-robust estimator.
    const REPS: usize = 3;

    // Seed mode: every search pays full prediction (fresh cache).
    let mut uncached = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        for sub in &subs {
            for &n in eval_points {
                let fresh = PredictionCache::new();
                black_box(astar_search_cached(sub, &predictor, &opts_at(n), &fresh));
            }
        }
        uncached = uncached.min(start.elapsed());
    }

    // Optimized mode: one cache across the whole restructuring session
    // (a fresh session per rep; hit/miss counts are deterministic).
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut cached = Duration::MAX;
    for _ in 0..REPS {
        let shared = PredictionCache::new();
        hits = 0;
        misses = 0;
        let start = Instant::now();
        for sub in &subs {
            for &n in eval_points {
                let r = astar_search_cached(sub, &predictor, &opts_at(n), &shared);
                hits += r.cache_hits;
                misses += r.cache_misses;
                black_box(&r);
            }
        }
        cached = cached.min(start.elapsed());
    }

    AstarResult {
        uncached_ms: uncached.as_secs_f64() * 1e3,
        cached_ms: cached.as_secs_f64() * 1e3,
        speedup: uncached.as_secs_f64() / cached.as_secs_f64(),
        cache_hits: hits,
        cache_misses: misses,
    }
}

/// Variant-search micro-benchmark: the structural e-graph engine
/// (AST normalization + `fold128` keys, e-class merging) against the A*
/// baseline whose canonicalization re-emits and re-parses every variant.
/// Each engine runs the same restructuring session — MATMUL, JACOBI and
/// F4 searched at several evaluation points on one shared prediction
/// cache — warmed first, so the timed rounds isolate exactly the
/// per-variant overhead the e-graph removes: canonicalization plus
/// search bookkeeping, with predictions served from cache on both sides.
/// Throughput is variants *explored* per second (evaluated + merged +
/// rejected). The heuristic columns report how many cost evaluations the
/// explain-driven move ordering needs before finding the winner.
struct SearchRow {
    machine: String,
    astar_variants_per_sec: f64,
    egraph_variants_per_sec: f64,
    speedup: f64,
    astar_explored: u64,
    egraph_explored: u64,
    egraph_merged: u64,
    egraph_expansions: u64,
    found_at_heuristic_on: u64,
    found_at_heuristic_off: u64,
    /// Candidate evaluations over the cold session with bound pruning on.
    pruned_evaluated: u64,
    /// Same cold session with pruning off — the denominator of the
    /// expansions-to-winner reduction gate.
    unpruned_evaluated: u64,
    /// Predictions the admissible bound skipped outright (cold, pruned).
    predictions_avoided: u64,
    /// Pruned and unpruned winners bit-identical on every (kernel, eval
    /// point) — the winner-invariance admissibility guarantees.
    winners_match: bool,
    /// Pruned winner never predicts worse than the unpruned A* oracle.
    dominates_astar: bool,
    /// Mean `lower bound / predicted cost` of the session kernels at
    /// n = 256: how much of the true cost the bound explains (1.0 would
    /// be a perfect bound).
    bound_tightness: f64,
}

fn bench_search(smoke: bool) -> Vec<SearchRow> {
    let subs = session_kernels("variant-search bench");
    let eval_points: &[f64] = if smoke {
        &[64.0, 256.0]
    } else {
        &[64.0, 128.0, 256.0, 512.0]
    };
    let max_expansions = if smoke { 4 } else { 12 };
    let opts_at = |n: f64| SearchOptions {
        max_expansions,
        max_depth: 2,
        eval_point: HashMap::from([("n".to_string(), n)]),
        ..Default::default()
    };
    let config_at = |n: f64, heuristic: bool, prune: bool| SearchConfig {
        strategy: SearchStrategy::EGraph,
        options: opts_at(n),
        node_budget: 256,
        heuristic,
        prune,
    };
    const REPS: usize = 3;

    let mut rows = Vec::new();
    for machine in machines::all() {
        let name = machine.name().to_string();
        // A warmed translation cache on the shared predictor, as a
        // restructuring session would run: both engines translate the
        // same variants over and over (the heuristic's explain pass in
        // particular), so steady-state throughput is what matters.
        let predictor =
            Predictor::new(machine).with_translation_cache(Arc::new(TranslationCache::new()));

        // Baseline session: A* with textual (re-emit + re-parse)
        // canonicalization. Warm the shared cache once off-clock, then
        // time best-of-REPS warm sessions.
        let astar_cache = PredictionCache::new();
        let astar_session = |cache: &PredictionCache| {
            let mut explored = 0u64;
            for sub in &subs {
                for &n in eval_points {
                    let r = astar_search_cached(sub, &predictor, &opts_at(n), cache);
                    explored += (r.evaluated + r.merged_variants + r.rejected_variants) as u64;
                    black_box(&r);
                }
            }
            explored
        };
        astar_session(&astar_cache);
        let mut astar_secs = f64::MAX;
        let mut astar_explored = 0u64;
        for _ in 0..REPS {
            let start = Instant::now();
            let explored = astar_session(&astar_cache);
            let secs = start.elapsed().as_secs_f64();
            if secs < astar_secs {
                astar_secs = secs;
                astar_explored = explored;
            }
        }

        // Structural session: same workload through the e-graph engine,
        // bound pruning on (the shipped default).
        let egraph_cache = PredictionCache::new();
        let egraph_session = |cache: &PredictionCache, heuristic: bool| {
            let mut explored = 0u64;
            let mut merged = 0u64;
            let mut expansions = 0u64;
            let mut found_at = 0u64;
            for sub in &subs {
                for &n in eval_points {
                    let r = search_cached(sub, &predictor, &config_at(n, heuristic, true), cache);
                    // A pruned candidate is a dispositioned variant like a
                    // merged or rejected one: the engine considered it and
                    // resolved it without a prediction, so it counts
                    // toward the session's processing rate.
                    explored +=
                        (r.evaluated + r.merged_variants + r.rejected_variants + r.pruned_variants)
                            as u64;
                    merged += r.merged_variants as u64;
                    expansions += r.expansions as u64;
                    found_at += r.best_found_at as u64;
                    black_box(&r);
                }
            }
            (explored, merged, expansions, found_at)
        };
        egraph_session(&egraph_cache, true);
        let mut egraph_secs = f64::MAX;
        let mut egraph_stats = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..REPS {
            let start = Instant::now();
            let stats = egraph_session(&egraph_cache, true);
            let secs = start.elapsed().as_secs_f64();
            if secs < egraph_secs {
                egraph_secs = secs;
                egraph_stats = stats;
            }
        }
        // Heuristic-off pass (untimed): how many evaluations the winner
        // costs without explain-driven move ordering.
        let (_, _, _, found_at_off) = egraph_session(&PredictionCache::new(), false);

        // Pruning effectiveness, measured cold (fresh prediction cache
        // per search, so every avoided prediction is real work avoided,
        // not a cache hit): the same session with the bound on and off,
        // winner identity checked per (kernel, eval point), plus the
        // unpruned A* oracle for the dominance check.
        let mut pruned_evaluated = 0u64;
        let mut unpruned_evaluated = 0u64;
        let mut predictions_avoided = 0u64;
        let mut winners_match = true;
        let mut dominates_astar = true;
        for sub in &subs {
            for &n in eval_points {
                let rp = search_cached(
                    sub,
                    &predictor,
                    &config_at(n, true, true),
                    &PredictionCache::new(),
                );
                let ru = search_cached(
                    sub,
                    &predictor,
                    &config_at(n, true, false),
                    &PredictionCache::new(),
                );
                let ra = astar_search_cached(sub, &predictor, &opts_at(n), &PredictionCache::new());
                pruned_evaluated += rp.evaluated as u64;
                unpruned_evaluated += ru.evaluated as u64;
                predictions_avoided += rp.pruned_variants as u64;
                if rp.best.to_string() != ru.best.to_string() {
                    winners_match = false;
                }
                if rp.best_cost > ra.best_cost + 1e-6 {
                    dominates_astar = false;
                }
            }
        }

        // Bound tightness: how much of the predicted cost the admissible
        // floor explains on the unmodified kernels at n = 256.
        let bindings: HashMap<Symbol, f64> = HashMap::from([(Symbol::new("n"), 256.0)]);
        let mut tightness_sum = 0.0;
        for sub in &subs {
            let lb = predictor
                .lower_bound_subroutine(sub, &bindings)
                .unwrap_or(0.0);
            let cost = predictor
                .predict_subroutine_cost(sub)
                .map(|e| e.eval_with_defaults(&bindings))
                .unwrap_or(f64::INFINITY);
            tightness_sum += if cost > 0.0 && cost.is_finite() {
                lb / cost
            } else {
                0.0
            };
        }
        let bound_tightness = tightness_sum / subs.len() as f64;

        let astar_rate = astar_explored as f64 / astar_secs;
        let egraph_rate = egraph_stats.0 as f64 / egraph_secs;
        rows.push(SearchRow {
            machine: name,
            astar_variants_per_sec: astar_rate,
            egraph_variants_per_sec: egraph_rate,
            speedup: egraph_rate / astar_rate,
            astar_explored,
            egraph_explored: egraph_stats.0,
            egraph_merged: egraph_stats.1,
            egraph_expansions: egraph_stats.2,
            found_at_heuristic_on: egraph_stats.3,
            found_at_heuristic_off: found_at_off,
            pruned_evaluated,
            unpruned_evaluated,
            predictions_avoided,
            winners_match,
            dominates_astar,
            bound_tightness,
        });
    }
    rows
}

/// Simulator micro-benchmark: the event-driven engine vs the retained
/// cycle-driven reference on the workloads where the bench tables spend
/// their simulator wall clock — the overlap/unroll tables' long
/// overlapped loop streams (every Figure 7 innermost block as a 64-copy
/// stream, the deepest shape `unroll_profile` probes) and the efficiency
/// table's big mixed block with unpipelined divides, 4-way overlapped. Per-cycle scanning is
/// quadratic in stream length; the event engine is what keeps these
/// tables cheap. Both engines share the micro expansion, so the ratio
/// isolates exactly the scheduling algorithm.
struct SimulatorRow {
    machine: String,
    ref_sims_per_sec: f64,
    event_sims_per_sec: f64,
    speedup: f64,
}

// 64 overlapped copies matches the deepest stream the unroll sweeps
// build (unroll factor 8 × 8 overlapped iterations); the big block gets
// a modest 4-way overlap, as a body that size would in the overlap table.
const LOOP_COPIES: usize = 64;
const BIG_BLOCK_COPIES: usize = 4;
const BIG_BLOCK_OPS: usize = 512;

/// A big mixed block in the efficiency table's mold — dependence chains,
/// shared inputs, and a sprinkling of unpipelined divides.
fn big_mixed_block() -> BlockIr {
    use presage_machine::BasicOp::*;
    use presage_translate::ValueDef;
    let mut b = BlockIr::new();
    let x = b.add_value(ValueDef::External("x".into()));
    let mut prev = x;
    for i in 0..BIG_BLOCK_OPS {
        let basic = match i % 7 {
            0 => FAdd,
            1 => FMul,
            2 => IAdd,
            3 => Fma,
            4 => LoadFloat,
            5 => FDiv,
            _ => IMul,
        };
        let args = if i % 3 == 0 {
            vec![prev, x]
        } else {
            vec![x, x]
        };
        prev = b.emit(basic, args);
    }
    b
}

fn bench_simulator(budget: Duration) -> Vec<SimulatorRow> {
    use presage_sim::{reference, scheduler};
    let mut rows = Vec::new();
    let big = big_mixed_block();
    for machine in machines::all() {
        let blocks = placement_blocks(&machine);
        let sims_per_round = (blocks.len() + 1) as u64;
        let diverged = |engine: &str, e: presage_sim::SimError| -> ! {
            bail(format!(
                "simulator bench: {engine} engine failed to converge on {}: {e}",
                machine.name()
            ))
        };
        let event_round = || {
            for b in &blocks {
                let copies: Vec<&BlockIr> = std::iter::repeat(b).take(LOOP_COPIES).collect();
                black_box(
                    scheduler::simulate_blocks(&machine, copies.iter().copied())
                        .unwrap_or_else(|e| diverged("event-driven", e)),
                );
            }
            let big_copies: Vec<&BlockIr> =
                std::iter::repeat(&big).take(BIG_BLOCK_COPIES).collect();
            black_box(
                scheduler::simulate_blocks(&machine, big_copies.iter().copied())
                    .unwrap_or_else(|e| diverged("event-driven", e)),
            );
            sims_per_round
        };
        let ref_round = || {
            for b in &blocks {
                let copies: Vec<&BlockIr> = std::iter::repeat(b).take(LOOP_COPIES).collect();
                black_box(
                    reference::simulate_blocks(&machine, copies.iter().copied())
                        .unwrap_or_else(|e| diverged("cycle-driven", e)),
                );
            }
            let big_copies: Vec<&BlockIr> =
                std::iter::repeat(&big).take(BIG_BLOCK_COPIES).collect();
            black_box(
                reference::simulate_blocks(&machine, big_copies.iter().copied())
                    .unwrap_or_else(|e| diverged("cycle-driven", e)),
            );
            sims_per_round
        };
        // Warm both engines once so first-touch allocation is off-clock.
        event_round();
        ref_round();
        let (event_n, event_s) = time_until(budget, event_round);
        let (ref_n, ref_s) = time_until(budget, ref_round);
        let ref_rate = ref_n as f64 / ref_s;
        let event_rate = event_n as f64 / event_s;
        rows.push(SimulatorRow {
            machine: machine.name().to_string(),
            ref_sims_per_sec: ref_rate,
            event_sims_per_sec: event_rate,
            speedup: event_rate / ref_rate,
        });
    }
    rows
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

const PLACEMENT_WIDE8_MIN: f64 = 3.0;
const PREDICTION_WIDE8_MIN: f64 = 5.0;
const PREDICTION_RISC1_MIN: f64 = 8.0;
const TRANSLATION_WIDE8_MIN: f64 = 1.5;
const ASTAR_MIN: f64 = 2.0;
/// Structural e-graph engine variants/sec over the textual-A* baseline
/// on wide8, warmed prediction caches on both sides — the tentpole
/// floor: AST normalization must beat re-emit + re-parse by at least
/// this much per explored variant.
const SEARCH_WIDE8_MIN: f64 = 3.0;
/// The wide8 e-graph throughput recorded in BENCH_search.json before the
/// bound-and-prune core landed (PR 7 baseline): the pruned engine with
/// the block-summary cache must beat it by [`SEARCH_WIDE8_VPS_GAIN_MIN`].
const SEARCH_WIDE8_BASELINE_VPS: f64 = 8963.0;
/// Required variants-evaluated-per-second gain over the PR 7 baseline.
const SEARCH_WIDE8_VPS_GAIN_MIN: f64 = 1.5;
/// Cold-session candidate evaluations with bound pruning on must be at
/// most this fraction of the unpruned count on wide8.
const SEARCH_PRUNED_RATIO_MAX: f64 = 0.7;
const SIM_WIDE8_MIN: f64 = 4.0;
/// Warmed (memoized) memory-model cost throughput over the naive
/// per-nest recount on wide8 — the floor the §2.3 cache model must hold
/// so adding memory attribution doesn't tax the batch/server hot paths.
const MEMORY_WIDE8_MIN: f64 = 2.0;
/// 8-worker batch prediction vs single-worker, enforced only on hosts
/// with at least [`BATCH_MIN_CORES`] cores — scoped-thread fan-out cannot
/// beat sequential on a single-core box, and the ratio is meaningless
/// below the worker count it gates.
const BATCH_8W_MIN: f64 = 3.0;
const BATCH_MIN_CORES: usize = 8;
/// The 1→4-worker monotonicity floor arms on any host with at least this
/// many cores — the hole that let a 0.4× collapse land green was arming
/// the only batch floor at ≥8 cores, which no CI host had.
const BATCH_MONOTONE_MIN_CORES: usize = 4;
/// Throughput at each step of 1→4 workers must be at least this fraction
/// of the previous step: non-decreasing up to measurement noise.
const BATCH_MONOTONE_TOLERANCE: f64 = 0.9;

/// Worst step ratio `rate(w_{k+1}) / rate(w_k)` over the 1→4-worker rows.
fn batch_monotone_ratio(rows: &[BatchRow]) -> f64 {
    rows.windows(2)
        .filter(|w| w[1].workers <= 4)
        .map(|w| w[1].preds_per_sec / w[0].preds_per_sec)
        .fold(f64::INFINITY, f64::min)
}

/// Runs the variant-search rows, writes `BENCH_search.json`, and returns
/// whether the wide8 floor held (always true in smoke mode).
fn run_search_bench(cfg: &Config) -> bool {
    eprintln!(
        "perfsuite: variant search ({} mode, e-graph vs textual A*, warmed caches)",
        if cfg.smoke { "smoke" } else { "full" }
    );
    let rows = bench_search(cfg.smoke);
    for row in &rows {
        eprintln!(
            "  {:>10}: A* {:>8.0} variants/s, e-graph {:>8.0} variants/s  ({:.2}x)  merged {:>3}, winner at {:>3} evals (heuristic) vs {:>3} (none)",
            row.machine,
            row.astar_variants_per_sec,
            row.egraph_variants_per_sec,
            row.speedup,
            row.egraph_merged,
            row.found_at_heuristic_on,
            row.found_at_heuristic_off
        );
        eprintln!(
            "  {:>10}  pruning: {} evals vs {} unpruned ({:.2}x), {} predictions avoided, bound tightness {:.3}, winners {}, A* dominance {}",
            "",
            row.pruned_evaluated,
            row.unpruned_evaluated,
            row.pruned_evaluated as f64 / row.unpruned_evaluated.max(1) as f64,
            row.predictions_avoided,
            row.bound_tightness,
            if row.winners_match { "identical" } else { "DIVERGED" },
            if row.dominates_astar { "holds" } else { "VIOLATED" },
        );
    }
    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("presage-search-bench-v2".into())),
        (
            "mode".into(),
            Json::Str(if cfg.smoke { "smoke" } else { "full" }.into()),
        ),
        (
            "search".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("machine".into(), Json::Str(r.machine.clone())),
                            (
                                "astar_variants_per_sec".into(),
                                Json::Num(r.astar_variants_per_sec.round()),
                            ),
                            (
                                "egraph_variants_per_sec".into(),
                                Json::Num(r.egraph_variants_per_sec.round()),
                            ),
                            ("speedup".into(), Json::Num(round2(r.speedup))),
                            ("astar_explored".into(), Json::Num(r.astar_explored as f64)),
                            (
                                "egraph_explored".into(),
                                Json::Num(r.egraph_explored as f64),
                            ),
                            ("egraph_merged".into(), Json::Num(r.egraph_merged as f64)),
                            (
                                "egraph_expansions".into(),
                                Json::Num(r.egraph_expansions as f64),
                            ),
                            (
                                "found_at_heuristic_on".into(),
                                Json::Num(r.found_at_heuristic_on as f64),
                            ),
                            (
                                "found_at_heuristic_off".into(),
                                Json::Num(r.found_at_heuristic_off as f64),
                            ),
                            (
                                "pruned_evaluated".into(),
                                Json::Num(r.pruned_evaluated as f64),
                            ),
                            (
                                "unpruned_evaluated".into(),
                                Json::Num(r.unpruned_evaluated as f64),
                            ),
                            (
                                "predictions_avoided".into(),
                                Json::Num(r.predictions_avoided as f64),
                            ),
                            ("winners_match".into(), Json::Bool(r.winners_match)),
                            ("dominates_astar".into(), Json::Bool(r.dominates_astar)),
                            (
                                "bound_tightness".into(),
                                Json::Num((r.bound_tightness * 1000.0).round() / 1000.0),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "targets".into(),
            Json::Obj(vec![
                ("search_wide8_min".into(), Json::Num(SEARCH_WIDE8_MIN)),
                (
                    "search_wide8_baseline_vps".into(),
                    Json::Num(SEARCH_WIDE8_BASELINE_VPS),
                ),
                (
                    "search_wide8_vps_gain_min".into(),
                    Json::Num(SEARCH_WIDE8_VPS_GAIN_MIN),
                ),
                (
                    "search_pruned_ratio_max".into(),
                    Json::Num(SEARCH_PRUNED_RATIO_MAX),
                ),
            ]),
        ),
    ]);
    if let Err(err) = std::fs::write(&cfg.search_out, report.to_string_pretty() + "\n") {
        eprintln!("perfsuite: cannot write {}: {err}", cfg.search_out);
        std::process::exit(1);
    }
    eprintln!("perfsuite: wrote {}", cfg.search_out);
    if cfg.smoke {
        return true;
    }
    let Some(wide8) = rows.iter().find(|r| r.machine == "wide8") else {
        eprintln!("FAIL: no wide8 row in the search bench");
        return false;
    };
    let mut ok = true;
    if wide8.speedup < SEARCH_WIDE8_MIN {
        eprintln!(
            "FAIL: e-graph search speedup on wide8 is {:.2}x (target {SEARCH_WIDE8_MIN}x)",
            wide8.speedup
        );
        ok = false;
    }
    let vps_floor = SEARCH_WIDE8_BASELINE_VPS * SEARCH_WIDE8_VPS_GAIN_MIN;
    if wide8.egraph_variants_per_sec < vps_floor {
        eprintln!(
            "FAIL: wide8 e-graph throughput {:.0} variants/s is below {:.0} ({}x the PR 7 baseline {:.0})",
            wide8.egraph_variants_per_sec, vps_floor, SEARCH_WIDE8_VPS_GAIN_MIN, SEARCH_WIDE8_BASELINE_VPS
        );
        ok = false;
    }
    if !wide8.winners_match {
        eprintln!("FAIL: wide8 pruned-search winner diverged from the unpruned winner");
        ok = false;
    }
    if !wide8.dominates_astar {
        eprintln!("FAIL: wide8 pruned-search winner predicts worse than the A* oracle");
        ok = false;
    }
    let ratio = wide8.pruned_evaluated as f64 / wide8.unpruned_evaluated.max(1) as f64;
    if ratio > SEARCH_PRUNED_RATIO_MAX {
        eprintln!(
            "FAIL: wide8 pruned session evaluated {:.2}x of the unpruned count (max {SEARCH_PRUNED_RATIO_MAX}x)",
            ratio
        );
        ok = false;
    }
    if ok {
        eprintln!(
            "perfsuite: search targets met (wide8 {:.2}x >= {SEARCH_WIDE8_MIN}x, {:.0} variants/s >= {:.0}, pruned ratio {:.2} <= {SEARCH_PRUNED_RATIO_MAX}, winners identical, A* dominance holds)",
            wide8.speedup, wide8.egraph_variants_per_sec, vps_floor, ratio
        );
    }
    ok
}

fn main() {
    let cfg = parse_args();
    let budget = if cfg.smoke {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(500)
    };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for machine in machines::all() {
        print_machine_warnings(&machine);
    }

    if cfg.search_only {
        if !run_search_bench(&cfg) {
            std::process::exit(1);
        }
        return;
    }
    if cfg.server_only {
        if !run_server_bench(&cfg) {
            std::process::exit(1);
        }
        return;
    }
    if cfg.memory_only {
        if !run_memory_bench(&cfg, budget) {
            std::process::exit(1);
        }
        return;
    }
    let batch_floor_armed = host_cores >= BATCH_MIN_CORES;
    let batch_monotone_armed = host_cores >= BATCH_MONOTONE_MIN_CORES;

    eprintln!(
        "perfsuite: batch prediction ({} mode, {host_cores} cores, predict_batch, machines × Figure 7)",
        if cfg.smoke { "smoke" } else { "full" }
    );
    let batch = bench_batch(budget);
    for row in &batch {
        eprintln!(
            "  {:>2} workers: {:>9.0} preds/s  (L1 {:>9}, L2 {:>7}, miss {:>6}, steals {:>5})",
            row.workers, row.preds_per_sec, row.l1_hits, row.l2_hits, row.misses, row.steals
        );
    }
    let batch_speedup_8w = batch[batch.len() - 1].preds_per_sec / batch[0].preds_per_sec;
    let batch_monotone = batch_monotone_ratio(&batch);
    eprintln!(
        "  8w/1w speedup {:.2}x ({}); worst 1→4w step ratio {:.2} ({})",
        batch_speedup_8w,
        if batch_floor_armed {
            "floor armed"
        } else {
            "informational: host has <8 cores"
        },
        batch_monotone,
        if batch_monotone_armed {
            "monotone floor armed"
        } else {
            "informational: host has <4 cores"
        }
    );

    eprintln!("perfsuite: soak (distinct generated programs, footprint ceilings)");
    let soak = bench_soak(cfg.smoke);
    eprintln!(
        "  {} programs × {} jobs: arena {} syms + {} monos + {} polys, L2 memos {} entries  ({})",
        soak.programs,
        soak.jobs,
        soak.arena_symbols,
        soak.arena_monomials,
        soak.arena_polynomials,
        soak.l2_entries,
        if soak.ok {
            "within ceilings"
        } else {
            "OVER CEILING"
        }
    );

    let mut batch_failed = false;
    if !soak.ok {
        eprintln!(
            "FAIL: soak footprint over ceiling (arena {} > {SOAK_ARENA_CEILING} or L2 {} > {SOAK_L2_CEILING})",
            soak.arena_symbols + soak.arena_monomials + soak.arena_polynomials,
            soak.l2_entries
        );
        batch_failed = true;
    }
    if !cfg.smoke {
        if batch_floor_armed && batch_speedup_8w < BATCH_8W_MIN {
            eprintln!(
                "FAIL: predict_batch 8-worker speedup is {batch_speedup_8w:.2}x (target {BATCH_8W_MIN}x)"
            );
            batch_failed = true;
        }
        if batch_monotone_armed && batch_monotone < BATCH_MONOTONE_TOLERANCE {
            eprintln!(
                "FAIL: predict_batch throughput drops from 1→4 workers (worst step ratio {batch_monotone:.2}, floor {BATCH_MONOTONE_TOLERANCE})"
            );
            batch_failed = true;
        }
    }
    if cfg.batch_only {
        if batch_failed {
            std::process::exit(1);
        }
        eprintln!("perfsuite: batch-only checks passed");
        return;
    }

    eprintln!("perfsuite: end-to-end prediction (Figure 7 suite)");
    let prediction = bench_prediction(budget);
    for row in &prediction {
        eprintln!(
            "  {:>10}: reference {:>9.0} preds/s, optimized {:>9.0} preds/s  ({:.2}x)",
            row.machine, row.ref_preds_per_sec, row.opt_preds_per_sec, row.speedup
        );
    }

    eprintln!("perfsuite: placement");
    let placement = bench_placement(budget);
    for row in &placement {
        eprintln!(
            "  {:>10}: naive {:>12.0} ops/s, optimized {:>12.0} ops/s  ({:.2}x)",
            row.machine, row.naive_ops_per_sec, row.opt_ops_per_sec, row.speedup
        );
    }

    eprintln!("perfsuite: translation cache (predict_source, Figure 7 suite)");
    let translation = bench_translation(budget);
    for row in &translation {
        eprintln!(
            "  {:>10}: uncached {:>9.0} preds/s, warmed cache {:>9.0} preds/s  ({:.2}x)",
            row.machine, row.uncached_preds_per_sec, row.cached_preds_per_sec, row.speedup
        );
    }

    eprintln!("perfsuite: symbolic engine micro-benchmark");
    let symbolic = bench_symbolic(budget);
    for row in &symbolic {
        eprintln!(
            "  {:>10}: reference {:>9.0} ops/s, optimized {:>9.0} ops/s  ({:.2}x)",
            row.op, row.ref_ops_per_sec, row.opt_ops_per_sec, row.speedup
        );
    }

    eprintln!("perfsuite: simulator (event-driven vs cycle-driven, Figure 7 suite)");
    let simulator = bench_simulator(budget);
    for row in &simulator {
        eprintln!(
            "  {:>10}: reference {:>9.0} sims/s, event-driven {:>9.0} sims/s  ({:.2}x)",
            row.machine, row.ref_sims_per_sec, row.event_sims_per_sec, row.speedup
        );
    }

    eprintln!("perfsuite: A* restructuring session");
    let astar = bench_astar(cfg.smoke);
    eprintln!(
        "  uncached {:.1} ms, shared-cache {:.1} ms  ({:.2}x), {} hits / {} misses",
        astar.uncached_ms, astar.cached_ms, astar.speedup, astar.cache_hits, astar.cache_misses
    );

    let search_ok = run_search_bench(&cfg);
    let memory_ok = run_memory_bench(&cfg, budget);

    let wide8_speedup = placement
        .iter()
        .find(|r| r.machine == "wide8")
        .map(|r| r.speedup)
        .unwrap_or(0.0);
    let wide8_prediction = prediction
        .iter()
        .find(|r| r.machine == "wide8")
        .map(|r| r.speedup)
        .unwrap_or(0.0);
    let risc1_prediction = prediction
        .iter()
        .find(|r| r.machine == "risc1")
        .map(|r| r.speedup)
        .unwrap_or(0.0);
    let wide8_translation = translation
        .iter()
        .find(|r| r.machine == "wide8")
        .map(|r| r.speedup)
        .unwrap_or(0.0);
    let wide8_simulator = simulator
        .iter()
        .find(|r| r.machine == "wide8")
        .map(|r| r.speedup)
        .unwrap_or(0.0);

    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("presage-perfsuite-v8".into())),
        (
            "mode".into(),
            Json::Str(if cfg.smoke { "smoke" } else { "full" }.into()),
        ),
        ("host_cores".into(), Json::Num(host_cores as f64)),
        (
            "placement".into(),
            Json::Arr(
                placement
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("machine".into(), Json::Str(r.machine.clone())),
                            (
                                "naive_ops_per_sec".into(),
                                Json::Num(r.naive_ops_per_sec.round()),
                            ),
                            (
                                "opt_ops_per_sec".into(),
                                Json::Num(r.opt_ops_per_sec.round()),
                            ),
                            ("speedup".into(), Json::Num(round2(r.speedup))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "prediction".into(),
            Json::Arr(
                prediction
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("machine".into(), Json::Str(r.machine.clone())),
                            (
                                "ref_preds_per_sec".into(),
                                Json::Num(r.ref_preds_per_sec.round()),
                            ),
                            (
                                "opt_preds_per_sec".into(),
                                Json::Num(r.opt_preds_per_sec.round()),
                            ),
                            ("speedup".into(), Json::Num(round2(r.speedup))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "batch".into(),
            Json::Arr(
                batch
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("workers".into(), Json::Num(r.workers as f64)),
                            ("preds_per_sec".into(), Json::Num(r.preds_per_sec.round())),
                            ("memo_l1_hits".into(), Json::Num(r.l1_hits as f64)),
                            ("memo_l2_hits".into(), Json::Num(r.l2_hits as f64)),
                            ("memo_misses".into(), Json::Num(r.misses as f64)),
                            ("steals".into(), Json::Num(r.steals as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "batch_speedup_8w".into(),
            Json::Num(round2(batch_speedup_8w)),
        ),
        ("batch_floor_armed".into(), Json::Bool(batch_floor_armed)),
        (
            "batch_monotone_ratio_1_to_4w".into(),
            Json::Num(round2(batch_monotone)),
        ),
        (
            "batch_monotone_armed".into(),
            Json::Bool(batch_monotone_armed),
        ),
        (
            "soak".into(),
            Json::Obj(vec![
                ("programs".into(), Json::Num(soak.programs as f64)),
                ("jobs".into(), Json::Num(soak.jobs as f64)),
                ("arena_symbols".into(), Json::Num(soak.arena_symbols as f64)),
                (
                    "arena_monomials".into(),
                    Json::Num(soak.arena_monomials as f64),
                ),
                (
                    "arena_polynomials".into(),
                    Json::Num(soak.arena_polynomials as f64),
                ),
                ("l2_entries".into(), Json::Num(soak.l2_entries as f64)),
                ("arena_ceiling".into(), Json::Num(SOAK_ARENA_CEILING as f64)),
                ("l2_ceiling".into(), Json::Num(SOAK_L2_CEILING as f64)),
                ("ok".into(), Json::Bool(soak.ok)),
            ]),
        ),
        (
            "translation".into(),
            Json::Arr(
                translation
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("machine".into(), Json::Str(r.machine.clone())),
                            (
                                "uncached_preds_per_sec".into(),
                                Json::Num(r.uncached_preds_per_sec.round()),
                            ),
                            (
                                "cached_preds_per_sec".into(),
                                Json::Num(r.cached_preds_per_sec.round()),
                            ),
                            ("speedup".into(), Json::Num(round2(r.speedup))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "symbolic".into(),
            Json::Arr(
                symbolic
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("op".into(), Json::Str(r.op.into())),
                            (
                                "ref_ops_per_sec".into(),
                                Json::Num(r.ref_ops_per_sec.round()),
                            ),
                            (
                                "opt_ops_per_sec".into(),
                                Json::Num(r.opt_ops_per_sec.round()),
                            ),
                            ("speedup".into(), Json::Num(round2(r.speedup))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "simulator".into(),
            Json::Arr(
                simulator
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("machine".into(), Json::Str(r.machine.clone())),
                            (
                                "ref_sims_per_sec".into(),
                                Json::Num(r.ref_sims_per_sec.round()),
                            ),
                            (
                                "event_sims_per_sec".into(),
                                Json::Num(r.event_sims_per_sec.round()),
                            ),
                            ("speedup".into(), Json::Num(round2(r.speedup))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "astar".into(),
            Json::Obj(vec![
                ("uncached_ms".into(), Json::Num(round2(astar.uncached_ms))),
                ("cached_ms".into(), Json::Num(round2(astar.cached_ms))),
                ("speedup".into(), Json::Num(round2(astar.speedup))),
                ("cache_hits".into(), Json::Num(astar.cache_hits as f64)),
                ("cache_misses".into(), Json::Num(astar.cache_misses as f64)),
            ]),
        ),
        (
            "targets".into(),
            Json::Obj(vec![
                ("placement_wide8_min".into(), Json::Num(PLACEMENT_WIDE8_MIN)),
                (
                    "prediction_wide8_min".into(),
                    Json::Num(PREDICTION_WIDE8_MIN),
                ),
                (
                    "prediction_risc1_min".into(),
                    Json::Num(PREDICTION_RISC1_MIN),
                ),
                (
                    "translation_wide8_min".into(),
                    Json::Num(TRANSLATION_WIDE8_MIN),
                ),
                ("astar_min".into(), Json::Num(ASTAR_MIN)),
                ("search_wide8_min".into(), Json::Num(SEARCH_WIDE8_MIN)),
                ("simulator_wide8_min".into(), Json::Num(SIM_WIDE8_MIN)),
                ("memory_wide8_min".into(), Json::Num(MEMORY_WIDE8_MIN)),
                ("batch_8w_min".into(), Json::Num(BATCH_8W_MIN)),
                ("batch_min_cores".into(), Json::Num(BATCH_MIN_CORES as f64)),
                (
                    "batch_monotone_min_cores".into(),
                    Json::Num(BATCH_MONOTONE_MIN_CORES as f64),
                ),
                (
                    "batch_monotone_tolerance".into(),
                    Json::Num(BATCH_MONOTONE_TOLERANCE),
                ),
            ]),
        ),
    ]);
    if let Err(err) = std::fs::write(&cfg.out, report.to_string_pretty() + "\n") {
        eprintln!("perfsuite: cannot write {}: {err}", cfg.out);
        std::process::exit(1);
    }
    eprintln!("perfsuite: wrote {}", cfg.out);

    if cfg.smoke && batch_failed {
        // Timing floors are off in smoke mode, but the soak footprint
        // ceiling is deterministic and always enforced.
        std::process::exit(1);
    }
    if !cfg.smoke {
        let mut failed = batch_failed;
        if wide8_speedup < PLACEMENT_WIDE8_MIN {
            eprintln!(
                "FAIL: placement speedup on wide8 is {wide8_speedup:.2}x (target {PLACEMENT_WIDE8_MIN}x)"
            );
            failed = true;
        }
        if wide8_prediction < PREDICTION_WIDE8_MIN {
            eprintln!(
                "FAIL: prediction speedup on wide8 is {wide8_prediction:.2}x (target {PREDICTION_WIDE8_MIN}x)"
            );
            failed = true;
        }
        if risc1_prediction < PREDICTION_RISC1_MIN {
            eprintln!(
                "FAIL: prediction speedup on risc1 is {risc1_prediction:.2}x (target {PREDICTION_RISC1_MIN}x)"
            );
            failed = true;
        }
        if wide8_translation < TRANSLATION_WIDE8_MIN {
            eprintln!(
                "FAIL: warmed-cache predict_source speedup on wide8 is {wide8_translation:.2}x (target {TRANSLATION_WIDE8_MIN}x)"
            );
            failed = true;
        }
        if astar.speedup < ASTAR_MIN {
            eprintln!(
                "FAIL: A* session speedup is {:.2}x (target {ASTAR_MIN}x)",
                astar.speedup
            );
            failed = true;
        }
        if !search_ok {
            failed = true;
        }
        if !memory_ok {
            failed = true;
        }
        if wide8_simulator < SIM_WIDE8_MIN {
            eprintln!(
                "FAIL: event-driven simulator speedup on wide8 is {wide8_simulator:.2}x (target {SIM_WIDE8_MIN}x)"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "perfsuite: targets met (placement wide8 {wide8_speedup:.2}x >= {PLACEMENT_WIDE8_MIN}x, prediction wide8 {wide8_prediction:.2}x >= {PREDICTION_WIDE8_MIN}x, prediction risc1 {risc1_prediction:.2}x >= {PREDICTION_RISC1_MIN}x, translation wide8 {wide8_translation:.2}x >= {TRANSLATION_WIDE8_MIN}x, A* {:.2}x >= {ASTAR_MIN}x, simulator wide8 {wide8_simulator:.2}x >= {SIM_WIDE8_MIN}x, batch 8w {batch_speedup_8w:.2}x{})",
            astar.speedup,
            if batch_floor_armed {
                format!(" >= {BATCH_8W_MIN}x")
            } else {
                " [floor not armed: <8 cores]".to_string()
            }
        );
    }
}
