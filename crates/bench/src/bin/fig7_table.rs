//! E1 — regenerates the paper's Figure 7: straight-line prediction
//! accuracy for the kernel suite, per machine.
//!
//! Run with `cargo run -p presage-bench --bin fig7_table`.

use presage_bench::tables::{fig7_rows, render_fig7};
use presage_core::tetris::PlaceOptions;
use presage_machine::machines;

fn main() {
    for machine in machines::all() {
        let rows = fig7_rows(&machine, PlaceOptions::default());
        println!("{}", render_fig7(&rows, machine.name()));
        let max_err = rows.iter().map(|r| r.error_pct().abs()).fold(0.0, f64::max);
        let worst_naive = rows.iter().map(|r| r.naive_factor()).fold(0.0, f64::max);
        println!(
            "max |error| = {max_err:.1}%   worst naive overestimate = {worst_naive:.2}×\n"
        );
    }
}
