//! E1 — regenerates the paper's Figure 7: straight-line prediction
//! accuracy for the kernel suite, per machine.
//!
//! Reference cycle counts come from the persisted baseline store
//! (`BENCH_sim_baselines.json`): unchanged (kernel, machine) pairs are
//! served from the store without re-simulation, and only the misses run —
//! in parallel — through the event-driven simulator. Delete the store (or
//! edit a kernel/machine) to force a cold run.
//!
//! Run with `cargo run -p presage-bench --bin fig7_table`.

use presage_bench::tables::{fig7_rows_baselined, render_fig7};
use presage_core::tetris::PlaceOptions;
use presage_machine::machines;
use presage_sim::batch::default_workers;
use presage_sim::BaselineStore;
use std::path::Path;

fn main() {
    let baseline_path = Path::new("BENCH_sim_baselines.json");
    let mut store = BaselineStore::load(baseline_path);
    let workers = default_workers();
    for machine in machines::all() {
        let rows = match fig7_rows_baselined(&machine, PlaceOptions::default(), &mut store, workers)
        {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("skipping {}: {e}", machine.name());
                continue;
            }
        };
        println!("{}", render_fig7(&rows, machine.name()));
        let max_err = rows.iter().map(|r| r.error_pct().abs()).fold(0.0, f64::max);
        let worst_naive = rows.iter().map(|r| r.naive_factor()).fold(0.0, f64::max);
        println!("max |error| = {max_err:.1}%   worst naive overestimate = {worst_naive:.2}×\n");
    }
    let (hits, misses) = store.stats();
    println!("simulator baselines: {hits} served from store, {misses} simulated fresh");
    if let Err(e) = store.save(baseline_path) {
        eprintln!("could not persist {}: {e}", baseline_path.display());
    }
}
