//! Ablation of the back-end imitation passes (paper §2.2.2): "if the cost
//! estimate fails to take these [low-level optimizations] into
//! consideration, the resulting estimate may be seriously distorted."
//!
//! For each kernel, the *reference* is the optimized stream's scheduler
//! cost (what the back end would actually generate). The model predicts
//! it once while imitating the back end (full flags) and once while
//! translating naively (all imitation off) — the naive translation never
//! saw the FMA fusion, reduction registers, CSE, or strength reduction
//! the real back end will perform, so its source-level estimate distorts.
//!
//! Run with `cargo run -p presage-bench --bin imitation_ablation`.

use presage_bench::kernels::figure7;
use presage_core::tetris::{place_block, PlaceOptions};
use presage_frontend::{parse, sema};
use presage_machine::{machines, BackendFlags};
use presage_sim::simulate_block;
use presage_translate::translate;

fn main() {
    let imitating = machines::power_like();
    let mut oblivious = machines::power_like();
    oblivious.backend = BackendFlags {
        cse: false,
        licm: false,
        dce: false,
        fma_fusion: false,
        reduction_recognition: false,
        strength_reduction: false,
    };

    println!(
        "back-end imitation ablation on {} (innermost blocks)",
        imitating.name()
    );
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "kernel", "reference", "imitating", "oblivious", "imit err %", "obliv err %"
    );
    let mut imit_errs = Vec::new();
    let mut obliv_errs = Vec::new();
    for k in figure7() {
        let prog = parse(k.source).expect("kernel parses");
        let symbols = sema::analyze(&prog.units[0]).expect("sema");

        let opt_ir = translate(&prog.units[0], &symbols, &imitating).expect("translate");
        let opt_block = opt_ir.innermost_block().expect("block");
        let reference = match simulate_block(&imitating, opt_block) {
            Ok(r) => r.makespan,
            Err(e) => {
                eprintln!("skipping {}: {e}", k.name);
                continue;
            }
        };
        let predicted = place_block(&imitating, opt_block, PlaceOptions::default()).completion;

        let naive_ir = translate(&prog.units[0], &symbols, &oblivious).expect("translate");
        let naive_block = naive_ir.innermost_block().expect("block");
        let oblivious_pred =
            place_block(&imitating, naive_block, PlaceOptions::default()).completion;

        let ierr = (predicted as f64 - reference as f64) / reference as f64 * 100.0;
        let oerr = (oblivious_pred as f64 - reference as f64) / reference as f64 * 100.0;
        imit_errs.push(ierr.abs());
        obliv_errs.push(oerr.abs());
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>11.1}% {:>11.1}%",
            k.name, reference, predicted, oblivious_pred, ierr, oerr
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean |error|: imitating {:.1}%, oblivious {:.1}%",
        mean(&imit_errs),
        mean(&obliv_errs)
    );
    println!("imitating the back end is what keeps source-level prediction honest.");
}
