//! E12 — the efficiency requirement (paper §1.3): "performance prediction
//! needs to be very efficient to make repeated calls practical". Measures
//! prediction time vs. program size, the linear scaling of the placement
//! algorithm, and the incremental-update advantage (§3.3.1).
//!
//! Run with `cargo run --release -p presage-bench --bin efficiency_table`.

use presage_core::aggregate::AggregateOptions;
use presage_core::incremental::CostTree;
use presage_core::predictor::Predictor;
use presage_core::tetris::{place_block, PlaceOptions};
use presage_machine::machines;
use presage_sim::simulate_block;
use presage_translate::{BlockIr, IrNode, ValueDef};
use std::time::Instant;

/// Generates a synthetic block of `n` operations with mixed dependences.
fn synthetic_block(n: usize) -> BlockIr {
    let mut b = BlockIr::new();
    let x = b.add_value(ValueDef::External("x".into()));
    let mut prev = x;
    for i in 0..n {
        use presage_machine::BasicOp::*;
        let basic = match i % 5 {
            0 => FAdd,
            1 => FMul,
            2 => IAdd,
            3 => Fma,
            _ => LoadFloat,
        };
        let args = if i % 3 == 0 {
            vec![prev, x]
        } else {
            vec![x, x]
        };
        prev = b.emit(basic, args);
    }
    b
}

fn source_of_size(loops: usize) -> String {
    let mut body = String::new();
    for k in 0..loops {
        body.push_str(&format!(
            "do i = 1, n\n  a(i) = a(i) * 2.0 + {k}.0\n  b(i) = a(i) + b(i)\nend do\n"
        ));
    }
    format!("subroutine s(a, b, n)\nreal a(n), b(n)\ninteger i, n\n{body}end")
}

fn main() {
    let machine = machines::power_like();

    println!("placement scales linearly (paper §2.1's linear-time claim):");
    println!("{:>8} {:>14} {:>12}", "ops", "time µs", "µs/op");
    for n in [10usize, 100, 1000, 10000] {
        let block = synthetic_block(n);
        let reps = (100_000 / n).max(3);
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(place_block(
                &machine,
                &block,
                PlaceOptions::with_focus_span(32),
            ));
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        println!("{n:>8} {us:>14.1} {:>12.4}", us / n as f64);
    }

    println!("\npredictor vs. event-driven simulator on a 1000-op block:");
    let block = synthetic_block(1000);
    let t0 = Instant::now();
    let reps = 50;
    for _ in 0..reps {
        std::hint::black_box(place_block(&machine, &block, PlaceOptions::default()));
    }
    let place_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        match std::hint::black_box(simulate_block(&machine, &block)) {
            Ok(r) => drop(r),
            Err(e) => {
                eprintln!("simulator benchmark skipped: {e}");
                break;
            }
        }
    }
    let sim_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!(
        "  placement {place_us:.0} µs, simulator {sim_us:.0} µs ({:.1}× slower)",
        sim_us / place_us
    );

    // One warm-baseline lookup of the same block, to show what the tables
    // pay on unchanged kernels.
    let mut store = presage_sim::BaselineStore::new();
    store
        .block_makespan(&machine, &block, simulate_block)
        .expect("converges");
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(store.block_makespan(&machine, &block, simulate_block))
            .expect("served from store");
    }
    let warm_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!(
        "  warm baseline lookup {warm_us:.1} µs ({:.0}× cheaper than simulating)",
        sim_us / warm_us
    );

    println!("\nend-to-end prediction time vs. program size:");
    println!("{:>8} {:>14}", "loops", "time µs");
    let predictor = Predictor::new(machine.clone());
    for loops in [1usize, 4, 16, 64] {
        let src = source_of_size(loops);
        let t0 = Instant::now();
        let reps = 20;
        for _ in 0..reps {
            std::hint::black_box(predictor.predict_source(&src).expect("valid"));
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        println!("{loops:>8} {us:>14.0}");
    }

    println!("\nincremental update vs. full recompute (§3.3.1), 64-loop program:");
    let src = source_of_size(64);
    let preds = predictor.predict_source(&src).expect("valid");
    let ir = &preds[0].ir;
    let opts = AggregateOptions::default();
    let t0 = Instant::now();
    let reps = 10;
    for _ in 0..reps {
        std::hint::black_box(CostTree::build(ir, &machine, None, opts.clone()));
    }
    let build_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

    let mut tree = CostTree::build(ir, &machine, None, opts);
    let replacement = match &ir.root[0] {
        node @ IrNode::Loop(_) => node.clone(),
        other => other.clone(),
    };
    let t0 = Instant::now();
    let reps = 200;
    for _ in 0..reps {
        std::hint::black_box(tree.replace(&[0], replacement.clone()));
    }
    let update_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!(
        "  full build {build_us:.0} µs, incremental replace {update_us:.0} µs ({:.0}× cheaper)",
        build_us / update_us
    );
}
