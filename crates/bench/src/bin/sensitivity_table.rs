//! E8 — sensitivity analysis and run-time test selection (paper §3.4):
//! ranks each kernel's unknowns by performance impact and shows a
//! generated multi-version plan for a crossover case.
//!
//! Run with `cargo run -p presage-bench --bin sensitivity_table`.

use presage_core::predictor::{Predictor, PredictorOptions};
use presage_machine::machines;
use presage_opt::rtt::plan_from_comparison;
use presage_symbolic::sensitivity::{analyze, SensitivityOptions};

const KERNEL: &str = "subroutine stages(a, b, n, m, k)
   real a(n), b(m)
   integer i, j, n, m, k
   do i = 1, n
     a(i) = a(i) * 2.0 + 1.0
   end do
   do j = 1, m
     b(j) = b(j) / 3.0
   end do
   do i = 1, k
     a(1) = a(1) + 0.5
   end do
 end";

fn main() {
    let mut opts = PredictorOptions::default();
    for (v, r) in [("n", (1.0, 1e4)), ("m", (1.0, 1e3)), ("k", (1.0, 1e2))] {
        opts.aggregate.var_ranges.insert(v.into(), r);
    }
    let predictor = Predictor::with_options(machines::power_like(), opts);
    let pred = &predictor.predict_source(KERNEL).expect("valid")[0];
    println!("C = {}", pred.total);
    println!("\nsensitivity ranking (±5% of each range at the midpoint):");
    for s in analyze(&pred.total, SensitivityOptions::default()) {
        println!("  {s}");
    }
    println!("\n→ the top-ranked variables are where §3.4 says to spend the");
    println!("  few affordable run-time tests.");

    // A crossover pair to exercise plan generation.
    let fast = "subroutine f(a, n)
       real a(n), w(128)
       integer i, n
       do i = 1, 128
         w(i) = 0.5
       end do
       do i = 1, n
         a(i) = a(i) * 0.5
       end do
     end";
    let slow = "subroutine g(a, n)
       real a(n)
       integer i, n
       do i = 1, n
         a(i) = a(i) * 0.5 + a(i) / 4.0
       end do
     end";
    let mut o2 = PredictorOptions::default();
    o2.aggregate.var_ranges.insert("n".into(), (1.0, 2000.0));
    let p2 = Predictor::with_options(machines::power_like(), o2);
    let ca = p2.predict_source(fast).unwrap().remove(0).total;
    let cb = p2.predict_source(slow).unwrap().remove(0).total;
    let cmp = ca.compare(&cb);
    println!("\ncrossover study: C(f) = {ca}, C(g) = {cb}");
    match plan_from_comparison(&cmp) {
        Some(plan) => println!("{plan}"),
        None => println!("  outcome: {} (no test needed)", cmp.outcome),
    }
}
