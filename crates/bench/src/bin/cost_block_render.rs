//! E2 — renders the Figure 3/8 visuals: operations dropped into
//! functional-unit bins and the resulting cost block, for the Jacobi and
//! Matmul kernels.
//!
//! Run with `cargo run -p presage-bench --bin cost_block_render`.

use presage_bench::kernels::{innermost_block, JACOBI, MATMUL};
use presage_core::render::{render_bins, render_cost_block};
use presage_core::tetris::{PlaceOptions, Placer};
use presage_machine::machines;

fn show(name: &str, source: &str) {
    let machine = machines::power_like();
    let block = innermost_block(source, &machine);
    let mut placer = Placer::new(&machine, PlaceOptions::default());
    placer.drop_block(&block);

    println!("=== {name}: {} operations ===", block.len());
    println!("{block}");
    println!("bins after placement (Figure 3; latest slot on top):");
    print!("{}", render_bins(&placer));
    let cb = placer.cost_block();
    println!("\n{}", render_cost_block(&cb));
    println!(
        "critical unit {:?} at {:.0}% occupancy; suggested unroll {}; FXU lead {} (branch-cost probe)\n",
        cb.critical_unit(),
        cb.critical_ratio() * 100.0,
        cb.suggested_unroll(),
        cb.fxu_lead()
    );
}

fn main() {
    show("Jacobi", JACOBI);
    show("Matmul 4x4", MATMUL);
}
