//! The Figure 7 kernel suite.
//!
//! The paper evaluates straight-line prediction on "innermost basic blocks
//! taken from Purdue benchmarks in the HPF Benchmark suite" (F1–F7), the
//! innermost block of a matrix multiply "blocked and unrolled 4 times in
//! both dimensions (a total of 16 FMA operations in the basic block)", the
//! Jacobi innermost block, and the red-black innermost block. The original
//! kernel sources are not reproduced in the paper, so this module provides
//! representative small numeric kernels of the same shapes (see DESIGN.md,
//! substitution table).

use presage_frontend::{parse, sema};
use presage_machine::MachineDesc;
use presage_translate::{translate, BlockIr, ProgramIr};

/// One named kernel.
#[derive(Clone, Copy, Debug)]
pub struct Kernel {
    /// Row label used in the Figure 7 table.
    pub name: &'static str,
    /// Mini-Fortran source.
    pub source: &'static str,
}

/// F1: element-wise vector add.
pub const F1: &str = "subroutine f1(c, a, b, n)
   real c(n), a(n), b(n)
   integer i, n
   do i = 1, n
     c(i) = a(i) + b(i)
   end do
 end";

/// F2: scaled vector update (daxpy-like).
pub const F2: &str = "subroutine f2(y, x, s, n)
   real y(n), x(n), s
   integer i, n
   do i = 1, n
     y(i) = y(i) + s * x(i)
   end do
 end";

/// F3: 2-norm combination with square root.
pub const F3: &str = "subroutine f3(c, a, b, n)
   real c(n), a(n), b(n)
   integer i, n
   do i = 1, n
     c(i) = sqrt(a(i) * a(i) + b(i) * b(i))
   end do
 end";

/// F4: cubic polynomial evaluation (Horner).
pub const F4: &str = "subroutine f4(y, x, c0, c1, c2, c3, n)
   real y(n), x(n), c0, c1, c2, c3
   integer i, n
   do i = 1, n
     y(i) = ((c3 * x(i) + c2) * x(i) + c1) * x(i) + c0
   end do
 end";

/// F5: mixed integer/real arithmetic with conversion.
pub const F5: &str = "subroutine f5(c, a, n)
   real c(n), a(n)
   integer i, n
   do i = 1, n
     c(i) = a(i) * real(i) + real(i * i)
   end do
 end";

/// F6: select-heavy code (compare and pick).
pub const F6: &str = "subroutine f6(c, a, b, n)
   real c(n), a(n), b(n)
   integer i, n
   do i = 1, n
     c(i) = max(a(i), b(i)) + min(a(i), b(i))
   end do
 end";

/// F7: division-bound update.
pub const F7: &str = "subroutine f7(c, a, b, n)
   real c(n), a(n), b(n)
   integer i, n
   do i = 1, n
     c(i) = a(i) / b(i) + 1.0
   end do
 end";

/// Matmul: 4×4 register-blocked innermost block — 16 FMAs per iteration.
pub const MATMUL: &str = "subroutine matmul4(a, b, c, n, i, j)
   real a(n,n), b(n,n), c(n,n)
   integer i, j, k, n
   do k = 1, n
     c(i,j) = c(i,j) + a(i,k) * b(k,j)
     c(i+1,j) = c(i+1,j) + a(i+1,k) * b(k,j)
     c(i+2,j) = c(i+2,j) + a(i+2,k) * b(k,j)
     c(i+3,j) = c(i+3,j) + a(i+3,k) * b(k,j)
     c(i,j+1) = c(i,j+1) + a(i,k) * b(k,j+1)
     c(i+1,j+1) = c(i+1,j+1) + a(i+1,k) * b(k,j+1)
     c(i+2,j+1) = c(i+2,j+1) + a(i+2,k) * b(k,j+1)
     c(i+3,j+1) = c(i+3,j+1) + a(i+3,k) * b(k,j+1)
     c(i,j+2) = c(i,j+2) + a(i,k) * b(k,j+2)
     c(i+1,j+2) = c(i+1,j+2) + a(i+1,k) * b(k,j+2)
     c(i+2,j+2) = c(i+2,j+2) + a(i+2,k) * b(k,j+2)
     c(i+3,j+2) = c(i+3,j+2) + a(i+3,k) * b(k,j+2)
     c(i,j+3) = c(i,j+3) + a(i,k) * b(k,j+3)
     c(i+1,j+3) = c(i+1,j+3) + a(i+1,k) * b(k,j+3)
     c(i+2,j+3) = c(i+2,j+3) + a(i+2,k) * b(k,j+3)
     c(i+3,j+3) = c(i+3,j+3) + a(i+3,k) * b(k,j+3)
   end do
 end";

/// Jacobi relaxation innermost block.
pub const JACOBI: &str = "subroutine jacobi(a, b, n)
   real a(n,n), b(n,n)
   integer i, j, n
   do j = 2, n-1
     do i = 2, n-1
       a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
     end do
   end do
 end";

/// Red-black relaxation innermost block (stride-2 in-place update).
pub const RB: &str = "subroutine redblack(a, n)
   real a(n,n)
   integer i, j, n
   do j = 2, n-1
     do i = 2, n-1, 2
       a(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
     end do
   end do
 end";

/// The full Figure 7 row set, in the paper's order.
pub fn figure7() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "F1",
            source: F1,
        },
        Kernel {
            name: "F2",
            source: F2,
        },
        Kernel {
            name: "F3",
            source: F3,
        },
        Kernel {
            name: "F4",
            source: F4,
        },
        Kernel {
            name: "F5",
            source: F5,
        },
        Kernel {
            name: "F6",
            source: F6,
        },
        Kernel {
            name: "F7",
            source: F7,
        },
        Kernel {
            name: "Matmul",
            source: MATMUL,
        },
        Kernel {
            name: "Jacobi",
            source: JACOBI,
        },
        Kernel {
            name: "RB",
            source: RB,
        },
    ]
}

/// Translates a kernel and returns its full IR.
///
/// # Panics
///
/// Panics on invalid kernel source (the suite is fixed and valid).
pub fn translate_kernel(source: &str, machine: &MachineDesc) -> ProgramIr {
    let prog = parse(source).expect("kernel parses");
    let symbols = sema::analyze(&prog.units[0]).expect("kernel type-checks");
    translate(&prog.units[0], &symbols, machine).expect("kernel translates")
}

/// Translates a kernel and extracts the innermost basic block — the unit
/// Figure 7 reports on.
///
/// # Panics
///
/// Panics if the kernel has no innermost block (the suite always does).
pub fn innermost_block(source: &str, machine: &MachineDesc) -> BlockIr {
    translate_kernel(source, machine)
        .innermost_block()
        .expect("kernel has an innermost block")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::machines;

    #[test]
    fn all_kernels_translate_on_all_machines() {
        for m in machines::all() {
            for k in figure7() {
                let block = innermost_block(k.source, &m);
                assert!(!block.is_empty(), "{} on {}", k.name, m.name());
            }
        }
    }

    #[test]
    fn matmul_block_has_16_fmas() {
        let m = machines::power_like();
        let block = innermost_block(MATMUL, &m);
        let fmas = block
            .ops
            .iter()
            .filter(|o| o.basic == presage_machine::BasicOp::Fma)
            .count();
        assert_eq!(fmas, 16, "the paper's Matmul row: 16 FMA operations");
    }

    #[test]
    fn suite_has_ten_rows() {
        assert_eq!(figure7().len(), 10);
    }
}
