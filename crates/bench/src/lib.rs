//! Benchmark harness for the Presage reproduction.
//!
//! [`kernels`] holds the Figure 7 kernel suite (F1–F7 straight-line basic
//! blocks from small numeric loops, the 4×4-unrolled blocked Matmul block
//! with 16 FMAs, the Jacobi stencil, and the red-black relaxation), plus
//! helpers shared by the table-regenerating binaries in `src/bin/` and the
//! Criterion benches in `benches/`.

#![warn(missing_docs)]

pub mod kernels;
pub mod tables;
