//! Shared row computation for the table-regenerating binaries.

use crate::kernels::{figure7, innermost_block};
use presage_core::tetris::{place_block, PlaceOptions};
use presage_machine::MachineDesc;
use presage_sim::{naive_block_cost, simulate_block};

/// One row of the Figure 7 accuracy table.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Kernel name.
    pub name: &'static str,
    /// Operations in the innermost basic block.
    pub ops: usize,
    /// Tetris-model predicted cycles (completion time).
    pub predicted: u32,
    /// Reference list-scheduler cycles (the xlf stand-in).
    pub reference: u32,
    /// Naive latency-sum cycles.
    pub naive: u32,
}

impl Fig7Row {
    /// Relative error of the prediction vs. the reference, in percent.
    pub fn error_pct(&self) -> f64 {
        if self.reference == 0 {
            return 0.0;
        }
        (self.predicted as f64 - self.reference as f64) / self.reference as f64 * 100.0
    }

    /// Overestimation factor of the naive model vs. the reference.
    pub fn naive_factor(&self) -> f64 {
        if self.reference == 0 {
            return 1.0;
        }
        self.naive as f64 / self.reference as f64
    }
}

/// Computes the Figure 7 table for a machine.
pub fn fig7_rows(machine: &MachineDesc, opts: PlaceOptions) -> Vec<Fig7Row> {
    figure7()
        .into_iter()
        .map(|k| {
            let block = innermost_block(k.source, machine);
            let predicted = place_block(machine, &block, opts).completion;
            let reference = simulate_block(machine, &block).makespan;
            let naive = naive_block_cost(machine, &block);
            Fig7Row { name: k.name, ops: block.len(), predicted, reference, naive }
        })
        .collect()
}

/// Formats rows as an aligned text table.
pub fn render_fig7(rows: &[Fig7Row], machine_name: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 7 — straight-line prediction accuracy on {machine_name}");
    let _ = writeln!(
        out,
        "{:<8} {:>5} {:>10} {:>10} {:>8} {:>10} {:>8}",
        "kernel", "ops", "predicted", "reference", "err %", "naive", "naive ×"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:>5} {:>10} {:>10} {:>7.1}% {:>10} {:>7.2}×",
            r.name,
            r.ops,
            r.predicted,
            r.reference,
            r.error_pct(),
            r.naive,
            r.naive_factor()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::machines;

    #[test]
    fn fig7_rows_complete() {
        let rows = fig7_rows(&machines::power_like(), PlaceOptions::default());
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.predicted > 0, "{}", r.name);
            assert!(r.reference > 0, "{}", r.name);
            assert!(r.naive >= r.reference, "naive never beats the scheduler: {}", r.name);
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = fig7_rows(&machines::power_like(), PlaceOptions::default());
        let text = render_fig7(&rows, "power-like");
        for r in &rows {
            assert!(text.contains(r.name));
        }
    }
}
