//! Shared row computation for the table-regenerating binaries.

use crate::kernels::{figure7, innermost_block};
use presage_core::tetris::{place_block, PlaceOptions};
use presage_machine::MachineDesc;
use presage_sim::batch::simulate_batch;
use presage_sim::{naive_block_cost, BaselineStore, SimError};

/// One row of the Figure 7 accuracy table.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Kernel name.
    pub name: &'static str,
    /// Operations in the innermost basic block.
    pub ops: usize,
    /// Tetris-model predicted cycles (completion time).
    pub predicted: u32,
    /// Reference list-scheduler cycles (the xlf stand-in).
    pub reference: u32,
    /// Naive latency-sum cycles.
    pub naive: u32,
}

impl Fig7Row {
    /// Relative error of the prediction vs. the reference, in percent.
    pub fn error_pct(&self) -> f64 {
        if self.reference == 0 {
            return 0.0;
        }
        (self.predicted as f64 - self.reference as f64) / self.reference as f64 * 100.0
    }

    /// Overestimation factor of the naive model vs. the reference.
    pub fn naive_factor(&self) -> f64 {
        if self.reference == 0 {
            return 1.0;
        }
        self.naive as f64 / self.reference as f64
    }
}

/// Computes the Figure 7 table for a machine, simulating every kernel.
///
/// # Errors
///
/// Propagates [`SimError`] if any kernel's reference simulation fails to
/// converge.
pub fn fig7_rows(machine: &MachineDesc, opts: PlaceOptions) -> Result<Vec<Fig7Row>, SimError> {
    fig7_rows_baselined(machine, opts, &mut BaselineStore::new(), 1)
}

/// Computes the Figure 7 table for a machine, serving reference cycle
/// counts from `store` where present and simulating only the misses —
/// fanned out over `workers` scoped threads. Fresh results are recorded
/// back into `store` so a subsequent save warms the next run.
///
/// # Errors
///
/// Propagates [`SimError`] if any missing kernel's reference simulation
/// fails to converge.
pub fn fig7_rows_baselined(
    machine: &MachineDesc,
    opts: PlaceOptions,
    store: &mut BaselineStore,
    workers: usize,
) -> Result<Vec<Fig7Row>, SimError> {
    let kernels = figure7();
    let blocks: Vec<_> = kernels
        .iter()
        .map(|k| innermost_block(k.source, machine))
        .collect();

    // Partition into baseline hits and misses, then simulate only the
    // misses (in parallel) and record them for the next run.
    let cached: Vec<Option<u32>> = blocks
        .iter()
        .map(|block| store.get_block(machine, block))
        .collect();
    let miss_jobs: Vec<(&MachineDesc, &presage_translate::BlockIr)> = blocks
        .iter()
        .zip(&cached)
        .filter(|(_, c)| c.is_none())
        .map(|(block, _)| (machine, block))
        .collect();
    let mut fresh = simulate_batch(&miss_jobs, workers).into_iter();

    let mut rows = Vec::with_capacity(kernels.len());
    for ((k, block), cached) in kernels.iter().zip(&blocks).zip(cached) {
        let reference = match cached {
            Some(ms) => ms,
            None => {
                let ms = fresh.next().expect("one batch result per miss")?.makespan;
                store.record_block(machine, block, ms);
                ms
            }
        };
        let predicted = place_block(machine, block, opts).completion;
        let naive = naive_block_cost(machine, block);
        rows.push(Fig7Row {
            name: k.name,
            ops: block.len(),
            predicted,
            reference,
            naive,
        });
    }
    Ok(rows)
}

/// Formats rows as an aligned text table.
pub fn render_fig7(rows: &[Fig7Row], machine_name: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7 — straight-line prediction accuracy on {machine_name}"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>5} {:>10} {:>10} {:>8} {:>10} {:>8}",
        "kernel", "ops", "predicted", "reference", "err %", "naive", "naive ×"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:>5} {:>10} {:>10} {:>7.1}% {:>10} {:>7.2}×",
            r.name,
            r.ops,
            r.predicted,
            r.reference,
            r.error_pct(),
            r.naive,
            r.naive_factor()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::machines;

    #[test]
    fn fig7_rows_complete() {
        let rows = fig7_rows(&machines::power_like(), PlaceOptions::default()).unwrap();
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.predicted > 0, "{}", r.name);
            assert!(r.reference > 0, "{}", r.name);
            assert!(
                r.naive >= r.reference,
                "naive never beats the scheduler: {}",
                r.name
            );
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = fig7_rows(&machines::power_like(), PlaceOptions::default()).unwrap();
        let text = render_fig7(&rows, "power-like");
        for r in &rows {
            assert!(text.contains(r.name));
        }
    }

    #[test]
    fn warm_baseline_skips_simulation_and_matches_cold() {
        let m = machines::power_like();
        let opts = PlaceOptions::default();
        let mut store = BaselineStore::new();
        let cold = fig7_rows_baselined(&m, opts, &mut store, 4).unwrap();
        let (_, cold_misses) = store.stats();
        assert_eq!(cold_misses, 10, "cold run misses every kernel");
        let warm = fig7_rows_baselined(&m, opts, &mut store, 4).unwrap();
        let (hits, misses) = store.stats();
        assert_eq!(hits, 10, "warm run serves every kernel from the store");
        assert_eq!(misses, cold_misses, "warm run simulates nothing new");
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(
                (c.reference, c.predicted, c.naive),
                (w.reference, w.predicted, w.naive)
            );
        }
    }
}
