//! The cache-line access cost model (paper §2.3), exact edition.
//!
//! "The total number of cache line accesses is counted and the cost of
//! filling these cache lines is used to approximate the memory cost"
//! (following Ferrante–Sarkar–Thrash). Where [`crate::memory`] keeps the
//! original capacity-*heuristic* reading of that sentence, this module
//! counts the **distinct cache lines** a loop nest touches — the
//! compulsory-miss cost — symbolically in the loop bounds, and does it
//! exactly enough to be checked line-for-line against the reference
//! simulator's cache ([`presage_sim`]'s line-counting oracle).
//!
//! # Model
//!
//! Array references are clustered into *reference groups*: same array,
//! same per-dimension loop-variable coefficients, and same symbolic
//! (parameter) base — so the four stencil reads `b(i±1, j±1)` form one
//! group whose members differ only by constant offsets. A group's
//! members therefore sweep *translates of one lattice box*, and the
//! number of distinct lines is the size of the union of those translates:
//!
//! - the leading (column-major contiguous) dimension is counted in
//!   **line** coordinates: an element stride `s ≤ Lw` (elements per line)
//!   touches every line in an interval, a stride with `Lw | s` touches a
//!   lattice of lines with step `s/Lw`;
//! - outer dimensions are counted in **element** coordinates (the layout
//!   contract pads the leading dimension to a whole number of lines, so
//!   distinct outer indices can never share a line);
//! - the union is computed on a *segment grid*: each dimension is cut
//!   into concrete "ramp" segments around one symbolic-width core
//!   segment, each segment carries a bitmask of the members covering it,
//!   and a grid tuple contributes its width product when some member
//!   covers it in every dimension.
//!
//! Unused enclosing loops contribute pure temporal reuse — a distinct
//! line is fetched once, so (unlike the legacy heuristic) their trip
//! counts do not multiply in. This is exactly the miss count of a cache
//! whose capacity covers the footprint, which is what the differential
//! oracle configures.
//!
//! # Layout contract (shared with the simulator)
//!
//! Column-major, 8-byte elements, array bases line-aligned, leading
//! dimension padded up to a multiple of the line length, arrays laid out
//! in [`ProgramIr::arrays`] order. Subscripts are 1-based.
//!
//! # Exactness
//!
//! [`count_lines_concrete`] (all bounds bound to integers) is exact for
//! any trip count. The symbolic polynomial is exact under the *alignment
//! discipline*: each leading-dimension trip count `T` satisfies
//! `(Lw / gcd(s, Lw)) | T`, symbolic leading-dimension base components
//! sit at a column start (parameter values ≡ 1 mod `Lw`, the natural
//! unit-origin case), and `T` is at least the member offset spread. Groups the model cannot
//! count exactly (non-affine subscripts, two loop variables in one
//! subscript, negative strides, more than 64 members) fall back to a
//! conservative product and are flagged `exact = false`.
//!
//! Known over-approximations, kept deliberately (documented in
//! DESIGN.md §5i): distinct groups on the same array are not
//! de-duplicated against each other, both branches of an `if` are
//! charged, and identical sweeps in *differently-shaped* nests are
//! charged per nest.

use crate::aggregate::{int_expr_to_poly, loop_trip_poly, AggregateOptions};
use presage_frontend::analysis::affine_form;
use presage_frontend::fold::{encode_expr, fold128, AST_SEED};
use presage_frontend::{BinOp, Expr, Intrinsic, UnOp};
use presage_machine::CacheParams;
use presage_symbolic::memo::{self, ShardedMemo};
use presage_symbolic::{PerfExpr, Poly, Rational, Symbol, VarInfo};
use presage_translate::{IrNode, MemRef, ProgramIr};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::LazyLock;

/// Result of the cache-line access analysis.
#[derive(Clone, Debug)]
pub struct MemCost {
    /// Distinct cache lines touched, symbolic in the loop bounds.
    pub lines: PerfExpr,
    /// Memory stall cycles: `lines × miss_penalty`.
    pub cycles: PerfExpr,
    /// Per-reference-group line counts for diagnostics and `explain`.
    pub groups: Vec<GroupLines>,
    /// True when every group was counted exactly (see the module docs
    /// for the alignment discipline the symbolic form assumes).
    pub exact: bool,
}

/// One reference group's distinct-line count.
#[derive(Clone, Debug)]
pub struct GroupLines {
    /// Array name.
    pub array: String,
    /// Human-readable group shape, e.g. `b(1·i; 1·j)`.
    pub shape: String,
    /// Number of distinct constant-offset members merged into the group.
    pub members: usize,
    /// Symbolic distinct-line count.
    pub lines: Poly,
    /// False when the count fell back to a conservative product.
    pub exact: bool,
}

/// Members per group the segment-grid union handles (bitmask width).
const MEMBER_CAP: usize = 64;
/// Cap on symbolic grid tuples before falling back.
const SYM_GRID_CAP: usize = 1 << 16;
/// Cap on concrete grid tuples before giving up exactness.
const CON_GRID_CAP: u128 = 1 << 20;
/// Cap on enumerated line points for irregular strides.
const POINT_CAP: i128 = 1 << 16;

// ---------------------------------------------------------------------
// Collection: loop frames and reference sites.
// ---------------------------------------------------------------------

/// One enclosing loop as seen by a reference site.
struct FrameInfo {
    var: String,
    /// Lower bound as a polynomial (`None`: not a polynomial bound).
    lb_poly: Option<Poly>,
    /// Constant step (`None`: symbolic or zero step — unusable).
    step: Option<i64>,
    /// Symbolic trip count; outer loop variables substituted by their
    /// midpoints (then `approx` is set — triangular nests).
    trip: Poly,
    approx: bool,
    /// Content key of the loop header (shared across identical headers).
    key: u128,
    /// Header expressions for the concrete evaluator.
    lb: Expr,
    ub: Expr,
    step_expr: Option<Expr>,
}

/// One array reference with the loop frames enclosing it.
struct RefSite {
    mref: MemRef,
    frames: Vec<usize>,
}

/// Walks the program, recording every array reference together with its
/// enclosing loops. Pre- and postheader blocks see the context *without*
/// the loop they belong to (their code runs once, outside the
/// iteration), which is what lets hoisted reduction loads/stores merge
/// with their in-loop group.
fn collect(ir: &ProgramIr) -> (Vec<FrameInfo>, Vec<RefSite>) {
    let mut frames = Vec::new();
    let mut sites = Vec::new();
    let mut stack = Vec::new();
    walk(&ir.root, &mut frames, &mut stack, &mut sites);
    (frames, sites)
}

fn walk(
    nodes: &[IrNode],
    frames: &mut Vec<FrameInfo>,
    stack: &mut Vec<usize>,
    sites: &mut Vec<RefSite>,
) {
    let sink = |block: &presage_translate::BlockIr, stack: &[usize], sites: &mut Vec<RefSite>| {
        for (_, m) in block.mem_refs() {
            sites.push(RefSite {
                mref: m.clone(),
                frames: stack.to_vec(),
            });
        }
    };
    for node in nodes {
        match node {
            IrNode::Block(b) => sink(b, stack, sites),
            IrNode::Loop(l) => {
                sink(&l.preheader, stack, sites);
                frames.push(make_frame(l, frames, stack));
                stack.push(frames.len() - 1);
                sink(&l.control, stack, sites);
                walk(&l.body, frames, stack, sites);
                stack.pop();
                sink(&l.postheader, stack, sites);
            }
            IrNode::If(i) => {
                // Conservative: both branches' footprints are charged.
                sink(&i.cond_block, stack, sites);
                walk(&i.then_nodes, frames, stack, sites);
                walk(&i.else_nodes, frames, stack, sites);
            }
        }
    }
}

fn make_frame(l: &presage_translate::LoopIr, frames: &[FrameInfo], stack: &[usize]) -> FrameInfo {
    let mut trip = loop_trip_poly(l);
    let mut lb_poly = int_expr_to_poly(&l.lb);
    let mut approx = false;
    let mut step = l.step.as_ref().map(|s| s.as_int()).unwrap_or(Some(1));
    if step == Some(0) {
        step = None;
    }
    // Triangular nests: a trip count depending on an outer index has no
    // per-group polynomial form here; substitute the outer midpoint and
    // flag the frame approximate.
    for &fi in stack {
        let outer = &frames[fi];
        let var = Symbol::interned(&outer.var);
        if trip.contains_symbol(&var) || lb_poly.as_ref().is_some_and(|p| p.contains_symbol(&var)) {
            approx = true;
            let mid = match &outer.lb_poly {
                Some(lb) => lb + &(&outer.trip - &Poly::one()).scale(Rational::new(1, 2)),
                None => {
                    step = None;
                    break;
                }
            };
            match (trip.subst(&var, &mid), &lb_poly) {
                (Ok(t), Some(p)) => {
                    trip = t;
                    lb_poly = p.subst(&var, &mid).ok();
                }
                _ => {
                    step = None;
                    break;
                }
            }
        }
    }
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(l.var.as_bytes());
    buf.push(0xff);
    encode_expr(&mut buf, &l.lb);
    encode_expr(&mut buf, &l.ub);
    if let Some(s) = &l.step {
        encode_expr(&mut buf, s);
    }
    FrameInfo {
        var: l.var.clone(),
        lb_poly,
        step,
        trip,
        approx,
        key: fold128(&buf, AST_SEED),
        lb: l.lb.clone(),
        ub: l.ub.clone(),
        step_expr: l.step.clone(),
    }
}

// ---------------------------------------------------------------------
// Symbolic grouping.
// ---------------------------------------------------------------------

/// Shared per-dimension shape of a group.
struct SymDim {
    /// Effective element stride per iteration of the used loop
    /// (`coeff × step`); 0 when no loop variable appears.
    stride: i64,
    /// Trip count of the used loop (`1` when none).
    trip: Poly,
    /// Non-constant (parameter) base part — assumed line-aligned in the
    /// leading dimension.
    sym: Poly,
}

struct SymGroup {
    array: String,
    shape: String,
    dims: Vec<SymDim>,
    /// Distinct member offset vectors (element coordinates, 0-based).
    members: BTreeSet<Vec<i128>>,
    /// False: unanalyzable shape, count via `fallback`.
    affine: bool,
    /// Conservative count used when the union cannot be formed.
    fallback: Poly,
    /// Cleared when a frame was midpoint-approximated.
    frames_exact: bool,
}

/// Per-dimension decomposition of one reference.
struct DimAffine {
    stride: i64,
    frame: Option<usize>,
    offset: i128,
    sym: Poly,
}

/// Decomposes one reference site into per-dimension affine shapes.
/// `None` means the reference defeats the model (non-affine subscript,
/// two loop variables in one dimension, one loop variable in two
/// dimensions, or a loop with a non-constant step or bound).
fn analyze_site(site: &RefSite, frames: &[FrameInfo]) -> Option<Vec<DimAffine>> {
    let mut used_frames: Vec<usize> = Vec::new();
    let mut dims = Vec::with_capacity(site.mref.subscripts.len());
    for sub in &site.mref.subscripts {
        let a = affine_form(sub)?;
        // 1-based subscripts: element coordinate is `sub − 1`.
        let mut offset = a.constant as i128 - 1;
        let mut sym = Poly::zero();
        let mut used: Option<(usize, i64)> = None;
        let mut terms: Vec<(&String, &i64)> = a.terms.iter().collect();
        terms.sort();
        for (var, &coeff) in terms {
            if coeff == 0 {
                continue;
            }
            match site.frames.iter().rev().find(|&&fi| frames[fi].var == *var) {
                Some(&fi) => {
                    if used.is_some() {
                        return None; // two loops drive one subscript
                    }
                    let f = &frames[fi];
                    let step = f.step?;
                    let lb = f.lb_poly.as_ref()?;
                    match lb.constant_value().filter(Rational::is_integer) {
                        Some(c) => offset += coeff as i128 * c.numer(),
                        None => sym += lb.scale(Rational::from_int(coeff)),
                    }
                    used = Some((fi, coeff.checked_mul(step)?));
                }
                None => {
                    sym += Poly::var(Symbol::interned(var)).scale(Rational::from_int(coeff));
                }
            }
        }
        if let Some((fi, _)) = used {
            if used_frames.contains(&fi) {
                return None; // one loop drives two subscripts (diagonal)
            }
            used_frames.push(fi);
        }
        dims.push(DimAffine {
            stride: used.map(|(_, s)| s).unwrap_or(0),
            frame: used.map(|(fi, _)| fi),
            offset,
            sym,
        });
    }
    Some(dims)
}

/// Conservative line count for a reference the model cannot decompose:
/// the product of the trip counts of every enclosing loop its subscripts
/// mention (each iteration assumed to touch a fresh line).
fn fallback_poly(site: &RefSite, frames: &[FrameInfo]) -> Poly {
    let mut p = Poly::one();
    for &fi in &site.frames {
        let f = &frames[fi];
        if site
            .mref
            .subscripts
            .iter()
            .any(|s| s.referenced_names().contains(&f.var))
        {
            p = &p * &f.trip;
        }
    }
    p
}

fn build_sym_groups(frames: &[FrameInfo], sites: &[RefSite]) -> Vec<SymGroup> {
    let mut groups: BTreeMap<u128, SymGroup> = BTreeMap::new();
    for site in sites {
        match analyze_site(site, frames) {
            Some(dims) => {
                let mut buf = Vec::with_capacity(64);
                buf.extend_from_slice(site.mref.array.as_bytes());
                buf.push(0);
                for d in &dims {
                    buf.extend_from_slice(&d.stride.to_le_bytes());
                    let fkey = d.frame.map(|fi| frames[fi].key).unwrap_or(0);
                    buf.extend_from_slice(&fkey.to_le_bytes());
                    buf.extend_from_slice(d.sym.to_string().as_bytes());
                    buf.push(0xfe);
                }
                let key = fold128(&buf, AST_SEED);
                let g = groups.entry(key).or_insert_with(|| {
                    let shape = shape_string(&site.mref.array, &dims, frames);
                    SymGroup {
                        array: site.mref.array.clone(),
                        shape,
                        dims: dims
                            .iter()
                            .map(|d| SymDim {
                                stride: d.stride,
                                trip: d
                                    .frame
                                    .map(|fi| frames[fi].trip.clone())
                                    .unwrap_or_else(Poly::one),
                                sym: d.sym.clone(),
                            })
                            .collect(),
                        members: BTreeSet::new(),
                        affine: true,
                        fallback: Poly::zero(),
                        frames_exact: !dims
                            .iter()
                            .any(|d| d.frame.is_some_and(|fi| frames[fi].approx)),
                    }
                });
                g.members.insert(dims.iter().map(|d| d.offset).collect());
            }
            None => {
                let mut buf = Vec::with_capacity(64);
                buf.push(1);
                buf.extend_from_slice(site.mref.array.as_bytes());
                buf.push(0);
                for s in &site.mref.subscripts {
                    encode_expr(&mut buf, s);
                }
                for &fi in &site.frames {
                    buf.extend_from_slice(&frames[fi].key.to_le_bytes());
                }
                let key = fold128(&buf, AST_SEED);
                groups.entry(key).or_insert_with(|| SymGroup {
                    array: site.mref.array.clone(),
                    shape: format!("{}(?)", site.mref.array),
                    dims: Vec::new(),
                    members: BTreeSet::from([vec![]]),
                    affine: false,
                    fallback: fallback_poly(site, frames),
                    frames_exact: false,
                });
            }
        }
    }
    groups.into_values().collect()
}

fn shape_string(array: &str, dims: &[DimAffine], frames: &[FrameInfo]) -> String {
    use std::fmt::Write;
    let mut s = String::from(array);
    s.push('(');
    for (i, d) in dims.iter().enumerate() {
        if i > 0 {
            s.push_str("; ");
        }
        match d.frame {
            Some(fi) => {
                let _ = write!(s, "{}·{}", d.stride, frames[fi].var);
            }
            None => s.push('c'),
        }
        if !d.sym.is_zero() {
            let _ = write!(s, "+{}", d.sym);
        }
    }
    s.push(')');
    s
}

// ---------------------------------------------------------------------
// Symbolic union counting (segment grid).
// ---------------------------------------------------------------------

struct SymSeg {
    width: Poly,
    mask: u64,
}

/// Builds the ramp/core/ramp segment list for one lattice class: each
/// member occupies `[lo_m, c_m + λ·T]` (the `λ·T` part shared), so under
/// the large-`T` assumption the concrete low and high endpoints cut the
/// axis into concrete-width ramps around one symbolic-width core.
fn ramp_segments(members: &[(usize, i128, i128)], lambda: Rational, trip: &Poly) -> Vec<SymSeg> {
    let mut lows: Vec<i128> = members.iter().map(|&(_, lo, _)| lo).collect();
    lows.sort_unstable();
    lows.dedup();
    let mut highs: Vec<i128> = members.iter().map(|&(_, _, c)| c).collect();
    highs.sort_unstable();
    highs.dedup();
    let class_mask: u64 = members.iter().fold(0, |m, &(i, _, _)| m | (1 << i));
    let mut segs = Vec::new();
    for w in lows.windows(2) {
        let mask = members
            .iter()
            .filter(|&&(_, lo, _)| lo <= w[0])
            .fold(0u64, |m, &(i, _, _)| m | (1 << i));
        segs.push(SymSeg {
            width: Poly::constant(Rational::new(w[1] - w[0], 1)),
            mask,
        });
    }
    let lo_max = *lows.last().expect("non-empty class");
    let c_min = highs[0];
    segs.push(SymSeg {
        width: Poly::constant(Rational::new(c_min - lo_max + 1, 1)) + trip.scale(lambda),
        mask: class_mask,
    });
    for w in highs.windows(2) {
        let mask = members
            .iter()
            .filter(|&&(_, _, c)| c >= w[1])
            .fold(0u64, |m, &(i, _, _)| m | (1 << i));
        segs.push(SymSeg {
            width: Poly::constant(Rational::new(w[1] - w[0], 1)),
            mask,
        });
    }
    segs
}

/// Segment list for one dimension of a group, or `None` when the shape
/// needs the fallback. `offsets[i]` is member `i`'s base in this
/// dimension; the leading dimension (`line_space`) counts lines.
fn sym_dim_segments(
    dim: &SymDim,
    offsets: &[i128],
    line_space: bool,
    lw: i128,
) -> Option<Vec<SymSeg>> {
    let s = dim.stride as i128;
    // A concrete trip count needs no large-T assumption or alignment
    // discipline: count through the exact concrete machinery and lift
    // the widths to constant polynomials.
    if let Some(t) = dim
        .trip
        .constant_value()
        .filter(Rational::is_integer)
        .map(|r| r.numer())
    {
        if t <= 0 {
            return Some(Vec::new());
        }
        let sets: Option<Vec<ConSet>> = offsets
            .iter()
            .map(|&o| con_set(o, s, t, line_space, lw))
            .collect();
        return Some(
            con_dim_segments(&sets?)?
                .into_iter()
                .map(|(w, mask)| SymSeg {
                    width: Poly::constant(Rational::new(w, 1)),
                    mask,
                })
                .collect(),
        );
    }
    if s == 0 {
        // Pure points (no loop): one unit segment per distinct value.
        let mut by_point: BTreeMap<i128, u64> = BTreeMap::new();
        for (i, &o) in offsets.iter().enumerate() {
            let p = if line_space { o.div_euclid(lw) } else { o };
            *by_point.entry(p).or_insert(0) |= 1 << i;
        }
        return Some(
            by_point
                .into_values()
                .map(|mask| SymSeg {
                    width: Poly::one(),
                    mask,
                })
                .collect(),
        );
    }
    if s < 0 {
        // Reversed sweeps have symbolic concrete endpoints (`b + s(T−1)`);
        // the concrete evaluator handles them, the polynomial falls back.
        return None;
    }
    // Normalize to lattice coordinates: step `g`, per-member index
    // interval [u_m, (c_m) + λ·T].
    let (g, lam, coords): (i128, Rational, Vec<(i128, i128)>) = if line_space {
        if s <= lw {
            // Every line between the endpoints is touched; under the
            // alignment discipline the upper line is q + (s/Lw)·T − [r<s].
            let coords = offsets
                .iter()
                .map(|&o| {
                    let q = o.div_euclid(lw);
                    let r = o.rem_euclid(lw);
                    (q, q - i128::from(r < s))
                })
                .collect();
            (1, Rational::new(s, lw), coords)
        } else if s % lw == 0 {
            // Lines form a lattice with step s/Lw.
            let coords = offsets
                .iter()
                .map(|&o| o.div_euclid(lw))
                .collect::<Vec<_>>();
            lattice_coords(&coords, s / lw)?
        } else if offsets.len() == 1 {
            // Irregular stride past the line length: every iteration hits
            // a fresh line, so a single member counts exactly T.
            return Some(vec![SymSeg {
                width: dim.trip.clone(),
                mask: 1,
            }]);
        } else {
            return None;
        }
    } else {
        lattice_coords(offsets, s)?
    };
    let _ = g;
    // Partition into residue classes already done by `lattice_coords`
    // (interval case: single class). Members within a class share λ·T,
    // so the ramp construction applies per class.
    let mut segs = Vec::new();
    let mut by_class: BTreeMap<i128, Vec<(usize, i128, i128)>> = BTreeMap::new();
    for (i, &(lo, c)) in coords.iter().enumerate() {
        // `lattice_coords` encodes the class in the high bits of the
        // pair; interval coords use class 0.
        by_class
            .entry(class_of(offsets[i], s, line_space, lw, lam))
            .or_default()
            .push((i, lo, c));
    }
    for members in by_class.values() {
        segs.extend(ramp_segments(members, lam, &dim.trip));
    }
    Some(segs)
}

/// Residue class of a member within its dimension lattice (disjoint
/// classes never share a line/element, so their segments concatenate).
fn class_of(offset: i128, s: i128, line_space: bool, lw: i128, lam: Rational) -> i128 {
    if line_space && lam.denom() != 1 {
        // Interval case (s ≤ Lw): overlapping intervals, single class.
        0
    } else {
        let (v, g) = if line_space {
            (offset.div_euclid(lw), s / lw)
        } else {
            (offset, s)
        };
        if g <= 1 {
            0
        } else {
            v.rem_euclid(g)
        }
    }
}

/// Index-space coordinates for a lattice dimension: member at base `o`
/// with step `g` occupies indices `[o div g, (o div g − 1) + 1·T]` within
/// its residue class. Returns `(step, mean, (quotient, remainder) pairs)`.
type LatticeCoords = (i128, Rational, Vec<(i128, i128)>);

fn lattice_coords(offsets: &[i128], g: i128) -> Option<LatticeCoords> {
    if g <= 0 {
        return None;
    }
    let coords = offsets
        .iter()
        .map(|&o| {
            let u = o.div_euclid(g);
            (u, u - 1)
        })
        .collect();
    Some((g, Rational::new(1, 1), coords))
}

/// Sums the width product over every grid tuple covered by at least one
/// member in all dimensions. `None` when the tuple count exceeds the cap.
fn grid_sum(dims: &[Vec<SymSeg>], full_mask: u64) -> Option<Poly> {
    let tuples: usize = dims.iter().map(Vec::len).try_fold(1usize, |a, b| {
        a.checked_mul(b).filter(|&t| t <= SYM_GRID_CAP)
    })?;
    let _ = tuples;
    let mut total = Poly::zero();
    fn rec(dims: &[Vec<SymSeg>], mask: u64, width: &Poly, total: &mut Poly) {
        match dims.split_first() {
            None => *total += width.clone(),
            Some((first, rest)) => {
                for seg in first {
                    let m = mask & seg.mask;
                    if m != 0 {
                        rec(rest, m, &(width * &seg.width), total);
                    }
                }
            }
        }
    }
    rec(dims, full_mask, &Poly::one(), &mut total);
    Some(total)
}

impl SymGroup {
    /// Symbolic distinct-line count and exactness.
    fn count(&self, lw: i128) -> (Poly, bool) {
        if !self.affine {
            return (self.fallback.clone(), false);
        }
        let naive = || {
            let mut per_member = Poly::zero();
            for _ in &self.members {
                let mut p = Poly::one();
                for (d, dim) in self.dims.iter().enumerate() {
                    if dim.stride != 0 {
                        p = if d == 0 && (dim.stride as i128).abs() <= lw {
                            &p * &(dim
                                .trip
                                .scale(Rational::new((dim.stride as i128).abs(), lw))
                                + Poly::one())
                        } else {
                            &p * &dim.trip
                        };
                    }
                }
                per_member += p;
            }
            per_member
        };
        if self.members.len() > MEMBER_CAP {
            return (naive(), false);
        }
        let members: Vec<&Vec<i128>> = self.members.iter().collect();
        let mut segs = Vec::with_capacity(self.dims.len());
        for (d, dim) in self.dims.iter().enumerate() {
            // With a symbolic base, line residues are taken relative to
            // the assumed-aligned `sym − 1` origin: a subscript `sym + c`
            // sits at position `(sym − 1) + c`, so the residue-carrying
            // concrete part is `c`, i.e. the 0-based offset plus one.
            let adjust = i128::from(!dim.sym.is_zero());
            let offsets: Vec<i128> = members.iter().map(|m| m[d] + adjust).collect();
            match sym_dim_segments(dim, &offsets, d == 0, lw) {
                Some(s) => segs.push(s),
                None => return (naive(), false),
            }
        }
        let full = if members.len() == 64 {
            u64::MAX
        } else {
            (1u64 << members.len()) - 1
        };
        match grid_sum(&segs, full) {
            Some(p) => (p, self.frames_exact),
            None => (naive(), false),
        }
    }
}

// ---------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------

/// Computes the cache-line access cost, uncached. This is the naive
/// baseline the perfsuite memory benchmark compares the memoized
/// [`mem_cost`] against, and what the differential tests call directly.
pub fn mem_cost_fresh(ir: &ProgramIr, cache: &CacheParams, opts: &AggregateOptions) -> MemCost {
    let lw = cache.elems_per_line() as i128;
    let (frames, sites) = collect(ir);
    let groups = build_sym_groups(&frames, &sites);
    let mut out = Vec::with_capacity(groups.len());
    let mut lines_poly = Poly::zero();
    let mut all_exact = true;
    for g in groups {
        let (lines, exact) = g.count(lw);
        all_exact &= exact;
        lines_poly += lines.clone();
        out.push(GroupLines {
            array: g.array,
            shape: g.shape,
            members: g.members.len(),
            lines,
            exact,
        });
    }
    let wrap = |p: Poly| {
        PerfExpr::from_poly_with(p, |s| {
            let (lo, hi) = opts
                .var_ranges
                .get(s.name())
                .copied()
                .unwrap_or(opts.default_range);
            VarInfo::loop_bound(lo, hi)
        })
    };
    let cycles = wrap(lines_poly.scale(Rational::from_int(cache.miss_penalty as i64)));
    MemCost {
        lines: wrap(lines_poly),
        cycles,
        groups: out,
        exact: all_exact,
    }
}

const MEMCOST_SEED: u64 = 0x51ab_00d1_c0ff_ee01;
const L1_CAP: usize = 1 << 10;
const L2_SHARDS: usize = 16;
const L2_CAP_PER_SHARD: usize = 256;

thread_local! {
    /// Thread-local L1 of [`mem_cost`] results, epoch-stamped like the
    /// scheduling memos in [`crate::aggregate`].
    static MEMCOST_L1: RefCell<HashMap<u128, MemCost>> = RefCell::new(HashMap::new());
    static MEMCOST_L1_EPOCH: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide L2 behind the thread-local memos; keys are the same
/// fixed-seed content hashes on every thread.
static MEMCOST_L2: LazyLock<ShardedMemo<u128, MemCost>> =
    LazyLock::new(|| ShardedMemo::new(L2_SHARDS, L2_CAP_PER_SHARD));

/// Entries in the memory-model L2 memo (soak telemetry).
pub(crate) fn l2_memo_entries() -> usize {
    MEMCOST_L2.len()
}

fn ensure_memcost_reclaimer() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        presage_symbolic::epoch::register_reclaimer("memcost-l2", |_bound| {
            let n = MEMCOST_L2.len();
            MEMCOST_L2.clear();
            n
        });
    });
}

/// Content key over everything the result is pure in: the cache
/// geometry, the variable ranges (they parameterize the `VarInfo`s), and
/// the program structure. Interned blocks contribute their 4-byte arena
/// id; loop headers contribute their bound expressions.
fn memcost_key(ir: &ProgramIr, cache: &CacheParams, opts: &AggregateOptions) -> u128 {
    let mut buf = Vec::with_capacity(256);
    buf.extend_from_slice(&cache.line_bytes.to_le_bytes());
    buf.extend_from_slice(&cache.miss_penalty.to_le_bytes());
    buf.extend_from_slice(&opts.default_range.0.to_bits().to_le_bytes());
    buf.extend_from_slice(&opts.default_range.1.to_bits().to_le_bytes());
    let mut ranges: Vec<(&String, &(f64, f64))> = opts.var_ranges.iter().collect();
    ranges.sort_by(|a, b| a.0.cmp(b.0));
    for (name, (lo, hi)) in ranges {
        buf.extend_from_slice(name.as_bytes());
        buf.push(0);
        buf.extend_from_slice(&lo.to_bits().to_le_bytes());
        buf.extend_from_slice(&hi.to_bits().to_le_bytes());
    }
    fn enc_block(buf: &mut Vec<u8>, b: &presage_translate::BlockIr) {
        match b.interned_id() {
            Some(id) => {
                buf.push(1);
                buf.extend_from_slice(&id.0.to_le_bytes());
            }
            None => {
                buf.push(0);
                b.encode_content(buf);
            }
        }
    }
    fn enc_nodes(buf: &mut Vec<u8>, nodes: &[IrNode]) {
        for n in nodes {
            match n {
                IrNode::Block(b) => {
                    buf.push(1);
                    enc_block(buf, b);
                }
                IrNode::Loop(l) => {
                    buf.push(2);
                    buf.extend_from_slice(l.var.as_bytes());
                    buf.push(0);
                    encode_expr(buf, &l.lb);
                    encode_expr(buf, &l.ub);
                    if let Some(s) = &l.step {
                        encode_expr(buf, s);
                    }
                    enc_block(buf, &l.preheader);
                    enc_block(buf, &l.control);
                    enc_nodes(buf, &l.body);
                    enc_block(buf, &l.postheader);
                }
                IrNode::If(i) => {
                    buf.push(3);
                    encode_expr(buf, &i.cond);
                    enc_block(buf, &i.cond_block);
                    enc_nodes(buf, &i.then_nodes);
                    buf.push(4);
                    enc_nodes(buf, &i.else_nodes);
                }
            }
        }
    }
    enc_nodes(&mut buf, &ir.root);
    fold128(&buf, MEMCOST_SEED)
}

/// Memoized cache-line access cost (paper §2.3, exact counting — see the
/// module docs). Results are pure in `(cache, options, program)` and the
/// paper's workload re-predicts shared nests constantly during
/// restructuring, so this goes through the same two-level content-keyed
/// memo scheme as placement: an epoch-stamped thread-local L1 over a
/// process-wide sharded L2.
pub fn mem_cost(ir: &ProgramIr, cache: &CacheParams, opts: &AggregateOptions) -> MemCost {
    ensure_memcost_reclaimer();
    let guard = presage_symbolic::epoch::pin();
    MEMCOST_L1_EPOCH.with(|e| {
        if e.get() != guard.epoch() {
            e.set(guard.epoch());
            MEMCOST_L1.with(|m| m.borrow_mut().clear());
        }
    });
    let key = memcost_key(ir, cache, opts);
    if let Some(hit) = MEMCOST_L1.with(|m| m.borrow().get(&key).cloned()) {
        memo::record_l1_hit();
        return hit;
    }
    let value = if let Some(hit) = MEMCOST_L2.get(&key) {
        memo::record_l2_hit();
        hit
    } else {
        memo::record_miss();
        let v = mem_cost_fresh(ir, cache, opts);
        MEMCOST_L2.insert(key, v.clone());
        v
    };
    MEMCOST_L1.with(|m| {
        let mut m = m.borrow_mut();
        if m.len() >= L1_CAP {
            m.clear();
        }
        m.insert(key, value.clone());
    });
    value
}

// ---------------------------------------------------------------------
// Concrete exact evaluator.
// ---------------------------------------------------------------------

/// Evaluates an integer source expression under concrete bindings.
/// Division truncates toward zero (Fortran integer division).
fn eval_int(e: &Expr, bind: &HashMap<String, i64>) -> Option<i128> {
    match e {
        Expr::IntLit(n) => Some(*n as i128),
        Expr::Var(name) => bind.get(name).map(|&v| v as i128),
        Expr::Unary {
            op: UnOp::Neg,
            operand,
        } => Some(-eval_int(operand, bind)?),
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_int(lhs, bind)?;
            let r = eval_int(rhs, bind)?;
            match op {
                BinOp::Add => Some(l + r),
                BinOp::Sub => Some(l - r),
                BinOp::Mul => l.checked_mul(r),
                BinOp::Div => (r != 0).then(|| l / r),
                _ => None,
            }
        }
        Expr::Intrinsic { func, args } => {
            let vals: Option<Vec<i128>> = args.iter().map(|a| eval_int(a, bind)).collect();
            let vals = vals?;
            match func {
                Intrinsic::Min => vals.into_iter().min(),
                Intrinsic::Max => vals.into_iter().max(),
                _ => None,
            }
        }
        _ => None,
    }
}

/// A fully-concrete dimension set: an arithmetic lattice or an explicit
/// point list (irregular leading-dimension strides).
enum ConSet {
    Lattice {
        start: i128,
        step: i128,
        count: i128,
    },
    Points(Vec<i128>),
}

struct ConGroup {
    /// `(stride, trip)` per dimension, shared by all members.
    dims: Vec<(i128, i128)>,
    members: BTreeSet<Vec<i128>>,
}

/// Counts the distinct cache lines the program touches with every
/// variable bound to a concrete integer, exactly — true floors, any trip
/// count, any alignment. Returns `None` when a reference defeats the
/// model (non-affine subscripts, correlated dimensions, unbound
/// variables) and exactness cannot be certified.
///
/// This is the prediction side of the differential oracle: on affine
/// nests it must equal the miss count of a simulated cache whose
/// capacity covers the footprint (see `tests/memcost_differential.rs`).
pub fn count_lines_concrete(
    ir: &ProgramIr,
    cache: &CacheParams,
    bindings: &HashMap<String, i64>,
) -> Option<u64> {
    let lw = cache.elems_per_line() as i128;
    let (frames, sites) = collect(ir);
    // Concrete header values per frame.
    let mut concrete: Vec<Option<(i128, i128)>> = Vec::with_capacity(frames.len()); // (lb, trip)
    for f in &frames {
        let v = (|| {
            let lb = eval_int(&f.lb, bindings)?;
            let ub = eval_int(&f.ub, bindings)?;
            let step = f
                .step_expr
                .as_ref()
                .map(|s| eval_int(s, bindings))
                .unwrap_or(Some(1))?;
            let trip = match step {
                0 => return None,
                s if s > 0 => {
                    if ub >= lb {
                        (ub - lb) / s + 1
                    } else {
                        0
                    }
                }
                s => {
                    if lb >= ub {
                        (lb - ub) / (-s) + 1
                    } else {
                        0
                    }
                }
            };
            Some((lb, trip))
        })();
        concrete.push(v);
    }
    let mut groups: BTreeMap<u128, ConGroup> = BTreeMap::new();
    for site in &sites {
        let mut used_frames: Vec<usize> = Vec::new();
        let mut dims: Vec<(i128, i128)> = Vec::new();
        let mut offsets: Vec<i128> = Vec::new();
        for sub in &site.mref.subscripts {
            let a = affine_form(sub)?;
            let mut base = a.constant as i128 - 1;
            let mut used: Option<(usize, i128)> = None;
            let mut terms: Vec<(&String, &i64)> = a.terms.iter().collect();
            terms.sort();
            for (var, &coeff) in terms {
                if coeff == 0 {
                    continue;
                }
                match site.frames.iter().rev().find(|&&fi| frames[fi].var == *var) {
                    Some(&fi) => {
                        if used.is_some() {
                            return None;
                        }
                        let (lb, _) = concrete[fi]?;
                        let step = f_step(&frames[fi], bindings)?;
                        base += coeff as i128 * lb;
                        used = Some((fi, coeff as i128 * step));
                    }
                    None => {
                        base += coeff as i128 * (*bindings.get(var)? as i128);
                    }
                }
            }
            if let Some((fi, _)) = used {
                if used_frames.contains(&fi) {
                    return None;
                }
                used_frames.push(fi);
            }
            let (stride, trip) = match used {
                Some((fi, s)) => (s, concrete[fi]?.1),
                None => (0, 1),
            };
            dims.push((stride, trip));
            offsets.push(base);
        }
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(site.mref.array.as_bytes());
        buf.push(0);
        for &(s, t) in &dims {
            buf.extend_from_slice(&s.to_le_bytes());
            buf.extend_from_slice(&t.to_le_bytes());
        }
        let key = fold128(&buf, AST_SEED);
        groups
            .entry(key)
            .or_insert_with(|| ConGroup {
                dims,
                members: BTreeSet::new(),
            })
            .members
            .insert(offsets);
    }
    let mut total: u128 = 0;
    for g in groups.values() {
        total += con_group_count(g, lw)?;
    }
    u64::try_from(total).ok()
}

fn f_step(f: &FrameInfo, bind: &HashMap<String, i64>) -> Option<i128> {
    f.step_expr
        .as_ref()
        .map(|s| eval_int(s, bind))
        .unwrap_or(Some(1))
        .filter(|&s| s != 0)
}

/// Concrete dimension set of one member: base `o`, stride `s`, trip `t`
/// (line coordinates for the leading dimension).
fn con_set(mut o: i128, mut s: i128, t: i128, line_space: bool, lw: i128) -> Option<ConSet> {
    if s < 0 {
        o += s * (t - 1);
        s = -s;
    }
    if s == 0 || t == 1 {
        let p = if line_space { o.div_euclid(lw) } else { o };
        return Some(ConSet::Lattice {
            start: p,
            step: 1,
            count: 1,
        });
    }
    if !line_space {
        return Some(ConSet::Lattice {
            start: o,
            step: s,
            count: t,
        });
    }
    if s <= lw {
        let lo = o.div_euclid(lw);
        let hi = (o + s * (t - 1)).div_euclid(lw);
        Some(ConSet::Lattice {
            start: lo,
            step: 1,
            count: hi - lo + 1,
        })
    } else if s % lw == 0 {
        Some(ConSet::Lattice {
            start: o.div_euclid(lw),
            step: s / lw,
            count: t,
        })
    } else if t <= POINT_CAP {
        let mut pts: Vec<i128> = (0..t).map(|i| (o + s * i).div_euclid(lw)).collect();
        pts.sort_unstable();
        pts.dedup();
        Some(ConSet::Points(pts))
    } else {
        None
    }
}

/// Disjoint `(width, mask)` segments covering the union of one
/// dimension's member sets.
fn con_dim_segments(sets: &[ConSet]) -> Option<Vec<(i128, u64)>> {
    // Points anywhere force the whole dimension to points.
    if sets.iter().any(|s| matches!(s, ConSet::Points(_))) {
        let mut by_point: BTreeMap<i128, u64> = BTreeMap::new();
        for (i, s) in sets.iter().enumerate() {
            let pts: Vec<i128> = match s {
                ConSet::Points(p) => p.clone(),
                ConSet::Lattice { start, step, count } => {
                    if *count > POINT_CAP {
                        return None;
                    }
                    (0..*count).map(|k| start + step * k).collect()
                }
            };
            for p in pts {
                *by_point.entry(p).or_insert(0) |= 1 << i;
            }
            if by_point.len() as i128 > POINT_CAP * 4 {
                return None;
            }
        }
        return Some(by_point.into_values().map(|m| (1, m)).collect());
    }
    // All lattices. Group by (step, residue class); within a class the
    // sets are index-space intervals and a boundary sweep applies.
    // `(step, residue) -> (set index, first index, last index)` members.
    type ClassMembers = Vec<(usize, i128, i128)>;
    let mut by_class: BTreeMap<(i128, i128), ClassMembers> = BTreeMap::new();
    for (i, s) in sets.iter().enumerate() {
        let ConSet::Lattice { start, step, count } = s else {
            unreachable!()
        };
        if *count <= 0 {
            continue;
        }
        let g = (*step).max(1);
        let r = start.rem_euclid(g);
        let u = start.div_euclid(g);
        by_class
            .entry((g, r))
            .or_default()
            .push((i, u, u + count - 1));
    }
    // Different steps on one dimension cannot happen within a group
    // (members share stride and trip), except when single-count members
    // normalize to step 1 — those still land in a unique (1, r) class
    // only if the strided members also have step 1; to stay safe, treat
    // any mixture of distinct steps by exploding small classes to points.
    let steps: BTreeSet<i128> = by_class.keys().map(|&(g, _)| g).collect();
    if steps.len() > 1 {
        let mut by_point: BTreeMap<i128, u64> = BTreeMap::new();
        for (&(g, r), members) in &by_class {
            for &(i, u0, u1) in members {
                if u1 - u0 + 1 > POINT_CAP {
                    return None;
                }
                for u in u0..=u1 {
                    *by_point.entry(u * g + r).or_insert(0) |= 1 << i;
                }
                if by_point.len() as i128 > POINT_CAP * 4 {
                    return None;
                }
            }
        }
        return Some(by_point.into_values().map(|m| (1, m)).collect());
    }
    let mut segs = Vec::new();
    for members in by_class.values() {
        let mut cuts: Vec<i128> = members
            .iter()
            .flat_map(|&(_, lo, hi)| [lo, hi + 1])
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        for w in cuts.windows(2) {
            let mask = members
                .iter()
                .filter(|&&(_, lo, hi)| lo <= w[0] && hi >= w[1] - 1)
                .fold(0u64, |m, &(i, _, _)| m | (1 << i));
            if mask != 0 {
                segs.push((w[1] - w[0], mask));
            }
        }
    }
    Some(segs)
}

fn con_group_count(g: &ConGroup, lw: i128) -> Option<u128> {
    if g.dims.iter().any(|&(_, t)| t == 0) {
        return Some(0); // a zero-trip loop: the group never executes
    }
    let members: Vec<&Vec<i128>> = g.members.iter().collect();
    if members.len() > MEMBER_CAP {
        return None;
    }
    let mut dim_segs: Vec<Vec<(i128, u64)>> = Vec::with_capacity(g.dims.len());
    for (d, &(stride, trip)) in g.dims.iter().enumerate() {
        let sets: Option<Vec<ConSet>> = members
            .iter()
            .map(|m| con_set(m[d], stride, trip, d == 0, lw))
            .collect();
        dim_segs.push(con_dim_segments(&sets?)?);
    }
    let tuples: u128 = dim_segs
        .iter()
        .map(|s| s.len() as u128)
        .try_fold(1u128, |a, b| {
            a.checked_mul(b).filter(|&t| t <= CON_GRID_CAP)
        })?;
    let _ = tuples;
    let full = if members.len() == 64 {
        u64::MAX
    } else {
        (1u64 << members.len()) - 1
    };
    fn rec(dims: &[Vec<(i128, u64)>], mask: u64, width: u128, total: &mut u128) {
        match dims.split_first() {
            None => *total += width,
            Some((first, rest)) => {
                for &(w, m) in first {
                    let m = mask & m;
                    if m != 0 {
                        rec(rest, m, width * w as u128, total);
                    }
                }
            }
        }
    }
    let mut total = 0u128;
    rec(&dim_segs, full, 1, &mut total);
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_frontend::{parse, sema};
    use presage_machine::machines;
    use presage_translate::translate;

    fn ir_of(src: &str) -> ProgramIr {
        let m = machines::power_like();
        let prog = parse(src).expect("parse");
        let symbols = sema::analyze(&prog.units[0]).expect("sema");
        translate(&prog.units[0], &symbols, &m).expect("translate")
    }

    /// 64-byte lines (8 doubles), capacity far beyond any test footprint.
    fn cache64() -> CacheParams {
        CacheParams {
            line_bytes: 64,
            size_bytes: 1 << 22,
            miss_penalty: 10,
            ways: 0,
            ..CacheParams::default()
        }
    }

    fn eval(p: &PerfExpr, n: f64) -> f64 {
        let mut b = HashMap::new();
        b.insert(Symbol::new("n"), n);
        p.eval_with_defaults(&b)
    }

    fn bind(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn column_scan_counts_lines_quadratically() {
        let ir = ir_of(
            "subroutine s(a, n)\nreal a(n,n)\ninteger i, j, n\ndo j = 1, n\ndo i = 1, n\na(i,j) = 0.0\nend do\nend do\nend",
        );
        let mc = mem_cost_fresh(&ir, &cache64(), &AggregateOptions::default());
        assert!(mc.exact, "{:?}", mc.groups);
        // n²/8 lines: each column is n contiguous elements = n/8 lines.
        assert_eq!(eval(&mc.lines, 64.0), 64.0 * 64.0 / 8.0);
        let c = count_lines_concrete(&ir, &cache64(), &bind(&[("n", 64)])).unwrap();
        assert_eq!(c, 512);
        // cycles = lines × penalty.
        assert_eq!(eval(&mc.cycles, 64.0), 5120.0);
    }

    #[test]
    fn row_scan_same_compulsory_lines() {
        // Cold misses are direction-independent: a(j,i) touches the same
        // distinct lines as a(i,j) (capacity effects are the legacy
        // heuristic's and the simulator's business).
        let col = ir_of(
            "subroutine s(a, n)\nreal a(n,n)\ninteger i, j, n\ndo j = 1, n\ndo i = 1, n\na(i,j) = 0.0\nend do\nend do\nend",
        );
        let row = ir_of(
            "subroutine s(a, n)\nreal a(n,n)\ninteger i, j, n\ndo j = 1, n\ndo i = 1, n\na(j,i) = 0.0\nend do\nend do\nend",
        );
        let opts = AggregateOptions::default();
        let a = mem_cost_fresh(&col, &cache64(), &opts);
        let b = mem_cost_fresh(&row, &cache64(), &opts);
        assert_eq!(eval(&a.lines, 64.0), eval(&b.lines, 64.0));
    }

    #[test]
    fn stencil_members_merge_and_union_counts_once() {
        let ir = ir_of(
            "subroutine s(a, b, n)\nreal a(n), b(n)\ninteger i, n\ndo i = 2, n - 1\na(i) = b(i-1) + b(i) + b(i+1)\nend do\nend",
        );
        let mc = mem_cost_fresh(&ir, &cache64(), &AggregateOptions::default());
        let b_group = mc.groups.iter().find(|g| g.array == "b").unwrap();
        assert_eq!(b_group.members, 3, "b(i-1), b(i), b(i+1) share a group");
        // T = n−2 elements starting at 0, spread 2: T+2 = n elements →
        // n/8 lines when 8 | n − under the discipline 8 | T, i.e. n ≡ 2.
        // At n = 66: T = 64, poly = 64/8 + 1 = 9; elements 0..65 → 9 lines.
        let poly = eval(&mc.lines, 66.0);
        let conc = count_lines_concrete(&ir, &cache64(), &bind(&[("n", 66)])).unwrap();
        let a_lines = 64.0 / 8.0; // a(i): offset 1, 64 elements → lines 0..8? exact: 9
        let _ = a_lines;
        // Compare total poly and total concrete at the aligned point.
        assert_eq!(poly, conc as f64, "groups: {:#?}", mc.groups);
        // Off the discipline the evaluator stays exact while the poly
        // rounds: they may differ, but never by a whole line per group.
        let conc67 = count_lines_concrete(&ir, &cache64(), &bind(&[("n", 67)])).unwrap();
        let poly67 = eval(&mc.lines, 67.0);
        assert!((poly67 - conc67 as f64).abs() < 2.0);
    }

    #[test]
    fn stride_two_residue_classes() {
        // a(i-1) and a(i+1) under do i = 2, n-1, 2: both even offsets,
        // one residue class, union T+1 elements step 2 → T/4+1 lines.
        let ir = ir_of(
            "subroutine s(a, b, n)\nreal a(n), b(n)\ninteger i, n\ndo i = 2, n - 1, 2\nb(i) = a(i-1) + a(i+1)\nend do\nend",
        );
        let mc = mem_cost_fresh(&ir, &cache64(), &AggregateOptions::default());
        let a_group = mc.groups.iter().find(|g| g.array == "a").unwrap();
        assert_eq!(a_group.members, 2);
        // The discipline here also needs the step to divide the span:
        // n = 65 gives T = 32 exactly, and a-lines = 32/4 + 1 = 9.
        let mut bnd = HashMap::new();
        bnd.insert(Symbol::new("n"), 65.0);
        assert_eq!(a_group.lines.eval_f64(&bnd).unwrap(), 9.0);
        let conc = count_lines_concrete(&ir, &cache64(), &bind(&[("n", 65)])).unwrap();
        assert_eq!(eval(&mc.lines, 65.0), conc as f64);
        // Off the divisibility point the poly carries the half-iteration
        // (T = 32.5 at n = 66) while the evaluator floors it.
        let conc66 = count_lines_concrete(&ir, &cache64(), &bind(&[("n", 66)])).unwrap();
        assert_eq!(conc66, 17);
        assert!((eval(&mc.lines, 66.0) - 17.25).abs() < 1e-9);
    }

    #[test]
    fn hoisted_reduction_merges_across_blocks() {
        // The blocked-matmul shape: c(i+p, j+q) loads are hoisted to the
        // k-loop preheader and stores sunk to the postheader. Pre/post
        // sites must merge with one another (same group key, no k), so c
        // counts its lines once, not once per block.
        let ir = ir_of(
            "subroutine mm4(a, b, c, n, i, j)
               real a(n,n), b(n,n), c(n,n)
               integer k, n, i, j
               do k = 1, n
                 c(i,j) = c(i,j) + a(i,k) * b(k,j)
                 c(i+1,j) = c(i+1,j) + a(i+1,k) * b(k,j)
               end do
             end",
        );
        let mc = mem_cost_fresh(&ir, &cache64(), &AggregateOptions::default());
        let c_groups: Vec<_> = mc.groups.iter().filter(|g| g.array == "c").collect();
        assert_eq!(c_groups.len(), 1, "{:#?}", mc.groups);
        assert_eq!(c_groups[0].members, 2);
        // Two elements in one column at aligned i: one line.
        let v = c_groups[0]
            .lines
            .eval_f64(&HashMap::new())
            .expect("constant");
        assert_eq!(v, 1.0);
        // Differential at concrete, aligned bindings.
        let conc =
            count_lines_concrete(&ir, &cache64(), &bind(&[("n", 64), ("i", 1), ("j", 1)])).unwrap();
        assert_eq!(
            eval_at(&mc.lines, &[("n", 64.0), ("i", 1.0), ("j", 1.0)]),
            conc as f64
        );
    }

    fn eval_at(p: &PerfExpr, binds: &[(&str, f64)]) -> f64 {
        let b: HashMap<Symbol, f64> = binds.iter().map(|&(k, v)| (Symbol::new(k), v)).collect();
        p.eval_with_defaults(&b)
    }

    #[test]
    fn unaligned_concrete_bases_stay_exact() {
        // i = 2 puts the c/a column bases mid-line; the evaluator's
        // floors must still agree with first principles.
        let ir = ir_of(
            "subroutine s(a, n, i)\nreal a(n,n)\ninteger k, n, i\ndo k = 1, n\na(i,k) = 0.0\nend do\nend",
        );
        // Column k holds one element at row i: n columns → n lines.
        for i in [1, 2, 7] {
            let c = count_lines_concrete(&ir, &cache64(), &bind(&[("n", 64), ("i", i)])).unwrap();
            assert_eq!(c, 64, "i = {i}");
        }
    }

    #[test]
    fn reuse_loops_do_not_multiply() {
        // b(i) under an outer j loop: distinct lines are counted once,
        // not once per j iteration.
        let ir = ir_of(
            "subroutine s(a, b, n)\nreal a(n,n), b(n)\ninteger i, j, n\ndo j = 1, n\ndo i = 1, n\na(i,j) = b(i)\nend do\nend do\nend",
        );
        let mc = mem_cost_fresh(&ir, &cache64(), &AggregateOptions::default());
        let b_group = mc.groups.iter().find(|g| g.array == "b").unwrap();
        let n = Symbol::new("n");
        assert_eq!(b_group.lines.degree_in(&n), 1, "{}", b_group.lines);
    }

    #[test]
    fn memoized_matches_fresh() {
        let ir = ir_of(
            "subroutine s(a, n)\nreal a(n,n)\ninteger i, j, n\ndo j = 1, n\ndo i = 1, n\na(i,j) = 0.0\nend do\nend do\nend",
        );
        let opts = AggregateOptions::default();
        let fresh = mem_cost_fresh(&ir, &cache64(), &opts);
        let memo1 = mem_cost(&ir, &cache64(), &opts);
        let memo2 = mem_cost(&ir, &cache64(), &opts);
        for m in [&memo1, &memo2] {
            assert_eq!(eval(&m.lines, 48.0), eval(&fresh.lines, 48.0));
            assert_eq!(eval(&m.cycles, 48.0), eval(&fresh.cycles, 48.0));
        }
        // Different geometry must miss the memo, not alias it.
        let mut wide = cache64();
        wide.line_bytes = 128;
        let other = mem_cost(&ir, &wide, &opts);
        assert_eq!(eval(&other.lines, 64.0), 64.0 * 64.0 / 16.0);
    }

    #[test]
    fn non_affine_reference_flags_inexact() {
        let ir = ir_of(
            "subroutine s(a, idx, n)\nreal a(n)\ninteger idx(n)\ninteger i, n\ndo i = 1, n\na(idx(i)) = 0.0\nend do\nend",
        );
        let mc = mem_cost_fresh(&ir, &cache64(), &AggregateOptions::default());
        assert!(!mc.exact);
        assert!(count_lines_concrete(&ir, &cache64(), &bind(&[("n", 64)])).is_none());
    }
}
