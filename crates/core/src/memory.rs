//! The memory access cost model (paper §2.3).
//!
//! "The memory access cost (cache misses, TLB misses and page faults) is
//! computed independent from the straight line code estimation because the
//! former is a more global matter. ... The total number of cache line
//! accesses is counted and the cost of filling these cache lines is used to
//! approximate the memory cost" — following Ferrante–Sarkar–Thrash.
//!
//! For each loop nest, array references are clustered into *reference
//! groups* (same array, same affine subscript shape up to constants — e.g.
//! the four stencil reads `b(i±1, j±1)` form one group). A group's line
//! count is the product of the trip counts of the loops its subscripts use,
//! divided by the line length when the innermost subscript is stride-1.
//! Loops *not* used by a group provide temporal reuse — unless the data
//! touched within one such iteration overflows the cache, in which case the
//! group is re-fetched every iteration (this capacity heuristic is what
//! makes blocked matmul win once the working set exceeds the cache).

use crate::aggregate::{loop_trip_poly, AggregateOptions};
use presage_frontend::analysis::affine_form;
use presage_machine::CacheParams;
use presage_symbolic::{PerfExpr, Poly, Rational, Symbol, VarInfo};
use presage_translate::{IrNode, LoopIr, MemRef, ProgramIr};
use std::collections::{BTreeMap, HashMap};

/// Result of the memory analysis.
#[derive(Clone, Debug)]
pub struct MemoryCost {
    /// Estimated distinct cache-line fills.
    pub lines: PerfExpr,
    /// Estimated distinct page translations (TLB fills).
    pub pages: PerfExpr,
    /// Total memory stall cycles: `lines × miss_penalty + pages × tlb_penalty`.
    pub cycles: PerfExpr,
    /// Per-reference-group line expressions for diagnostics.
    pub groups: Vec<GroupCost>,
}

/// One reference group's contribution.
#[derive(Clone, Debug)]
pub struct GroupCost {
    /// Array name.
    pub array: String,
    /// Canonical shape key of the group.
    pub shape: String,
    /// Whether the fastest-varying subscript is stride-1.
    pub stride1: bool,
    /// Symbolic line count.
    pub lines: Poly,
}

/// Bytes per array element (the model treats `real` as 8 bytes,
/// `integer`/`logical` as 4; the translator does not thread types through
/// [`MemRef`], so reals are assumed — numeric kernels are FP-dominated).
const ELEM_BYTES: u64 = 8;

/// Analyzes the memory cost of a translated subroutine.
///
/// `opts` supplies variable ranges for the capacity heuristic's numeric
/// evaluation.
pub fn memory_cost(ir: &ProgramIr, cache: &CacheParams, opts: &AggregateOptions) -> MemoryCost {
    let mut groups: Vec<GroupCost> = Vec::new();
    let mut ctx: Vec<LoopFrame> = Vec::new();
    walk(&ir.root, cache, opts, &mut ctx, &mut groups);

    let mut lines_poly = Poly::zero();
    for g in &groups {
        lines_poly += g.lines.clone();
    }
    // Pages touched ≈ lines × (line size / page size).
    let page_ratio = Rational::new(
        cache.line_bytes.max(1) as i128,
        cache.page_bytes.max(1) as i128,
    );
    let pages_poly = lines_poly.scale(page_ratio);

    let wrap = |p: Poly| {
        let infos: Vec<(Symbol, VarInfo)> = p
            .symbols()
            .into_iter()
            .map(|s| {
                let (lo, hi) = opts
                    .var_ranges
                    .get(s.name())
                    .copied()
                    .unwrap_or(opts.default_range);
                (s, VarInfo::loop_bound(lo, hi))
            })
            .collect();
        PerfExpr::from_poly(p, infos)
    };

    let cycles = wrap(
        lines_poly.scale(Rational::from_int(cache.miss_penalty as i64))
            + pages_poly.scale(Rational::from_int(cache.tlb_penalty as i64)),
    );
    MemoryCost {
        lines: wrap(lines_poly),
        pages: wrap(pages_poly),
        cycles,
        groups,
    }
}

/// One enclosing loop: variable name and symbolic trip count.
struct LoopFrame {
    var: String,
    trip: Poly,
}

fn walk(
    nodes: &[IrNode],
    cache: &CacheParams,
    opts: &AggregateOptions,
    ctx: &mut Vec<LoopFrame>,
    out: &mut Vec<GroupCost>,
) {
    for node in nodes {
        match node {
            IrNode::Block(b) => {
                let refs: Vec<&MemRef> = b.mem_refs().map(|(_, m)| m).collect();
                if !refs.is_empty() {
                    analyze_block_refs(&refs, cache, opts, ctx, out);
                }
            }
            IrNode::Loop(l) => {
                ctx.push(LoopFrame {
                    var: l.var.clone(),
                    trip: trip_poly(l),
                });
                walk(&l.body, cache, opts, ctx, out);
                ctx.pop();
            }
            IrNode::If(i) => {
                // Conservative: both branches' footprints are charged.
                walk(&i.then_nodes, cache, opts, ctx, out);
                walk(&i.else_nodes, cache, opts, ctx, out);
            }
        }
    }
}

fn trip_poly(l: &LoopIr) -> Poly {
    loop_trip_poly(l)
}

/// A group key: array + per-subscript affine coefficients (constants
/// dropped, so `b(i-1,j)` and `b(i+1,j)` share a group).
fn group_key(m: &MemRef) -> String {
    use std::fmt::Write;
    let mut key = m.array.clone();
    for sub in &m.subscripts {
        match affine_form(sub) {
            Some(a) => {
                let mut terms: Vec<(String, i64)> =
                    a.terms.iter().map(|(v, c)| (v.clone(), *c)).collect();
                terms.sort();
                let _ = write!(key, "[{terms:?}]");
            }
            None => {
                let _ = write!(key, "[{sub}]");
            }
        }
    }
    key
}

fn analyze_block_refs(
    refs: &[&MemRef],
    cache: &CacheParams,
    opts: &AggregateOptions,
    ctx: &[LoopFrame],
    out: &mut Vec<GroupCost>,
) {
    // Cluster into reference groups.
    let mut by_group: BTreeMap<String, &MemRef> = BTreeMap::new();
    for m in refs {
        by_group.entry(group_key(m)).or_insert(m);
    }

    // Midpoint bindings for the capacity heuristic.
    let midpoints: HashMap<Symbol, f64> = ctx
        .iter()
        .flat_map(|f| {
            f.trip.symbols().into_iter().map(|s| {
                let (lo, hi) = opts
                    .var_ranges
                    .get(s.name())
                    .copied()
                    .unwrap_or(opts.default_range);
                (s, 0.5 * (lo + hi))
            })
        })
        .collect();

    // First pass: per-group base footprint (product over used loops) and
    // which loops are unused (reuse carriers).
    struct GroupInfo<'a> {
        mref: &'a MemRef,
        key: String,
        uses: Vec<bool>,
        stride1: bool,
    }
    let infos: Vec<GroupInfo<'_>> = by_group
        .iter()
        .map(|(key, m)| {
            let uses: Vec<bool> = ctx
                .iter()
                .map(|f| {
                    m.subscripts.iter().any(|s| {
                        affine_form(s)
                            .map(|a| a.coeff(&f.var) != 0)
                            .unwrap_or_else(|| s.referenced_names().contains(&f.var))
                    })
                })
                .collect();
            // Stride-1: consecutive iterations of the *innermost loop this
            // group varies with* must touch adjacent elements, i.e. that
            // loop's variable appears with unit coefficient in the first
            // (fastest, column-major) subscript. `a(j,i)` inside `do j /
            // do i` is strided: the innermost used loop (i) drives the
            // second subscript, jumping a whole column per iteration.
            let innermost_used = uses.iter().rposition(|u| *u);
            let stride1 = match (innermost_used, m.subscripts.first().and_then(affine_form)) {
                (Some(j), Some(a)) => a.coeff(&ctx[j].var).abs() == 1,
                _ => false,
            };
            GroupInfo {
                mref: m,
                key: key.clone(),
                uses,
                stride1,
            }
        })
        .collect();

    // Footprint (bytes) touched by all groups within one iteration of loop
    // level `k` (i.e., product over used loops deeper than k).
    let inner_footprint = |k: usize| -> f64 {
        let mut total = 0.0;
        for gi in &infos {
            let mut elems = 1.0;
            for (j, frame) in ctx.iter().enumerate().skip(k + 1) {
                if gi.uses[j] {
                    elems *= frame.trip.eval_f64(&midpoints).unwrap_or(1e3).max(1.0);
                }
            }
            total += elems * ELEM_BYTES as f64;
        }
        total
    };

    for gi in &infos {
        let mut lines = Poly::one();
        let mut any_loop = false;
        for (j, frame) in ctx.iter().enumerate() {
            if gi.uses[j] {
                lines = &lines * &frame.trip;
                any_loop = true;
            } else {
                // Temporal reuse across this loop holds only if the inner
                // working set fits in cache.
                if inner_footprint(j) > cache.size_bytes as f64 {
                    lines = &lines * &frame.trip;
                }
            }
        }
        if !any_loop && ctx.is_empty() {
            // Straight-line reference: one line.
        }
        if gi.stride1 {
            let per_line = (cache.line_bytes / ELEM_BYTES).max(1);
            lines = lines.scale(Rational::new(1, per_line as i128));
        }
        out.push(GroupCost {
            array: gi.mref.array.clone(),
            shape: gi.key.clone(),
            stride1: gi.stride1,
            lines,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_frontend::{parse, sema};
    use presage_machine::machines;
    use presage_translate::translate;

    fn analyze(src: &str) -> MemoryCost {
        analyze_with(src, &AggregateOptions::default())
    }

    fn analyze_with(src: &str, opts: &AggregateOptions) -> MemoryCost {
        let m = machines::power_like();
        let prog = parse(src).expect("parse");
        let symbols = sema::analyze(&prog.units[0]).expect("sema");
        let ir = translate(&prog.units[0], &symbols, &m).expect("translate");
        memory_cost(&ir, &m.cache.unwrap_or_default(), opts)
    }

    #[test]
    fn sequential_scan_counts_lines_not_elements() {
        let mc = analyze(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = a(i) + 1.0\nend do\nend",
        );
        // One group (load and store share shape), stride-1: n/16 lines for
        // 128-byte lines and 8-byte reals.
        let n = Symbol::new("n");
        let mut b = HashMap::new();
        b.insert(n, 1600.0);
        let lines = mc.lines.poly().eval_f64(&b).unwrap();
        assert!(
            (lines - 100.0).abs() < 2.0,
            "1600 elements / 16 per line = 100, got {lines}"
        );
    }

    #[test]
    fn strided_scan_counts_every_access() {
        // Row scan of a column-major array: a(j, i) with i innermost...
        // subscript 1 varies with the *outer* loop only.
        let mc = analyze(
            "subroutine s(a, n)
               real a(n,n)
               integer i, j, n
               do j = 1, n
                 do i = 1, n
                   a(j,i) = 0.0
                 end do
               end do
             end",
        );
        // a(j,i): first subscript coefficient in j is 1 → our stride test
        // sees *some* unit coefficient, but the line-sharing loop is outer:
        // the estimate stays optimistic here; the group must at least be
        // quadratic in n.
        let n = Symbol::new("n");
        assert_eq!(mc.lines.poly().degree_in(&n), 2);
    }

    #[test]
    fn stencil_reads_share_one_group() {
        let mc = analyze(
            "subroutine jacobi(a, b, n)
               real a(n,n), b(n,n)
               integer i, j, n
               do j = 2, n-1
                 do i = 2, n-1
                   a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
                 end do
               end do
             end",
        );
        // Groups: the b-stencil collapses to two shapes ([i±1,j] vs
        // [i,j±1] differ only in constants per-dimension → the affine
        // coefficient key merges all four) plus the a store.
        assert!(
            mc.groups.len() <= 3,
            "stencil should form few groups: {:?}",
            mc.groups.iter().map(|g| &g.shape).collect::<Vec<_>>()
        );
        let n = Symbol::new("n");
        assert_eq!(mc.lines.poly().degree_in(&n), 2);
    }

    #[test]
    fn reuse_held_when_footprint_fits() {
        // b(i) inside a j-loop: reused across j when n is small.
        let mut opts = AggregateOptions::default();
        opts.var_ranges.insert("n".into(), (100.0, 100.0));
        let mc = analyze_with(
            "subroutine s(a, b, n)
               real a(n,n), b(n)
               integer i, j, n
               do j = 1, n
                 do i = 1, n
                   a(i,j) = b(i)
                 end do
               end do
             end",
            &opts,
        );
        let b_group = mc.groups.iter().find(|g| g.array == "b").unwrap();
        let n = Symbol::new("n");
        assert_eq!(b_group.lines.degree_in(&n), 1, "b fetched once: O(n) lines");
    }

    #[test]
    fn reuse_lost_when_footprint_overflows() {
        // Same code, but n midpoint makes b's footprint exceed 64 KiB.
        let mut opts = AggregateOptions::default();
        opts.var_ranges.insert("n".into(), (100000.0, 100000.0));
        let mc = analyze_with(
            "subroutine s(a, b, n)
               real a(n,n), b(n)
               integer i, j, n
               do j = 1, n
                 do i = 1, n
                   a(i,j) = b(i)
                 end do
               end do
             end",
            &opts,
        );
        let b_group = mc.groups.iter().find(|g| g.array == "b").unwrap();
        let n = Symbol::new("n");
        assert_eq!(
            b_group.lines.degree_in(&n),
            2,
            "b refetched per j iteration"
        );
    }

    #[test]
    fn cycles_scale_with_miss_penalty() {
        let mc = analyze(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
        );
        let n = Symbol::new("n");
        let mut b = HashMap::new();
        b.insert(n, 1600.0);
        let lines = mc.lines.poly().eval_f64(&b).unwrap();
        let cycles = mc.cycles.poly().eval_f64(&b).unwrap();
        assert!(cycles >= lines * 16.0, "miss penalty 16 applied");
    }

    #[test]
    fn straight_line_code_has_no_symbolic_lines() {
        let mc = analyze("subroutine s(a)\nreal a(8)\na(1) = 1.0\na(2) = 2.0\nend");
        assert!(mc.lines.is_concrete());
    }
}
