//! Presage core: the performance prediction framework of Wang, *Precise
//! Compile-Time Performance Prediction for Superscalar-Based Computers*
//! (PLDI 1994).
//!
//! The paper's Figure 1 pipeline maps onto this crate as follows:
//!
//! - **Instruction cost model** (§2.1): [`slots`] implements the Figure 4
//!   block-list time-slot structure, [`tetris`] the linear-time placement
//!   of operations into functional-unit bins with coverable/noncoverable
//!   costs and a tunable focus span, and [`costblock`] the Figure 8 cost
//!   blocks with Figure 9 shape-based overlap estimation.
//! - **Loop overlap** (§2.2.2): [`overlap`] estimates steady-state
//!   per-iteration cost by re-dropping the body into the bins, plus the
//!   cheap shape-matching alternative and unroll profiles.
//! - **Cost aggregation** (§2.4): [`aggregate`] builds symbolic
//!   performance expressions over unknown bounds and branch probabilities,
//!   with the §3.3.2 simplification heuristics.
//! - **Memory cost model** (§2.3): [`memcost`] counts the *distinct*
//!   cache lines each reference group touches, symbolically in the loop
//!   bounds and exactly enough to check against the simulator's cache;
//!   [`memory`] is the original capacity-heuristic variant.
//! - **Communication cost model**: [`comm`] is the parameterized
//!   message-passing model used for distribution decisions.
//! - **Library interface** (§3.5): [`library`] holds parameterized cost
//!   expressions for external routines.
//! - **Incremental update** (§3.3.1): [`incremental`] caches per-structure
//!   costs and re-costs only a transformation's affected region.
//! - **Facade**: [`predictor::Predictor`] wires everything to source text.
//!
//! # Quick start
//!
//! ```
//! use presage_core::predictor::Predictor;
//! use presage_machine::machines;
//!
//! let predictor = Predictor::new(machines::power_like());
//! let pred = &predictor.predict_source(
//!     "subroutine daxpy(y, x, a, n)
//!        real y(n), x(n), a
//!        integer i, n
//!        do i = 1, n
//!          y(i) = y(i) + a * x(i)
//!        end do
//!      end").unwrap()[0];
//! println!("C(daxpy) = {} cycles", pred.total);
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod batch;
pub mod bounds;
pub mod comm;
pub mod costblock;
pub mod explain;
pub mod incremental;
pub mod library;
pub mod memcost;
pub mod memory;
pub mod overlap;
pub mod predictor;
pub mod refagg;
pub mod reference;
pub mod render;
pub mod slots;
pub mod tetris;
pub mod transcache;

pub use batch::{BatchReport, BatchWorkerStats};
pub use bounds::{block_lower_bound, block_summary, subroutine_lower_bound, BlockSummary};
pub use costblock::CostBlock;
pub use explain::{BlockExplain, Bottleneck, ExplainReport, MemoryExplain, UnitLoad};
pub use predictor::{PredictError, Prediction, Predictor, PredictorOptions};
pub use tetris::{place_block, PlaceOptions, Placer, PreparedBlock};
pub use transcache::TranslationCache;

/// Total entries across every process-wide L2 memo table the predictor
/// feeds: the symbolic-algebra memos plus the scheduling/trip-count memos
/// in [`aggregate`] and the block-summary/bound memos in [`bounds`]. The
/// perfsuite soak check asserts this stays bounded under sustained batch
/// load.
pub fn l2_memo_entries() -> usize {
    presage_symbolic::l2_memo_entries()
        + aggregate::l2_memo_entries()
        + memcost::l2_memo_entries()
        + bounds::l2_memo_entries()
}
