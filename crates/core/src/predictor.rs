//! The end-to-end prediction facade (paper Figure 1).
//!
//! Source text flows through the front end, the instruction translation
//! module, the placement cost model, and the symbolic aggregation model;
//! memory costs are computed independently (§2.3) and added, and library
//! calls draw on the external cost table (§3.5).

use crate::aggregate::{aggregate, AggregateOptions};
use crate::incremental::CostTree;
use crate::library::LibraryCostTable;
use crate::memcost::{mem_cost, MemCost};
use crate::memory::{memory_cost, MemoryCost};
use crate::transcache::TranslationCache;
use presage_frontend::{parse, sema, FrontendError, Subroutine};
use presage_machine::MachineDesc;
use presage_symbolic::PerfExpr;
use presage_translate::{translate, ProgramIr, TranslateError};
use std::fmt;
use std::sync::Arc;

/// Predictor configuration.
#[derive(Clone, Debug, Default)]
pub struct PredictorOptions {
    /// Aggregation/placement options.
    pub aggregate: AggregateOptions,
    /// Include the §2.3 memory cost model in the total.
    pub include_memory: bool,
    /// Library routine cost table for `call` statements.
    pub library: Option<LibraryCostTable>,
}

/// Errors from prediction.
#[derive(Clone, Debug, PartialEq)]
pub enum PredictError {
    /// Lexing, parsing, or semantic analysis failed.
    Frontend(FrontendError),
    /// Instruction translation failed.
    Translate(TranslateError),
    /// The prediction pipeline panicked or hit an invariant violation.
    /// Batch workers catch per-job panics and report them here so one
    /// poisoned job cannot take down a server wave.
    Internal(String),
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::Frontend(e) => write!(f, "{e}"),
            PredictError::Translate(e) => write!(f, "{e}"),
            PredictError::Internal(e) => write!(f, "internal error: {e}"),
        }
    }
}

impl std::error::Error for PredictError {}

impl From<FrontendError> for PredictError {
    fn from(e: FrontendError) -> Self {
        PredictError::Frontend(e)
    }
}

impl From<TranslateError> for PredictError {
    fn from(e: TranslateError) -> Self {
        PredictError::Translate(e)
    }
}

/// A finished prediction for one subroutine.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Subroutine name.
    pub name: String,
    /// Instruction-stream cost (placement + aggregation).
    pub compute: PerfExpr,
    /// Legacy capacity-heuristic memory cost, when enabled via
    /// [`PredictorOptions::include_memory`].
    pub memory: Option<MemoryCost>,
    /// The §2.3 cache-line access model, present exactly when the machine
    /// declares a `cache` section (see [`crate::memcost`]).
    pub memcost: Option<MemCost>,
    /// `compute` plus memory stall cycles.
    pub total: PerfExpr,
    /// The translated program (for cost blocks, optimization, rendering).
    pub ir: ProgramIr,
}

impl fmt::Display for Prediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} cycles", self.name, self.total)
    }
}

/// The performance prediction engine for one target machine.
///
/// # Examples
///
/// ```
/// use presage_core::predictor::Predictor;
/// use presage_machine::machines;
///
/// let predictor = Predictor::new(machines::power_like());
/// let predictions = predictor
///     .predict_source(
///         "subroutine scale(a, s, n)
///            real a(n), s
///            integer i, n
///            do i = 1, n
///              a(i) = a(i) * s
///            end do
///          end",
///     )
///     .unwrap();
/// let p = &predictions[0];
/// assert_eq!(p.name, "scale");
/// // Cost is symbolic in the unknown bound n.
/// assert!(!p.total.is_concrete());
/// ```
#[derive(Debug)]
pub struct Predictor {
    machine: MachineDesc,
    options: PredictorOptions,
    /// Shared translation memo; `None` is the uncached reference path
    /// (sema + translate on every call), which the differential tests pin
    /// the cached path against.
    translation: Option<Arc<TranslationCache>>,
}

impl Predictor {
    /// A predictor with default options (no memory model, no library).
    pub fn new(machine: MachineDesc) -> Predictor {
        Predictor {
            machine,
            options: PredictorOptions::default(),
            translation: None,
        }
    }

    /// A predictor with explicit options.
    pub fn with_options(machine: MachineDesc, options: PredictorOptions) -> Predictor {
        Predictor {
            machine,
            options,
            translation: None,
        }
    }

    /// Attaches a shared [`TranslationCache`]: every subsequent
    /// source-level prediction keys its sema + translation work by
    /// canonical AST hash and reuses prior translations — across repeated
    /// calls, across subroutines sharing a shape, and (because the cache
    /// key includes the machine) across predictors for different targets
    /// sharing the same `Arc`.
    pub fn with_translation_cache(mut self, cache: Arc<TranslationCache>) -> Predictor {
        self.translation = Some(cache);
        self
    }

    /// The attached translation cache, if any.
    pub fn translation_cache(&self) -> Option<&Arc<TranslationCache>> {
        self.translation.as_ref()
    }

    /// The target machine.
    pub fn machine(&self) -> &MachineDesc {
        &self.machine
    }

    /// The active options.
    pub fn options(&self) -> &PredictorOptions {
        &self.options
    }

    /// Sema + translation for one subroutine, through the shared
    /// [`TranslationCache`] when one is attached and from scratch (the
    /// reference path) otherwise.
    fn translated(&self, sub: &Subroutine) -> Result<Arc<ProgramIr>, PredictError> {
        match &self.translation {
            Some(cache) => cache.translated(sub, &self.machine),
            None => {
                let symbols = sema::analyze(sub)?;
                Ok(Arc::new(translate(sub, &symbols, &self.machine)?))
            }
        }
    }

    /// Parses, checks, translates, and predicts every subroutine in `src`.
    ///
    /// # Errors
    ///
    /// Returns the first front-end or translation error.
    pub fn predict_source(&self, src: &str) -> Result<Vec<Prediction>, PredictError> {
        let program = parse(src)?;
        program
            .units
            .iter()
            .map(|sub| self.predict_subroutine(sub))
            .collect()
    }

    /// Predicts one parsed subroutine.
    ///
    /// # Errors
    ///
    /// Returns semantic or translation errors.
    pub fn predict_subroutine(&self, sub: &Subroutine) -> Result<Prediction, PredictError> {
        let ir = self.translated(sub)?;
        Ok(self.predict_ir(sub.name.clone(), (*ir).clone()))
    }

    /// Predicts one parsed subroutine, returning only the total cost
    /// expression.
    ///
    /// This is the prediction-engine hot path: unlike
    /// [`Predictor::predict_subroutine`] it assembles no [`Prediction`]
    /// (no IR retained, no expression clones), so it is what the
    /// transformation search and the `perfsuite` throughput benchmark
    /// call in their inner loops.
    ///
    /// # Errors
    ///
    /// Returns semantic or translation errors.
    pub fn predict_subroutine_cost(&self, sub: &Subroutine) -> Result<PerfExpr, PredictError> {
        let ir = self.translated(sub)?;
        Ok(self.predict_cost(&ir))
    }

    /// Admissible lower bound on [`Self::predict_subroutine_cost`]
    /// evaluated at `bindings` (unbound unknowns default to their range
    /// midpoints, matching [`PerfExpr::eval_with_defaults`]). Computed
    /// from per-block critical-path/port-pressure floors without running
    /// the placement — see [`crate::bounds`]. The searchers use it to
    /// prune candidates that provably cannot beat the incumbent.
    pub fn lower_bound_subroutine(
        &self,
        sub: &Subroutine,
        bindings: &std::collections::HashMap<presage_symbolic::Symbol, f64>,
    ) -> Result<f64, PredictError> {
        let ir = self.translated(sub)?;
        let mut lb = crate::bounds::subroutine_lower_bound(
            &ir,
            &self.machine,
            &self.options.aggregate,
            bindings,
        );
        // The memory-model terms are added to the prediction verbatim, so
        // charging their exact (memoized) values keeps the bound
        // admissible and tight on cache-extended machines.
        if let Some(cache) = &self.machine.cache {
            let mem = mem_cost(&ir, cache, &self.options.aggregate)
                .cycles
                .eval_with_defaults(bindings);
            if mem.is_finite() {
                lb += mem;
            }
        }
        if self.options.include_memory {
            let cache = self.machine.cache.unwrap_or_default();
            let mem = memory_cost(&ir, &cache, &self.options.aggregate)
                .cycles
                .eval_with_defaults(bindings);
            if mem.is_finite() {
                lb += mem;
            }
        }
        Ok(lb)
    }

    /// Total cost expression of an already-translated program: aggregation
    /// plus the memory model when enabled, without building a
    /// [`Prediction`].
    pub fn predict_cost(&self, ir: &ProgramIr) -> PerfExpr {
        let compute = aggregate(
            ir,
            &self.machine,
            self.options.library.as_ref(),
            &self.options.aggregate,
        );
        let mut total = compute;
        if let Some(cache) = &self.machine.cache {
            total += mem_cost(ir, cache, &self.options.aggregate).cycles;
        }
        if self.options.include_memory {
            let cache = self.machine.cache.unwrap_or_default();
            let mc = memory_cost(ir, &cache, &self.options.aggregate);
            total += mc.cycles;
        }
        total
    }

    /// Explains an already-translated program block by block: per-unit
    /// busy/saturation and resource-free critical-path length from the
    /// Tetris placement, with a [`crate::explain::Bottleneck`] verdict
    /// per block. When the machine declares a `cache` section the report
    /// also carries the memory-vs-compute attribution
    /// ([`crate::explain::MemoryExplain`]): stall cycles from the
    /// cache-line model against compute cycles, both evaluated at the
    /// default variable bindings. The searchers use the hottest block's
    /// verdict to order their moves (attack the saturated unit first),
    /// and a memory-bound verdict says to attack locality before the
    /// instruction mix.
    pub fn explain(&self, ir: &ProgramIr) -> crate::explain::ExplainReport {
        let mut report =
            crate::explain::explain_ir(ir, &self.machine, self.options.aggregate.place);
        if let Some(cache) = &self.machine.cache {
            let compute = aggregate(
                ir,
                &self.machine,
                self.options.library.as_ref(),
                &self.options.aggregate,
            );
            let mc = mem_cost(ir, cache, &self.options.aggregate);
            let defaults = std::collections::HashMap::new();
            report.memory = Some(crate::explain::MemoryExplain {
                compute_cycles: compute.eval_with_defaults(&defaults),
                memory_cycles: mc.cycles.eval_with_defaults(&defaults),
                lines: mc.lines.eval_with_defaults(&defaults),
                groups: mc.groups,
                exact: mc.exact,
            });
        }
        report
    }

    /// Explains one parsed subroutine — [`Predictor::explain`] behind
    /// the same translation (and translation cache) as
    /// [`Predictor::predict_subroutine_cost`].
    ///
    /// # Errors
    ///
    /// Returns semantic or translation errors.
    pub fn explain_subroutine(
        &self,
        sub: &Subroutine,
    ) -> Result<crate::explain::ExplainReport, PredictError> {
        let ir = self.translated(sub)?;
        Ok(self.explain(&ir))
    }

    /// Assembles a [`Prediction`] from a computed instruction-stream cost:
    /// attaches the cache-line model when the machine declares a cache,
    /// the legacy heuristic when `include_memory` is set, and totals them.
    fn assemble(&self, name: String, ir: ProgramIr, compute: PerfExpr) -> Prediction {
        let memcost = self
            .machine
            .cache
            .as_ref()
            .map(|cache| mem_cost(&ir, cache, &self.options.aggregate));
        let memory = self.options.include_memory.then(|| {
            let cache = self.machine.cache.unwrap_or_default();
            memory_cost(&ir, &cache, &self.options.aggregate)
        });
        let mut total = compute.clone();
        if let Some(mc) = &memcost {
            total += mc.cycles.clone();
        }
        if let Some(mc) = &memory {
            total += mc.cycles.clone();
        }
        Prediction {
            name,
            compute,
            memory,
            memcost,
            total,
            ir,
        }
    }

    /// Predicts an already-translated program.
    pub fn predict_ir(&self, name: String, ir: ProgramIr) -> Prediction {
        let compute = aggregate(
            &ir,
            &self.machine,
            self.options.library.as_ref(),
            &self.options.aggregate,
        );
        self.assemble(name, ir, compute)
    }

    /// Predicts every subroutine with *interprocedural* costing: each
    /// predicted subroutine's expression is entered into the library cost
    /// table (keyed by its name, parameterized by its unknowns), so later
    /// subroutines' `call` statements are charged the callee's symbolic
    /// cost rather than a flat unknown-call estimate.
    ///
    /// This is the paper's §3.5: "If source code is available, the
    /// performance expressions of the external library routines can be
    /// computed and stored in an external library cost table." Subroutines
    /// must appear before their callers (no recursion — mini-Fortran has
    /// none). Callee unknowns keep their formal names; actuals are not
    /// substituted (the general parameterized-table case).
    ///
    /// # Errors
    ///
    /// Returns the first front-end or translation error.
    pub fn predict_source_interprocedural(
        &self,
        src: &str,
    ) -> Result<Vec<Prediction>, PredictError> {
        let program = parse(src)?;
        let mut library = self.options.library.clone().unwrap_or_default();
        let mut out = Vec::new();
        for sub in &program.units {
            let ir = self.translated(sub)?;
            let ir = (*ir).clone();
            let compute = aggregate(&ir, &self.machine, Some(&library), &self.options.aggregate);
            let pred = self.assemble(sub.name.clone(), ir, compute);
            library.insert(sub.name.clone(), sub.params.clone(), pred.total.clone());
            out.push(pred);
        }
        Ok(out)
    }

    /// Predicts every `(machine, source)` job on `workers` scoped
    /// threads, sharing `cache` and the global polynomial arena across
    /// all of them — see [`crate::batch::predict_batch`]. Results are
    /// index-aligned with `jobs`; a failing job yields its own `Err`
    /// without disturbing the others.
    pub fn predict_batch(
        jobs: &[(&MachineDesc, &str)],
        options: &PredictorOptions,
        cache: &Arc<TranslationCache>,
        workers: usize,
    ) -> Vec<Result<Vec<Prediction>, PredictError>> {
        crate::batch::predict_batch(jobs, options, cache, workers)
    }

    /// [`Predictor::predict_batch`] plus per-worker telemetry (jobs run,
    /// chunks stolen from the work queue, two-level memo hit counts) —
    /// see [`crate::batch::predict_batch_report`].
    pub fn predict_batch_report(
        jobs: &[(&MachineDesc, &str)],
        options: &PredictorOptions,
        cache: &Arc<TranslationCache>,
        workers: usize,
    ) -> crate::batch::BatchReport {
        crate::batch::predict_batch_report(jobs, options, cache, workers)
    }

    /// Builds an incrementally updatable cost tree for a translated
    /// program (§3.3.1).
    pub fn cost_tree(&self, ir: &ProgramIr) -> CostTree {
        CostTree::build(
            ir,
            &self.machine,
            self.options.library.as_ref(),
            self.options.aggregate.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::machines;
    use presage_symbolic::{CompareOutcome, Symbol};
    use std::collections::HashMap;

    const AXPY: &str = "subroutine axpy(y, x, a, n)
        real y(n), x(n), a
        integer i, n
        do i = 1, n
          y(i) = y(i) + a * x(i)
        end do
      end";

    #[test]
    fn predicts_each_subroutine() {
        let p = Predictor::new(machines::power_like());
        let src = format!("{AXPY}\nsubroutine zero(a)\nreal a(8)\na(1) = 0.0\nend");
        let preds = p.predict_source(&src).unwrap();
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].name, "axpy");
        assert_eq!(preds[1].name, "zero");
        assert!(preds[1].total.is_concrete());
    }

    #[test]
    fn memory_model_adds_cost() {
        let without = Predictor::new(machines::power_like());
        let mut opts = PredictorOptions::default();
        opts.include_memory = true;
        let with = Predictor::with_options(machines::power_like(), opts);
        let a = &without.predict_source(AXPY).unwrap()[0];
        let b = &with.predict_source(AXPY).unwrap()[0];
        assert!(b.memory.is_some());
        let cmp = a.total.compare(&b.total);
        assert_eq!(
            cmp.outcome,
            CompareOutcome::FirstCheaper,
            "memory adds cost"
        );
    }

    #[test]
    fn portability_same_source_two_machines() {
        // The paper's portability claim: retargeting = swapping tables.
        let power = Predictor::new(machines::power_like());
        let risc = Predictor::new(machines::risc1());
        let a = &power.predict_source(AXPY).unwrap()[0];
        let b = &risc.predict_source(AXPY).unwrap()[0];
        let n = Symbol::new("n");
        let mut at = HashMap::new();
        at.insert(n, 1000.0);
        let pa = a.total.poly().eval_f64(&at).unwrap();
        let pb = b.total.poly().eval_f64(&at).unwrap();
        assert!(
            pb > pa,
            "scalar machine slower than superscalar: {pa} vs {pb}"
        );
    }

    #[test]
    fn frontend_errors_propagate() {
        let p = Predictor::new(machines::power_like());
        match p.predict_source("subroutine s(\nend") {
            Err(PredictError::Frontend(_)) => {}
            other => panic!("expected frontend error, got {other:?}"),
        }
    }

    #[test]
    fn interprocedural_prediction_threads_callee_costs() {
        let p = Predictor::new(machines::power_like());
        let src = "subroutine inner(a, m)
             real a(m)
             integer i, m
             do i = 1, m
               a(i) = a(i) * 2.0
             end do
           end
           subroutine outer(a, m, k)
             real a(m)
             integer j, m, k
             do j = 1, k
               call inner(a, m)
             end do
           end";
        let preds = p.predict_source_interprocedural(src).unwrap();
        assert_eq!(preds.len(), 2);
        let outer = &preds[1];
        // outer's cost must contain a k·m term: k calls, each Θ(m).
        let poly = outer.total.poly();
        assert_eq!(poly.degree_in(&Symbol::new("k")), 1, "{}", outer.total);
        assert_eq!(poly.degree_in(&Symbol::new("m")), 1, "{}", outer.total);
        let km = poly.terms().any(|(mono, _)| {
            mono.exponent_of(&Symbol::new("k")) == 1 && mono.exponent_of(&Symbol::new("m")) == 1
        });
        assert!(km, "expected a k*m cross term: {}", outer.total);
    }

    #[test]
    fn interprocedural_without_callee_uses_flat_cost() {
        let p = Predictor::new(machines::power_like());
        let src = "subroutine s(x, k)\nreal x\ninteger k\ncall mystery(k)\nend";
        let preds = p.predict_source_interprocedural(src).unwrap();
        // No memory model, unknown callee: the flat default applies.
        assert!(preds[0].total.is_concrete());
    }

    #[test]
    fn library_calls_costed() {
        use presage_symbolic::{Poly, VarInfo};
        let mut lib = LibraryCostTable::new();
        let m = Symbol::new("m");
        lib.insert(
            "work",
            vec!["m".into()],
            PerfExpr::from_poly(
                Poly::var(m.clone()).scale(7),
                [(m, VarInfo::param(1.0, 1e6))],
            ),
        );
        let mut opts = PredictorOptions::default();
        opts.library = Some(lib);
        let p = Predictor::with_options(machines::power_like(), opts);
        let pred = &p
            .predict_source("subroutine s(x, k)\nreal x\ninteger k\ncall work(k)\nend")
            .unwrap()[0];
        assert!(
            pred.total.poly().contains_symbol(&Symbol::new("m")),
            "{pred}"
        );
    }
}
