//! Cost blocks: the geometric summary of a placed basic block (paper
//! Figure 8) and shape-based overlap estimation between adjacent blocks
//! (Figure 9).

use presage_machine::UnitClass;
use std::fmt;

/// Occupancy of one functional-unit instance after placement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnitUsage {
    /// The unit's class.
    pub class: UnitClass,
    /// Instance index within its pool.
    pub instance: u8,
    /// First occupied time slot (meaningless when `busy == 0`).
    pub bottom: u32,
    /// One past the last occupied slot (0 when `busy == 0`).
    pub top: u32,
    /// Number of occupied (noncoverable) slots.
    pub busy: u32,
}

/// The cost block of a placed basic block: "the first and last occupied
/// time slots in functional units define the actual cost of a basic block
/// and the area they enclosed is called the cost block".
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CostBlock {
    /// Per-unit-instance usage, in machine unit order.
    pub units: Vec<UnitUsage>,
    /// Completion time of the last result (includes trailing coverable
    /// latency of the final operations).
    pub completion: u32,
}

impl CostBlock {
    /// Lowest occupied slot across all units (`None` if nothing placed).
    pub fn bottom(&self) -> Option<u32> {
        self.units
            .iter()
            .filter(|u| u.busy > 0)
            .map(|u| u.bottom)
            .min()
    }

    /// One past the highest occupied slot across all units.
    pub fn top(&self) -> u32 {
        self.units.iter().map(|u| u.top).max().unwrap_or(0)
    }

    /// The paper's block cost: "the time difference between the highest
    /// time slot and the lowest time slot occupied by the operations".
    pub fn span(&self) -> u32 {
        match self.bottom() {
            Some(b) => self.top() - b,
            None => 0,
        }
    }

    /// Total busy slots across all units (resource work).
    pub fn total_busy(&self) -> u32 {
        self.units.iter().map(|u| u.busy).sum()
    }

    /// Busy slots on one unit class (summed over instances).
    pub fn busy_on(&self, class: UnitClass) -> u32 {
        self.units
            .iter()
            .filter(|u| u.class == class)
            .map(|u| u.busy)
            .sum()
    }

    /// Occupancy ratio of the busiest unit instance within the span —
    /// "by checking the ratio of the occupied and empty slots in the
    /// critical functional bin(s), the compiler can decide whether
    /// statement reordering and loop unrolling are beneficial".
    pub fn critical_ratio(&self) -> f64 {
        let span = self.span();
        if span == 0 {
            return 0.0;
        }
        self.units
            .iter()
            .map(|u| u.busy as f64 / span as f64)
            .fold(0.0, f64::max)
    }

    /// The critical (most occupied) unit class.
    pub fn critical_unit(&self) -> Option<UnitClass> {
        self.units
            .iter()
            .max_by_key(|u| u.busy)
            .filter(|u| u.busy > 0)
            .map(|u| u.class)
    }

    /// Empty slots at the top of this block for the given unit instance —
    /// how far the next block's work on that unit could slide up (Figure 9).
    pub fn top_gap(&self, idx: usize) -> u32 {
        let u = &self.units[idx];
        if u.busy == 0 {
            self.span()
        } else {
            self.top() - u.top
        }
    }

    /// Empty lead at the bottom of this block for the given unit instance.
    pub fn bottom_lead(&self, idx: usize) -> u32 {
        let u = &self.units[idx];
        match self.bottom() {
            None => 0,
            Some(b) => {
                if u.busy == 0 {
                    self.span()
                } else {
                    u.bottom - b
                }
            }
        }
    }

    /// Estimates how many cycles of `next` can overlap with the tail of
    /// `self` by matching "the top and bottom of the geometry shape of the
    /// cost block" (Figure 9): the slide is limited by the unit whose
    /// top-gap plus bottom-lead is smallest.
    ///
    /// Both blocks must come from the same machine (same unit list).
    pub fn estimate_overlap(&self, next: &CostBlock) -> u32 {
        if self.units.len() != next.units.len() || self.span() == 0 || next.span() == 0 {
            return 0;
        }
        let mut overlap = u32::MAX;
        let mut constrained = false;
        for i in 0..self.units.len() {
            let here = &self.units[i];
            let there = &next.units[i];
            if here.busy == 0 && there.busy == 0 {
                continue;
            }
            constrained = true;
            overlap = overlap.min(self.top_gap(i) + next.bottom_lead(i));
        }
        if !constrained {
            return 0;
        }
        overlap.min(self.span()).min(next.span())
    }

    /// Estimated cost of running `self` then `next` with overlap (Figure 9:
    /// "cost of combining basic block 1 and 2").
    pub fn combined_cost(&self, next: &CostBlock) -> u32 {
        self.span() + next.span() - self.estimate_overlap(next)
    }

    /// Rough unrolling-factor suggestion: "the shapes of the cost blocks
    /// can be used to decide ... the rough estimation of the loop unrolling
    /// factor". Unrolling pays off until the critical bin saturates, so the
    /// suggestion is `span / critical-busy` (≥ 1).
    pub fn suggested_unroll(&self) -> u32 {
        let crit = self.units.iter().map(|u| u.busy).max().unwrap_or(0);
        if crit == 0 {
            return 1;
        }
        self.span().div_ceil(crit)
    }

    /// The paper's branch-cost probe: "the cost of branch operations can be
    /// estimated by checking the number of load instructions before
    /// operations in other units started (this can be approximated as the
    /// difference between the bottom of FXU and other units)".
    pub fn fxu_lead(&self) -> u32 {
        let fxu_bottom = self
            .units
            .iter()
            .filter(|u| u.class == UnitClass::Fxu && u.busy > 0)
            .map(|u| u.bottom)
            .min();
        let others_bottom = self
            .units
            .iter()
            .filter(|u| u.class != UnitClass::Fxu && u.busy > 0)
            .map(|u| u.bottom)
            .min();
        match (fxu_bottom, others_bottom) {
            (Some(f), Some(o)) if o > f => o - f,
            _ => 0,
        }
    }
}

impl fmt::Display for CostBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cost block: span {} (completion {}):",
            self.span(),
            self.completion
        )?;
        for u in &self.units {
            if u.busy > 0 {
                write!(f, " {}[{}..{}:{}]", u.class, u.bottom, u.top, u.busy)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(class: UnitClass, bottom: u32, top: u32, busy: u32) -> UnitUsage {
        UnitUsage {
            class,
            instance: 0,
            bottom,
            top,
            busy,
        }
    }

    fn two_unit_block(fxu: (u32, u32, u32), fpu: (u32, u32, u32)) -> CostBlock {
        CostBlock {
            units: vec![
                usage(UnitClass::Fxu, fxu.0, fxu.1, fxu.2),
                usage(UnitClass::Fpu, fpu.0, fpu.1, fpu.2),
            ],
            completion: fxu.1.max(fpu.1),
        }
    }

    #[test]
    fn span_and_busy() {
        let b = two_unit_block((0, 3, 3), (1, 6, 4));
        assert_eq!(b.span(), 6);
        assert_eq!(b.total_busy(), 7);
        assert_eq!(b.busy_on(UnitClass::Fpu), 4);
        assert_eq!(b.bottom(), Some(0));
        assert_eq!(b.top(), 6);
    }

    #[test]
    fn empty_block() {
        let b = CostBlock::default();
        assert_eq!(b.span(), 0);
        assert_eq!(b.critical_ratio(), 0.0);
        assert_eq!(b.critical_unit(), None);
        assert_eq!(b.suggested_unroll(), 1);
    }

    #[test]
    fn critical_unit_and_ratio() {
        let b = two_unit_block((0, 2, 2), (0, 6, 6));
        assert_eq!(b.critical_unit(), Some(UnitClass::Fpu));
        assert!((b.critical_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaps_and_leads() {
        // FXU busy early (0..2), FPU busy late (3..6); span 6.
        let b = two_unit_block((0, 2, 2), (3, 6, 3));
        assert_eq!(b.top_gap(0), 4, "FXU free for 4 slots at the top");
        assert_eq!(b.top_gap(1), 0);
        assert_eq!(b.bottom_lead(0), 0);
        assert_eq!(b.bottom_lead(1), 3);
    }

    #[test]
    fn overlap_matches_figure9_geometry() {
        // Block 1: FXU 0..2, FPU 3..6 (FPU-tail).
        // Block 2: FXU 0..2, FPU 3..6 again — its FXU head fits the
        // 4-slot FXU gap at block 1's top, but FPU allows 0 + 3.
        let b1 = two_unit_block((0, 2, 2), (3, 6, 3));
        let b2 = two_unit_block((0, 2, 2), (3, 6, 3));
        // FXU constraint: 4 + 0 = 4; FPU constraint: 0 + 3 = 3.
        assert_eq!(b1.estimate_overlap(&b2), 3);
        assert_eq!(b1.combined_cost(&b2), 9);
    }

    #[test]
    fn overlap_zero_for_dense_blocks() {
        let b1 = two_unit_block((0, 4, 4), (0, 4, 4));
        assert_eq!(b1.estimate_overlap(&b1.clone()), 0);
        assert_eq!(b1.combined_cost(&b1.clone()), 8);
    }

    #[test]
    fn overlap_ignores_mutually_unused_units() {
        // Only FPU is used by both; FXU idle in both blocks.
        let b1 = two_unit_block((0, 0, 0), (0, 2, 2));
        let b2 = two_unit_block((0, 0, 0), (0, 2, 2));
        assert_eq!(b1.estimate_overlap(&b2), 0, "FPU dense: no overlap");
    }

    #[test]
    fn overlap_capped_by_spans() {
        // Block 1 uses only FXU, block 2 only FPU: fully overlappable,
        // capped by the shorter span.
        let b1 = two_unit_block((0, 5, 5), (0, 0, 0));
        let b2 = two_unit_block((0, 0, 0), (0, 3, 3));
        assert_eq!(b1.estimate_overlap(&b2), 3);
        assert_eq!(b1.combined_cost(&b2), 5);
    }

    #[test]
    fn suggested_unroll() {
        // Span 6, critical busy 2 → unroll ≈ 3 fills the pipeline.
        let b = two_unit_block((0, 2, 2), (4, 6, 2));
        assert_eq!(b.suggested_unroll(), 3);
    }

    #[test]
    fn fxu_lead_probe() {
        let b = two_unit_block((0, 2, 2), (2, 5, 3));
        assert_eq!(b.fxu_lead(), 2, "FPU starts 2 slots after FXU");
        let b2 = two_unit_block((1, 3, 2), (0, 2, 2));
        assert_eq!(b2.fxu_lead(), 0);
    }

    #[test]
    fn display() {
        let b = two_unit_block((0, 2, 2), (0, 0, 0));
        let s = b.to_string();
        assert!(s.contains("span 2"));
        assert!(s.contains("FXU[0..2:2]"));
        assert!(!s.contains("FPU"), "idle units omitted");
    }
}
