//! Procedure and library-routine cost tables (paper §3.5).
//!
//! "Table look-up of the performance expression can be used to find the
//! cost of external function calls or library routines. ... The performance
//! expressions are parameterized with the formal parameters. Actual
//! parameters are substituted at the call site to get more specific
//! performance expressions."

use presage_symbolic::{PerfExpr, Poly, Symbol, VarInfo};
use std::collections::HashMap;
use std::fmt;

/// One library routine's parameterized cost.
#[derive(Clone, Debug)]
pub struct LibraryEntry {
    /// Formal parameter names appearing in the expression.
    pub formals: Vec<String>,
    /// Cost expression over the formals.
    pub cost: PerfExpr,
}

/// A table of external-routine cost expressions.
///
/// # Examples
///
/// ```
/// use presage_core::library::LibraryCostTable;
/// use presage_symbolic::{PerfExpr, Symbol, VarInfo, Poly};
///
/// let mut table = LibraryCostTable::new();
/// let n = Symbol::new("n");
/// // dgemv: 2n² + 10n cycles.
/// let cost = PerfExpr::from_poly(
///     (&Poly::var(n.clone()) * &Poly::var(n.clone())).scale(2) + Poly::var(n.clone()).scale(10),
///     [(n, VarInfo::param(1.0, 1e6))],
/// );
/// table.insert("dgemv", vec!["n".into()], cost);
/// assert!(table.lookup("dgemv").is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct LibraryCostTable {
    entries: HashMap<String, LibraryEntry>,
    /// Cost charged for calls with no table entry.
    pub unknown_call_cycles: i64,
}

impl LibraryCostTable {
    /// An empty table; unknown calls default to 100 cycles.
    pub fn new() -> LibraryCostTable {
        LibraryCostTable {
            entries: HashMap::new(),
            unknown_call_cycles: 100,
        }
    }

    /// Registers a routine's parameterized cost expression.
    pub fn insert(&mut self, name: impl Into<String>, formals: Vec<String>, cost: PerfExpr) {
        self.entries
            .insert(name.into(), LibraryEntry { formals, cost });
    }

    /// Looks up a routine.
    pub fn lookup(&self, name: &str) -> Option<&LibraryEntry> {
        self.entries.get(name)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cost of a call site: the entry's expression with actual-argument
    /// polynomials substituted for formals. Arguments given as `None` (not
    /// statically polynomial) keep the formal as a free parameter.
    ///
    /// Unknown routines cost [`LibraryCostTable::unknown_call_cycles`].
    pub fn call_cost(&self, name: &str, actuals: &[Option<Poly>]) -> PerfExpr {
        let Some(entry) = self.entries.get(name) else {
            return PerfExpr::cycles(self.unknown_call_cycles);
        };
        let mut expr = entry.cost.clone();
        for (formal, actual) in entry.formals.iter().zip(actuals) {
            if let Some(poly) = actual {
                let sym = Symbol::new(formal);
                let infos: Vec<(Symbol, VarInfo)> = poly
                    .symbols()
                    .into_iter()
                    .map(|s| (s, VarInfo::param(1.0, 1e6)))
                    .collect();
                if let Ok(substituted) = expr.subst(&sym, poly, infos) {
                    expr = substituted;
                }
                // On substitution failure (negative powers vs. compound
                // polynomials) the formal simply stays symbolic.
            }
        }
        expr
    }
}

impl fmt::Display for LibraryCostTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "library cost table ({} entries):", self.entries.len())?;
        let mut names: Vec<&String> = self.entries.keys().collect();
        names.sort();
        for n in names {
            let e = &self.entries[n];
            writeln!(f, "  {n}({}) = {}", e.formals.join(", "), e.cost)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LibraryCostTable {
        let mut t = LibraryCostTable::new();
        let n = Symbol::new("n");
        let cost = PerfExpr::from_poly(
            Poly::var(n.clone()).scale(3) + Poly::from(20),
            [(n, VarInfo::param(1.0, 1e6))],
        );
        t.insert("saxpy", vec!["n".into()], cost);
        t
    }

    #[test]
    fn substitution_with_constant() {
        let t = table();
        let c = t.call_cost("saxpy", &[Some(Poly::from(10))]);
        assert_eq!(
            c.concrete_cycles().unwrap(),
            presage_symbolic::Rational::from_int(50)
        );
    }

    #[test]
    fn substitution_with_expression() {
        let t = table();
        let m = Poly::var(Symbol::new("m"));
        let c = t.call_cost("saxpy", &[Some(&m * &Poly::from(2))]);
        assert_eq!(c.poly().to_string(), "6*m + 20");
    }

    #[test]
    fn unknown_argument_stays_symbolic() {
        let t = table();
        let c = t.call_cost("saxpy", &[None]);
        assert_eq!(c.poly().to_string(), "3*n + 20");
    }

    #[test]
    fn unknown_routine_flat_cost() {
        let t = table();
        let c = t.call_cost("mystery", &[]);
        assert_eq!(
            c.concrete_cycles().unwrap(),
            presage_symbolic::Rational::from_int(100)
        );
    }

    #[test]
    fn display_lists_entries() {
        let s = table().to_string();
        assert!(s.contains("saxpy(n)"));
        assert!(s.contains("3*n + 20"));
    }
}
