//! The placement cost model for straight-line code (paper §2.1).
//!
//! "Estimating the cost of executing a sequence of operations can be viewed
//! as finding a way to drop all operation objects into the virtual
//! architecture bin with the goal of minimizing the unfilled slots" —
//! Figure 3's Tetris analogy. The approximate solution is "to place the
//! cost object of each operation into the lowest time slots that all cost
//! components of the operation can fit simultaneously", which this module
//! implements in time linear in the number of operations (for a bounded
//! focus span).

use crate::costblock::{CostBlock, UnitUsage};
use crate::slots::BlockList;
use presage_machine::{AtomicOpId, BasicOp, MachineDesc, UnitClass};
use presage_translate::{BlockIr, DepCsr};

/// Options controlling placement.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PlaceOptions {
    /// Number of slots below the highest occupied slot that remain
    /// searchable ("only a certain number of slots (called *focus span*)
    /// under the highest occupied time slot need to be considered ... an
    /// adjustable parameter, thus allowing more flexible allocation of
    /// computing resources based on accuracy and efficiency
    /// considerations"). `None` searches the whole history.
    pub focus_span: Option<u32>,
}

impl PlaceOptions {
    /// Placement with a bounded focus span.
    pub fn with_focus_span(span: u32) -> PlaceOptions {
        PlaceOptions {
            focus_span: Some(span),
        }
    }
}

struct Bin {
    class: UnitClass,
    instance: u8,
    list: BlockList,
}

/// Run structure of one placed bin, for rendering (Figure 3): the unit
/// class, the pool instance, and its `(start, length, filled)` runs.
pub type BinRuns = (UnitClass, u8, Vec<(usize, usize, bool)>);

/// The virtual architecture bins: reusable placement state.
///
/// Repeatedly [`Placer::drop_block`]-ing the same block models loop
/// iterations overlapping in the pipeline ("dropping the innermost basic
/// block into the functional bins multiple times", §2.2.2).
///
/// # Examples
///
/// ```
/// use presage_core::tetris::{Placer, PlaceOptions};
/// use presage_frontend::{parse, sema};
/// use presage_machine::machines;
/// use presage_translate::translate;
///
/// let m = machines::power_like();
/// let prog = parse(
///     "subroutine s(a, b, n)
///        real a(n), b(n)
///        integer i, n
///        do i = 1, n
///          a(i) = b(i) * 2.0 + 1.0
///        end do
///      end").unwrap();
/// let symbols = sema::analyze(&prog.units[0]).unwrap();
/// let ir = translate(&prog.units[0], &symbols, &m).unwrap();
/// let mut placer = Placer::new(&m, PlaceOptions::default());
/// let completion = placer.drop_block(ir.innermost_block().unwrap());
/// assert!(completion > 0);
/// ```
pub struct Placer<'m> {
    machine: &'m MachineDesc,
    opts: PlaceOptions,
    bins: Vec<Bin>,
    max_completion: u32,
    ops_placed: u64,
    /// One past the highest occupied slot across all bins, maintained
    /// incrementally on every fill (the seed rescanned every bin per
    /// atomic operation).
    highest: u32,
    /// The focus floor the bins were last advanced to; bins are only
    /// re-advanced when the floor actually moves.
    advanced_floor: u32,
    /// Scratch: `(bin index, run length)` picks of the current fixpoint
    /// round, reused across all `place_atomic` calls.
    picks: Vec<(usize, u32)>,
    /// Scratch: dependence adjacency of the block being dropped.
    deps: DepCsr,
    /// Scratch: per-op finish times of the block being dropped.
    finish: Vec<u32>,
    /// Flat atomic-operation mapping, indexed by [`BasicOp`] discriminant:
    /// `exp_offsets[op]` bounds `op`'s slice of `exp_ids`. Built once per
    /// placer so the per-op expansion lookup is two array reads instead of
    /// an ordered-map probe.
    exp_offsets: Vec<(u32, u32)>,
    exp_ids: Vec<AtomicOpId>,
}

impl std::fmt::Debug for Placer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Placer({}, {} bins, completion {})",
            self.machine.name(),
            self.bins.len(),
            self.max_completion
        )
    }
}

impl<'m> Placer<'m> {
    /// Creates empty bins for the machine's functional units.
    pub fn new(machine: &'m MachineDesc, opts: PlaceOptions) -> Placer<'m> {
        let mut bins = Vec::new();
        for pool in machine.units() {
            for inst in 0..pool.count {
                bins.push(Bin {
                    class: pool.class,
                    instance: inst,
                    list: BlockList::new(),
                });
            }
        }
        let table_len = BasicOp::ALL
            .into_iter()
            .chain([BasicOp::Nop])
            .map(|op| op as usize)
            .max()
            .unwrap_or(0)
            + 1;
        let mut exp_offsets = vec![(0u32, 0u32); table_len];
        let mut exp_ids = Vec::new();
        for op in BasicOp::ALL.into_iter().chain([BasicOp::Nop]) {
            let start = exp_ids.len() as u32;
            exp_ids.extend_from_slice(machine.expand(op));
            exp_offsets[op as usize] = (start, exp_ids.len() as u32);
        }
        Placer {
            machine,
            opts,
            bins,
            max_completion: 0,
            ops_placed: 0,
            highest: 0,
            advanced_floor: 0,
            picks: Vec::new(),
            deps: DepCsr::new(),
            finish: Vec::new(),
            exp_offsets,
            exp_ids,
        }
    }

    /// The machine being modeled.
    pub fn machine(&self) -> &MachineDesc {
        self.machine
    }

    /// Flushes all bins ("the bins are flushed before being used for
    /// another block of statements").
    pub fn clear(&mut self) {
        for b in &mut self.bins {
            b.list.clear();
        }
        self.max_completion = 0;
        self.ops_placed = 0;
        self.highest = 0;
        self.advanced_floor = 0;
    }

    /// Total operations placed since the last clear.
    pub fn ops_placed(&self) -> u64 {
        self.ops_placed
    }

    /// The lowest searchable slot under the focus-span policy.
    ///
    /// `self.highest` is maintained incrementally on every fill, so this is
    /// O(1) — the seed rescanned every bin here, once per atomic operation.
    fn floor(&self) -> u32 {
        match self.opts.focus_span {
            None => 0,
            Some(span) => self.highest.saturating_sub(span),
        }
    }

    /// Drops one straight-line block into the bins, returning the
    /// completion time of its last result (measured from slot 0 of the
    /// whole placement history).
    pub fn drop_block(&mut self, block: &BlockIr) -> u32 {
        let mut deps = std::mem::take(&mut self.deps);
        deps.rebuild(block);
        let completion = self.drop_ops(block, &deps, None);
        self.deps = deps;
        completion
    }

    /// Like [`Placer::drop_block`], but also returns each operation's
    /// issue and finish cycles — the data behind the xlf-style cycle
    /// listing the paper used as its reference format.
    pub fn drop_block_detailed(&mut self, block: &BlockIr) -> DropSchedule {
        let mut per_op: Vec<OpTime> = Vec::with_capacity(block.ops.len());
        let mut deps = std::mem::take(&mut self.deps);
        deps.rebuild(block);
        let completion = self.drop_ops(block, &deps, Some(&mut per_op));
        self.deps = deps;
        DropSchedule { completion, per_op }
    }

    /// Drops a [`PreparedBlock`], skipping dependence analysis entirely —
    /// the fast path for repeated drops of one block (loop-overlap
    /// probing, §2.2.2).
    pub fn drop_prepared(&mut self, prepared: &PreparedBlock<'_>) -> u32 {
        self.drop_ops(prepared.block, &prepared.deps, None)
    }

    /// The placement loop shared by all drop entry points: no per-op
    /// allocation, dependences read from the prebuilt CSR.
    fn drop_ops(
        &mut self,
        block: &BlockIr,
        deps: &DepCsr,
        mut per_op: Option<&mut Vec<OpTime>>,
    ) -> u32 {
        debug_assert_eq!(deps.len(), block.ops.len(), "adjacency matches the block");
        self.finish.clear();
        self.finish.resize(block.ops.len(), 0);
        // Copying the machine reference out of `self` detaches its
        // lifetime from the `&mut self` placement calls below, so atomics
        // are borrowed from the table instead of cloned per use.
        let machine = self.machine;
        let mut completion = self.max_completion;
        for (i, op) in block.ops.iter().enumerate() {
            let ready = deps
                .deps(i)
                .iter()
                .map(|d| self.finish[d.0 as usize])
                .max()
                .unwrap_or(0);
            let mut t_done = ready;
            let mut first_issue = None;
            let (exp_start, exp_end) = self.exp_offsets[op.basic as usize];
            for k in exp_start..exp_end {
                let atomic = machine.atomic(self.exp_ids[k as usize]);
                if atomic.costs.is_empty() {
                    continue;
                }
                let t = self.place_atomic(atomic, t_done);
                first_issue.get_or_insert(t);
                t_done = t + atomic.latency();
            }
            self.finish[i] = t_done;
            if let Some(rec) = per_op.as_deref_mut() {
                rec.push(OpTime {
                    issue: first_issue.unwrap_or(ready),
                    finish: t_done,
                });
            }
            completion = completion.max(t_done);
            self.ops_placed += 1;
        }
        self.max_completion = completion;
        completion
    }

    /// Finds the lowest slot ≥ `ready` (and ≥ the focus floor) where every
    /// cost component fits simultaneously, then fills it (Figure 5).
    fn place_atomic(&mut self, atomic: &presage_machine::AtomicOpDef, ready: u32) -> u32 {
        debug_assert!(
            {
                let mut classes: Vec<_> = atomic.costs.iter().map(|c| c.class).collect();
                classes.sort();
                classes.windows(2).all(|w| w[0] != w[1])
            },
            "atomic ops use each unit class at most once"
        );
        let floor = self.floor();
        if floor > self.advanced_floor {
            // The focus-span floor is monotone: let every bin skip the
            // frozen prefix, keeping placement amortized linear. Skipped
            // entirely while the floor sits still (the seed re-walked every
            // bin's hint on every atomic).
            for bin in &mut self.bins {
                bin.list.advance_min_position(floor as usize);
            }
            self.advanced_floor = floor;
        }
        let mut t = ready.max(floor);
        // Fast path: at most one slot-occupying component (the common
        // case). The fixpoint is immediate — a component's best fit is
        // stable under re-probing from itself (fits are monotone in the
        // start position, so the winning bin re-answers its own fit and
        // no other bin can undercut it), so the general loop's extra
        // verification round is skipped.
        let mut occupying = atomic.costs.iter().filter(|c| c.noncoverable > 0);
        let first = occupying.next();
        if occupying.next().is_none() {
            if let Some(comp) = first {
                let (idx, fit) = self.best_fit(comp.class, t, comp.noncoverable);
                self.bins[idx]
                    .list
                    .fill(fit as usize, comp.noncoverable as usize);
                self.highest = self.highest.max(fit + comp.noncoverable);
                t = fit;
            }
            return t;
        }
        let mut picks = std::mem::take(&mut self.picks);
        'fixpoint: loop {
            picks.clear();
            for comp in &atomic.costs {
                if comp.noncoverable == 0 {
                    continue;
                }
                let (idx, fit) = self.best_fit(comp.class, t, comp.noncoverable);
                if fit > t {
                    t = fit;
                    continue 'fixpoint;
                }
                picks.push((idx, comp.noncoverable));
            }
            for &(idx, len) in &picks {
                self.bins[idx].list.fill(t as usize, len as usize);
                self.highest = self.highest.max(t + len);
            }
            break;
        }
        self.picks = picks;
        t
    }

    /// The earliest fit at or after `from` across the instances of a pool.
    ///
    /// Probes read-only: only the winning bin is grown (by the `fill` that
    /// follows), where the seed's `find_fit` probe inflated every losing
    /// instance's capacity to the pool-wide high-water mark.
    fn best_fit(&self, class: UnitClass, from: u32, len: u32) -> (usize, u32) {
        let mut best: Option<(usize, u32)> = None;
        for (i, bin) in self.bins.iter().enumerate() {
            if bin.class != class {
                continue;
            }
            let fit = bin.list.probe_fit(from as usize, len as usize) as u32;
            if best.is_none_or(|(_, bf)| fit < bf) {
                best = Some((i, fit));
            }
        }
        best.unwrap_or_else(|| panic!("machine has no unit of class {class}"))
    }

    /// Snapshot of the current bins as a [`CostBlock`] (Figure 8).
    pub fn cost_block(&self) -> CostBlock {
        let units = self
            .bins
            .iter()
            .map(|b| UnitUsage {
                class: b.class,
                instance: b.instance,
                bottom: b.list.lowest_filled().unwrap_or(0) as u32,
                top: b.list.highest_filled().map(|h| h as u32 + 1).unwrap_or(0),
                busy: b.list.busy() as u32,
            })
            .collect();
        CostBlock {
            units,
            completion: self.max_completion,
        }
    }

    /// Iterates the run structure of a bin (for rendering; Figure 3).
    pub fn bin_runs(&self) -> Vec<BinRuns> {
        self.bins
            .iter()
            .map(|b| (b.class, b.instance, b.list.runs().collect()))
            .collect()
    }
}

/// Issue/finish times of one placed operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpTime {
    /// Cycle the first atomic operation of the expansion was placed at.
    pub issue: u32,
    /// Cycle the result becomes available (includes coverable latency).
    pub finish: u32,
}

/// Per-operation schedule of one [`Placer::drop_block_detailed`] call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DropSchedule {
    /// Completion time of the drop's last result.
    pub completion: u32,
    /// Index-aligned issue/finish times for the block's operations.
    pub per_op: Vec<OpTime>,
}

/// A block paired with its precomputed dependence adjacency.
///
/// Dependence analysis is a per-block property, not a per-drop one:
/// callers that re-drop the same block many times (loop-overlap probing,
/// unroll profiling) prepare once and use [`Placer::drop_prepared`] so the
/// CSR is never rebuilt inside the probe loop.
#[derive(Debug)]
pub struct PreparedBlock<'b> {
    block: &'b BlockIr,
    deps: DepCsr,
}

impl<'b> PreparedBlock<'b> {
    /// Analyzes `block`'s dependences once.
    pub fn new(block: &'b BlockIr) -> PreparedBlock<'b> {
        let mut deps = DepCsr::new();
        deps.rebuild(block);
        PreparedBlock { block, deps }
    }

    /// The underlying block.
    pub fn block(&self) -> &BlockIr {
        self.block
    }
}

/// One-shot placement of a single block with fresh bins.
pub fn place_block(machine: &MachineDesc, block: &BlockIr, opts: PlaceOptions) -> CostBlock {
    let mut p = Placer::new(machine, opts);
    p.drop_block(block);
    p.cost_block()
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::{machines, BasicOp};
    use presage_translate::{BlockIr, ValueDef};

    /// Builds a block of `n` independent FP adds.
    fn independent_fadds(n: usize) -> BlockIr {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        for _ in 0..n {
            b.emit(BasicOp::FAdd, vec![x, x]);
        }
        b
    }

    /// Builds a chain of `n` dependent FP adds.
    fn chained_fadds(n: usize) -> BlockIr {
        let mut b = BlockIr::new();
        let mut v = b.add_value(ValueDef::External("x".into()));
        for _ in 0..n {
            v = b.emit(BasicOp::FAdd, vec![v, v]);
        }
        b
    }

    #[test]
    fn independent_ops_pipeline() {
        // fadd = 1 noncoverable + 1 coverable: independent adds issue one
        // per cycle; n adds complete at n + 1.
        let m = machines::power_like();
        let mut p = Placer::new(&m, PlaceOptions::default());
        let done = p.drop_block(&independent_fadds(8));
        assert_eq!(done, 9, "8 issue slots + 1 trailing coverable cycle");
        assert_eq!(p.cost_block().busy_on(presage_machine::UnitClass::Fpu), 8);
    }

    #[test]
    fn dependent_ops_serialize() {
        // A dependent chain pays the full 2-cycle latency each step.
        let m = machines::power_like();
        let mut p = Placer::new(&m, PlaceOptions::default());
        let done = p.drop_block(&chained_fadds(8));
        assert_eq!(done, 16, "8 × latency 2");
    }

    #[test]
    fn coverable_slots_are_shared() {
        // The paper's example: if another operation fills the coverable
        // cycle, an fadd effectively costs one cycle.
        let m = machines::power_like();
        let mut p = Placer::new(&m, PlaceOptions::default());
        p.drop_block(&independent_fadds(2));
        let cb = p.cost_block();
        // Two adds occupy slots 0 and 1 — the second sits in the first's
        // coverable window.
        assert_eq!(cb.span(), 2);
    }

    #[test]
    fn multi_unit_op_occupies_both() {
        // The paper's FP store: FPU 1+1c and FXU 1 simultaneously.
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let v = b.add_value(ValueDef::External("v".into()));
        let a = b.add_value(ValueDef::External("addr".into()));
        b.push_op(presage_translate::Op {
            basic: BasicOp::StoreFloat,
            args: vec![v, a],
            result: None,
            mem: None,
            extra_deps: vec![],
            callee: None,
        });
        let cb = place_block(&m, &b, PlaceOptions::default());
        assert_eq!(cb.busy_on(presage_machine::UnitClass::Fpu), 1);
        assert_eq!(cb.busy_on(presage_machine::UnitClass::Fxu), 1);
        assert!(cb.busy_on(presage_machine::UnitClass::LoadStore) > 0);
    }

    #[test]
    fn different_units_fully_overlap() {
        // Integer and float work share no unit: span is set by one stream.
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        for _ in 0..4 {
            b.emit(BasicOp::IAdd, vec![x, x]);
            b.emit(BasicOp::FAdd, vec![x, x]);
        }
        let cb = place_block(&m, &b, PlaceOptions::default());
        assert_eq!(cb.span(), 4, "FXU and FPU streams run side by side");
    }

    #[test]
    fn wide_machine_uses_both_pipes() {
        let m = machines::wide4();
        let mut p = Placer::new(&m, PlaceOptions::default());
        p.drop_block(&independent_fadds(8));
        let cb = p.cost_block();
        // Two FPU instances split the work: 4 issue slots each.
        let fpu_tops: Vec<u32> = cb
            .units
            .iter()
            .filter(|u| u.class == presage_machine::UnitClass::Fpu)
            .map(|u| u.top)
            .collect();
        assert_eq!(fpu_tops.len(), 2);
        assert!(fpu_tops.iter().all(|t| *t == 4));
    }

    #[test]
    fn focus_span_limits_backfill() {
        let m = machines::power_like();
        // A long FPU chain raises the ceiling; a late independent FXU op
        // could backfill to slot 0 — unless the focus span forbids it.
        let mut block = chained_fadds(10);
        let x = block.add_value(ValueDef::External("y".into()));
        block.emit(BasicOp::IAdd, vec![x, x]);

        let unbounded = place_block(&m, &block, PlaceOptions::default());
        let fxu_unbounded = unbounded
            .units
            .iter()
            .find(|u| u.class == presage_machine::UnitClass::Fxu)
            .unwrap()
            .bottom;
        assert_eq!(fxu_unbounded, 0, "full history allows backfill to slot 0");

        let bounded = place_block(&m, &block, PlaceOptions::with_focus_span(4));
        let fxu_bounded = bounded
            .units
            .iter()
            .find(|u| u.class == presage_machine::UnitClass::Fxu)
            .unwrap()
            .bottom;
        assert!(
            fxu_bounded >= 15,
            "focus span pins placement near the top, got {fxu_bounded}"
        );
    }

    #[test]
    fn repeated_drops_overlap_iterations() {
        // Dropping the same block twice costs less than twice one drop
        // when units are under-utilized.
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let t1 = b.emit(BasicOp::FAdd, vec![x, x]);
        b.emit(BasicOp::FAdd, vec![t1, t1]);
        let mut p = Placer::new(&m, PlaceOptions::default());
        let c1 = p.drop_block(&b);
        let c2 = p.drop_block(&b);
        assert!(
            c2 - c1 < c1,
            "second iteration hides in the first's bubbles: {c1} then {c2}"
        );
    }

    #[test]
    fn clear_resets_state() {
        let m = machines::power_like();
        let mut p = Placer::new(&m, PlaceOptions::default());
        p.drop_block(&independent_fadds(4));
        p.clear();
        assert_eq!(p.cost_block().span(), 0);
        assert_eq!(p.ops_placed(), 0);
        let done = p.drop_block(&independent_fadds(1));
        assert_eq!(done, 2);
    }

    #[test]
    fn empty_block_is_free() {
        let m = machines::power_like();
        let cb = place_block(&m, &BlockIr::new(), PlaceOptions::default());
        assert_eq!(cb.span(), 0);
        assert_eq!(cb.completion, 0);
    }

    #[test]
    fn risc1_fma_expansion_chains() {
        // risc1 has no FMA: the expansion is two chained 1+2c ALU ops.
        let m = machines::risc1();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        b.emit(BasicOp::Fma, vec![x, x, x]);
        let mut p = Placer::new(&m, PlaceOptions::default());
        let done = p.drop_block(&b);
        assert_eq!(done, 6, "two chained latency-3 ops");
    }

    #[test]
    fn detailed_schedule_reports_times() {
        let m = machines::power_like();
        let mut p = Placer::new(&m, PlaceOptions::default());
        let sched = p.drop_block_detailed(&chained_fadds(3));
        assert_eq!(sched.per_op.len(), 3);
        assert_eq!(sched.completion, 6);
        // A dependent chain issues at 0, 2, 4 and finishes 2 cycles later.
        let issues: Vec<u32> = sched.per_op.iter().map(|t| t.issue).collect();
        assert_eq!(issues, vec![0, 2, 4]);
        for t in &sched.per_op {
            assert_eq!(t.finish, t.issue + 2);
        }
    }

    #[test]
    fn detailed_schedule_issue_never_precedes_deps() {
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let t1 = b.emit(BasicOp::FAdd, vec![x, x]);
        b.emit(BasicOp::IAdd, vec![x, x]); // independent FXU op
        b.emit(BasicOp::FMul, vec![t1, t1]);
        let mut p = Placer::new(&m, PlaceOptions::default());
        let sched = p.drop_block_detailed(&b);
        assert!(sched.per_op[2].issue >= sched.per_op[0].finish);
    }

    #[test]
    fn variable_latency_multiply() {
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        b.emit(BasicOp::IMulSmall, vec![x, x]);
        assert_eq!(place_block(&m, &b, PlaceOptions::default()).completion, 3);
        let mut b2 = BlockIr::new();
        let y = b2.add_value(ValueDef::External("y".into()));
        b2.emit(BasicOp::IMul, vec![y, y]);
        assert_eq!(place_block(&m, &b2, PlaceOptions::default()).completion, 5);
    }
}
