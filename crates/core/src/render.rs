//! ASCII rendering of functional-unit bins and cost blocks, regenerating
//! the visual language of the paper's Figures 3 and 8.

use crate::costblock::CostBlock;
use crate::tetris::Placer;

/// Renders the placer's bins as a column-per-unit diagram, latest time slot
/// on top (the orientation of Figure 3). `█` marks noncoverable occupancy,
/// `·` an empty slot.
pub fn render_bins(placer: &Placer<'_>) -> String {
    let bins = placer.bin_runs();
    let height = bins
        .iter()
        .flat_map(|(_, _, runs)| runs.iter().map(|(s, l, _)| s + l))
        .max()
        .unwrap_or(0);
    let labels: Vec<String> = bins
        .iter()
        .map(|(class, inst, _)| {
            if placer.machine().unit_count(*class) > 1 {
                format!("{class}{inst}")
            } else {
                class.to_string()
            }
        })
        .collect();
    let width = labels.iter().map(|l| l.len()).max().unwrap_or(4).max(4);

    let mut out = String::new();
    for row in (0..height).rev() {
        out.push_str(&format!("{row:>4} |"));
        for (_, _, runs) in &bins {
            let filled = runs
                .iter()
                .any(|(start, len, f)| *f && row >= *start && row < start + len);
            let cell = if filled { '█' } else { '·' };
            out.push_str(&format!(" {cell:^width$}"));
        }
        out.push('\n');
    }
    out.push_str("      ");
    for l in &labels {
        out.push_str(&format!(" {l:^width$}"));
    }
    out.push('\n');
    out
}

/// Renders a cost-block outline (Figure 8): per unit, its occupied span
/// within the overall block.
pub fn render_cost_block(cb: &CostBlock) -> String {
    let mut out = String::new();
    let top = cb.top();
    let bottom = cb.bottom().unwrap_or(0);
    out.push_str(&format!(
        "cost block: span {} cycles (slots {}..{}), completion {}\n",
        cb.span(),
        bottom,
        top,
        cb.completion
    ));
    for u in &cb.units {
        let label = format!("{}{}", u.class, u.instance);
        if u.busy == 0 {
            out.push_str(&format!("  {label:<12} (idle)\n"));
            continue;
        }
        let lead = (u.bottom - bottom) as usize;
        let body = (u.top - u.bottom) as usize;
        let tail = (top - u.top) as usize;
        out.push_str(&format!(
            "  {label:<12} {}{}{}  busy {}/{}\n",
            "·".repeat(lead),
            "█".repeat(body),
            "·".repeat(tail),
            u.busy,
            body
        ));
    }
    out
}

/// Renders an xlf-style cycle listing: each operation with its issue and
/// finish cycle (the reference format the paper compared against — "the
/// IBM xlf compiler prints out a listing of assembly code with a cycle
/// count for each assembly instruction").
pub fn render_listing(
    block: &presage_translate::BlockIr,
    schedule: &crate::tetris::DropSchedule,
    machine: &presage_machine::MachineDesc,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{:>5} {:>6}  {:<10} operands", "issue", "finish", "op");
    for (op, t) in block.ops.iter().zip(&schedule.per_op) {
        let atomics: Vec<&str> = machine
            .expand(op.basic)
            .iter()
            .map(|id| machine.atomic(*id).name.as_str())
            .collect();
        let mut operands = String::new();
        if let Some(m) = &op.mem {
            operands.push_str(&m.key());
        }
        if let Some(c) = &op.callee {
            let _ = write!(operands, "@{c}");
        }
        let _ = writeln!(
            out,
            "{:>5} {:>6}  {:<10} {}",
            t.issue,
            t.finish,
            atomics.join("+"),
            operands
        );
    }
    let _ = writeln!(out, "total: {} cycles", schedule.completion);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tetris::{PlaceOptions, Placer};
    use presage_machine::{machines, BasicOp};
    use presage_translate::{BlockIr, ValueDef};

    fn sample_placer(m: &presage_machine::MachineDesc) -> Placer<'_> {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let t = b.emit(BasicOp::FAdd, vec![x, x]);
        b.emit(BasicOp::IAdd, vec![x, x]);
        b.emit(BasicOp::FAdd, vec![t, t]);
        let mut p = Placer::new(m, PlaceOptions::default());
        p.drop_block(&b);
        p
    }

    #[test]
    fn bins_render_contains_units_and_fill() {
        let m = machines::power_like();
        let p = sample_placer(&m);
        let s = render_bins(&p);
        assert!(s.contains("FXU"));
        assert!(s.contains("FPU"));
        assert!(s.contains('█'));
        assert!(s.contains('·'));
    }

    #[test]
    fn cost_block_render_shows_span() {
        let m = machines::power_like();
        let p = sample_placer(&m);
        let s = render_cost_block(&p.cost_block());
        assert!(s.starts_with("cost block: span"));
        assert!(s.contains("(idle)"), "unused units marked idle");
    }

    #[test]
    fn listing_shows_cycles_and_ops() {
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let t = b.emit(BasicOp::FAdd, vec![x, x]);
        b.emit(BasicOp::FMul, vec![t, t]);
        let mut p = Placer::new(&m, PlaceOptions::default());
        let sched = p.drop_block_detailed(&b);
        let listing = render_listing(&b, &sched, &m);
        assert!(listing.contains("fa"), "{listing}");
        assert!(listing.contains("total: 4 cycles"), "{listing}");
        // The dependent multiply issues after the add's latency.
        let lines: Vec<&str> = listing.lines().collect();
        assert!(lines[2].trim_start().starts_with('2'), "{listing}");
    }

    #[test]
    fn empty_placer_renders() {
        let m = machines::power_like();
        let p = Placer::new(&m, PlaceOptions::default());
        let s = render_bins(&p);
        assert!(s.contains("FXU"));
        let cb = render_cost_block(&p.cost_block());
        assert!(cb.contains("span 0"));
    }
}
