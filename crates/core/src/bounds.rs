//! Admissible lower bounds on block and subroutine cost, plus the
//! per-block summary cache that serves them (and the explain path).
//!
//! The transformation search (§3.2) prunes a candidate only when a
//! *sound* floor on its cost already exceeds the incumbent's predicted
//! cost — admissibility is what makes pruning winner-invariant. Three
//! floors are computed straight from [`BlockIr`], without running the
//! Tetris placement:
//!
//! - **Dependence critical path** ([`crate::explain::critical_path`]):
//!   every operation waits out its predecessors' expanded atomic
//!   latencies, so no placement and no schedule — greedy or
//!   event-driven — completes before the longest chain.
//! - **Port pressure**: pool `p` of `count_p` instances retires at most
//!   `count_p` noncoverable cycles per cycle, so any schedule of the
//!   block's operations needs at least `ceil(busy_p / count_p)` cycles,
//!   where `busy_p` sums the expanded atomic noncoverable costs over
//!   the block (a floor on what the placer actually places — spill
//!   heuristics only add work).
//! - **Steady-state loop floor** ([`steady_iter_lower_bound`]): the
//!   overlap prober's `(c_k − c_1)/(k − 1)` is resource-driven and has
//!   no useful placement-free floor on wide machines (port quotients
//!   divide by the pool width; the measured value comes from slot
//!   congestion at dependence-chain roots), so the floor reads the
//!   *exact* per-iteration value from the content-keyed memo the
//!   aggregator itself charges from — trivially admissible, and the
//!   entries it warms are the ones the winner's prediction reads.
//!
//! [`subroutine_lower_bound`] composes the block floors through trip
//! counts exactly the way [`crate::aggregate`] composes costs: loops
//! multiply by the (corner-minimized) symbolic trip count, conditionals
//! take the cheaper branch, calls contribute nothing (their table cost
//! is nonnegative).
//!
//! The same two-level, epoch-aware memo that backs the bounds also
//! caches [`BlockSummary`] — the placed completion/span/critical-path/
//! busy profile of a block keyed by its interned
//! [`presage_translate::BlockId`] (or content) × machine. A search
//! variant whose rewrite touched `k` of `n` blocks re-places only those
//! `k`; the untouched blocks keep their interned ids and hit this
//! cache, which is what turns whole-subroutine explanation in the
//! search inner loop into delta work. The L2 is wiped by the
//! `blockcost-l2` reclaimer on every epoch advance (retired block ids
//! are never reused, so their entries can never hit again).

use crate::aggregate::{trip_count_memo, AggregateOptions};
use crate::explain::critical_path;
use crate::tetris::{place_block, PlaceOptions};
use presage_frontend::fold::fold128;
use presage_machine::{MachineDesc, UnitClass};
use presage_symbolic::memo::{self, ShardedMemo};
use presage_symbolic::{PerfExpr, Poly, Symbol, VarInfo};
use presage_translate::{BlockIr, IfIr, IrNode, LoopIr, ProgramIr};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::LazyLock;

/// Placed summary of one block: everything the explain path and the
/// bound composition need, cached so unchanged blocks are never
/// re-placed.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockSummary {
    /// Completion time of the last result (includes trailing coverable
    /// latency), the quantity [`crate::aggregate`] charges per block.
    pub completion: u32,
    /// Placed span (first to last occupied slot).
    pub span: u32,
    /// Resource-free dependence critical path.
    pub critical_path: u32,
    /// Placed noncoverable cycles per unit class, machine unit order,
    /// zero-busy pools omitted.
    pub busy: Vec<(UnitClass, u32)>,
}

const BOUNDS_MEMO_CAP: usize = 1 << 12;
const L2_SHARDS: usize = 16;
const L2_CAP_PER_SHARD: usize = BOUNDS_MEMO_CAP / L2_SHARDS * 2;

/// Fixed cross-thread seed for the bound-memo content hash, disjoint
/// from the scheduling-memo seed so the two key families cannot alias.
const BOUNDS_SEED: u64 = 0x5851_f42d_4c95_7f2d;

struct BoundsMemo {
    buf: Vec<u8>,
    summary: HashMap<u128, BlockSummary>,
    lower: HashMap<u128, u32>,
}

thread_local! {
    static BOUNDS_MEMO: RefCell<BoundsMemo> = RefCell::new(BoundsMemo {
        buf: Vec::new(),
        summary: HashMap::new(),
        lower: HashMap::new(),
    });

    static L1_EPOCH: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

static SUMMARY_L2: LazyLock<ShardedMemo<u128, BlockSummary>> =
    LazyLock::new(|| ShardedMemo::new(L2_SHARDS, L2_CAP_PER_SHARD));
static LOWER_L2: LazyLock<ShardedMemo<u128, u32>> =
    LazyLock::new(|| ShardedMemo::new(L2_SHARDS, L2_CAP_PER_SHARD));
/// Total entries across the block-summary/bound L2 memos (soak
/// telemetry).
pub(crate) fn l2_memo_entries() -> usize {
    SUMMARY_L2.len() + LOWER_L2.len()
}

/// Clears the thread-local bound memos when the epoch has advanced
/// since this thread last queried them (same contract as the
/// scheduling L1s: entries keyed by reclaimed block ids can never hit
/// again, so stamping bounds their growth).
fn sync_l1_epoch(pin_epoch: u64) {
    L1_EPOCH.with(|e| {
        if e.get() != pin_epoch {
            e.set(pin_epoch);
            BOUNDS_MEMO.with(|m| {
                let mut m = m.borrow_mut();
                m.summary.clear();
                m.lower.clear();
            });
        }
    });
}

/// Registers (once per process) the epoch hook that wipes the
/// block-summary/bound L2s on every advance, reporting the reclaimed
/// entry count as `blockcost-l2`.
fn ensure_bounds_reclaimer() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        presage_symbolic::epoch::register_reclaimer("blockcost-l2", |_bound| {
            let n = l2_memo_entries();
            SUMMARY_L2.clear();
            LOWER_L2.clear();
            n
        });
    });
}

/// Key-space tags: the two value tables share one encoding, a leading
/// tag byte keeps their key families disjoint.
const TAG_SUMMARY: u8 = 1;
const TAG_LOWER: u8 = 2;

/// Encodes `(tag, machine, focus span, blocks)` and folds it into the
/// 128-bit memo key. Interned blocks contribute their 4-byte id (an id
/// compare is a content compare); un-interned blocks fall back to the
/// content encoding behind a disjoint tag byte.
fn bounds_key(
    memo: &mut BoundsMemo,
    tag: u8,
    machine: &MachineDesc,
    focus: Option<u32>,
    blocks: &[&BlockIr],
) -> u128 {
    let mut buf = std::mem::take(&mut memo.buf);
    buf.clear();
    buf.push(tag);
    buf.extend_from_slice(machine.name().as_bytes());
    buf.push(0);
    match focus {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            buf.extend_from_slice(&s.to_le_bytes());
        }
    }
    for b in blocks {
        match b.interned_id() {
            Some(id) => {
                buf.push(1);
                buf.extend_from_slice(&id.0.to_le_bytes());
            }
            None => {
                buf.push(0);
                b.encode_content(&mut buf);
            }
        }
    }
    let key = fold128(&buf, BOUNDS_SEED);
    memo.buf = buf;
    key
}

/// Noncoverable cycles the block's operations demand from each unit
/// pool, from the atomic expansion alone — a floor on what any
/// placement places (spill heuristics only add busy cycles).
fn op_busy(machine: &MachineDesc, block: &BlockIr) -> Vec<(UnitClass, u32)> {
    let mut busy: Vec<(UnitClass, u32)> = machine.units().iter().map(|p| (p.class, 0u32)).collect();
    for op in &block.ops {
        for &a in machine.expand(op.basic) {
            for (class, b) in &mut busy {
                *b += machine.atomic(a).busy_on(*class);
            }
        }
    }
    busy.retain(|(_, b)| *b > 0);
    busy
}

/// The placement-free lower bound on a block's completion time (and on
/// the event-driven simulator's makespan): the larger of the dependence
/// critical path and the worst per-pool port-pressure quotient
/// `ceil(busy_p / count_p)`.
pub fn block_lower_bound(machine: &MachineDesc, block: &BlockIr) -> u32 {
    ensure_bounds_reclaimer();
    let guard = presage_symbolic::epoch::pin();
    sync_l1_epoch(guard.epoch());
    BOUNDS_MEMO.with(|m| {
        let mut m = m.borrow_mut();
        let key = bounds_key(&mut m, TAG_LOWER, machine, None, &[block]);
        if let Some(&v) = m.lower.get(&key) {
            memo::record_l1_hit();
            return v;
        }
        let v = if let Some(hit) = LOWER_L2.get(&key) {
            memo::record_l2_hit();
            hit
        } else {
            memo::record_miss();
            let v = block_lower_bound_uncached(machine, block);
            LOWER_L2.insert(key, v);
            v
        };
        if m.lower.len() >= BOUNDS_MEMO_CAP {
            m.lower.clear();
        }
        m.lower.insert(key, v);
        v
    })
}

fn block_lower_bound_uncached(machine: &MachineDesc, block: &BlockIr) -> u32 {
    let cp = critical_path(block, machine);
    let port = port_quotient(machine, block);
    cp.max(port)
}

/// `max_p ceil(busy_p / count_p)` — a floor on the placed *span* as
/// well as the completion (busy slots all lie inside the span).
fn port_quotient(machine: &MachineDesc, block: &BlockIr) -> u32 {
    let mut worst = 0u32;
    for (class, busy) in op_busy(machine, block) {
        let count = machine
            .units()
            .iter()
            .find(|p| p.class == class)
            .map(|p| p.count.max(1) as u32)
            .unwrap_or(1);
        worst = worst.max(busy.div_ceil(count));
    }
    worst
}

/// Cached placed summary of one block: completion, span, critical path,
/// and per-class busy cycles — one [`place_block`] per distinct
/// `(machine, focus span, block)` per epoch, shared process-wide.
pub fn block_summary(machine: &MachineDesc, opts: PlaceOptions, block: &BlockIr) -> BlockSummary {
    ensure_bounds_reclaimer();
    let guard = presage_symbolic::epoch::pin();
    sync_l1_epoch(guard.epoch());
    BOUNDS_MEMO.with(|m| {
        let mut m = m.borrow_mut();
        let key = bounds_key(&mut m, TAG_SUMMARY, machine, opts.focus_span, &[block]);
        if let Some(v) = m.summary.get(&key) {
            memo::record_l1_hit();
            return v.clone();
        }
        let v = if let Some(hit) = SUMMARY_L2.get(&key) {
            memo::record_l2_hit();
            hit
        } else {
            memo::record_miss();
            let cost = place_block(machine, block, opts);
            let busy = machine
                .units()
                .iter()
                .filter_map(|pool| {
                    let b = cost.busy_on(pool.class);
                    (b > 0).then_some((pool.class, b))
                })
                .collect();
            let v = BlockSummary {
                completion: cost.completion,
                span: cost.span(),
                critical_path: critical_path(block, machine),
                busy,
            };
            SUMMARY_L2.insert(key, v.clone());
            v
        };
        if m.summary.len() >= BOUNDS_MEMO_CAP {
            m.summary.clear();
        }
        m.summary.insert(key, v.clone());
        v
    })
}

/// Admissible floor on the steady-state per-iteration cost of a
/// single-block loop body followed by its control block — a lower bound
/// on what the aggregator charges per iteration for the merged block
/// under the same probe count.
///
/// The prober's `(c_k − c_1)/(k − 1)` is resource-driven (the placer
/// carries no dependence state across drops), so no placement-free
/// counting argument tracks it on wide machines: port quotients divide
/// by the pool width while the measured per-iteration cost comes from
/// slot congestion at the dependence-chain roots. Instead the floor
/// reads the *exact* per-iteration value from the same content-keyed
/// memo the aggregator itself charges from
/// ([`crate::aggregate::memo_steady`]) — trivially admissible, and a
/// bound computation warms the very entries the winner's eventual
/// prediction will read, which is the delta-prediction sharing this
/// module exists for. The result is floored one millicycle below the
/// prober's rounding grid so the aggregator's `approx_rational` can
/// never round underneath it.
pub fn steady_iter_lower_bound(
    machine: &MachineDesc,
    opts: PlaceOptions,
    probes: u32,
    body: &BlockIr,
    control: &BlockIr,
) -> f64 {
    if probes < 2 {
        return 0.0;
    }
    let v = crate::aggregate::memo_steady(machine, opts, probes, body, control);
    (((v * 1000.0).floor() - 1.0) / 1000.0).max(0.0)
}

/// Enclosing-loop frame for corner evaluation: the loop variable and
/// the numeric range it sweeps at the bound's evaluation point.
struct Frame {
    var: Symbol,
    lo: f64,
    hi: f64,
}

/// Evaluates a polynomial at `bindings`, defaulting unbound symbols to
/// their range midpoints exactly as the aggregator's expressions do.
fn eval_poly(poly: &Poly, opts: &AggregateOptions, bindings: &HashMap<Symbol, f64>) -> f64 {
    let expr = PerfExpr::from_poly_with(poly.clone(), |s| {
        let (lo, hi) = opts
            .var_ranges
            .get(s.name())
            .copied()
            .unwrap_or(opts.default_range);
        VarInfo::loop_bound(lo, hi)
    });
    expr.eval_with_defaults(bindings)
}

/// Minimum of a trip-count polynomial over the enclosing loops' ranges,
/// clamped nonnegative. Trip counts are (multi)linear in enclosing
/// indices (triangular/trapezoidal nests), so the minimum sits at a
/// corner of the range box; anything of higher degree gives up to 0,
/// which is always admissible.
fn min_count(
    poly: &Poly,
    frames: &[Frame],
    opts: &AggregateOptions,
    bindings: &HashMap<Symbol, f64>,
) -> f64 {
    let present: Vec<&Frame> = frames
        .iter()
        .filter(|f| poly.contains_symbol(&f.var))
        .collect();
    if present.is_empty() {
        return eval_poly(poly, opts, bindings).max(0.0);
    }
    if present.len() > 3 || present.iter().any(|f| poly.degree_in(&f.var) > 1) {
        return 0.0;
    }
    let mut min = f64::INFINITY;
    for mask in 0..(1usize << present.len()) {
        let mut b = bindings.clone();
        for (i, f) in present.iter().enumerate() {
            let v = if mask & (1 << i) != 0 { f.hi } else { f.lo };
            b.insert(f.var.clone(), v);
        }
        min = min.min(eval_poly(poly, opts, &b));
    }
    if min.is_finite() {
        min.max(0.0)
    } else {
        0.0
    }
}

/// Corner evaluation without the nonnegative clamp, for frame ranges.
fn corner_eval(
    poly: &Poly,
    frames: &[Frame],
    opts: &AggregateOptions,
    bindings: &HashMap<Symbol, f64>,
    want_max: bool,
) -> Option<f64> {
    let present: Vec<&Frame> = frames
        .iter()
        .filter(|f| poly.contains_symbol(&f.var))
        .collect();
    if present.is_empty() {
        return Some(eval_poly(poly, opts, bindings));
    }
    if present.len() > 3 || present.iter().any(|f| poly.degree_in(&f.var) > 1) {
        return None;
    }
    let mut best: Option<f64> = None;
    for mask in 0..(1usize << present.len()) {
        let mut b = bindings.clone();
        for (i, f) in present.iter().enumerate() {
            let v = if mask & (1 << i) != 0 { f.hi } else { f.lo };
            b.insert(f.var.clone(), v);
        }
        let v = eval_poly(poly, opts, &b);
        best = Some(match best {
            None => v,
            Some(prev) => {
                if want_max {
                    prev.max(v)
                } else {
                    prev.min(v)
                }
            }
        });
    }
    best
}

/// Admissible lower bound on a translated program's predicted cost,
/// evaluated at `bindings` (unbound unknowns default to their range
/// midpoints, exactly as the search's own evaluation does).
///
/// Composes [`block_lower_bound`] and [`steady_iter_lower_bound`]
/// through symbolic trip counts the way [`crate::aggregate`] composes
/// costs: loop bodies multiply by the corner-minimized trip count,
/// conditionals take the cheaper branch, calls and memory-model terms
/// contribute nothing (both are nonnegative in the prediction). Sound
/// for the predictor's meaningful regime — nonnegative trip counts and
/// branch probabilities at the evaluation point.
pub fn subroutine_lower_bound(
    ir: &ProgramIr,
    machine: &MachineDesc,
    opts: &AggregateOptions,
    bindings: &HashMap<Symbol, f64>,
) -> f64 {
    let mut frames = Vec::new();
    nodes_lower(&ir.root, machine, opts, bindings, &mut frames)
}

fn nodes_lower(
    nodes: &[IrNode],
    machine: &MachineDesc,
    opts: &AggregateOptions,
    bindings: &HashMap<Symbol, f64>,
    frames: &mut Vec<Frame>,
) -> f64 {
    nodes
        .iter()
        .map(|n| node_lower(n, machine, opts, bindings, frames))
        .sum()
}

fn node_lower(
    node: &IrNode,
    machine: &MachineDesc,
    opts: &AggregateOptions,
    bindings: &HashMap<Symbol, f64>,
    frames: &mut Vec<Frame>,
) -> f64 {
    match node {
        IrNode::Block(b) => block_lower_f64(machine, b),
        IrNode::Loop(l) => loop_lower(l, machine, opts, bindings, frames),
        IrNode::If(i) => if_lower(i, machine, opts, bindings, frames),
    }
}

fn block_lower_f64(machine: &MachineDesc, b: &BlockIr) -> f64 {
    if b.is_empty() {
        0.0
    } else {
        block_lower_bound(machine, b) as f64
    }
}

fn loop_lower(
    l: &LoopIr,
    machine: &MachineDesc,
    opts: &AggregateOptions,
    bindings: &HashMap<Symbol, f64>,
    frames: &mut Vec<Frame>,
) -> f64 {
    let one_time = block_lower_f64(machine, &l.preheader) + block_lower_f64(machine, &l.postheader);
    let (count_poly, lb_poly) = trip_count_memo(l);
    let count = min_count(&count_poly, frames, opts, bindings);
    if count <= 0.0 {
        return one_time;
    }
    let per_iter = match &l.body[..] {
        [IrNode::Block(b)] if opts.steady_probes >= 2 => {
            steady_iter_lower_bound(machine, opts.place, opts.steady_probes, b, &l.control)
        }
        _ => {
            // Compound body: the aggregator charges the children plus
            // the control block's *span*; bound the span by the port
            // quotient alone (the critical path may exceed a span).
            let lo = corner_eval(&lb_poly, frames, opts, bindings, false);
            let hi_poly = &(&lb_poly + &count_poly) - &Poly::one();
            let hi = corner_eval(&hi_poly, frames, opts, bindings, true);
            let (lo, hi) = match (lo, hi) {
                (Some(lo), Some(hi)) if lo <= hi => (lo, hi),
                _ => (1.0, opts.default_range.1),
            };
            frames.push(Frame {
                var: Symbol::interned(&l.var),
                lo,
                hi,
            });
            let body = nodes_lower(&l.body, machine, opts, bindings, frames);
            frames.pop();
            body + port_quotient(machine, &l.control) as f64
        }
    };
    one_time + per_iter * count
}

fn if_lower(
    i: &IfIr,
    machine: &MachineDesc,
    opts: &AggregateOptions,
    bindings: &HashMap<Symbol, f64>,
    frames: &mut Vec<Frame>,
) -> f64 {
    let cond = block_lower_f64(machine, &i.cond_block);
    let then_lb = nodes_lower(&i.then_nodes, machine, opts, bindings, frames);
    let else_lb = nodes_lower(&i.else_nodes, machine, opts, bindings, frames);
    cond + then_lb.min(else_lb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{aggregate, append_block, AggregateOptions};
    use crate::overlap::steady_state;
    use presage_frontend::{parse, sema};
    use presage_machine::machines;
    use presage_translate::translate;

    fn ir_of(src: &str, m: &MachineDesc) -> ProgramIr {
        let prog = parse(src).unwrap();
        let symbols = sema::analyze(&prog.units[0]).unwrap();
        translate(&prog.units[0], &symbols, m).unwrap()
    }

    const NEST: &str = "subroutine s(a, n)
        real a(n,n)
        integer i, j, n
        do i = 1, n
          do j = 1, n
            a(i,j) = a(i,j) * 2.0 + 1.0
          end do
        end do
      end";

    const TRIANGULAR: &str = "subroutine s(a, n)
        real a(n,n)
        integer i, j, n
        do i = 1, n
          do j = i, n
            a(i,j) = a(i,j) + 1.0
          end do
        end do
      end";

    const BRANCHY: &str = "subroutine s(a, n, k)
        real a(n)
        integer i, n, k
        do i = 1, n
          if (i .le. k) then
            a(i) = a(i) * 2.0 + 1.0
          else
            a(i) = 0.0
          end if
        end do
      end";

    fn all_machines() -> Vec<MachineDesc> {
        vec![
            machines::power_like(),
            machines::risc1(),
            machines::wide4(),
            machines::wide8(),
        ]
    }

    #[test]
    fn block_bound_never_exceeds_placement() {
        for m in all_machines() {
            let ir = ir_of(NEST, &m);
            fn walk(nodes: &[IrNode], m: &MachineDesc) {
                for n in nodes {
                    match n {
                        IrNode::Block(b) => {
                            if b.is_empty() {
                                continue;
                            }
                            let lb = block_lower_bound(m, b);
                            let placed = place_block(m, b, PlaceOptions::default());
                            assert!(
                                lb <= placed.completion,
                                "{}: bound {lb} > completion {}",
                                m.name(),
                                placed.completion
                            );
                        }
                        IrNode::Loop(l) => {
                            walk(std::slice::from_ref(&IrNode::Block(l.preheader.clone())), m);
                            walk(&l.body, m);
                        }
                        IrNode::If(i) => {
                            walk(&i.then_nodes, m);
                            walk(&i.else_nodes, m);
                        }
                    }
                }
            }
            walk(&ir.root, &m);
        }
    }

    #[test]
    fn steady_bound_never_exceeds_the_prober() {
        for m in all_machines() {
            let ir = ir_of(NEST, &m);
            fn walk(nodes: &[IrNode], m: &MachineDesc) {
                for n in nodes {
                    if let IrNode::Loop(l) = n {
                        if let [IrNode::Block(b)] = &l.body[..] {
                            let lb = steady_iter_lower_bound(
                                m,
                                PlaceOptions::default(),
                                6,
                                b,
                                &l.control,
                            );
                            let mut merged = b.clone();
                            append_block(&mut merged, &l.control);
                            let per =
                                steady_state(m, &merged, PlaceOptions::default(), 6).per_iteration;
                            assert!(
                                lb <= per + 1e-9,
                                "{}: steady bound {lb} > prober {per}",
                                m.name()
                            );
                        }
                        walk(&l.body, m);
                    }
                }
            }
            walk(&ir.root, &m);
        }
    }

    #[test]
    fn subroutine_bound_is_admissible_on_kernels() {
        for src in [NEST, TRIANGULAR, BRANCHY] {
            for m in all_machines() {
                let ir = ir_of(src, &m);
                let opts = AggregateOptions::default();
                for n in [64.0, 256.0, 512.0] {
                    let mut bindings = HashMap::new();
                    bindings.insert(Symbol::new("n"), n);
                    bindings.insert(Symbol::new("k"), n / 2.0);
                    let lb = subroutine_lower_bound(&ir, &m, &opts, &bindings);
                    let pred = aggregate(&ir, &m, None, &opts).eval_with_defaults(&bindings);
                    assert!(
                        lb <= pred + 1e-6,
                        "{} n={n}: bound {lb} > prediction {pred} for {src}",
                        m.name()
                    );
                    assert!(lb >= 0.0);
                }
            }
        }
    }

    #[test]
    fn bound_is_positive_on_real_work() {
        let m = machines::wide8();
        let ir = ir_of(NEST, &m);
        let mut bindings = HashMap::new();
        bindings.insert(Symbol::new("n"), 256.0);
        let lb = subroutine_lower_bound(&ir, &m, &AggregateOptions::default(), &bindings);
        assert!(lb > 0.0, "a dense nest must have a nonzero floor");
    }

    #[test]
    fn summary_matches_fresh_placement() {
        let m = machines::wide4();
        let ir = ir_of(NEST, &m);
        fn first_block(nodes: &[IrNode]) -> Option<&BlockIr> {
            for n in nodes {
                match n {
                    IrNode::Block(b) if !b.is_empty() => return Some(b),
                    IrNode::Loop(l) => {
                        if let Some(b) = first_block(&l.body) {
                            return Some(b);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        let b = first_block(&ir.root).expect("kernel has a body block");
        let s = block_summary(&m, PlaceOptions::default(), b);
        let fresh = place_block(&m, b, PlaceOptions::default());
        assert_eq!(s.completion, fresh.completion);
        assert_eq!(s.span, fresh.span());
        assert_eq!(s.critical_path, critical_path(b, &m));
        for (class, busy) in &s.busy {
            assert_eq!(*busy, fresh.busy_on(*class));
        }
        // Second query is a memo hit returning the identical summary.
        let again = block_summary(&m, PlaceOptions::default(), b);
        assert_eq!(s, again);
    }
}
