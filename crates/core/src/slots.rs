//! Time-slot tracking for one functional unit (paper Figure 4).
//!
//! "The time slots of instruction execution units are decomposed into lists
//! of alternating filled and empty blocks that are represented by a
//! two-dimensional array. The first and last slots of a block are used to
//! record the size of the block. If the block is empty, we record the
//! negative value of the block size. The array representation has the
//! advantages of double linked lists since reaching the adjacent blocks is
//! only one operation."

use std::fmt;

/// Run-length-encoded occupancy of one functional unit's time slots.
///
/// Only *noncoverable* cycles occupy slots; coverable latency is visible to
/// dependents through ready times, not through the bins.
///
/// # Examples
///
/// ```
/// use presage_core::slots::BlockList;
///
/// let mut b = BlockList::new();
/// let t = b.find_fit(0, 2);
/// b.fill(t, 2);
/// assert_eq!(b.highest_filled(), Some(1));
/// assert_eq!(b.find_fit(0, 1), 2, "next free slot is after the filled run");
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BlockList {
    /// `slots[i]` at a run boundary holds ±run-length (negative = empty);
    /// interior cells are unspecified.
    slots: Vec<i32>,
    /// One past the highest filled slot (0 when nothing is filled).
    highest: usize,
    /// Lowest filled slot, if any.
    lowest: Option<usize>,
    /// Total filled slots.
    busy: usize,
    /// Run start from which scans may begin: all queries are guaranteed to
    /// target positions ≥ this run's start (advanced by
    /// [`BlockList::advance_min_position`] under the focus-span policy,
    /// which makes placement amortized linear).
    hint: usize,
}

const INITIAL_CAPACITY: usize = 64;

impl BlockList {
    /// An empty slot list.
    pub fn new() -> BlockList {
        let mut slots = vec![0; INITIAL_CAPACITY];
        write_run(&mut slots, 0, INITIAL_CAPACITY, false);
        BlockList {
            slots,
            highest: 0,
            lowest: None,
            busy: 0,
            hint: 0,
        }
    }

    /// Flushes all slots ("the bins are flushed before being used for
    /// another block of statements").
    pub fn clear(&mut self) {
        let cap = self.slots.len();
        write_run(&mut self.slots, 0, cap, false);
        self.highest = 0;
        self.lowest = None;
        self.busy = 0;
        self.hint = 0;
    }

    /// One past the highest filled slot, `None` if empty.
    pub fn highest_filled(&self) -> Option<usize> {
        (self.highest > 0).then(|| self.highest - 1)
    }

    /// The lowest filled slot, `None` if empty.
    pub fn lowest_filled(&self) -> Option<usize> {
        self.lowest
    }

    /// Total number of filled slots.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Returns `true` if no slot is filled.
    pub fn is_empty(&self) -> bool {
        self.busy == 0
    }

    fn ensure_capacity(&mut self, needed: usize) {
        let mut cap = self.slots.len();
        if needed <= cap {
            return;
        }
        while cap < needed {
            cap *= 2;
        }
        let old = self.slots.len();
        self.slots.resize(cap, 0);
        // The region beyond `old` is empty; merge it with a trailing empty
        // run if present.
        let mut start = old;
        if old > 0 {
            let tail = self.slots[old - 1];
            if tail < 0 {
                start = old - (-tail) as usize;
            }
        }
        write_run(&mut self.slots, start, cap - start, false);
    }

    /// Promises that no future `find_fit`/`fill` will target a position
    /// below `pos`, letting scans skip everything before the run containing
    /// `pos`. Used by the placement engine's focus-span floor; `pos` must
    /// be non-decreasing across calls.
    pub fn advance_min_position(&mut self, pos: usize) {
        self.ensure_capacity(pos + 1);
        let mut i = self.hint;
        loop {
            let run = self.slots[i];
            debug_assert!(run != 0, "corrupt run encoding at {i}");
            let l = run.unsigned_abs() as usize;
            if pos < i + l {
                break;
            }
            i += l;
        }
        self.hint = i;
    }

    /// Finds the lowest start `≥ from` of `len` consecutive empty slots.
    ///
    /// Always succeeds: the list grows to accommodate the request.
    pub fn find_fit(&mut self, from: usize, len: usize) -> usize {
        assert!(len > 0, "cannot place a zero-length run");
        self.ensure_capacity(from + len);
        let cap = self.slots.len();
        let mut i = if from >= self.hint { self.hint } else { 0 };
        while i < cap {
            let run = self.slots[i];
            debug_assert!(run != 0, "corrupt run encoding at {i}");
            let l = run.unsigned_abs() as usize;
            let end = i + l;
            if run < 0 && end > from {
                let start = i.max(from);
                if end - start >= len {
                    return start;
                }
            }
            i = end;
        }
        // No interior fit: append past the end (growing as needed).
        let start = self.highest.max(from);
        self.ensure_capacity(start + len);
        start
    }

    /// Read-only twin of [`BlockList::find_fit`]: returns the slot
    /// `find_fit(from, len)` would return, without growing the list.
    ///
    /// The two agree because capacity never influences the answer: an
    /// empty run that reaches the end of the array is logically unbounded
    /// (`find_fit` would extend it before scanning), so it accepts any
    /// request, and the append fallback `max(highest, from)` needs no
    /// storage to compute. This lets the placement engine probe every
    /// instance of a unit pool and grow only the winner — probing used to
    /// call `find_fit` on all instances, permanently inflating the losing
    /// bins' capacity to the high-water mark of the whole pool.
    pub fn probe_fit(&self, from: usize, len: usize) -> usize {
        assert!(len > 0, "cannot place a zero-length run");
        if from >= self.highest {
            // Everything at or above `highest` is empty and unbounded:
            // the common place-at-the-top query answers in O(1).
            return from;
        }
        let cap = self.slots.len();
        let mut i = if from >= self.hint { self.hint } else { 0 };
        while i < cap {
            let run = self.slots[i];
            debug_assert!(run != 0, "corrupt run encoding at {i}");
            let l = run.unsigned_abs() as usize;
            let end = i + l;
            if run < 0 && end > from {
                let start = i.max(from);
                if end == cap || end - start >= len {
                    return start;
                }
            }
            i = end;
        }
        self.highest.max(from)
    }

    /// Marks `[start, start + len)` as filled.
    ///
    /// # Panics
    ///
    /// Panics if any slot in the range is already filled (callers must use
    /// [`BlockList::find_fit`] first).
    pub fn fill(&mut self, start: usize, len: usize) {
        assert!(len > 0, "cannot fill a zero-length run");
        self.ensure_capacity(start + len);
        // Locate the empty run containing `start`.
        let mut i = if start >= self.hint { self.hint } else { 0 };
        let (run_start, run_len) = loop {
            let run = self.slots[i];
            debug_assert!(run != 0, "corrupt run encoding at {i}");
            let l = run.unsigned_abs() as usize;
            if start < i + l {
                assert!(run < 0, "slot {start} already filled");
                break (i, l);
            }
            i += l;
        };
        assert!(
            start + len <= run_start + run_len,
            "fill range [{start}, {}) crosses into a filled run",
            start + len
        );

        // Determine merge extents with adjacent filled runs.
        let mut new_start = start;
        if start == run_start && run_start > 0 {
            let prev = self.slots[run_start - 1];
            if prev > 0 {
                new_start = run_start - prev as usize;
            }
        }
        let mut new_end = start + len;
        let run_end = run_start + run_len;
        if new_end == run_end && run_end < self.slots.len() {
            let next = self.slots[run_end];
            if next > 0 {
                new_end = run_end + next as usize;
            }
        }
        // Rewrite: [leading empty][merged filled][trailing empty].
        if start > run_start {
            write_run(&mut self.slots, run_start, start - run_start, false);
        }
        write_run(&mut self.slots, new_start, new_end - new_start, true);
        if start + len < run_end {
            write_run(&mut self.slots, start + len, run_end - (start + len), false);
        }

        self.busy += len;
        self.highest = self.highest.max(start + len);
        self.lowest = Some(self.lowest.map_or(start, |l| l.min(start)));
        // A backward merge can swallow the run the hint pointed at; keep
        // the hint on a run boundary.
        if new_start < self.hint {
            self.hint = new_start;
        }
    }

    /// Iterates `(start, len, filled)` runs up to the highest filled slot.
    pub fn runs(&self) -> Runs<'_> {
        Runs { list: self, pos: 0 }
    }

    /// Returns `true` if slot `t` is filled.
    pub fn is_filled(&self, t: usize) -> bool {
        if t >= self.highest {
            return false;
        }
        for (start, len, filled) in self.runs() {
            if t < start + len {
                return filled && t >= start;
            }
        }
        false
    }

    /// Number of filled slots within `[lo, hi)`.
    pub fn busy_in(&self, lo: usize, hi: usize) -> usize {
        let mut n = 0;
        for (start, len, filled) in self.runs() {
            if !filled {
                continue;
            }
            let s = start.max(lo);
            let e = (start + len).min(hi);
            if s < e {
                n += e - s;
            }
        }
        n
    }
}

/// Iterator over runs of a [`BlockList`].
#[derive(Debug)]
pub struct Runs<'a> {
    list: &'a BlockList,
    pos: usize,
}

impl Iterator for Runs<'_> {
    type Item = (usize, usize, bool);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.list.highest {
            return None;
        }
        let run = self.list.slots[self.pos];
        let len = run.unsigned_abs() as usize;
        let item = (self.pos, len.min(self.list.highest - self.pos), run > 0);
        self.pos += len;
        Some(item)
    }
}

fn write_run(slots: &mut [i32], start: usize, len: usize, filled: bool) {
    if len == 0 {
        return;
    }
    let v = if filled { len as i32 } else { -(len as i32) };
    slots[start] = v;
    slots[start + len - 1] = v;
}

impl Default for BlockList {
    fn default() -> Self {
        BlockList::new()
    }
}

impl fmt::Debug for BlockList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockList[")?;
        for (start, len, filled) in self.runs() {
            write!(f, " {}{}@{}", if filled { "#" } else { "." }, len, start)?;
        }
        write!(f, " ] highest={}", self.highest)
    }
}

/// Naive flat-bitmap baseline used by the Figure 4 ablation bench: same
/// interface, linear slot-by-slot scanning.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FlatSlots {
    filled: Vec<bool>,
    highest: usize,
}

impl FlatSlots {
    /// An empty flat slot map.
    pub fn new() -> FlatSlots {
        FlatSlots {
            filled: vec![false; INITIAL_CAPACITY],
            highest: 0,
        }
    }

    /// Finds the lowest start `≥ from` of `len` consecutive empty slots by
    /// scanning individual slots.
    pub fn find_fit(&mut self, from: usize, len: usize) -> usize {
        loop {
            if from + len > self.filled.len() {
                self.filled.resize((from + len).next_power_of_two(), false);
            }
            let mut start = from;
            'outer: while start + len <= self.filled.len() {
                for k in 0..len {
                    if self.filled[start + k] {
                        start = start + k + 1;
                        continue 'outer;
                    }
                }
                return start;
            }
            self.filled.resize(self.filled.len() * 2, false);
        }
    }

    /// Marks the range filled.
    ///
    /// # Panics
    ///
    /// Panics if a slot in the range is already filled.
    pub fn fill(&mut self, start: usize, len: usize) {
        if start + len > self.filled.len() {
            self.filled.resize((start + len).next_power_of_two(), false);
        }
        for k in 0..len {
            assert!(!self.filled[start + k], "slot {} already filled", start + k);
            self.filled[start + k] = true;
        }
        self.highest = self.highest.max(start + len);
    }

    /// One past the highest filled slot (0 when empty).
    pub fn highest(&self) -> usize {
        self.highest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_list() {
        let b = BlockList::new();
        assert!(b.is_empty());
        assert_eq!(b.highest_filled(), None);
        assert_eq!(b.lowest_filled(), None);
        assert_eq!(b.busy(), 0);
    }

    #[test]
    fn simple_fill() {
        let mut b = BlockList::new();
        b.fill(0, 3);
        assert_eq!(b.highest_filled(), Some(2));
        assert_eq!(b.lowest_filled(), Some(0));
        assert_eq!(b.busy(), 3);
        assert!(b.is_filled(0) && b.is_filled(2) && !b.is_filled(3));
    }

    #[test]
    fn find_fit_skips_filled() {
        let mut b = BlockList::new();
        b.fill(0, 2);
        b.fill(4, 2);
        assert_eq!(b.find_fit(0, 2), 2, "gap between the runs");
        assert_eq!(b.find_fit(0, 3), 6, "gap too small, go past the top");
        assert_eq!(b.find_fit(5, 1), 6);
    }

    #[test]
    fn fill_merges_adjacent_runs() {
        let mut b = BlockList::new();
        b.fill(0, 2);
        b.fill(4, 2);
        b.fill(2, 2); // bridges the gap
        let runs: Vec<_> = b.runs().collect();
        assert_eq!(runs, vec![(0, 6, true)]);
        assert_eq!(b.busy(), 6);
    }

    #[test]
    fn fill_splits_empty_run() {
        let mut b = BlockList::new();
        b.fill(3, 2);
        let runs: Vec<_> = b.runs().collect();
        assert_eq!(runs, vec![(0, 3, false), (3, 2, true)]);
    }

    #[test]
    #[should_panic(expected = "already filled")]
    fn double_fill_panics() {
        let mut b = BlockList::new();
        b.fill(0, 2);
        b.fill(1, 1);
    }

    #[test]
    fn growth_beyond_initial_capacity() {
        let mut b = BlockList::new();
        let t = b.find_fit(100, 50);
        assert_eq!(t, 100);
        b.fill(t, 50);
        assert_eq!(b.highest_filled(), Some(149));
        // And further growth merges trailing empties correctly.
        let t2 = b.find_fit(0, 200);
        b.fill(t2, 200);
        assert_eq!(b.busy(), 250);
    }

    #[test]
    fn busy_in_ranges() {
        let mut b = BlockList::new();
        b.fill(2, 3);
        b.fill(8, 2);
        assert_eq!(b.busy_in(0, 16), 5);
        assert_eq!(b.busy_in(3, 9), 3);
        assert_eq!(b.busy_in(5, 8), 0);
    }

    #[test]
    fn clear_resets() {
        let mut b = BlockList::new();
        b.fill(0, 10);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.find_fit(0, 4), 0);
    }

    #[test]
    fn backfill_prefers_lowest_slot() {
        let mut b = BlockList::new();
        b.fill(5, 5);
        assert_eq!(b.find_fit(0, 4), 0, "backfills below the occupied region");
    }

    #[test]
    fn hint_survives_backward_merge() {
        let mut b = BlockList::new();
        b.fill(0, 10); // filled [0,10)
        b.advance_min_position(10); // hint at the empty run starting at 10
                                    // Fill right at the hint: merges backward into the filled run,
                                    // making 10 an interior cell. The hint must follow the merge.
        let t = b.find_fit(10, 3);
        assert_eq!(t, 10);
        b.fill(t, 3);
        // Subsequent queries must still behave.
        assert_eq!(b.find_fit(10, 2), 13);
        b.fill(13, 2);
        assert_eq!(b.busy(), 15);
        let runs: Vec<_> = b.runs().collect();
        assert_eq!(runs, vec![(0, 15, true)]);
    }

    #[test]
    fn advance_min_position_skips_prefix() {
        let mut b = BlockList::new();
        b.fill(0, 4);
        b.fill(8, 4);
        b.advance_min_position(8);
        // The gap at [4, 8) is now unreachable by contract; fits search
        // from the hint onward.
        assert_eq!(b.find_fit(8, 2), 12);
    }

    #[test]
    fn flat_slots_agrees_with_blocklist() {
        let mut a = BlockList::new();
        let mut f = FlatSlots::new();
        // A deterministic mix of placements.
        let mut seed = 0x9E3779B97F4A7C15u64;
        for _ in 0..200 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let from = (seed >> 33) as usize % 64;
            let len = 1 + (seed >> 12) as usize % 5;
            let ta = a.find_fit(from, len);
            let tf = f.find_fit(from, len);
            assert_eq!(ta, tf, "divergence at from={from} len={len}");
            a.fill(ta, len);
            f.fill(tf, len);
        }
        assert_eq!(a.highest_filled().map(|h| h + 1).unwrap_or(0), f.highest());
    }

    #[test]
    fn probe_fit_agrees_with_find_fit() {
        // probe_fit must return exactly find_fit's answer (including the
        // growth cases) without mutating the list.
        let mut b = BlockList::new();
        let mut seed = 0x243F6A8885A308D3u64;
        for step in 0..500 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let from = (seed >> 33) as usize % 200;
            let len = 1 + (seed >> 13) as usize % 7;
            let probed = b.probe_fit(from, len);
            let snapshot = b.clone();
            let found = b.find_fit(from, len);
            assert_eq!(probed, found, "step {step}: from={from} len={len}");
            // find_fit may grow capacity but must not change occupancy.
            assert_eq!(snapshot.busy(), b.busy());
            b.fill(found, len);
        }
    }

    #[test]
    fn probe_fit_does_not_grow() {
        let mut b = BlockList::new();
        b.fill(0, 4);
        let cap = b.slots.len();
        // A request far beyond capacity answers correctly without growth.
        assert_eq!(b.probe_fit(1000, 8), 1000);
        assert_eq!(b.probe_fit(0, 1000), 4, "trailing empty run is unbounded");
        assert_eq!(b.slots.len(), cap);
    }

    #[test]
    fn find_fit_inside_filled_run_at_hint_boundary() {
        // The hint may sit on a *filled* run after advance_min_position
        // lands inside one; queries from inside that run must step over it.
        let mut b = BlockList::new();
        b.fill(0, 6);
        b.fill(8, 4);
        b.advance_min_position(2); // hint = run start 0 (filled)
        assert_eq!(b.find_fit(2, 2), 6, "gap between the runs");
        assert_eq!(b.probe_fit(2, 2), 6);
        assert_eq!(b.find_fit(2, 3), 12, "gap too small, go past the top");
    }

    #[test]
    fn backward_merge_keeps_hint_valid_after_advance() {
        let mut b = BlockList::new();
        b.fill(0, 8);
        b.fill(12, 4); // runs: #8@0 .4@8 #4@12 .-@16
        b.advance_min_position(16); // hint on the trailing empty run at 16
                                    // Fill at 16: merges backward into the filled run at 12, swallowing
                                    // the boundary cell the hint pointed at.
        b.fill(16, 2);
        // The hint must still name a run start; all queries stay correct.
        assert_eq!(b.find_fit(16, 1), 18);
        assert_eq!(b.probe_fit(16, 1), 18);
        b.fill(18, 1);
        assert_eq!(b.busy(), 15);
    }

    #[test]
    fn trailing_run_merges_across_ensure_capacity() {
        let mut b = BlockList::new();
        // Leave a trailing empty run, then grow far beyond capacity: the
        // new region must merge with the old trailing empty run, keeping
        // the run encoding consistent at the old boundary.
        b.fill(0, 60); // trailing empty [60, 64)
        let t = b.find_fit(60, 300); // forces growth well past 64
        assert_eq!(t, 60, "old trailing empty extends seamlessly");
        b.fill(t, 300);
        assert_eq!(b.busy(), 360);
        let runs: Vec<_> = b.runs().collect();
        assert_eq!(runs, vec![(0, 360, true)]);
        // Growth when the array ends in a *filled* run appends a fresh
        // empty run instead of merging.
        let mut c = BlockList::new();
        let cap = c.slots.len();
        c.fill(0, cap); // entirely filled
        assert_eq!(c.find_fit(0, 4), cap);
        c.fill(cap, 4);
        assert_eq!(c.busy(), cap + 4);
    }

    #[test]
    fn runs_iterator_alternates() {
        let mut b = BlockList::new();
        b.fill(1, 2);
        b.fill(5, 1);
        let runs: Vec<_> = b.runs().collect();
        assert_eq!(
            runs,
            vec![(0, 1, false), (1, 2, true), (3, 2, false), (5, 1, true)]
        );
    }
}
