//! Batched + parallel source-level prediction across `(machine, program)`
//! jobs.
//!
//! The restructuring workload predicts many independent programs — every
//! kernel of a suite on every candidate machine — and each job is a pure
//! function of its `(machine, source)` pair. This module fans a job list
//! out over scoped threads with a **work-stealing chunked queue**: an
//! atomic cursor over fixed-size job chunks that every worker claims from
//! until the list is drained. Skewed job costs (one giant kernel next to
//! twenty trivial ones) therefore never idle workers the way static
//! partitioning did — a worker that finishes its chunk steals the next
//! one instead of going home early. Results come back in job order
//! regardless of worker count or claim interleaving, so callers stay
//! deterministic, and `workers <= 1` degenerates to the sequential loop
//! with no thread overhead.
//!
//! All workers share one sharded [`TranslationCache`] (repeated shapes
//! translate once across the whole batch), the process-global sharded
//! polynomial arena (`presage_symbolic::intern` — lock-free id reads,
//! per-shard interning locks), and the sharded L2 memo tables behind the
//! thread-local algebra/scheduling memos, so freshly spawned workers
//! inherit warm results instead of recomputing them per thread.
//! [`predict_batch_report`] returns per-worker telemetry — jobs run,
//! chunks stolen, and two-level memo hit counts — alongside the results.

use crate::predictor::{PredictError, Prediction, Predictor, PredictorOptions};
use crate::transcache::TranslationCache;
use presage_machine::MachineDesc;
use presage_symbolic::memo::{self, MemoStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A sensible worker count for prediction fan-out: the machine's
/// available parallelism, or 1 when it cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One worker's share of a batch: how much work it claimed from the
/// stealing queue and how its two-level memo lookups resolved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchWorkerStats {
    /// Jobs this worker executed.
    pub jobs: u64,
    /// Chunks this worker claimed from the shared queue.
    pub chunks: u64,
    /// Chunks claimed beyond the worker's first — work it took from the
    /// common pool after finishing earlier claims (0 for a worker that
    /// never got a chunk or ran exactly one).
    pub steals: u64,
    /// The worker's memo telemetry (L1/L2 hits and misses), drained from
    /// the thread-local counters when the worker finished.
    pub memo: MemoStats,
}

/// Results plus per-worker telemetry from [`predict_batch_report`].
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job outcomes, index-aligned with the submitted job list.
    pub results: Vec<Result<Vec<Prediction>, PredictError>>,
    /// One entry per spawned worker (a single entry for sequential runs).
    pub workers: Vec<BatchWorkerStats>,
}

impl BatchReport {
    /// Memo telemetry summed over all workers.
    pub fn memo_totals(&self) -> MemoStats {
        self.workers
            .iter()
            .fold(MemoStats::default(), |acc, w| acc.merged(&w.memo))
    }

    /// Total chunks claimed beyond each worker's first.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }
}

/// Chunk size for the stealing queue: small enough that skewed job costs
/// rebalance (several claims per worker), large enough that the atomic
/// cursor is not contended per job.
fn chunk_size(jobs: usize, workers: usize) -> usize {
    jobs.div_ceil(workers * 4).max(1)
}

/// Runs `job` over `jobs` with a work-stealing chunk queue, preserving
/// job order in the returned results.
fn fan_out<J: Sync, R: Send>(
    jobs: &[J],
    workers: usize,
    job: impl Fn(&J) -> R + Sync,
) -> (Vec<R>, Vec<BatchWorkerStats>) {
    let workers = workers.max(1).min(jobs.len());
    if workers <= 1 {
        // Drain whatever the calling thread accumulated before this batch
        // so the report covers exactly this batch's lookups.
        memo::take_thread_stats();
        let results: Vec<R> = jobs.iter().map(&job).collect();
        let stats = BatchWorkerStats {
            jobs: jobs.len() as u64,
            chunks: jobs.len().min(1) as u64,
            steals: 0,
            memo: memo::take_thread_stats(),
        };
        return (results, vec![stats]);
    }
    let chunk = chunk_size(jobs.len(), workers);
    let cursor = AtomicUsize::new(0);
    let job = &job;
    let cursor = &cursor;
    let mut collected: Vec<(Vec<(usize, R)>, BatchWorkerStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut got: Vec<(usize, R)> = Vec::new();
                    let mut chunks = 0u64;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= jobs.len() {
                            break;
                        }
                        chunks += 1;
                        let end = (start + chunk).min(jobs.len());
                        for (i, j) in jobs[start..end].iter().enumerate() {
                            got.push((start + i, job(j)));
                        }
                    }
                    let stats = BatchWorkerStats {
                        jobs: got.len() as u64,
                        chunks,
                        steals: chunks.saturating_sub(1),
                        memo: memo::take_thread_stats(),
                    };
                    (got, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Prediction jobs catch their own panics (see
                // `predict_batch_report`), so a worker-level panic means
                // the fan-out infrastructure itself is broken — propagate
                // it instead of silently dropping that worker's claims.
                h.join().unwrap_or_else(|p| std::panic::resume_unwind(p))
            })
            .collect()
    });
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(jobs.len(), || None);
    let mut stats = Vec::with_capacity(collected.len());
    for (got, s) in collected.drain(..) {
        stats.push(s);
        for (i, r) in got {
            debug_assert!(out[i].is_none(), "job {i} claimed twice");
            out[i] = Some(r);
        }
    }
    let results = out
        .into_iter()
        .map(|r| r.expect("every job index is claimed exactly once"))
        .collect();
    (results, stats)
}

/// Predicts every `(machine, source)` job on `workers` scoped threads,
/// sharing `cache` (and the global polynomial arena) across all of them.
///
/// Each job parses, checks, translates, and predicts every subroutine in
/// its source, exactly as [`Predictor::predict_source`] does with `cache`
/// attached; the result vector is index-aligned with `jobs`, and a
/// failing job yields its own `Err` without disturbing the others.
pub fn predict_batch(
    jobs: &[(&MachineDesc, &str)],
    options: &PredictorOptions,
    cache: &Arc<TranslationCache>,
    workers: usize,
) -> Vec<Result<Vec<Prediction>, PredictError>> {
    predict_batch_report(jobs, options, cache, workers).results
}

/// [`predict_batch`] plus per-worker telemetry: jobs run, chunks claimed
/// and stolen from the shared queue, and two-level memo hit counts.
pub fn predict_batch_report(
    jobs: &[(&MachineDesc, &str)],
    options: &PredictorOptions,
    cache: &Arc<TranslationCache>,
    workers: usize,
) -> BatchReport {
    let (results, worker_stats) = fan_out(jobs, workers, |(machine, source)| {
        // Pin for the whole job so translation and aggregation observe
        // one epoch interval: an `epoch::advance` racing the batch (the
        // server advances between waves, not during them) waits this job
        // out before reclaiming anything it might still be stamping.
        let _epoch = presage_symbolic::epoch::pin();
        // One panicking job must not take down the worker (and with it
        // every other job in the wave): catch it and report it as this
        // job's own typed error. Shared state is sharded-lock based and
        // poison-recovering, so crossing the unwind boundary is benign.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let predictor = Predictor::with_options((*machine).clone(), options.clone())
                .with_translation_cache(Arc::clone(cache));
            predictor.predict_source(source)
        }))
        .unwrap_or_else(|payload| Err(PredictError::Internal(panic_message(&payload))))
    });
    BatchReport {
        results,
        workers: worker_stats,
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "prediction worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::machines;

    const KERNELS: [&str; 3] = [
        "subroutine axpy(y, x, a, n)
           real y(n), x(n), a
           integer i, n
           do i = 1, n
             y(i) = y(i) + a * x(i)
           end do
         end",
        "subroutine tri(a, n)
           real a(n)
           integer i, j, n
           do i = 1, n
             do j = i, n
               a(j) = a(j) * 2.0
             end do
           end do
         end",
        "subroutine broken(\nend",
    ];

    #[test]
    fn batch_matches_sequential_any_worker_count() {
        let ms = machines::all();
        let jobs: Vec<(&MachineDesc, &str)> = ms
            .iter()
            .flat_map(|m| KERNELS.iter().map(move |k| (m, *k)))
            .collect();
        let opts = PredictorOptions::default();
        let cache = Arc::new(TranslationCache::new());
        let sequential = predict_batch(&jobs, &opts, &cache, 1);
        for workers in [2, 4, 17] {
            let cache = Arc::new(TranslationCache::new());
            let parallel = predict_batch(&jobs, &opts, &cache, workers);
            assert_eq!(parallel.len(), sequential.len());
            for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
                match (p, s) {
                    (Ok(pv), Ok(sv)) => {
                        assert_eq!(pv.len(), sv.len(), "job {i}, workers={workers}");
                        for (a, b) in pv.iter().zip(sv) {
                            assert_eq!(a.total, b.total, "job {i}, workers={workers}");
                        }
                    }
                    (Err(_), Err(_)) => {}
                    other => panic!("job {i} diverged (workers={workers}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn workers_share_one_translation_cache() {
        let ms = machines::all();
        // The same kernel in every job: one miss per machine, everything
        // else served from the shared table regardless of which worker
        // translated it first.
        let jobs: Vec<(&MachineDesc, &str)> = ms
            .iter()
            .flat_map(|m| std::iter::repeat_n((m, KERNELS[0]), 6))
            .collect();
        let opts = PredictorOptions::default();
        let cache = Arc::new(TranslationCache::new());
        let results = predict_batch(&jobs, &opts, &cache, 4);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(cache.len(), ms.len(), "one entry per (machine, program)");
        // Workers racing on the same first-touch may both translate, so
        // misses can exceed the entry count but never the hit share.
        assert!(cache.misses() >= ms.len() as u64);
        assert_eq!(cache.hits() + cache.misses(), jobs.len() as u64);
        assert!(cache.hits() >= (jobs.len() - 2 * ms.len()) as u64);
    }

    #[test]
    fn empty_job_list() {
        let cache = Arc::new(TranslationCache::new());
        assert!(predict_batch(&[], &PredictorOptions::default(), &cache, 8).is_empty());
    }

    #[test]
    fn report_accounts_for_every_job() {
        let ms = machines::all();
        let jobs: Vec<(&MachineDesc, &str)> = ms
            .iter()
            .flat_map(|m| KERNELS.iter().map(move |k| (m, *k)))
            .collect();
        let opts = PredictorOptions::default();
        for workers in [1usize, 3, 8] {
            let cache = Arc::new(TranslationCache::new());
            let report = predict_batch_report(&jobs, &opts, &cache, workers);
            assert_eq!(report.results.len(), jobs.len());
            assert_eq!(report.workers.len(), workers.min(jobs.len()));
            let run: u64 = report.workers.iter().map(|w| w.jobs).sum();
            assert_eq!(run, jobs.len() as u64, "workers={workers}");
            let chunks: u64 = report.workers.iter().map(|w| w.chunks).sum();
            assert!(chunks >= 1);
            // Memo activity happened somewhere (prediction uses the
            // two-level memos for placement and algebra).
            assert!(report.memo_totals().lookups() > 0, "workers={workers}");
        }
    }

    #[test]
    fn stealing_covers_skewed_chunks() {
        // More chunks than workers: at least one worker must claim a
        // second chunk, and every index still comes back exactly once.
        let (results, stats) = fan_out(&(0..97).collect::<Vec<i32>>(), 3, |&x| x * 2);
        assert_eq!(results, (0..97).map(|x| x * 2).collect::<Vec<i32>>());
        assert_eq!(stats.iter().map(|w| w.jobs).sum::<u64>(), 97);
        assert!(stats.iter().map(|w| w.steals).sum::<u64>() > 0);
    }
}
