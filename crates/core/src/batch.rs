//! Batched + parallel source-level prediction across `(machine, program)`
//! jobs.
//!
//! The restructuring workload predicts many independent programs — every
//! kernel of a suite on every candidate machine — and each job is a pure
//! function of its `(machine, source)` pair. This module fans a job list
//! out over scoped threads with the same chunking pattern as
//! `presage_simulator::batch` and the optimizer's parallel A* candidate
//! evaluation: results come back in job order regardless of worker count,
//! so callers stay deterministic, and `workers <= 1` degenerates to the
//! sequential loop with no thread overhead.
//!
//! All workers share one sharded [`TranslationCache`] (repeated shapes
//! translate once across the whole batch) and the process-global
//! hash-consed polynomial arena (`presage_symbolic::intern`), whose
//! thread-local mirrors sync append-only tails, so cross-thread polynomial
//! identity costs no steady-state locking.

use crate::predictor::{PredictError, Prediction, Predictor, PredictorOptions};
use crate::transcache::TranslationCache;
use presage_machine::MachineDesc;
use std::sync::Arc;

/// A sensible worker count for prediction fan-out: the machine's
/// available parallelism, or 1 when it cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `job` over `jobs` on `workers` scoped threads, preserving order.
fn fan_out<J: Sync, R: Send>(jobs: &[J], workers: usize, job: impl Fn(&J) -> R + Sync) -> Vec<R> {
    let workers = workers.max(1).min(jobs.len());
    if workers <= 1 {
        return jobs.iter().map(&job).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(jobs.len(), || None);
    let chunk = jobs.len().div_ceil(workers);
    let job = &job;
    std::thread::scope(|scope| {
        for (results, work) in out.chunks_mut(chunk).zip(jobs.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, j) in results.iter_mut().zip(work) {
                    *slot = Some(job(j));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every chunk slot is filled"))
        .collect()
}

/// Predicts every `(machine, source)` job on `workers` scoped threads,
/// sharing `cache` (and the global polynomial arena) across all of them.
///
/// Each job parses, checks, translates, and predicts every subroutine in
/// its source, exactly as [`Predictor::predict_source`] does with `cache`
/// attached; the result vector is index-aligned with `jobs`, and a
/// failing job yields its own `Err` without disturbing the others.
pub fn predict_batch(
    jobs: &[(&MachineDesc, &str)],
    options: &PredictorOptions,
    cache: &Arc<TranslationCache>,
    workers: usize,
) -> Vec<Result<Vec<Prediction>, PredictError>> {
    fan_out(jobs, workers, |(machine, source)| {
        let predictor = Predictor::with_options((*machine).clone(), options.clone())
            .with_translation_cache(Arc::clone(cache));
        predictor.predict_source(source)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::machines;

    const KERNELS: [&str; 3] = [
        "subroutine axpy(y, x, a, n)
           real y(n), x(n), a
           integer i, n
           do i = 1, n
             y(i) = y(i) + a * x(i)
           end do
         end",
        "subroutine tri(a, n)
           real a(n)
           integer i, j, n
           do i = 1, n
             do j = i, n
               a(j) = a(j) * 2.0
             end do
           end do
         end",
        "subroutine broken(\nend",
    ];

    #[test]
    fn batch_matches_sequential_any_worker_count() {
        let ms = machines::all();
        let jobs: Vec<(&MachineDesc, &str)> = ms
            .iter()
            .flat_map(|m| KERNELS.iter().map(move |k| (m, *k)))
            .collect();
        let opts = PredictorOptions::default();
        let cache = Arc::new(TranslationCache::new());
        let sequential = predict_batch(&jobs, &opts, &cache, 1);
        for workers in [2, 4, 17] {
            let cache = Arc::new(TranslationCache::new());
            let parallel = predict_batch(&jobs, &opts, &cache, workers);
            assert_eq!(parallel.len(), sequential.len());
            for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
                match (p, s) {
                    (Ok(pv), Ok(sv)) => {
                        assert_eq!(pv.len(), sv.len(), "job {i}, workers={workers}");
                        for (a, b) in pv.iter().zip(sv) {
                            assert_eq!(a.total, b.total, "job {i}, workers={workers}");
                        }
                    }
                    (Err(_), Err(_)) => {}
                    other => panic!("job {i} diverged (workers={workers}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn workers_share_one_translation_cache() {
        let ms = machines::all();
        // The same kernel in every job: one miss per machine, everything
        // else served from the shared table regardless of which worker
        // translated it first.
        let jobs: Vec<(&MachineDesc, &str)> = ms
            .iter()
            .flat_map(|m| std::iter::repeat_n((m, KERNELS[0]), 6))
            .collect();
        let opts = PredictorOptions::default();
        let cache = Arc::new(TranslationCache::new());
        let results = predict_batch(&jobs, &opts, &cache, 4);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(cache.len(), ms.len(), "one entry per (machine, program)");
        // Workers racing on the same first-touch may both translate, so
        // misses can exceed the entry count but never the hit share.
        assert!(cache.misses() >= ms.len() as u64);
        assert_eq!(cache.hits() + cache.misses(), jobs.len() as u64);
        assert!(cache.hits() >= (jobs.len() - 2 * ms.len()) as u64);
    }

    #[test]
    fn empty_job_list() {
        let cache = Arc::new(TranslationCache::new());
        assert!(predict_batch(&[], &PredictorOptions::default(), &cache, 8).is_empty());
    }
}
