//! Per-block bottleneck explanation from the Tetris placement.
//!
//! The placer already computes everything a restructurer wants to know
//! about *why* a block costs what it costs: per-unit busy time (how
//! saturated each unit pool is over the block's span) and the block's
//! dependence structure (how long the resource-free critical path is).
//! This module surfaces both as an [`ExplainReport`] — the shape
//! throughput-analysis tools build per basic block: per-unit
//! busy/saturation plus a critical-path length, classified into a
//! [`Bottleneck`] verdict.
//!
//! The transformation searchers consume the verdict as a move-ordering
//! heuristic: a **resource-bound** block wants its operation mix or
//! locality restructured first (interchange, tile, distribute), while a
//! **latency-bound** block wants its pipeline bubbles filled first
//! (unroll, fuse). Ordering only — the verdict never prunes a move, so
//! search results are unchanged; only the order in which they are
//! reached is.

use crate::tetris::PlaceOptions;
use presage_machine::{MachineDesc, UnitClass};
use presage_translate::{BlockIr, IrNode, ProgramIr};
use std::fmt;

/// Aggregated load on one unit class over a block's span.
#[derive(Clone, Debug)]
pub struct UnitLoad {
    /// The unit class.
    pub class: UnitClass,
    /// Busy (noncoverable) cycles summed over the pool's instances.
    pub busy: u32,
    /// `busy / (instances × span)` — 1.0 means the pool is the
    /// hard floor of the block's cost.
    pub saturation: f64,
}

/// What limits a block's cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bottleneck {
    /// A unit pool's busy time explains the span: more of the span is
    /// accounted for by this class's saturation than by any dependence
    /// chain.
    Resource(UnitClass),
    /// The resource-free critical path explains the span: the block is
    /// waiting on latencies, not on units.
    Latency,
    /// The block places no work.
    Empty,
}

/// One placed block's explanation.
#[derive(Clone, Debug)]
pub struct BlockExplain {
    /// Loop-nesting depth of the block (0 = straight-line top level).
    pub loop_depth: usize,
    /// Operations in the block.
    pub ops: usize,
    /// Placed span (first to last occupied slot).
    pub span: u32,
    /// Completion time including trailing coverable latency.
    pub completion: u32,
    /// Length of the longest dependence chain, ignoring all resource
    /// limits (each operation contributes its expanded atomic
    /// latencies).
    pub critical_path: u32,
    /// Per-class load, machine unit order, unused classes omitted.
    pub units: Vec<UnitLoad>,
    /// The verdict.
    pub bottleneck: Bottleneck,
}

impl BlockExplain {
    /// Highest per-class saturation in the block (0.0 when empty).
    pub fn max_saturation(&self) -> f64 {
        self.units.iter().map(|u| u.saturation).fold(0.0, f64::max)
    }
}

/// Memory-vs-compute attribution for the whole program, present exactly
/// when the machine declares a `cache` section. Cycle figures are the
/// symbolic expressions evaluated at the report's default variable
/// bindings (range midpoints), the same defaults the comparison
/// machinery uses.
#[derive(Clone, Debug)]
pub struct MemoryExplain {
    /// Instruction-stream (placement + aggregation) cycles.
    pub compute_cycles: f64,
    /// Memory stall cycles from the cache-line access model.
    pub memory_cycles: f64,
    /// Distinct cache lines behind the stall cycles.
    pub lines: f64,
    /// Per-reference-group line counts, for pinpointing which sweep
    /// dominates the stalls.
    pub groups: Vec<crate::memcost::GroupLines>,
    /// Whether every group was counted exactly (see [`crate::memcost`]).
    pub exact: bool,
}

impl MemoryExplain {
    /// True when memory stalls exceed compute cycles at the evaluated
    /// bindings — the restructurer should attack locality (tile,
    /// interchange) before the instruction mix.
    pub fn memory_bound(&self) -> bool {
        self.memory_cycles > self.compute_cycles
    }
}

/// Per-block explanation of one program's placement.
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// Subroutine name.
    pub name: String,
    /// One entry per placed block, in program order (preheaders,
    /// control, bodies, postheaders — the aggregation walk's order).
    pub blocks: Vec<BlockExplain>,
    /// Memory-vs-compute attribution; `None` on perfect-cache machines
    /// (no `cache` section), where there are no stalls to attribute.
    pub memory: Option<MemoryExplain>,
}

impl ExplainReport {
    /// The block that dominates run time: deepest loop nesting first,
    /// most operations as the tie-break — the block the §3.2 search
    /// should attack first.
    pub fn hottest(&self) -> Option<&BlockExplain> {
        self.blocks
            .iter()
            .max_by_key(|b| (b.loop_depth, b.ops, b.span))
    }
}

impl fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "explain {}:", self.name)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(
                f,
                "  block {i} (depth {}, {} ops): span {}, critical path {}, {:?}",
                b.loop_depth, b.ops, b.span, b.critical_path, b.bottleneck
            )?;
            for u in &b.units {
                writeln!(
                    f,
                    "    {:?}: busy {} ({:.0}% saturated)",
                    u.class,
                    u.busy,
                    u.saturation * 100.0
                )?;
            }
        }
        if let Some(m) = &self.memory {
            writeln!(
                f,
                "  memory: {:.0} stall cycles over {:.0} lines vs {:.0} compute cycles ({})",
                m.memory_cycles,
                m.lines,
                m.compute_cycles,
                if m.memory_bound() {
                    "memory-bound"
                } else {
                    "compute-bound"
                }
            )?;
            for g in &m.groups {
                writeln!(
                    f,
                    "    {} [{} member{}]: {} lines{}",
                    g.shape,
                    g.members,
                    if g.members == 1 { "" } else { "s" },
                    g.lines,
                    if g.exact { "" } else { " (approx)" }
                )?;
            }
        }
        Ok(())
    }
}

/// Length of the longest dependence chain through `block` with all
/// resource limits removed: every operation starts when its last
/// dependence finishes and occupies its expanded atomic latencies
/// back-to-back. This is the latency floor the placement cannot beat.
pub fn critical_path(block: &BlockIr, machine: &MachineDesc) -> u32 {
    let csr = block.dep_csr();
    let n = block.ops.len();
    let mut finish = vec![0u32; n];
    let mut longest = 0u32;
    for i in 0..n {
        let start = csr
            .deps(i)
            .iter()
            .map(|d| finish[d.0 as usize])
            .max()
            .unwrap_or(0);
        let latency: u32 = machine
            .expand(block.ops[i].basic)
            .iter()
            .map(|&a| machine.atomic(a).latency())
            .sum();
        finish[i] = start + latency;
        longest = longest.max(finish[i]);
    }
    longest
}

/// Explains one placed block: per-class saturation over the span,
/// critical-path length, and the [`Bottleneck`] verdict. The verdict
/// compares how much of the span each limiter accounts for: the top
/// class's `saturation × span` against the critical path.
///
/// Served from the [`crate::bounds::block_summary`] cache: a variant
/// whose rewrite touched `k` of `n` blocks re-places only those `k` —
/// the untouched blocks keep their interned ids and hit the summary
/// memo, so search move-ordering pays delta cost, not whole-subroutine
/// cost.
pub fn explain_block(
    block: &BlockIr,
    machine: &MachineDesc,
    opts: PlaceOptions,
    loop_depth: usize,
) -> BlockExplain {
    let summary = crate::bounds::block_summary(machine, opts, block);
    let span = summary.span;
    let cp = summary.critical_path;
    let mut units: Vec<UnitLoad> = Vec::new();
    for &(class, busy) in &summary.busy {
        let count = machine
            .units()
            .iter()
            .find(|p| p.class == class)
            .map(|p| p.count)
            .unwrap_or(1);
        let capacity = (count as u32 * span.max(1)) as f64;
        units.push(UnitLoad {
            class,
            busy,
            saturation: busy as f64 / capacity,
        });
    }
    let bottleneck = if span == 0 {
        Bottleneck::Empty
    } else {
        let top = units
            .iter()
            .max_by(|a, b| a.saturation.total_cmp(&b.saturation));
        match top {
            Some(u) if u.saturation * span as f64 >= cp as f64 => Bottleneck::Resource(u.class),
            Some(_) => Bottleneck::Latency,
            None => Bottleneck::Empty,
        }
    };
    BlockExplain {
        loop_depth,
        ops: block.ops.len(),
        span,
        completion: summary.completion,
        critical_path: cp,
        units,
        bottleneck,
    }
}

/// Explains every block of a translated program, in the aggregation
/// walk's order, tagging each with its loop-nesting depth.
pub fn explain_ir(ir: &ProgramIr, machine: &MachineDesc, opts: PlaceOptions) -> ExplainReport {
    fn walk(
        nodes: &[IrNode],
        depth: usize,
        machine: &MachineDesc,
        opts: PlaceOptions,
        out: &mut Vec<BlockExplain>,
    ) {
        for node in nodes {
            match node {
                IrNode::Block(b) => out.push(explain_block(b, machine, opts, depth)),
                IrNode::Loop(l) => {
                    out.push(explain_block(&l.preheader, machine, opts, depth));
                    out.push(explain_block(&l.control, machine, opts, depth + 1));
                    walk(&l.body, depth + 1, machine, opts, out);
                    out.push(explain_block(&l.postheader, machine, opts, depth));
                }
                IrNode::If(i) => {
                    out.push(explain_block(&i.cond_block, machine, opts, depth));
                    walk(&i.then_nodes, depth, machine, opts, out);
                    walk(&i.else_nodes, depth, machine, opts, out);
                }
            }
        }
    }
    let mut blocks = Vec::new();
    walk(&ir.root, 0, machine, opts, &mut blocks);
    blocks.retain(|b| b.ops > 0);
    ExplainReport {
        name: ir.name.clone(),
        blocks,
        memory: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::Predictor;
    use presage_machine::machines;

    fn sub(src: &str) -> presage_frontend::Subroutine {
        presage_frontend::parse(src).unwrap().units.remove(0)
    }

    const NEST: &str = "subroutine s(a, b, n)
        real a(n), b(n)
        integer i, n
        do i = 1, n
          a(i) = b(i) * 2.0 + 1.0
        end do
      end";

    #[test]
    fn explain_reports_the_loop_body_as_hottest() {
        let p = Predictor::new(machines::risc1());
        let report = p.explain_subroutine(&sub(NEST)).unwrap();
        assert!(!report.blocks.is_empty());
        let hot = report.hottest().unwrap();
        assert!(hot.loop_depth >= 1, "hot block must be inside the loop");
        assert!(hot.span > 0);
        assert!(hot.critical_path > 0);
        assert!(!hot.units.is_empty());
    }

    #[test]
    fn saturation_is_a_ratio() {
        let p = Predictor::new(machines::wide8());
        let report = p.explain_subroutine(&sub(NEST)).unwrap();
        for b in &report.blocks {
            for u in &b.units {
                assert!(u.saturation > 0.0 && u.saturation <= 1.0 + 1e-9);
            }
            assert!(b.critical_path <= b.completion + b.span, "sane bounds");
        }
    }

    #[test]
    fn dependence_chain_is_latency_bound_on_a_scalar_machine() {
        // One long fp dependence chain on risc1: the critical path covers
        // the whole span, so the verdict must be Latency.
        let p = Predictor::new(machines::risc1());
        let chain = sub("subroutine s(x, n)
            real x
            integer i, n
            do i = 1, n
              x = ((((x * 1.1) * 1.2) * 1.3) * 1.4) * 1.5
            end do
          end");
        let report = p.explain_subroutine(&chain).unwrap();
        let hot = report.hottest().unwrap();
        assert_eq!(hot.bottleneck, Bottleneck::Latency, "{report}");
    }

    #[test]
    fn cache_machines_get_memory_attribution() {
        use presage_machine::CacheParams;
        // Perfect-cache machine: no attribution.
        let p = Predictor::new(machines::power_like());
        let report = p.explain_subroutine(&sub(NEST)).unwrap();
        assert!(report.memory.is_none());

        // Same machine with a brutal miss penalty: the streaming kernel
        // must come out memory-bound, and the report must render it.
        let mut m = machines::power_like();
        m.cache = Some(CacheParams {
            line_bytes: 64,
            size_bytes: 1 << 22,
            miss_penalty: 500,
            ways: 0,
            ..CacheParams::default()
        });
        let p = Predictor::new(m);
        let report = p.explain_subroutine(&sub(NEST)).unwrap();
        let mem = report
            .memory
            .as_ref()
            .expect("cache section => attribution");
        assert!(mem.memory_cycles > 0.0 && mem.compute_cycles > 0.0);
        assert!(mem.memory_bound(), "{mem:?}");
        assert!(!mem.groups.is_empty());
        let text = report.to_string();
        assert!(text.contains("memory-bound"), "{text}");
    }

    #[test]
    fn report_renders() {
        let p = Predictor::new(machines::power_like());
        let report = p.explain_subroutine(&sub(NEST)).unwrap();
        let text = report.to_string();
        assert!(text.contains("explain s"), "{text}");
        assert!(text.contains("critical path"), "{text}");
    }
}
