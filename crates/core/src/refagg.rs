//! The seed symbolic aggregation path, preserved as a reference oracle.
//!
//! This module is the [`crate::aggregate`] walk re-expressed over
//! [`presage_symbolic::reference`] — the verbatim seed symbolic engine
//! (`BTreeMap`-backed polynomials, no interning, no memoization). Placement
//! and steady-state probing are *shared* with the optimized path, so the
//! only difference between [`reference_aggregate`] and
//! [`crate::aggregate::aggregate`] is the symbolic engine underneath. It
//! exists for two purposes, mirroring [`crate::reference::NaivePlacer`]:
//!
//! 1. the differential test suite proves the hash-consed engine produces
//!    canonically identical expressions on every kernel × machine;
//! 2. the `perfsuite` benchmark measures predictions/sec of the optimized
//!    engine against this baseline, so the symbolic-engine speedup claim
//!    is reproducible in-tree.
//!
//! Library-call costing is intentionally unsupported (the Figure 7 kernels
//! contain no `call` statements); callers compare against
//! `aggregate(ir, machine, None, opts)`. Do not "fix" or speed up this
//! module: its value is that it does not change.

use crate::aggregate::{append_block, approx_rational, AggregateOptions};
use crate::overlap::steady_state;
use crate::tetris::place_block;
use presage_frontend::{BinOp, Expr, Intrinsic, UnOp};
use presage_machine::MachineDesc;
use presage_symbolic::reference::{summation, PerfExpr, Poly};
use presage_symbolic::{Rational, Symbol, VarInfo};
use presage_translate::{BlockIr, IrNode, LoopIr, ProgramIr};

/// Aggregates a translated program through the seed symbolic engine.
///
/// Semantically identical to `aggregate(ir, machine, None, opts)` — same
/// placement, same steady-state probes, same trip-count and branch-split
/// rules — but every polynomial operation runs on the reference engine.
pub fn reference_aggregate(
    ir: &ProgramIr,
    machine: &MachineDesc,
    opts: &AggregateOptions,
) -> PerfExpr {
    let agg = RefAggregator { machine, opts };
    let mut ctx = Vec::new();
    agg.nodes(&ir.root, &mut ctx)
}

/// Enclosing-loop context for probability inference (reference engine).
struct RefLoopCtx {
    var: String,
    lb: Poly,
    count: Poly,
}

struct RefAggregator<'a> {
    machine: &'a MachineDesc,
    opts: &'a AggregateOptions,
}

impl RefAggregator<'_> {
    fn var_info(&self, name: &str) -> VarInfo {
        let (lo, hi) = self
            .opts
            .var_ranges
            .get(name)
            .copied()
            .unwrap_or(self.opts.default_range);
        VarInfo::loop_bound(lo, hi)
    }

    fn wrap(&self, poly: Poly) -> PerfExpr {
        let infos: Vec<(Symbol, VarInfo)> = poly
            .symbols()
            .into_iter()
            .map(|s| {
                let info = self.var_info(s.name());
                (s, info)
            })
            .collect();
        PerfExpr::from_poly(poly, infos)
    }

    fn nodes(&self, nodes: &[IrNode], ctx: &mut Vec<RefLoopCtx>) -> PerfExpr {
        let mut total = PerfExpr::zero();
        for n in nodes {
            total += self.node(n, ctx);
        }
        total
    }

    fn node(&self, node: &IrNode, ctx: &mut Vec<RefLoopCtx>) -> PerfExpr {
        match node {
            IrNode::Block(b) => self.block_cost(b),
            IrNode::Loop(l) => self.loop_cost(l, ctx),
            IrNode::If(i) => self.if_cost(i, ctx),
        }
    }

    fn block_cost(&self, block: &BlockIr) -> PerfExpr {
        if block.is_empty() {
            return PerfExpr::zero();
        }
        let cb = place_block(self.machine, block, self.opts.place);
        PerfExpr::cycles(cb.completion as i64)
    }

    fn loop_cost(&self, l: &LoopIr, ctx: &mut Vec<RefLoopCtx>) -> PerfExpr {
        let one_time = self.block_cost(&l.preheader) + self.block_cost(&l.postheader);

        let (count_poly, lb_poly) = self.trip_count(l);

        ctx.push(RefLoopCtx {
            var: l.var.clone(),
            lb: lb_poly,
            count: count_poly.clone(),
        });
        let per_iter: PerfExpr = match &l.body[..] {
            [IrNode::Block(b)] if self.opts.steady_probes >= 2 => {
                let mut merged = b.clone();
                append_block(&mut merged, &l.control);
                let ss = steady_state(
                    self.machine,
                    &merged,
                    self.opts.place,
                    self.opts.steady_probes,
                );
                PerfExpr::cycles_rational(approx_rational(ss.per_iteration))
            }
            _ => {
                let body = self.nodes(&l.body, ctx);
                let control_cost = place_block(self.machine, &l.control, self.opts.place);
                body + PerfExpr::cycles(control_cost.span() as i64)
            }
        };
        let frame = ctx.pop().expect("frame pushed above");
        one_time + self.iterate(per_iter, &l.var, &frame)
    }

    fn iterate(&self, per_iter: PerfExpr, var: &str, frame: &RefLoopCtx) -> PerfExpr {
        let var_sym = Symbol::new(var);
        if per_iter.poly().contains_symbol(&var_sym) {
            let ub = &(&frame.lb + &frame.count) - &Poly::one();
            if let Some(summed) = summation::sum_range(per_iter.poly(), &var_sym, &frame.lb, &ub) {
                return self.wrap(summed);
            }
            let mid = (&frame.lb + &ub).scale(Rational::new(1, 2));
            if let Ok(avg) = per_iter.poly().subst(&var_sym, &mid) {
                return self.wrap(&avg * &frame.count);
            }
        }
        per_iter.repeat(&self.wrap(frame.count.clone()))
    }

    fn trip_count(&self, l: &LoopIr) -> (Poly, Poly) {
        let step_const = l.step.as_ref().map(|s| s.as_int()).unwrap_or(Some(1));
        let Some(s) = step_const.filter(|s| *s != 0) else {
            return (
                Poly::var(Symbol::new(format!("trip${}", l.var))),
                Poly::one(),
            );
        };
        let lbs = ref_bound_candidates(&l.lb, Intrinsic::Max);
        let ubs = ref_bound_candidates(&l.ub, Intrinsic::Min);
        let mut best: Option<Poly> = None;
        for lbp in &lbs {
            for ubp in &ubs {
                let count = (ubp - lbp).scale(Rational::new(1, s as i128)) + Poly::one();
                best = Some(match best {
                    None => count,
                    Some(prev) => match (prev.constant_value(), count.constant_value()) {
                        (Some(a), Some(b)) => {
                            if b < a {
                                count
                            } else {
                                Poly::constant(a)
                            }
                        }
                        (None, Some(_)) => count,
                        _ => prev,
                    },
                });
            }
        }
        match best {
            Some(count) => {
                let lb = lbs.first().cloned().unwrap_or_else(Poly::one);
                (count, lb)
            }
            None => (
                Poly::var(Symbol::new(format!("trip${}", l.var))),
                Poly::one(),
            ),
        }
    }

    fn if_cost(&self, i: &presage_translate::IfIr, ctx: &mut Vec<RefLoopCtx>) -> PerfExpr {
        let cond = self.block_cost(&i.cond_block);
        let then_cost = self.nodes(&i.then_nodes, ctx);
        let else_cost = self.nodes(&i.else_nodes, ctx);
        let (pt, pe) = self.branch_split(&i.cond, &then_cost, &else_cost, ctx);
        cond + pt.mul(&then_cost) + pe.mul(&else_cost)
    }

    fn branch_split(
        &self,
        cond: &Expr,
        then_cost: &PerfExpr,
        else_cost: &PerfExpr,
        ctx: &[RefLoopCtx],
    ) -> (PerfExpr, PerfExpr) {
        let half = PerfExpr::cycles_rational(Rational::new(1, 2));
        if self.opts.branch_tolerance > 0.0 {
            if let (Some(t), Some(e)) = (then_cost.concrete_cycles(), else_cost.concrete_cycles()) {
                let (tf, ef) = (t.to_f64(), e.to_f64());
                let scale = tf.abs().max(ef.abs());
                if scale == 0.0 || (tf - ef).abs() / scale <= self.opts.branch_tolerance {
                    return (half.clone(), half);
                }
            }
        }
        if self.opts.infer_loop_index_probs {
            if let Some(p) = self.loop_index_probability(cond, ctx) {
                let pe = self.wrap(&Poly::one() - &p);
                return (self.wrap(p), pe);
            }
        }
        let p = PerfExpr::var(Symbol::new(format!("p${cond}")), VarInfo::branch_prob());
        let q = PerfExpr::cycles(1) - p.clone();
        (p, q)
    }

    fn loop_index_probability(&self, cond: &Expr, ctx: &[RefLoopCtx]) -> Option<Poly> {
        let Expr::Binary { op, lhs, rhs } = cond else {
            return None;
        };
        if !op.is_relational() {
            return None;
        }
        let (var, bound, op) = match (lhs.as_var(), rhs.as_var()) {
            (Some(v), _) if ctx.iter().any(|c| c.var == v) => (v, rhs.as_ref(), *op),
            (_, Some(v)) if ctx.iter().any(|c| c.var == v) => (v, lhs.as_ref(), ref_flip(*op)),
            _ => return None,
        };
        let loop_ctx = ctx.iter().rev().find(|c| c.var == var)?;
        let bound_poly = ref_int_expr_to_poly(bound)?;
        if bound_poly.contains_symbol(&Symbol::new(var)) {
            return None;
        }

        let n = &loop_ctx.count;
        let k_minus_lb = &bound_poly - &loop_ctx.lb;
        let trues: Poly = match op {
            BinOp::Le => &k_minus_lb + &Poly::one(),
            BinOp::Lt => k_minus_lb,
            BinOp::Ge => n - &k_minus_lb,
            BinOp::Gt => &(n - &k_minus_lb) - &Poly::one(),
            BinOp::Eq => Poly::one(),
            BinOp::Ne => n - &Poly::one(),
            _ => return None,
        };
        let (c, m) = n.single_term()?;
        let inv_n = Poly::term(c.recip(), m.pow(-1));
        Some(&trues * &inv_n)
    }
}

fn ref_flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn ref_bound_candidates(e: &Expr, selector: Intrinsic) -> Vec<Poly> {
    if let Expr::Intrinsic { func, args } = e {
        if *func == selector {
            return args.iter().filter_map(ref_int_expr_to_poly).collect();
        }
    }
    ref_int_expr_to_poly(e).into_iter().collect()
}

fn ref_int_expr_to_poly(e: &Expr) -> Option<Poly> {
    match e {
        Expr::IntLit(n) => Some(Poly::from(*n)),
        Expr::Var(name) => Some(Poly::var(Symbol::new(name))),
        Expr::Unary {
            op: UnOp::Neg,
            operand,
        } => Some(-ref_int_expr_to_poly(operand)?),
        Expr::Binary { op, lhs, rhs } => {
            let l = ref_int_expr_to_poly(lhs)?;
            let r = ref_int_expr_to_poly(rhs)?;
            match op {
                BinOp::Add => Some(&l + &r),
                BinOp::Sub => Some(&l - &r),
                BinOp::Mul => Some(&l * &r),
                BinOp::Div => {
                    let c = r.constant_value()?;
                    if c.is_zero() {
                        None
                    } else {
                        Some(l.scale(c.recip()))
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate;
    use presage_frontend::{parse, sema};
    use presage_machine::machines;
    use presage_translate::translate;

    fn both(src: &str) -> (PerfExpr, presage_symbolic::PerfExpr) {
        let m = machines::power_like();
        let prog = parse(src).expect("parse");
        let symbols = sema::analyze(&prog.units[0]).expect("sema");
        let ir = translate(&prog.units[0], &symbols, &m).expect("translate");
        let opts = AggregateOptions::default();
        (
            reference_aggregate(&ir, &m, &opts),
            aggregate(&ir, &m, None, &opts),
        )
    }

    #[track_caller]
    fn assert_identical(src: &str) {
        let (reference, optimized) = both(src);
        assert_eq!(
            reference.to_string(),
            optimized.to_string(),
            "canonical text differs"
        );
        assert_eq!(
            reference.poly().to_string(),
            optimized.poly().to_string(),
            "polynomial differs"
        );
        let ref_vars: Vec<_> = reference
            .vars()
            .iter()
            .map(|(s, i)| (s.clone(), i.clone()))
            .collect();
        let opt_vars: Vec<_> = optimized
            .vars()
            .iter()
            .map(|(s, i)| (s.clone(), i.clone()))
            .collect();
        assert_eq!(ref_vars, opt_vars, "tracked unknowns differ");
    }

    #[test]
    fn straight_line_matches_optimized() {
        assert_identical("subroutine s(a)\nreal a(4)\na(1) = 1.0\na(2) = 2.0\nend");
    }

    #[test]
    fn symbolic_loop_matches_optimized() {
        assert_identical(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = a(i) + 1.0\nend do\nend",
        );
    }

    #[test]
    fn triangular_nest_matches_optimized() {
        assert_identical(
            "subroutine s(a, n)\nreal a(n,n)\ninteger i, j, n\ndo i = 1, n\ndo j = i, n\na(i,j) = 0.0\nend do\nend do\nend",
        );
    }

    #[test]
    fn loop_index_branch_matches_optimized() {
        assert_identical(
            "subroutine s(a, n, k)
               real a(n)
               integer i, n, k
               do i = 1, n
                 if (i .le. k) then
                   a(i) = a(i) * 2.0 + 1.0
                 else
                   a(i) = 0.0
                 end if
               end do
             end",
        );
    }

    #[test]
    fn roundtrip_through_conversions() {
        let (reference, optimized) = both(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = a(i) + 1.0\nend do\nend",
        );
        let converted = reference.poly().to_optimized();
        assert_eq!(&converted, optimized.poly());
        let back = Poly::from_optimized(optimized.poly());
        assert_eq!(&back, reference.poly());
    }
}
