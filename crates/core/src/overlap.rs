//! Loop iteration overlap estimation (paper §2.2.2 and Figure 9).
//!
//! "Our model provides two ways for estimating cost saving of unrolling a
//! loop: examining the shape of the cost block or dropping the innermost
//! basic block into the functional bins multiple times."

use crate::costblock::CostBlock;
use crate::tetris::{place_block, PlaceOptions, Placer, PreparedBlock};
use presage_machine::MachineDesc;
use presage_translate::BlockIr;

/// Result of a steady-state analysis of a loop body.
#[derive(Clone, PartialEq, Debug)]
pub struct SteadyState {
    /// Cost of the first iteration in isolation (pipeline fill).
    pub first_iteration: u32,
    /// Asymptotic cycles per iteration once the pipeline is warm.
    pub per_iteration: f64,
    /// Number of re-drops used to reach the estimate.
    pub probe_iterations: u32,
    /// Shape of a single iteration's cost block.
    pub shape: CostBlock,
}

impl SteadyState {
    /// Cycles saved per iteration by overlap, relative to back-to-back
    /// execution.
    pub fn overlap_saving(&self) -> f64 {
        self.first_iteration as f64 - self.per_iteration
    }
}

/// Estimates steady-state per-iteration cost by dropping the body into the
/// bins `probes` times: `(C_k − C_1) / (k − 1)`.
///
/// `probes` must be ≥ 2; small values (4–8) converge for all practical
/// bodies because the pipeline depth is bounded by operation latencies.
///
/// # Panics
///
/// Panics if `probes < 2`.
pub fn steady_state(
    machine: &MachineDesc,
    body: &BlockIr,
    opts: PlaceOptions,
    probes: u32,
) -> SteadyState {
    assert!(probes >= 2, "need at least two probe iterations");
    let prepared = PreparedBlock::new(body);
    let mut placer = Placer::new(machine, opts);
    let c1 = placer.drop_prepared(&prepared);
    let mut ck = c1;
    for _ in 1..probes {
        ck = placer.drop_prepared(&prepared);
    }
    let per_iteration = if body.is_empty() {
        0.0
    } else {
        (ck - c1) as f64 / (probes - 1) as f64
    };
    SteadyState {
        first_iteration: c1,
        per_iteration,
        probe_iterations: probes,
        shape: place_block(machine, body, opts),
    }
}

/// The cheap shape-based alternative: per-iteration cost from one placement
/// and the Figure 9 top/bottom matching of the block against itself.
pub fn shape_estimate(machine: &MachineDesc, body: &BlockIr, opts: PlaceOptions) -> f64 {
    let cb = place_block(machine, body, opts);
    let overlap = cb.estimate_overlap(&cb);
    (cb.span() - overlap) as f64
}

/// Estimates the benefit of unrolling the body `factor` times: steady-state
/// cycles per *original* iteration at each factor.
pub fn unroll_profile(
    machine: &MachineDesc,
    body: &BlockIr,
    opts: PlaceOptions,
    max_factor: u32,
) -> Vec<(u32, f64)> {
    let mut out = Vec::new();
    let prepared = PreparedBlock::new(body);
    for factor in 1..=max_factor {
        // Unrolling approximated by concatenated bodies: drop `factor`
        // copies per "iteration" probe.
        let mut placer = Placer::new(machine, opts);
        let mut c_first = 0;
        for _ in 0..factor {
            c_first = placer.drop_prepared(&prepared);
        }
        let probes = 6;
        let mut ck = c_first;
        for _ in 1..probes {
            for _ in 0..factor {
                ck = placer.drop_prepared(&prepared);
            }
        }
        let per_group = (ck - c_first) as f64 / (probes - 1) as f64;
        out.push((factor, per_group / factor as f64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::{machines, BasicOp};
    use presage_translate::{BlockIr, ValueDef};

    fn sparse_body() -> BlockIr {
        // One dependent chain of two fadds: span 4, lots of bubbles.
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let t = b.emit(BasicOp::FAdd, vec![x, x]);
        b.emit(BasicOp::FAdd, vec![t, t]);
        b
    }

    fn dense_body() -> BlockIr {
        // Eight independent fadds: FPU issue-bound.
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        for _ in 0..8 {
            b.emit(BasicOp::FAdd, vec![x, x]);
        }
        b
    }

    #[test]
    fn sparse_loop_overlaps_iterations() {
        let m = machines::power_like();
        let ss = steady_state(&m, &sparse_body(), PlaceOptions::default(), 8);
        assert_eq!(ss.first_iteration, 4);
        // Steady state: 2 issue slots per iteration on the FPU.
        assert!(ss.per_iteration <= 2.5, "got {}", ss.per_iteration);
        assert!(ss.overlap_saving() > 1.0);
    }

    #[test]
    fn dense_loop_is_throughput_bound() {
        let m = machines::power_like();
        let ss = steady_state(&m, &dense_body(), PlaceOptions::default(), 8);
        // 8 independent adds on one FPU: 8 cycles/iter either way.
        assert!(
            (ss.per_iteration - 8.0).abs() < 0.75,
            "got {}",
            ss.per_iteration
        );
        assert!(ss.overlap_saving() <= 1.5);
    }

    #[test]
    fn steady_state_empty_body() {
        let m = machines::power_like();
        let ss = steady_state(&m, &BlockIr::new(), PlaceOptions::default(), 4);
        assert_eq!(ss.per_iteration, 0.0);
        assert_eq!(ss.first_iteration, 0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn steady_state_needs_probes() {
        let m = machines::power_like();
        steady_state(&m, &sparse_body(), PlaceOptions::default(), 1);
    }

    #[test]
    fn shape_estimate_close_to_redrop() {
        let m = machines::power_like();
        let redrop = steady_state(&m, &sparse_body(), PlaceOptions::default(), 8).per_iteration;
        let shape = shape_estimate(&m, &sparse_body(), PlaceOptions::default());
        // The shape estimate is coarser but must be within the block span.
        assert!(shape >= redrop - 1.0, "shape {shape} vs redrop {redrop}");
        assert!(shape <= 4.0);
    }

    #[test]
    fn unroll_profile_tracks_steady_state() {
        // The re-drop model already overlaps iterations fully (the paper's
        // full-overlap assumption), so unrolling adds nothing here: every
        // factor's per-original-iteration cost sits at the steady state
        // (FPU-bound: 2 issue slots/iteration).
        let m = machines::power_like();
        let profile = unroll_profile(&m, &sparse_body(), PlaceOptions::default(), 4);
        assert_eq!(profile.len(), 4);
        for (factor, cost) in &profile {
            assert!((cost - 2.0).abs() <= 0.5, "factor {factor}: {profile:?}");
        }
    }

    #[test]
    fn unroll_no_gain_for_dense_body() {
        let m = machines::power_like();
        let profile = unroll_profile(&m, &dense_body(), PlaceOptions::default(), 3);
        let base = profile[0].1;
        for (_, c) in &profile {
            assert!(
                (c - base).abs() < 1.0,
                "dense body gains nothing: {profile:?}"
            );
        }
    }
}
