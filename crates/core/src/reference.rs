//! The seed placement algorithm, preserved verbatim as a reference oracle.
//!
//! [`NaivePlacer`] is the original (pre-optimization) implementation of the
//! §2.1 Tetris placement: it allocates a fresh dependence `Vec` per op,
//! clones every atomic-op definition out of the machine table, rescans all
//! bins for the highest occupied slot on every placement, re-advances every
//! bin's focus floor on every atomic, and grows every instance of a unit
//! pool while probing for the best fit. It is kept — unoptimized, and
//! algorithmically identical to the seed — for two purposes:
//!
//! 1. the differential test suite proves the optimized [`crate::tetris::Placer`]
//!    produces bit-identical [`DropSchedule`]s on every kernel × machine;
//! 2. the `perfsuite` benchmark harness measures the optimized hot path
//!    against this baseline, so speedup claims are reproducible in-tree.
//!
//! Do not "fix" or speed up this module: its value is that it does not
//! change.

use crate::costblock::{CostBlock, UnitUsage};
use crate::slots::BlockList;
use crate::tetris::{DropSchedule, OpTime, PlaceOptions};
use presage_machine::{MachineDesc, UnitClass};
use presage_translate::BlockIr;

struct Bin {
    class: UnitClass,
    instance: u8,
    list: BlockList,
}

/// The seed placement engine: same semantics as [`crate::tetris::Placer`],
/// original constant factors.
pub struct NaivePlacer<'m> {
    machine: &'m MachineDesc,
    opts: PlaceOptions,
    bins: Vec<Bin>,
    max_completion: u32,
    ops_placed: u64,
}

impl<'m> NaivePlacer<'m> {
    /// Creates empty bins for the machine's functional units.
    pub fn new(machine: &'m MachineDesc, opts: PlaceOptions) -> NaivePlacer<'m> {
        let mut bins = Vec::new();
        for pool in machine.units() {
            for inst in 0..pool.count {
                bins.push(Bin {
                    class: pool.class,
                    instance: inst,
                    list: BlockList::new(),
                });
            }
        }
        NaivePlacer {
            machine,
            opts,
            bins,
            max_completion: 0,
            ops_placed: 0,
        }
    }

    /// Flushes all bins.
    pub fn clear(&mut self) {
        for b in &mut self.bins {
            b.list.clear();
        }
        self.max_completion = 0;
        self.ops_placed = 0;
    }

    /// Total operations placed since the last clear.
    pub fn ops_placed(&self) -> u64 {
        self.ops_placed
    }

    /// One past the highest occupied slot across all bins (full rescan —
    /// the seed behavior).
    fn highest(&self) -> u32 {
        self.bins
            .iter()
            .filter_map(|b| b.list.highest_filled())
            .map(|h| h as u32 + 1)
            .max()
            .unwrap_or(0)
    }

    fn floor(&self) -> u32 {
        match self.opts.focus_span {
            None => 0,
            Some(span) => self.highest().saturating_sub(span),
        }
    }

    /// Drops one straight-line block, returning the completion time.
    pub fn drop_block(&mut self, block: &BlockIr) -> u32 {
        self.drop_block_detailed(block).completion
    }

    /// Seed placement loop: per-op dependence `Vec`, per-atomic clone.
    pub fn drop_block_detailed(&mut self, block: &BlockIr) -> DropSchedule {
        let mut per_op: Vec<OpTime> = Vec::with_capacity(block.ops.len());
        let mut finish = vec![0u32; block.ops.len()];
        let mut completion = self.max_completion;
        for (i, op) in block.ops.iter().enumerate() {
            let ready = block
                .deps_of(op)
                .into_iter()
                .map(|d| finish[d.0 as usize])
                .max()
                .unwrap_or(0);
            let mut t_done = ready;
            let mut first_issue = None;
            for atomic_id in self.machine.expand(op.basic) {
                let atomic = self.machine.atomic(*atomic_id).clone();
                if atomic.costs.is_empty() {
                    continue;
                }
                let t = self.place_atomic(&atomic, t_done);
                first_issue.get_or_insert(t);
                t_done = t + atomic.latency();
            }
            finish[i] = t_done;
            per_op.push(OpTime {
                issue: first_issue.unwrap_or(ready),
                finish: t_done,
            });
            completion = completion.max(t_done);
            self.ops_placed += 1;
        }
        self.max_completion = completion;
        DropSchedule { completion, per_op }
    }

    fn place_atomic(&mut self, atomic: &presage_machine::AtomicOpDef, ready: u32) -> u32 {
        let floor = self.floor();
        if self.opts.focus_span.is_some() && floor > 0 {
            for bin in &mut self.bins {
                bin.list.advance_min_position(floor as usize);
            }
        }
        let mut t = ready.max(floor);
        'fixpoint: loop {
            let mut picks: Vec<(usize, u32)> = Vec::with_capacity(atomic.costs.len());
            for comp in &atomic.costs {
                if comp.noncoverable == 0 {
                    continue;
                }
                let (idx, fit) = self.best_fit(comp.class, t, comp.noncoverable);
                if fit > t {
                    t = fit;
                    continue 'fixpoint;
                }
                picks.push((idx, comp.noncoverable));
            }
            for (idx, len) in picks {
                self.bins[idx].list.fill(t as usize, len as usize);
            }
            return t;
        }
    }

    /// Seed best-fit: mutating `find_fit` on every instance, growing the
    /// losing bins' capacity too.
    fn best_fit(&mut self, class: UnitClass, from: u32, len: u32) -> (usize, u32) {
        let mut best: Option<(usize, u32)> = None;
        for (i, bin) in self.bins.iter_mut().enumerate() {
            if bin.class != class {
                continue;
            }
            let fit = bin.list.find_fit(from as usize, len as usize) as u32;
            if best.is_none_or(|(_, bf)| fit < bf) {
                best = Some((i, fit));
            }
        }
        best.unwrap_or_else(|| panic!("machine has no unit of class {class}"))
    }

    /// Snapshot of the current bins as a [`CostBlock`].
    pub fn cost_block(&self) -> CostBlock {
        let units = self
            .bins
            .iter()
            .map(|b| UnitUsage {
                class: b.class,
                instance: b.instance,
                bottom: b.list.lowest_filled().unwrap_or(0) as u32,
                top: b.list.highest_filled().map(|h| h as u32 + 1).unwrap_or(0),
                busy: b.list.busy() as u32,
            })
            .collect();
        CostBlock {
            units,
            completion: self.max_completion,
        }
    }
}

/// One-shot seed placement of a single block with fresh bins.
pub fn naive_place(machine: &MachineDesc, block: &BlockIr, opts: PlaceOptions) -> CostBlock {
    let mut p = NaivePlacer::new(machine, opts);
    p.drop_block(block);
    p.cost_block()
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::{machines, BasicOp};
    use presage_translate::ValueDef;

    #[test]
    fn naive_matches_seed_expectations() {
        // The exact values the seed test suite pinned.
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        for _ in 0..8 {
            b.emit(BasicOp::FAdd, vec![x, x]);
        }
        let mut p = NaivePlacer::new(&m, PlaceOptions::default());
        assert_eq!(p.drop_block(&b), 9);

        let mut c = BlockIr::new();
        let mut v = c.add_value(ValueDef::External("x".into()));
        for _ in 0..8 {
            v = c.emit(BasicOp::FAdd, vec![v, v]);
        }
        let mut p2 = NaivePlacer::new(&m, PlaceOptions::default());
        assert_eq!(p2.drop_block(&c), 16);
    }
}
