//! Communication cost model for distributed-memory machines.
//!
//! The paper routes message-passing statements through a parameterized
//! static communication model (after Wang–Houstis [19]): each message costs
//! a startup latency plus a per-byte transfer time, and data-distribution
//! decisions (block vs. cyclic) change how many messages and bytes a loop
//! nest induces. Costs integrate with the same symbolic expressions as the
//! instruction model, so distribution choices can be compared with the
//! §3.1 machinery — the use case of Balasundaram et al. that the paper
//! cites.

use presage_symbolic::{PerfExpr, Poly, Rational, Symbol, VarInfo};

/// Machine communication parameters (cycles).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CommParams {
    /// Per-message startup cost (α).
    pub alpha: f64,
    /// Per-byte transfer cost (β).
    pub beta: f64,
    /// Number of processors.
    pub procs: u32,
}

impl Default for CommParams {
    /// SP1-flavoured defaults: expensive startup, ~10 cycles/byte.
    fn default() -> Self {
        CommParams {
            alpha: 5000.0,
            beta: 10.0,
            procs: 16,
        }
    }
}

/// How an array dimension is distributed over processors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Distribution {
    /// Contiguous blocks of `n/P` elements per processor.
    Block,
    /// Element `i` on processor `i mod P`.
    Cyclic,
    /// Blocks of the given size dealt round-robin.
    BlockCyclic(u32),
}

const ELEM_BYTES: f64 = 8.0;

fn rat(x: f64) -> Rational {
    Rational::new((x * 1000.0).round() as i128, 1000)
}

fn wrap(poly: Poly, n_range: (f64, f64)) -> PerfExpr {
    let infos: Vec<(Symbol, VarInfo)> = poly
        .symbols()
        .into_iter()
        .map(|s| (s, VarInfo::param(n_range.0, n_range.1)))
        .collect();
    PerfExpr::from_poly(poly, infos)
}

/// Cost of one message of `bytes` bytes.
pub fn message_cost(params: &CommParams, bytes: f64) -> f64 {
    params.alpha + params.beta * bytes
}

/// Per-processor boundary-exchange cost for one sweep of a 2-D
/// `n × n` stencil with the given halo `radius`, as a symbolic expression
/// in `n`.
///
/// - `Block` rows: each processor exchanges `2` halo strips of
///   `radius × n` elements → `2(α + β·radius·n·8)`.
/// - `Cyclic` rows: every one of the `n/P` local rows needs both neighbor
///   rows from remote processors → `2(n/P)(α + β·n·8)`.
/// - `BlockCyclic(b)`: `n/(P·b)` blocks each exchange two strips.
///
/// The block distribution's surface-to-volume advantage is exactly what
/// the symbolic comparison machinery should discover.
pub fn stencil_exchange_cost(
    params: &CommParams,
    dist: Distribution,
    n: &Symbol,
    radius: u32,
    n_range: (f64, f64),
) -> PerfExpr {
    let np = Poly::var(n.clone());
    let p = params.procs.max(1) as i128;
    let row_bytes = np.scale(rat(ELEM_BYTES));
    let poly = match dist {
        Distribution::Block => {
            // 2 messages of radius rows.
            let bytes = row_bytes.scale(Rational::from_int(radius as i64));
            bytes.scale(rat(2.0 * params.beta)) + Poly::constant(rat(2.0 * params.alpha))
        }
        Distribution::Cyclic => {
            // n/P local rows, each pulling its 2·radius neighbor rows.
            let msgs = np.scale(Rational::new(2 * radius as i128, p));
            let per_msg_bytes = row_bytes.scale(rat(params.beta));
            &msgs * &(per_msg_bytes + Poly::constant(rat(params.alpha)))
        }
        Distribution::BlockCyclic(b) => {
            let blocks = np.scale(Rational::new(1, p * b.max(1) as i128));
            let bytes = row_bytes.scale(Rational::from_int(radius as i64));
            let per_block =
                bytes.scale(rat(2.0 * params.beta)) + Poly::constant(rat(2.0 * params.alpha));
            &blocks * &per_block
        }
    };
    wrap(poly, n_range)
}

/// Per-processor *computation* load (element-updates) for a triangular
/// iteration space `do i = 1, n { do j = 1, i }` under row distributions:
/// the maximum over processors, symbolically in `n`.
///
/// Block distribution loads the last processor with the widest rows
/// (≈ `(2P−1)/P²·n²/2`), while cyclic balances to `≈ n²/(2P)` — the classic
/// case where cyclic wins despite worse locality.
pub fn triangular_max_load(
    params: &CommParams,
    dist: Distribution,
    n: &Symbol,
    n_range: (f64, f64),
) -> PerfExpr {
    let np = Poly::var(n.clone());
    let n2 = (&np * &np).scale(Rational::new(1, 2));
    let p = params.procs.max(1) as i128;
    let poly = match dist {
        Distribution::Block => {
            // Last processor owns rows ((P−1)/P·n, n]: load ≈ n²(2P−1)/(2P²).
            n2.scale(Rational::new(2 * p - 1, p * p))
        }
        Distribution::Cyclic => n2.scale(Rational::new(1, p)),
        Distribution::BlockCyclic(b) => {
            // Between the two; approximate with cyclic plus a block-size
            // correction term b·n/(2P).
            n2.scale(Rational::new(1, p)) + np.scale(Rational::new(b.max(1) as i128, 2 * p))
        }
    };
    wrap(poly, n_range)
}

/// Total bytes a processor sends redistributing an `n`-element block-
/// distributed array to cyclic (or back): all but `1/P` of the data moves.
pub fn redistribution_cost(params: &CommParams, n: &Symbol, n_range: (f64, f64)) -> PerfExpr {
    let np = Poly::var(n.clone());
    let p = params.procs.max(1) as i128;
    let local = np.scale(Rational::new(1, p));
    let moved_bytes = local.scale(Rational::new(p - 1, p)).scale(rat(ELEM_BYTES));
    let msgs = Poly::constant(Rational::from_int((params.procs - 1) as i64));
    let poly = moved_bytes.scale(rat(params.beta)) + msgs.scale(rat(params.alpha));
    wrap(poly, n_range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_symbolic::CompareOutcome;
    use std::collections::HashMap;

    fn n() -> Symbol {
        Symbol::new("n")
    }

    fn eval(e: &PerfExpr, nv: f64) -> f64 {
        let mut b = HashMap::new();
        b.insert(n(), nv);
        e.poly().eval_f64(&b).unwrap()
    }

    #[test]
    fn message_cost_linear_in_bytes() {
        let p = CommParams {
            alpha: 100.0,
            beta: 2.0,
            procs: 4,
        };
        assert_eq!(message_cost(&p, 0.0), 100.0);
        assert_eq!(message_cost(&p, 50.0), 200.0);
    }

    #[test]
    fn block_beats_cyclic_for_stencils() {
        let p = CommParams::default();
        let range = (64.0, 4096.0);
        let block = stencil_exchange_cost(&p, Distribution::Block, &n(), 1, range);
        let cyclic = stencil_exchange_cost(&p, Distribution::Cyclic, &n(), 1, range);
        let cmp = block.compare(&cyclic);
        assert_eq!(
            cmp.outcome,
            CompareOutcome::FirstCheaper,
            "{block} vs {cyclic}"
        );
        // And by a growing factor: at n = 1024 cyclic pays for n/P messages.
        assert!(eval(&cyclic, 1024.0) / eval(&block, 1024.0) > 10.0);
    }

    #[test]
    fn cyclic_balances_triangular_load() {
        let p = CommParams::default();
        let range = (64.0, 4096.0);
        let block = triangular_max_load(&p, Distribution::Block, &n(), range);
        let cyclic = triangular_max_load(&p, Distribution::Cyclic, &n(), range);
        let cmp = cyclic.compare(&block);
        assert_eq!(cmp.outcome, CompareOutcome::FirstCheaper);
        // Block's worst processor does ≈ (2P−1)/P ≈ 2× the mean.
        let ratio = eval(&block, 1000.0) / eval(&cyclic, 1000.0);
        assert!((ratio - 1.94).abs() < 0.1, "got {ratio}");
    }

    #[test]
    fn block_cyclic_interpolates_stencil_cost() {
        let p = CommParams::default();
        let range = (64.0, 4096.0);
        let b1 = stencil_exchange_cost(&p, Distribution::BlockCyclic(1), &n(), 1, range);
        let cyclic = stencil_exchange_cost(&p, Distribution::Cyclic, &n(), 1, range);
        // Block-cyclic(1) on rows is close to cyclic in message count but
        // each block only exchanges radius rows.
        assert!(eval(&b1, 1024.0) <= eval(&cyclic, 1024.0));
    }

    #[test]
    fn redistribution_scales_linearly() {
        let p = CommParams::default();
        let c = redistribution_cost(&p, &n(), (64.0, 1e6));
        // Affine in n: doubling n less-than-doubles the total (the α·(P−1)
        // startup term is constant), but the byte term doubles exactly.
        let r = eval(&c, 20000.0) / eval(&c, 10000.0);
        assert!(r > 1.2 && r < 2.0, "affine growth: {r}");
        let byte_slope = (eval(&c, 20000.0) - eval(&c, 10000.0)) / 10000.0;
        assert!(byte_slope > 0.0);
    }

    #[test]
    fn radius_scales_block_cost() {
        let p = CommParams::default();
        let r1 = stencil_exchange_cost(&p, Distribution::Block, &n(), 1, (64.0, 4096.0));
        let r2 = stencil_exchange_cost(&p, Distribution::Block, &n(), 2, (64.0, 4096.0));
        let v1 = eval(&r1, 1024.0) - 2.0 * p.alpha;
        let v2 = eval(&r2, 1024.0) - 2.0 * p.alpha;
        assert!((v2 / v1 - 2.0).abs() < 1e-6);
    }
}
