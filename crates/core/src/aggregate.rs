//! Symbolic cost aggregation of compound statements (paper §2.4).
//!
//! - `C(do k = lb, ub, step {B}) = C(lb) + C(ub) + C(step) + Σ_{Iter} C(B)`
//! - `C(if (c) Bt else Bf) = C(c) + p_t·C(Bt) + p_f·C(Bf) + c_br`
//!
//! "The major difference between our cost aggregation model and previous
//! work is that we compute and represent performance expressions
//! symbolically when control structures contain unknowns."

use crate::library::LibraryCostTable;
use crate::overlap::steady_state;
use crate::tetris::{place_block, PlaceOptions};
use presage_frontend::fold::fold128;
use presage_frontend::{BinOp, Expr, Intrinsic, UnOp};
use presage_machine::MachineDesc;
use presage_symbolic::memo::{self, ShardedMemo};
use presage_symbolic::{PerfExpr, Poly, Rational, Symbol, VarInfo};
use presage_translate::{BlockIr, IfIr, IrNode, LoopIr, ProgramIr};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::LazyLock;

/// Options controlling aggregation.
#[derive(Clone, Debug)]
pub struct AggregateOptions {
    /// Placement options for straight-line blocks.
    pub place: PlaceOptions,
    /// Probe iterations for loop steady-state costing; values < 2 disable
    /// iteration overlap (each iteration pays its standalone cost).
    pub steady_probes: u32,
    /// Default `[lo, hi]` range assumed for unknown integer scalars.
    pub default_range: (f64, f64),
    /// Per-variable range overrides.
    pub var_ranges: HashMap<String, (f64, f64)>,
    /// If both branch costs are concrete and within this relative
    /// tolerance, the probability symbol is elided and the costs averaged
    /// (§3.3.2: "if the two branches ... have performance estimations that
    /// are very close, the reaching probability ... can be ignored").
    pub branch_tolerance: f64,
    /// Infer probabilities for loop-index conditions (§3.3.2: "when a
    /// variable in the conditional expression is a loop index, we may
    /// assume equal probability for each iteration").
    pub infer_loop_index_probs: bool,
}

impl Default for AggregateOptions {
    fn default() -> Self {
        AggregateOptions {
            place: PlaceOptions::default(),
            steady_probes: 6,
            default_range: (1.0, 1e6),
            var_ranges: HashMap::new(),
            branch_tolerance: 0.1,
            infer_loop_index_probs: true,
        }
    }
}

/// Aggregates a translated program into one symbolic performance
/// expression.
///
/// # Examples
///
/// ```
/// use presage_core::aggregate::{aggregate, AggregateOptions};
/// use presage_frontend::{parse, sema};
/// use presage_machine::machines;
/// use presage_translate::translate;
///
/// let m = machines::power_like();
/// let prog = parse(
///     "subroutine s(a, n)
///        real a(n)
///        integer i, n
///        do i = 1, n
///          a(i) = a(i) + 1.0
///        end do
///      end").unwrap();
/// let symbols = sema::analyze(&prog.units[0]).unwrap();
/// let ir = translate(&prog.units[0], &symbols, &m).unwrap();
/// let cost = aggregate(&ir, &m, None, &AggregateOptions::default());
/// // Cost is linear in the unknown n.
/// assert_eq!(cost.poly().degree_in(&presage_symbolic::Symbol::new("n")), 1);
/// ```
pub fn aggregate(
    ir: &ProgramIr,
    machine: &MachineDesc,
    library: Option<&LibraryCostTable>,
    opts: &AggregateOptions,
) -> PerfExpr {
    // Pin for the whole aggregation so every symbolic op inside is a
    // cheap reentrant re-pin, and no epoch advance reclaims state this
    // prediction is still building keys from. Registering the L2 hook
    // here (not at first memo use) keeps registration off the memo fast
    // path.
    ensure_sched_reclaimer();
    let guard = presage_symbolic::epoch::pin();
    sync_l1_epoch(guard.epoch());
    let agg = Aggregator {
        machine,
        library,
        opts,
    };
    let mut ctx = Vec::new();
    agg.nodes(&ir.root, &mut ctx)
}

/// Enclosing-loop context for probability inference.
#[derive(Clone, Debug)]
pub(crate) struct LoopCtx {
    pub(crate) var: String,
    pub(crate) lb: Poly,
    pub(crate) count: Poly,
}

pub(crate) struct Aggregator<'a> {
    pub(crate) machine: &'a MachineDesc,
    pub(crate) library: Option<&'a LibraryCostTable>,
    pub(crate) opts: &'a AggregateOptions,
}

const SCHED_MEMO_CAP: usize = 1 << 12;
const L2_SHARDS: usize = 16;
const L2_CAP_PER_SHARD: usize = SCHED_MEMO_CAP / L2_SHARDS * 2;

/// Fixed seed for the scheduling-memo content hash. It must be the same
/// on every thread: the sharded L2 tables below share keys across batch
/// workers, so a per-thread random seed would make every worker's keys
/// mutually unintelligible (and reduce the L2 to dead weight). Collision
/// resistance comes from [`fold128`]'s two independently mixed 64-bit
/// halves, not seed secrecy.
const SCHED_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Per-thread memo of placement results keyed by block *content*.
///
/// The paper's workload calls the predictor "repeatedly during
/// restructuring": transformation variants share most of their basic
/// blocks, and within one variant the loop-overlap prober re-places the
/// same block at every probe. Placement is deterministic in
/// `(machine, options, block)`, so its completion/span/steady-state
/// results are memoized here, keyed by a 128-bit content hash of those
/// inputs ([`fold128`] with [`SCHED_SEED`] — a collision needs both
/// independently mixed 64-bit halves to agree). This is the L1 of a
/// two-level scheme: the sharded L2 tables below outlive batch worker
/// threads, so respawned workers inherit warm placements instead of
/// re-placing every block per round. The reference path
/// ([`crate::refagg::reference_aggregate`]) deliberately bypasses both
/// levels: it is the seed pipeline the benchmarks compare against.
struct SchedMemo {
    /// Reusable key-encoding buffer.
    buf: Vec<u8>,
    /// `content → (completion, span)` for straight-line placement.
    place: HashMap<u128, (u32, u32)>,
    /// `content → per_iteration` for loop steady-state probing.
    steady: HashMap<u128, f64>,
}

thread_local! {
    /// Fresh-probability symbols keyed by condition content: the `p$<cond>`
    /// name is stable for a given condition, and `Display`-formatting the
    /// whole expression on every prediction showed up in profiles. A
    /// 128-bit content key makes the steady state one hash + one clone.
    static PROB_SYMS: RefCell<HashMap<u128, Symbol>> = RefCell::new(HashMap::new());

    /// Loop-header content hash → `(count, lb)` polynomials. Trip counts
    /// are pure in `(var, lb, ub, step)` and re-derived from identical
    /// headers on every prediction of every variant; converting the bound
    /// expressions to polynomials dominated the aggregation profile before
    /// this memo.
    static TRIP_MEMO: RefCell<HashMap<u128, (Poly, Poly)>> = RefCell::new(HashMap::new());

    static SCHED_MEMO: RefCell<SchedMemo> = RefCell::new(SchedMemo {
        buf: Vec::new(),
        place: HashMap::new(),
        steady: HashMap::new(),
    });
}

/// Sharded L2s behind the thread-local scheduling memos. Keys are the
/// same [`SCHED_SEED`]-folded content hashes on every thread.
static PLACE_L2: LazyLock<ShardedMemo<u128, (u32, u32)>> =
    LazyLock::new(|| ShardedMemo::new(L2_SHARDS, L2_CAP_PER_SHARD));
static STEADY_L2: LazyLock<ShardedMemo<u128, f64>> =
    LazyLock::new(|| ShardedMemo::new(L2_SHARDS, L2_CAP_PER_SHARD));
static TRIP_L2: LazyLock<ShardedMemo<u128, (Poly, Poly)>> =
    LazyLock::new(|| ShardedMemo::new(L2_SHARDS, L2_CAP_PER_SHARD));

/// Total entries across the scheduling/trip-count L2 memos (soak
/// telemetry).
pub(crate) fn l2_memo_entries() -> usize {
    PLACE_L2.len() + STEADY_L2.len() + TRIP_L2.len()
}

thread_local! {
    /// Epoch the scheduling L1 memos were last validated against; see
    /// [`sync_l1_epoch`].
    static L1_EPOCH: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Clears the thread-local scheduling memos when the epoch has advanced
/// since this thread last aggregated.
///
/// These L1s are content-keyed with self-contained values, so a stale
/// entry is never *wrong* — but entries keyed by reclaimed block ids can
/// never hit again (ids are never reused), and would otherwise pile up
/// for the lifetime of a server worker thread. Epoch-stamping bounds
/// them the same way the symbolic L1s are bounded.
fn sync_l1_epoch(pin_epoch: u64) {
    L1_EPOCH.with(|e| {
        if e.get() != pin_epoch {
            e.set(pin_epoch);
            PROB_SYMS.with(|m| m.borrow_mut().clear());
            TRIP_MEMO.with(|m| m.borrow_mut().clear());
            SCHED_MEMO.with(|m| {
                let mut m = m.borrow_mut();
                m.place.clear();
                m.steady.clear();
            });
        }
    });
}

/// Registers (once per process) the epoch hook that wipes the scheduling
/// L2s on every advance. Keys embed translation-arena block ids; after
/// an advance reclaims blocks, entries keyed by the retired ids are
/// permanently dead (ids are never reused), so the wipe trades warm
/// entries for a hard bound on L2 growth across epochs.
fn ensure_sched_reclaimer() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        presage_symbolic::epoch::register_reclaimer("sched-l2", |_bound| {
            let n = l2_memo_entries();
            PLACE_L2.clear();
            STEADY_L2.clear();
            TRIP_L2.clear();
            n
        });
    });
}

/// Encodes the full memo key into `memo.buf` and folds it into the
/// 128-bit content key ([`fold128`], shared with the front end's AST
/// hashing).
///
/// Blocks interned by the translation arena
/// ([`presage_translate::intern`]) contribute only their 4-byte
/// [`presage_translate::BlockId`] — an id compare is a content compare,
/// so the key is O(1) in block size. Un-interned blocks (hand-built in
/// tests, or past the arena cap) fall back to the full content encoding;
/// a tag byte keeps the two key spaces disjoint.
fn sched_key(
    memo: &mut SchedMemo,
    machine: &MachineDesc,
    opts: PlaceOptions,
    probes: u32,
    blocks: &[&BlockIr],
) -> u128 {
    let mut buf = std::mem::take(&mut memo.buf);
    buf.clear();
    buf.extend_from_slice(machine.name().as_bytes());
    buf.push(0);
    match opts.focus_span {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            buf.extend_from_slice(&s.to_le_bytes());
        }
    }
    buf.extend_from_slice(&probes.to_le_bytes());
    for b in blocks {
        match b.interned_id() {
            Some(id) => {
                buf.push(1);
                buf.extend_from_slice(&id.0.to_le_bytes());
            }
            None => {
                buf.push(0);
                b.encode_content(&mut buf);
            }
        }
    }
    let key = fold128(&buf, SCHED_SEED);
    memo.buf = buf;
    key
}

/// Memoized [`place_block`]: returns `(completion, span)`.
fn memo_place(machine: &MachineDesc, opts: PlaceOptions, block: &BlockIr) -> (u32, u32) {
    SCHED_MEMO.with(|m| {
        let mut m = m.borrow_mut();
        let key = sched_key(&mut m, machine, opts, 0, &[block]);
        if let Some(&v) = m.place.get(&key) {
            memo::record_l1_hit();
            return v;
        }
        let v = if let Some(hit) = PLACE_L2.get(&key) {
            memo::record_l2_hit();
            hit
        } else {
            memo::record_miss();
            let cb = place_block(machine, block, opts);
            let v = (cb.completion, cb.span());
            PLACE_L2.insert(key, v);
            v
        };
        if m.place.len() >= SCHED_MEMO_CAP {
            m.place.clear();
        }
        m.place.insert(key, v);
        v
    })
}

/// Memoized per-iteration steady-state cost of `body` followed by the
/// loop `control` block. Keyed on the *pair*, so the merged probe block
/// is only materialized on a miss. Shared with [`crate::bounds`]: the
/// admissible lower bound floors this exact value, so a bound
/// computation warms the same memo a later prediction reads.
pub(crate) fn memo_steady(
    machine: &MachineDesc,
    opts: PlaceOptions,
    probes: u32,
    body: &BlockIr,
    control: &BlockIr,
) -> f64 {
    SCHED_MEMO.with(|m| {
        let mut m = m.borrow_mut();
        let key = sched_key(&mut m, machine, opts, probes, &[body, control]);
        if let Some(&v) = m.steady.get(&key) {
            memo::record_l1_hit();
            return v;
        }
        let v = if let Some(hit) = STEADY_L2.get(&key) {
            memo::record_l2_hit();
            hit
        } else {
            memo::record_miss();
            let mut merged = body.clone();
            append_block(&mut merged, control);
            let v = steady_state(machine, &merged, opts, probes).per_iteration;
            STEADY_L2.insert(key, v);
            v
        };
        if m.steady.len() >= SCHED_MEMO_CAP {
            m.steady.clear();
        }
        m.steady.insert(key, v);
        v
    })
}

impl Aggregator<'_> {
    pub(crate) fn var_info(&self, name: &str) -> VarInfo {
        let (lo, hi) = self
            .opts
            .var_ranges
            .get(name)
            .copied()
            .unwrap_or(self.opts.default_range);
        VarInfo::loop_bound(lo, hi)
    }

    pub(crate) fn wrap(&self, poly: Poly) -> PerfExpr {
        PerfExpr::from_poly_with(poly, |s| self.var_info(s.name()))
    }

    pub(crate) fn nodes(&self, nodes: &[IrNode], ctx: &mut Vec<LoopCtx>) -> PerfExpr {
        let mut total = PerfExpr::zero();
        for n in nodes {
            total += self.node(n, ctx);
        }
        total
    }

    pub(crate) fn node(&self, node: &IrNode, ctx: &mut Vec<LoopCtx>) -> PerfExpr {
        match node {
            IrNode::Block(b) => self.block_cost(b),
            IrNode::Loop(l) => self.loop_cost(l, ctx),
            IrNode::If(i) => self.if_cost(i, ctx),
        }
    }

    /// Cost of a straight-line block: placement completion time plus any
    /// library-call expressions.
    pub(crate) fn block_cost(&self, block: &BlockIr) -> PerfExpr {
        if block.is_empty() {
            return PerfExpr::zero();
        }
        let (completion, _) = memo_place(self.machine, self.opts.place, block);
        let mut cost = PerfExpr::cycles(completion as i64);
        cost += self.call_costs(block);
        cost
    }

    /// Extra cost of `call` operations from the library table.
    fn call_costs(&self, block: &BlockIr) -> PerfExpr {
        let Some(lib) = self.library else {
            return PerfExpr::zero();
        };
        let mut cost = PerfExpr::zero();
        for op in &block.ops {
            if let Some(name) = &op.callee {
                // Scalar actuals are not tracked through the IR; formals
                // stay symbolic, which is the paper's general case.
                cost += lib.call_cost(name, &[]);
            }
        }
        cost
    }

    pub(crate) fn loop_cost(&self, l: &LoopIr, ctx: &mut Vec<LoopCtx>) -> PerfExpr {
        let one_time = self.block_cost(&l.preheader) + self.block_cost(&l.postheader);

        let (count_poly, lb_poly) = self.trip_count(l);

        // Per-iteration cost: for a simple (single-block) body, drop the
        // body plus loop control into the bins repeatedly for steady-state
        // overlap; for compound bodies, aggregate children symbolically and
        // add the control cost.
        ctx.push(LoopCtx {
            var: l.var.clone(),
            lb: lb_poly,
            count: count_poly.clone(),
        });
        let per_iter: PerfExpr = match &l.body[..] {
            [IrNode::Block(b)] if self.opts.steady_probes >= 2 => {
                let per_iter = memo_steady(
                    self.machine,
                    self.opts.place,
                    self.opts.steady_probes,
                    b,
                    &l.control,
                );
                // Library-call expressions are charged per iteration on top
                // of the placed instruction stream.
                PerfExpr::cycles_rational(approx_rational(per_iter)) + self.call_costs(b)
            }
            _ => {
                let body = self.nodes(&l.body, ctx);
                // Compound body: charge the control block standalone.
                let (_, span) = memo_place(self.machine, self.opts.place, &l.control);
                body + PerfExpr::cycles(span as i64)
            }
        };
        let frame = ctx.pop().expect("frame pushed above");
        one_time + self.iterate(per_iter, &l.var, &frame)
    }

    /// Total cost of `count` iterations whose per-iteration cost may
    /// depend on the loop variable (triangular/trapezoidal nests): sums
    /// the polynomial over the index in closed form (Faulhaber) when it
    /// does, otherwise multiplies by the trip count.
    pub(crate) fn iterate(&self, per_iter: PerfExpr, var: &str, frame: &LoopCtx) -> PerfExpr {
        let var_sym = Symbol::interned(var);
        if per_iter.poly().contains_symbol(&var_sym) {
            // Unit-step assumption: lb + count − 1 is the inclusive upper
            // index expression in summation space.
            let ub = &(&frame.lb + &frame.count) - &Poly::one();
            if let Some(summed) =
                presage_symbolic::summation::sum_range(per_iter.poly(), &var_sym, &frame.lb, &ub)
            {
                return self.wrap(summed);
            }
            // No closed form (degree > 4 in the index): fall back to the
            // average-index approximation, an explicit late guess.
            let mid = (&frame.lb + &ub).scale(Rational::new(1, 2));
            if let Ok(avg) = per_iter.poly().subst(&var_sym, &mid) {
                return self.wrap(&avg * &frame.count);
            }
        }
        per_iter.repeat(&self.wrap(frame.count.clone()))
    }

    /// Symbolic trip count `(ub − lb)/step + 1` and the lower bound.
    ///
    /// Bounds written as `max(...)` lower bounds or `min(...)` upper bounds
    /// (produced by unroll tails and tile inner loops) are resolved to the
    /// tightest polynomial candidate: `do i = max(a,b), ub` runs at most
    /// `min_k (ub − arg_k)/step + 1` iterations.
    pub(crate) fn trip_count(&self, l: &LoopIr) -> (Poly, Poly) {
        trip_count_memo(l)
    }

    pub(crate) fn if_cost(&self, i: &IfIr, ctx: &mut Vec<LoopCtx>) -> PerfExpr {
        let cond = self.block_cost(&i.cond_block);
        let then_cost = self.nodes(&i.then_nodes, ctx);
        let else_cost = self.nodes(&i.else_nodes, ctx);
        let (pt, pe) = self.branch_split(&i.cond, &then_cost, &else_cost, ctx);
        cond + pt.mul(&then_cost) + pe.mul(&else_cost)
    }

    /// Chooses the branch weights `(p_then, p_else)` for a conditional:
    /// near-equal concrete branches average without a probability symbol
    /// (§3.3.2), loop-index conditions get inferred iteration splits, and
    /// everything else receives a fresh probability unknown.
    pub(crate) fn branch_split(
        &self,
        cond: &Expr,
        then_cost: &PerfExpr,
        else_cost: &PerfExpr,
        ctx: &[LoopCtx],
    ) -> (PerfExpr, PerfExpr) {
        let half = PerfExpr::cycles_rational(Rational::new(1, 2));
        if self.opts.branch_tolerance > 0.0 {
            if let (Some(t), Some(e)) = (then_cost.concrete_cycles(), else_cost.concrete_cycles()) {
                let (tf, ef) = (t.to_f64(), e.to_f64());
                let scale = tf.abs().max(ef.abs());
                if scale == 0.0 || (tf - ef).abs() / scale <= self.opts.branch_tolerance {
                    return (half.clone(), half);
                }
            }
        }
        if self.opts.infer_loop_index_probs {
            if let Some(p) = self.loop_index_probability(cond, ctx) {
                let pe = self.wrap(&Poly::one() - &p);
                return (self.wrap(p), pe);
            }
        }
        let p = PerfExpr::var(prob_symbol(cond), presage_symbolic::VarInfo::branch_prob());
        let q = PerfExpr::cycles(1) - p.clone();
        (p, q)
    }

    /// For conditions of the form `ivar REL bound` with `ivar` an enclosing
    /// loop index and a polynomial bound, returns the fraction of
    /// iterations taking the then-branch (the paper's
    /// `C(L) = k·C(Bt) + (n−k)·C(Bf)` split, as a probability).
    fn loop_index_probability(&self, cond: &Expr, ctx: &[LoopCtx]) -> Option<Poly> {
        let Expr::Binary { op, lhs, rhs } = cond else {
            return None;
        };
        if !op.is_relational() {
            return None;
        }
        // Normalize to `ivar REL bound`.
        let (var, bound, op) = match (lhs.as_var(), rhs.as_var()) {
            (Some(v), _) if ctx.iter().any(|c| c.var == v) => (v, rhs.as_ref(), *op),
            (_, Some(v)) if ctx.iter().any(|c| c.var == v) => (v, lhs.as_ref(), flip(*op)),
            _ => return None,
        };
        let loop_ctx = ctx.iter().rev().find(|c| c.var == var)?;
        let bound_poly = int_expr_to_poly(bound)?;
        // The bound must be invariant in the loop variable itself.
        if bound_poly.contains_symbol(&Symbol::interned(var)) {
            return None;
        }

        // True-iteration count for step-1 loops over [lb, ub]:
        //   i ≤ k: k − lb + 1     i < k: k − lb
        //   i ≥ k: n − (k − lb)   i > k: n − (k − lb) − 1
        //   i = k: 1              i ≠ k: n − 1
        let n = &loop_ctx.count;
        let k_minus_lb = &bound_poly - &loop_ctx.lb;
        let trues: Poly = match op {
            BinOp::Le => &k_minus_lb + &Poly::one(),
            BinOp::Lt => k_minus_lb,
            BinOp::Ge => n - &k_minus_lb,
            BinOp::Gt => &(n - &k_minus_lb) - &Poly::one(),
            BinOp::Eq => Poly::one(),
            BinOp::Ne => n - &Poly::one(),
            _ => return None,
        };
        // p = trues / n. Laurent division needs a monomial count.
        let (c, m) = n.single_term()?;
        let inv_n = Poly::term(c.recip(), m.pow(-1));
        Some(&trues * &inv_n)
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// The probability symbol `p$<cond>` for a conditional without an inferable
/// split, cached by condition content so the expression is formatted once
/// per distinct condition per thread rather than once per prediction.
fn prob_symbol(cond: &Expr) -> Symbol {
    PROB_SYMS.with(|m| {
        let mut m = m.borrow_mut();
        let mut buf = Vec::with_capacity(32);
        presage_frontend::fold::encode_expr(&mut buf, cond);
        let key = fold128(&buf, presage_frontend::fold::AST_SEED);
        m.entry(key)
            .or_insert_with(|| Symbol::interned(&format!("p${cond}")))
            .clone()
    })
}

/// Appends a copy of `extra`'s operations to `block`, remapping ids.
pub fn append_block(block: &mut BlockIr, extra: &BlockIr) {
    let value_offset = block.values.len() as u32;
    let op_offset = block.ops.len() as u32;
    for def in &extra.values {
        let shifted = match def {
            presage_translate::ValueDef::Op(id) => {
                presage_translate::ValueDef::Op(presage_translate::OpId(id.0 + op_offset))
            }
            other => other.clone(),
        };
        block.values.push(shifted);
    }
    for op in &extra.ops {
        let mut op = op.clone();
        for a in &mut op.args {
            a.0 += value_offset;
        }
        if let Some(r) = &mut op.result {
            r.0 += value_offset;
        }
        for d in &mut op.extra_deps {
            d.0 += op_offset;
        }
        block.ops.push(op);
    }
}

/// Symbolic trip count of a loop, resolving `max`/`min` bound forms the
/// same way [`Aggregator::trip_count`] does (used by the memory model).
pub fn loop_trip_poly(l: &LoopIr) -> Poly {
    trip_count_memo(l).0
}

/// 128-bit content key over the loop header fields the trip count is pure
/// in: the index variable and the `lb`/`ub`/`step` expressions.
fn trip_key(l: &LoopIr) -> u128 {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(l.var.as_bytes());
    buf.push(0xff);
    presage_frontend::fold::encode_expr(&mut buf, &l.lb);
    presage_frontend::fold::encode_expr(&mut buf, &l.ub);
    if let Some(step) = &l.step {
        presage_frontend::fold::encode_expr(&mut buf, step);
    }
    fold128(&buf, presage_frontend::fold::AST_SEED)
}

/// Memoized `(count, lb)` for a loop header (see [`TRIP_MEMO`]).
pub(crate) fn trip_count_memo(l: &LoopIr) -> (Poly, Poly) {
    TRIP_MEMO.with(|m| {
        let key = trip_key(l);
        if let Some(hit) = m.borrow().get(&key) {
            memo::record_l1_hit();
            return hit.clone();
        }
        let value = if let Some(hit) = TRIP_L2.get(&key) {
            memo::record_l2_hit();
            hit
        } else {
            memo::record_miss();
            let value = trip_count_uncached(l);
            TRIP_L2.insert(key, value.clone());
            value
        };
        let mut m = m.borrow_mut();
        if m.len() >= SCHED_MEMO_CAP {
            m.clear();
        }
        m.insert(key, value.clone());
        value
    })
}

/// Symbolic trip count `(ub − lb)/step + 1` and the lower bound, resolving
/// `max(...)` lower / `min(...)` upper bound forms (produced by unroll
/// tails and tile inner loops) to the tightest polynomial candidate.
fn trip_count_uncached(l: &LoopIr) -> (Poly, Poly) {
    let step_const = l.step.as_ref().map(|s| s.as_int()).unwrap_or(Some(1));
    let Some(s) = step_const.filter(|s| *s != 0) else {
        return (
            Poly::var(Symbol::interned(&format!("trip${}", l.var))),
            Poly::one(),
        );
    };
    let lbs = bound_candidates(&l.lb, Intrinsic::Max);
    let ubs = bound_candidates(&l.ub, Intrinsic::Min);
    let mut best: Option<Poly> = None;
    for lbp in &lbs {
        for ubp in &ubs {
            let count = (ubp - lbp).scale(Rational::new(1, s as i128)) + Poly::one();
            best = Some(match best {
                None => count,
                // Prefer a constant bound (the tight tail/tile case),
                // otherwise keep the first polynomial candidate.
                Some(prev) => match (prev.constant_value(), count.constant_value()) {
                    (Some(a), Some(b)) => {
                        if b < a {
                            count
                        } else {
                            Poly::constant(a)
                        }
                    }
                    (None, Some(_)) => count,
                    _ => prev,
                },
            });
        }
    }
    match best {
        Some(count) => {
            let lb = lbs.first().cloned().unwrap_or_else(Poly::one);
            (count, lb)
        }
        None => (
            Poly::var(Symbol::interned(&format!("trip${}", l.var))),
            Poly::one(),
        ),
    }
}

/// Polynomial candidates for a loop bound: the bound itself, or — when it
/// is the given selector intrinsic (`max` for lower bounds, `min` for
/// upper) — each polynomial argument.
fn bound_candidates(e: &Expr, selector: Intrinsic) -> Vec<Poly> {
    if let Expr::Intrinsic { func, args } = e {
        if *func == selector {
            return args.iter().filter_map(int_expr_to_poly).collect();
        }
    }
    int_expr_to_poly(e).into_iter().collect()
}

/// Converts an integer source expression to a polynomial over its scalar
/// variables. Division is only folded for constant divisors (as a rational
/// scale — the model treats trip-count divisions as exact).
pub fn int_expr_to_poly(e: &Expr) -> Option<Poly> {
    match e {
        Expr::IntLit(n) => Some(Poly::from(*n)),
        Expr::Var(name) => Some(Poly::var(Symbol::interned(name))),
        Expr::Unary {
            op: UnOp::Neg,
            operand,
        } => Some(-int_expr_to_poly(operand)?),
        Expr::Binary { op, lhs, rhs } => {
            let l = int_expr_to_poly(lhs)?;
            let r = int_expr_to_poly(rhs)?;
            match op {
                BinOp::Add => Some(&l + &r),
                BinOp::Sub => Some(&l - &r),
                BinOp::Mul => Some(&l * &r),
                BinOp::Div => {
                    let c = r.constant_value()?;
                    if c.is_zero() {
                        None
                    } else {
                        Some(l.scale(c.recip()))
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Approximates an `f64` cycle count as a rational with millicycle
/// resolution (keeps expressions exact downstream).
pub fn approx_rational(x: f64) -> Rational {
    Rational::new((x * 1000.0).round() as i128, 1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_frontend::{parse, sema};
    use presage_machine::machines;
    use presage_translate::translate;

    fn cost_of(src: &str, opts: &AggregateOptions) -> PerfExpr {
        let m = machines::power_like();
        let prog = parse(src).expect("parse");
        let symbols = sema::analyze(&prog.units[0]).expect("sema");
        let ir = translate(&prog.units[0], &symbols, &m).expect("translate");
        aggregate(&ir, &m, None, opts)
    }

    #[test]
    fn straight_line_is_concrete() {
        let c = cost_of(
            "subroutine s(a)\nreal a(4)\na(1) = 1.0\na(2) = 2.0\nend",
            &AggregateOptions::default(),
        );
        assert!(c.is_concrete());
        assert!(c.concrete_cycles().unwrap().to_f64() > 0.0);
    }

    #[test]
    fn single_loop_is_linear_in_n() {
        let c = cost_of(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = a(i) + 1.0\nend do\nend",
            &AggregateOptions::default(),
        );
        let n = Symbol::new("n");
        assert_eq!(c.poly().degree_in(&n), 1);
        // Linear coefficient is the per-iteration cost: positive, modest.
        let per_iter = c
            .poly()
            .as_univariate(&n)
            .last()
            .unwrap()
            .1
            .constant_value()
            .unwrap();
        assert!(per_iter.to_f64() > 0.5 && per_iter.to_f64() < 40.0, "{c}");
    }

    #[test]
    fn nested_loops_quadratic() {
        let c = cost_of(
            "subroutine s(a, n)\nreal a(n,n)\ninteger i, j, n\ndo i = 1, n\ndo j = 1, n\na(i,j) = 0.0\nend do\nend do\nend",
            &AggregateOptions::default(),
        );
        let n = Symbol::new("n");
        assert_eq!(c.poly().degree_in(&n), 2);
    }

    #[test]
    fn triangular_loop_bounds() {
        // do j = i, n inside do i = 1, n: count (n - i + 1) → n²/2 shape.
        let c = cost_of(
            "subroutine s(a, n)\nreal a(n,n)\ninteger i, j, n\ndo i = 1, n\ndo j = i, n\na(i,j) = 0.0\nend do\nend do\nend",
            &AggregateOptions::default(),
        );
        let n = Symbol::new("n");
        assert_eq!(c.poly().degree_in(&n), 2);
        // Leading n² coefficient should be half the inner per-iteration cost.
        let parts = c.poly().as_univariate(&n);
        let lead = parts.last().unwrap();
        assert_eq!(lead.0, 2);
    }

    #[test]
    fn constant_bounds_fold_to_concrete() {
        let c = cost_of(
            "subroutine s(a)\nreal a(100)\ninteger i\ndo i = 1, 100\na(i) = 0.0\nend do\nend",
            &AggregateOptions::default(),
        );
        assert!(c.is_concrete(), "constant-trip loop: {c}");
        let v = c.concrete_cycles().unwrap().to_f64();
        assert!(v > 100.0 && v < 3000.0, "got {v}");
    }

    #[test]
    fn step_divides_trip_count() {
        let base = cost_of(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
            &AggregateOptions::default(),
        );
        let stepped = cost_of(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n, 2\na(i) = 0.0\nend do\nend",
            &AggregateOptions::default(),
        );
        let n = Symbol::new("n");
        let c_base = base
            .poly()
            .as_univariate(&n)
            .last()
            .unwrap()
            .1
            .constant_value()
            .unwrap();
        let c_step = stepped
            .poly()
            .as_univariate(&n)
            .last()
            .unwrap()
            .1
            .constant_value()
            .unwrap();
        let ratio = c_base.to_f64() / c_step.to_f64();
        assert!(
            (ratio - 2.0).abs() < 0.3,
            "step-2 halves the trip count: {ratio}"
        );
    }

    #[test]
    fn unknown_branch_probability_appears() {
        let mut opts = AggregateOptions::default();
        opts.branch_tolerance = 0.0;
        let c = cost_of(
            "subroutine s(a, n, x)
               real a(n), x
               integer i, n
               do i = 1, n
                 if (x .gt. 0.5) then
                   a(i) = a(i) / x
                 else
                   a(i) = 0.0
                 end if
               end do
             end",
            &opts,
        );
        let has_prob = c
            .vars()
            .iter()
            .any(|(_, info)| info.kind == presage_symbolic::VarKind::BranchProb);
        assert!(has_prob, "expected a probability unknown: {c:#}");
    }

    #[test]
    fn loop_index_condition_eliminates_probability() {
        // The paper's example: `if (i .le. k)` inside `do i = 1, n` gives
        // C = k·C(Bt) + (n−k)·C(Bf) — no probability symbol.
        let c = cost_of(
            "subroutine s(a, n, k)
               real a(n)
               integer i, n, k
               do i = 1, n
                 if (i .le. k) then
                   a(i) = a(i) * 2.0 + 1.0
                 else
                   a(i) = 0.0
                 end if
               end do
             end",
            &AggregateOptions::default(),
        );
        let has_prob = c
            .vars()
            .iter()
            .any(|(_, info)| info.kind == presage_symbolic::VarKind::BranchProb);
        assert!(!has_prob, "loop-index probability inferred: {c:#}");
        // k appears linearly: k iterations take the then-branch.
        assert_eq!(c.poly().degree_in(&Symbol::new("k")), 1);
        // No residual 1/n terms: n·(k/n) collapses.
        assert!(!c.poly().has_negative_exponents(), "{c}");
    }

    #[test]
    fn close_branches_simplify_without_probability() {
        let mut opts = AggregateOptions::default();
        opts.branch_tolerance = 0.2;
        let c = cost_of(
            "subroutine s(a, n, x)
               real a(n), x
               integer i, n
               do i = 1, n
                 if (x .gt. 0.5) then
                   a(i) = 1.0
                 else
                   a(i) = 2.0
                 end if
               end do
             end",
            &opts,
        );
        let has_prob = c
            .vars()
            .iter()
            .any(|(_, info)| info.kind == presage_symbolic::VarKind::BranchProb);
        assert!(!has_prob, "close branches averaged: {c:#}");
    }

    #[test]
    fn int_expr_conversion() {
        use presage_frontend::Expr;
        let e = Expr::binary(
            BinOp::Div,
            Expr::binary(BinOp::Sub, Expr::Var("n".into()), Expr::IntLit(1)),
            Expr::IntLit(2),
        );
        let p = int_expr_to_poly(&e).unwrap();
        assert_eq!(p.to_string(), "1/2*n - 1/2");
        let bad = Expr::binary(BinOp::Div, Expr::Var("n".into()), Expr::Var("m".into()));
        assert!(
            int_expr_to_poly(&bad).is_none(),
            "symbolic divisor unsupported"
        );
    }

    #[test]
    fn approx_rational_millicycles() {
        assert_eq!(approx_rational(2.5).to_f64(), 2.5);
        assert_eq!(approx_rational(1.0 / 3.0), Rational::new(333, 1000));
    }

    #[test]
    fn append_block_remaps() {
        use presage_machine::BasicOp;
        use presage_translate::ValueDef;
        let mut a = BlockIr::new();
        let x = a.add_value(ValueDef::External("x".into()));
        a.emit(BasicOp::FAdd, vec![x, x]);
        let mut b = BlockIr::new();
        let y = b.add_value(ValueDef::External("y".into()));
        let t = b.emit(BasicOp::IAdd, vec![y, y]);
        b.emit(BasicOp::ICmp, vec![t, y]);
        append_block(&mut a, &b);
        assert_eq!(a.len(), 3);
        // The appended compare depends on the appended add, not on op 0.
        let deps = a.deps_of(&a.ops[2]);
        assert_eq!(deps, vec![presage_translate::OpId(1)]);
    }
}
