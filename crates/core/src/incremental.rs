//! Incremental update of performance predictions (paper §3.3.1).
//!
//! "The performance prediction framework needs to support incremental
//! update so that cost of maintaining up-to-date performance during the
//! program optimization process is as small as possible. ... each
//! transformation defines an *affected region* of performance based on the
//! structure it changes."
//!
//! A [`CostTree`] caches a performance expression at every structure node.
//! Replacing one subtree re-costs only that subtree (the affected region)
//! and recombines cached expressions along the ancestor path — no other
//! placement work is repeated.

use crate::aggregate::{AggregateOptions, Aggregator, LoopCtx};
use crate::library::LibraryCostTable;
use presage_machine::MachineDesc;
use presage_symbolic::PerfExpr;
use presage_translate::{IrNode, ProgramIr};

/// Counters exposing how much work updates perform.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RecomputeStats {
    /// Structure nodes re-costed from scratch.
    pub nodes_recosted: u64,
    /// Ancestor nodes recombined from cached children.
    pub nodes_recombined: u64,
}

/// What a node contributes besides its children.
#[derive(Clone, Debug)]
enum NodeKind {
    /// Straight-line block (leaf): `cost` is the placement cost.
    Block,
    /// A loop whose body was costed by steady-state re-dropping (leaf).
    SimpleLoop,
    /// A compound loop: `cost = one_time + Σ_iterations (children + control)`
    /// (closed-form summation when children depend on the index).
    Loop {
        one_time: PerfExpr,
        frame: LoopCtx,
        control: PerfExpr,
    },
    /// A conditional: `cost = cond + p_t·Σ then + p_e·Σ else`.
    If {
        cond_cost: PerfExpr,
        then_children: usize,
    },
}

/// One cached node.
#[derive(Clone, Debug)]
struct CostNode {
    ir: IrNode,
    kind: NodeKind,
    children: Vec<CostNode>,
    /// Enclosing loop context at this node (for re-costing in place).
    ctx: Vec<LoopCtx>,
    cost: PerfExpr,
}

/// A cached, incrementally updatable cost model of one subroutine.
///
/// # Examples
///
/// ```
/// use presage_core::incremental::CostTree;
/// use presage_core::aggregate::AggregateOptions;
/// use presage_frontend::{parse, sema};
/// use presage_machine::machines;
/// use presage_translate::translate;
///
/// let m = machines::power_like();
/// let prog = parse(
///     "subroutine s(a, n)
///        real a(n)
///        integer i, n
///        do i = 1, n
///          a(i) = a(i) + 1.0
///        end do
///      end").unwrap();
/// let symbols = sema::analyze(&prog.units[0]).unwrap();
/// let ir = translate(&prog.units[0], &symbols, &m).unwrap();
/// let tree = CostTree::build(&ir, &m, None, AggregateOptions::default());
/// assert!(!tree.total().is_concrete());
/// ```
#[derive(Debug)]
pub struct CostTree {
    machine: MachineDesc,
    library: Option<LibraryCostTable>,
    opts: AggregateOptions,
    roots: Vec<CostNode>,
    total: PerfExpr,
    stats: RecomputeStats,
}

impl CostTree {
    /// Builds the tree with a full aggregation pass.
    pub fn build(
        ir: &ProgramIr,
        machine: &MachineDesc,
        library: Option<&LibraryCostTable>,
        opts: AggregateOptions,
    ) -> CostTree {
        let mut tree = CostTree {
            machine: machine.clone(),
            library: library.cloned(),
            opts,
            roots: Vec::new(),
            total: PerfExpr::zero(),
            stats: RecomputeStats::default(),
        };
        let mut ctx: Vec<LoopCtx> = Vec::new();
        tree.roots = ir
            .root
            .iter()
            .map(|n| tree.build_node(n, &mut ctx))
            .collect();
        tree.total = tree.roots.iter().map(|n| n.cost.clone()).sum();
        tree
    }

    fn aggregator(&self) -> Aggregator<'_> {
        Aggregator {
            machine: &self.machine,
            library: self.library.as_ref(),
            opts: &self.opts,
        }
    }

    fn build_node(&mut self, node: &IrNode, ctx: &mut Vec<LoopCtx>) -> CostNode {
        self.stats.nodes_recosted += 1;
        let agg = Aggregator {
            machine: &self.machine,
            library: self.library.as_ref(),
            opts: &self.opts,
        };
        match node {
            IrNode::Block(b) => CostNode {
                ir: node.clone(),
                kind: NodeKind::Block,
                children: Vec::new(),
                ctx: ctx.clone(),
                cost: agg.block_cost(b),
            },
            IrNode::Loop(l) => {
                let one_time = agg.block_cost(&l.preheader) + agg.block_cost(&l.postheader);
                let (count_poly, lb_poly) = agg.trip_count(l);
                ctx.push(LoopCtx {
                    var: l.var.clone(),
                    lb: lb_poly,
                    count: count_poly,
                });
                let simple =
                    matches!(&l.body[..], [IrNode::Block(_)]) && self.opts.steady_probes >= 2;
                let result = if simple {
                    // Leaf: the whole loop re-costs as one unit.
                    let mut inner_ctx = ctx.clone();
                    inner_ctx.pop();
                    let cost = agg.loop_cost(l, &mut inner_ctx);
                    CostNode {
                        ir: node.clone(),
                        kind: NodeKind::SimpleLoop,
                        children: Vec::new(),
                        ctx: inner_ctx,
                        cost,
                    }
                } else {
                    let control = {
                        let cb =
                            crate::tetris::place_block(&self.machine, &l.control, self.opts.place);
                        PerfExpr::cycles(cb.span() as i64)
                    };
                    let children: Vec<CostNode> =
                        l.body.iter().map(|c| self.build_node(c, ctx)).collect();
                    let body: PerfExpr = children.iter().map(|c| c.cost.clone()).sum();
                    let frame = ctx.last().expect("frame pushed above").clone();
                    let agg2 = Aggregator {
                        machine: &self.machine,
                        library: self.library.as_ref(),
                        opts: &self.opts,
                    };
                    let cost =
                        one_time.clone() + agg2.iterate(body + control.clone(), &l.var, &frame);
                    let mut saved_ctx = ctx.clone();
                    saved_ctx.pop();
                    CostNode {
                        ir: node.clone(),
                        kind: NodeKind::Loop {
                            one_time,
                            frame,
                            control,
                        },
                        children,
                        ctx: saved_ctx,
                        cost,
                    }
                };
                ctx.pop();
                result
            }
            IrNode::If(i) => {
                let cond_cost = agg.block_cost(&i.cond_block);
                let children: Vec<CostNode> = i
                    .then_nodes
                    .iter()
                    .chain(&i.else_nodes)
                    .map(|c| self.build_node(c, ctx))
                    .collect();
                let then_children = i.then_nodes.len();
                let mut n = CostNode {
                    ir: node.clone(),
                    kind: NodeKind::If {
                        cond_cost,
                        then_children,
                    },
                    children,
                    ctx: ctx.clone(),
                    cost: PerfExpr::zero(),
                };
                n.cost = self.combine_if(&n);
                n
            }
        }
    }

    fn combine_if(&self, node: &CostNode) -> PerfExpr {
        let NodeKind::If {
            cond_cost,
            then_children,
        } = &node.kind
        else {
            unreachable!("combine_if on non-if node");
        };
        let IrNode::If(i) = &node.ir else {
            unreachable!("if node without if ir");
        };
        let then_cost: PerfExpr = node.children[..*then_children]
            .iter()
            .map(|c| c.cost.clone())
            .sum();
        let else_cost: PerfExpr = node.children[*then_children..]
            .iter()
            .map(|c| c.cost.clone())
            .sum();
        let agg = self.aggregator();
        let (pt, pe) = agg.branch_split(&i.cond, &then_cost, &else_cost, &node.ctx);
        cond_cost.clone() + pt.mul(&then_cost) + pe.mul(&else_cost)
    }

    /// The cached total cost.
    pub fn total(&self) -> &PerfExpr {
        &self.total
    }

    /// Work counters.
    pub fn stats(&self) -> RecomputeStats {
        self.stats
    }

    /// Number of root nodes.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Number of children of the node at `path` (empty path = roots).
    pub fn child_count(&self, path: &[usize]) -> Option<usize> {
        if path.is_empty() {
            return Some(self.roots.len());
        }
        self.node_at(path).map(|n| n.children.len())
    }

    fn node_at(&self, path: &[usize]) -> Option<&CostNode> {
        let mut node = self.roots.get(*path.first()?)?;
        for &idx in &path[1..] {
            node = node.children.get(idx)?;
        }
        Some(node)
    }

    /// Replaces the subtree at `path` with new IR, re-costing only the
    /// affected region and recombining cached ancestors.
    ///
    /// Returns the new total, or `None` if the path is invalid.
    pub fn replace(&mut self, path: &[usize], new_ir: IrNode) -> Option<&PerfExpr> {
        if path.is_empty() {
            return None;
        }
        // Rebuild the replaced node in its saved loop context.
        let mut saved_ctx = self.node_at(path)?.ctx.clone();
        let new_node = self.build_node(&new_ir, &mut saved_ctx);

        // Install and recombine ancestors bottom-up.
        install(&mut self.roots, path, new_node)?;
        for depth in (1..path.len()).rev() {
            let prefix = &path[..depth];
            let recombined = {
                let node = self.node_at(prefix)?;
                match &node.kind {
                    NodeKind::Block | NodeKind::SimpleLoop => node.cost.clone(),
                    NodeKind::Loop {
                        one_time,
                        frame,
                        control,
                    } => {
                        let body: PerfExpr = node.children.iter().map(|c| c.cost.clone()).sum();
                        let IrNode::Loop(l) = &node.ir else {
                            unreachable!("loop node without loop ir")
                        };
                        one_time.clone()
                            + self
                                .aggregator()
                                .iterate(body + control.clone(), &l.var, frame)
                    }
                    NodeKind::If { .. } => self.combine_if(node),
                }
            };
            set_cost(&mut self.roots, prefix, recombined);
            self.stats.nodes_recombined += 1;
        }
        self.total = self.roots.iter().map(|n| n.cost.clone()).sum();
        Some(&self.total)
    }
}

fn install(roots: &mut [CostNode], path: &[usize], new_node: CostNode) -> Option<()> {
    let (first, rest) = path.split_first()?;
    let mut node = roots.get_mut(*first)?;
    if rest.is_empty() {
        *node = new_node;
        return Some(());
    }
    for (k, &idx) in rest.iter().enumerate() {
        if k == rest.len() - 1 {
            *node.children.get_mut(idx)? = new_node;
            return Some(());
        }
        node = node.children.get_mut(idx)?;
    }
    None
}

fn set_cost(roots: &mut [CostNode], path: &[usize], cost: PerfExpr) {
    let (first, rest) = match path.split_first() {
        Some(x) => x,
        None => return,
    };
    let mut node = match roots.get_mut(*first) {
        Some(n) => n,
        None => return,
    };
    for &idx in rest {
        node = match node.children.get_mut(idx) {
            Some(n) => n,
            None => return,
        };
    }
    node.cost = cost;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate;
    use presage_frontend::{parse, sema};
    use presage_machine::machines;
    use presage_translate::translate;

    fn ir_of(src: &str) -> (ProgramIr, MachineDesc) {
        let m = machines::power_like();
        let prog = parse(src).expect("parse");
        let symbols = sema::analyze(&prog.units[0]).expect("sema");
        let ir = translate(&prog.units[0], &symbols, &m).expect("translate");
        (ir, m)
    }

    const NESTED: &str = "subroutine s(a, b, n, k)
        real a(n,n), b(n,n)
        integer i, j, n, k
        do i = 1, n
          a(i,1) = 0.0
          do j = 1, n
            a(i,j) = a(i,j) + b(i,j)
          end do
        end do
      end";

    #[test]
    fn tree_total_matches_full_aggregation() {
        for src in [
            NESTED,
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
            "subroutine s(a, n, k)
               real a(n)
               integer i, n, k
               do i = 1, n
                 if (i .le. k) then
                   a(i) = a(i) * 2.0 + 1.0
                 else
                   a(i) = 0.0
                 end if
               end do
             end",
        ] {
            let (ir, m) = ir_of(src);
            let opts = AggregateOptions::default();
            let full = aggregate(&ir, &m, None, &opts);
            let tree = CostTree::build(&ir, &m, None, opts);
            assert_eq!(tree.total(), &full, "mismatch for:\n{src}");
        }
    }

    #[test]
    fn replace_inner_loop_updates_total() {
        let (ir, m) = ir_of(NESTED);
        let opts = AggregateOptions::default();
        let mut tree = CostTree::build(&ir, &m, None, opts.clone());
        let before = tree.total().clone();

        // Replace the inner loop (outer loop child 1) with a cheaper body.
        let (cheap_ir, _) = ir_of(
            "subroutine s(a, b, n, k)
               real a(n,n), b(n,n)
               integer i, j, n, k
               do j = 1, n
                 a(1,j) = 0.0
               end do
             end",
        );
        let new_inner = cheap_ir.root[0].clone();
        let after = tree
            .replace(&[0, 1], new_inner)
            .expect("valid path")
            .clone();
        assert_ne!(before, after);

        // The incremental total must equal a from-scratch aggregation of
        // the equivalent program.
        let (equiv_ir, _) = ir_of(
            "subroutine s(a, b, n, k)
               real a(n,n), b(n,n)
               integer i, j, n, k
               do i = 1, n
                 a(i,1) = 0.0
                 do j = 1, n
                   a(1,j) = 0.0
                 end do
               end do
             end",
        );
        let full = aggregate(&equiv_ir, &m, None, &opts);
        assert_eq!(&after, &full);
    }

    #[test]
    fn replace_recosts_only_affected_region() {
        let (ir, m) = ir_of(NESTED);
        let mut tree = CostTree::build(&ir, &m, None, AggregateOptions::default());
        let built = tree.stats().nodes_recosted;

        let (cheap_ir, _) = ir_of(
            "subroutine s(a, n)\nreal a(n)\ninteger j, n\ndo j = 1, n\na(j) = 0.0\nend do\nend",
        );
        tree.replace(&[0, 1], cheap_ir.root[0].clone());
        let after = tree.stats();
        assert_eq!(
            after.nodes_recosted - built,
            1,
            "only the replaced simple loop re-costed"
        );
        assert!(after.nodes_recombined >= 1, "outer loop recombined");
    }

    #[test]
    fn invalid_path_rejected() {
        let (ir, m) = ir_of(NESTED);
        let mut tree = CostTree::build(&ir, &m, None, AggregateOptions::default());
        assert!(tree
            .replace(&[], IrNode::Block(Default::default()))
            .is_none());
        assert!(tree
            .replace(&[9, 9], IrNode::Block(Default::default()))
            .is_none());
    }

    #[test]
    fn child_counts() {
        let (ir, m) = ir_of(NESTED);
        let tree = CostTree::build(&ir, &m, None, AggregateOptions::default());
        assert_eq!(tree.root_count(), 1);
        assert_eq!(tree.child_count(&[]), Some(1));
        // Outer loop children: straight-line block + inner simple loop.
        assert_eq!(tree.child_count(&[0]), Some(2));
    }
}
