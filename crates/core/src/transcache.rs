//! Memoized instruction translation keyed by canonical AST hash.
//!
//! After the hash-consed symbolic engine and the scheduling memo, roughly
//! half of a `predict_source` round is sema + translation + back-end
//! imitation — work that is a pure function of `(program, machine)` and
//! that the restructuring workload (§3.2: "call repeatedly during
//! restructuring") redoes for every repeated program shape. This cache
//! computes the paper's Figure 6 two-level translation once per canonical
//! program and serves every later request from the table, the same way
//! instruction-decomposition tools precompute their mapping tables
//! instead of re-deriving them per query.
//!
//! The key is the span-insensitive structural hash of the subroutine's
//! AST ([`presage_frontend::fold::subroutine_hash`] family) mixed with
//! the machine name, so:
//!
//! - re-parsed or re-emitted copies of the same program hit (the hash
//!   ignores spans and formatting);
//! - the same program on different machines misses (translation imitates
//!   machine-specific back-end behavior), and one shared cache is sound
//!   across all target machines simultaneously;
//! - there is no invalidation story to get wrong: keys are content
//!   hashes and values are immutable [`Arc<ProgramIr>`]s. Entries carry
//!   the epoch generation of their last use, so a long-lived server can
//!   bound the table with [`TranslationCache::evict_older_than`] between
//!   job waves; eviction only drops the table's reference — in-flight
//!   holders keep their `Arc`, and a re-translated program simply
//!   re-interns its blocks under fresh (never-reused) ids.
//!
//! The cached value already carries interned block ids
//! ([`presage_translate::intern`]), so downstream scheduling-memo lookups
//! on a cache hit are O(1) id folds as well.

use crate::predictor::PredictError;
use presage_frontend::fold::{encode_str, encode_subroutine, fold128, AST_SEED};
use presage_frontend::{sema, Subroutine};
use presage_machine::MachineDesc;
use presage_translate::{translate, ProgramIr};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independent lock shards. Keys are uniformly mixed 128-bit
/// folds, so the low bits index shards evenly; 16 shards keep
/// [`crate::predictor::Predictor::predict_batch`] workers from
/// serializing on one mutex while staying small enough to initialize
/// cheaply.
const SHARDS: usize = 16;

/// A cached translation and the epoch generation of its last touch.
type CachedIr = (Arc<ProgramIr>, u64);

/// A thread-safe memo table from canonical `(machine, AST)` identity to
/// the translated program.
///
/// Interior mutability keeps one instance shareable (via [`Arc`]) across
/// every [`crate::predictor::Predictor`] of a restructuring session,
/// across the parallel A* candidate-evaluation workers, and across
/// [`crate::predictor::Predictor::predict_batch`] workers. The table is
/// split into [`SHARDS`] independently locked shards selected by the low
/// key bits, so concurrent lookups for different programs rarely touch
/// the same mutex.
#[derive(Debug)]
pub struct TranslationCache {
    /// Value: translation plus the epoch generation of its last hit or
    /// insert (drives [`TranslationCache::evict_older_than`]).
    shards: [Mutex<HashMap<u128, CachedIr>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for TranslationCache {
    fn default() -> TranslationCache {
        TranslationCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl TranslationCache {
    /// An empty cache.
    pub fn new() -> TranslationCache {
        TranslationCache::default()
    }

    /// The canonical cache key: machine name + span-insensitive AST fold,
    /// collapsed through [`fold128`] with the fixed [`AST_SEED`] so every
    /// thread and every cache instance derives the same key for the same
    /// program.
    pub fn key(machine: &MachineDesc, sub: &Subroutine) -> u128 {
        let mut buf = Vec::with_capacity(256);
        encode_str(&mut buf, machine.name());
        encode_subroutine(&mut buf, sub);
        fold128(&buf, AST_SEED)
    }

    /// Translates `sub` for `machine`, serving a memoized [`ProgramIr`]
    /// when one exists.
    ///
    /// Sema and translation run outside the table lock, so concurrent
    /// workers serialize only on the lookup and the final insert; two
    /// threads racing on the same miss both translate, and the loser's
    /// identical result is dropped. Failures are not cached — they are
    /// deterministic, rare, and carry per-call diagnostics.
    ///
    /// # Errors
    ///
    /// Propagates semantic-analysis and translation errors.
    pub fn translated(
        &self,
        sub: &Subroutine,
        machine: &MachineDesc,
    ) -> Result<Arc<ProgramIr>, PredictError> {
        let key = Self::key(machine, sub);
        let shard = &self.shards[key as usize % SHARDS];
        let gen = presage_symbolic::epoch::current();
        if let Some(entry) = shard
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_mut(&key)
        {
            // Re-stamp on hit so translations in active use survive
            // generation-based eviction.
            entry.1 = entry.1.max(gen);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry.0.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let symbols = sema::analyze(sub)?;
        let ir = Arc::new(translate(sub, &symbols, machine)?);
        shard
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key)
            .or_insert_with(|| (ir.clone(), gen));
        Ok(ir)
    }

    /// Drops entries whose generation is strictly below `bound` (as
    /// reported by `presage_symbolic::epoch::advance`), returning how
    /// many were evicted. The server calls this between job waves to
    /// bound the cache under millions of distinct programs; in-flight
    /// holders of an evicted translation keep their [`Arc`].
    pub fn evict_older_than(&self, bound: u64) -> usize {
        if bound == 0 {
            return 0;
        }
        let mut evicted = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            let before = shard.len();
            shard.retain(|_, (_, gen)| *gen >= bound);
            evicted += before - shard.len();
        }
        evicted
    }

    /// Number of translations served from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to translate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct `(machine, program)` translations memoized.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Returns `true` if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all memoized translations and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_frontend::parse;
    use presage_machine::machines;

    const SRC: &str = "subroutine s(a, n)
        real a(n)
        integer i, n
        do i = 1, n
          a(i) = a(i) * 2.0 + 1.0
        end do
      end";

    #[test]
    fn second_lookup_hits_and_matches() {
        let cache = TranslationCache::new();
        let m = machines::power_like();
        let sub = parse(SRC).unwrap().units.remove(0);
        let first = cache.translated(&sub, &m).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache.translated(&sub, &m).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(
            Arc::ptr_eq(&first, &second),
            "hit serves the same translation"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reemitted_source_hits() {
        let cache = TranslationCache::new();
        let m = machines::power_like();
        let sub = parse(SRC).unwrap().units.remove(0);
        cache.translated(&sub, &m).unwrap();
        // Re-emission changes layout and spans, not structure.
        let reparsed = parse(&sub.to_string()).unwrap().units.remove(0);
        cache.translated(&reparsed, &m).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn machines_do_not_alias() {
        let cache = TranslationCache::new();
        let sub = parse(SRC).unwrap().units.remove(0);
        let a = cache.translated(&sub, &machines::power_like()).unwrap();
        let b = cache.translated(&sub, &machines::risc1()).unwrap();
        assert_eq!(cache.misses(), 2, "distinct machines are distinct entries");
        assert_eq!(cache.len(), 2);
        // risc1 has no FMA: the translations genuinely differ.
        assert_ne!(a.as_ref(), b.as_ref());
    }

    #[test]
    fn sema_errors_propagate_uncached() {
        let cache = TranslationCache::new();
        let m = machines::power_like();
        // `a` used as an array but declared scalar.
        let sub = parse("subroutine s(a)\nreal a\na(1) = 0.0\nend")
            .unwrap()
            .units
            .remove(0);
        assert!(cache.translated(&sub, &m).is_err());
        assert!(cache.is_empty(), "failures are not cached");
    }

    #[test]
    fn clear_resets() {
        let cache = TranslationCache::new();
        let m = machines::power_like();
        let sub = parse(SRC).unwrap().units.remove(0);
        cache.translated(&sub, &m).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }
}
