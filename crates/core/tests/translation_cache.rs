//! Differential proof for the translation cache: the cached path must be
//! observationally identical to the uncached reference path — the same
//! `ProgramIr` and the same symbolic `PerfExpr`s — on every machine
//! description in the suite. The uncached `Predictor` (no
//! `with_translation_cache`) is the oracle: it re-runs sema + translation
//! on every call, exactly as the seed implementation did.

use presage_core::{Predictor, TranslationCache};
use presage_frontend::{parse, sema};
use presage_machine::machines;
use presage_translate::translate;
use std::sync::Arc;

const KERNELS: &[&str] = &[
    // daxpy: the paper's running example.
    "subroutine daxpy(y, x, a, n)
       real y(n), x(n), a
       integer i, n
       do i = 1, n
         y(i) = y(i) + a * x(i)
       end do
     end",
    // matmul: a depth-3 nest with an inner reduction.
    "subroutine mm(a, b, c, n)
       real a(n,n), b(n,n), c(n,n)
       integer i, j, k, n
       do i = 1, n
         do j = 1, n
           do k = 1, n
             c(i,j) = c(i,j) + a(i,k) * b(k,j)
           end do
         end do
       end do
     end",
    // jacobi-like stencil: conditional-free but multi-reference.
    "subroutine relax(a, b, n)
       real a(n), b(n)
       integer i, n
       do i = 2, n - 1
         b(i) = (a(i - 1) + a(i + 1)) * 0.5
       end do
     end",
];

/// The tentpole's correctness contract: on all four machines, the cached
/// predictor's output — both the translated IR and the symbolic cost —
/// is bit-for-bit the uncached oracle's, on cold and warm lookups alike.
#[test]
fn cached_path_matches_uncached_oracle_on_all_machines() {
    let cache = Arc::new(TranslationCache::new());
    let mut checked_machines = 0;
    for machine in machines::all() {
        let oracle = Predictor::new(machine.clone());
        let cached = Predictor::new(machine.clone()).with_translation_cache(cache.clone());
        for src in KERNELS {
            let want = oracle.predict_source(src).expect("oracle predicts");
            let cold = cached
                .predict_source(src)
                .expect("cold cached path predicts");
            let warm = cached
                .predict_source(src)
                .expect("warm cached path predicts");
            for (w, (c, h)) in want.iter().zip(cold.iter().zip(&warm)) {
                assert_eq!(w.ir, c.ir, "cold IR diverges on {}", machine.name());
                assert_eq!(w.ir, h.ir, "warm IR diverges on {}", machine.name());
                assert_eq!(w.total, c.total, "cold cost diverges on {}", machine.name());
                assert_eq!(w.total, h.total, "warm cost diverges on {}", machine.name());
                assert_eq!(w.compute, c.compute);
                assert_eq!(w.compute, h.compute);
            }
            // The raw translation pipeline agrees with the cache-served IR
            // as well (the Predictor is not masking a divergence).
            let sub = &parse(src).unwrap().units[0];
            let symbols = sema::analyze(sub).unwrap();
            let fresh = translate(sub, &symbols, &machine).unwrap();
            let served = cache.translated(sub, &machine).unwrap();
            assert_eq!(
                &fresh,
                served.as_ref(),
                "raw IR diverges on {}",
                machine.name()
            );
        }
        checked_machines += 1;
    }
    assert_eq!(
        checked_machines, 4,
        "the differential proof must cover all four machines"
    );
}

#[test]
fn warmed_cache_serves_every_repeat_from_the_table() {
    let cache = Arc::new(TranslationCache::new());
    let predictor = Predictor::new(machines::wide8()).with_translation_cache(cache.clone());
    for src in KERNELS {
        predictor.predict_source(src).unwrap();
    }
    let misses_after_warmup = cache.misses();
    assert_eq!(misses_after_warmup, KERNELS.len() as u64);
    assert_eq!(cache.hits(), 0);
    for _ in 0..3 {
        for src in KERNELS {
            predictor.predict_source(src).unwrap();
        }
    }
    assert_eq!(
        cache.misses(),
        misses_after_warmup,
        "warm rounds must not re-translate"
    );
    assert_eq!(cache.hits(), 3 * KERNELS.len() as u64);
}

#[test]
fn one_cache_is_sound_across_machines() {
    // One shared table serves all four machines at once: entries never
    // alias (the machine name is part of the key) and nothing is evicted,
    // so warming each machine once serves every later lookup.
    let cache = Arc::new(TranslationCache::new());
    let predictors: Vec<Predictor> = machines::all()
        .into_iter()
        .map(|m| Predictor::new(m).with_translation_cache(cache.clone()))
        .collect();
    for p in &predictors {
        for src in KERNELS {
            p.predict_source(src).unwrap();
        }
    }
    assert_eq!(
        cache.len(),
        4 * KERNELS.len(),
        "per-machine entries must not alias"
    );
    assert_eq!(cache.misses(), (4 * KERNELS.len()) as u64);
    let results: Vec<_> = predictors
        .iter()
        .map(|p| p.predict_source(KERNELS[0]).unwrap().remove(0))
        .collect();
    assert_eq!(
        cache.misses(),
        (4 * KERNELS.len()) as u64,
        "second pass is all hits"
    );
    // Translation genuinely depends on the machine: at least the scalar
    // risc1 and the 8-wide FMA machine must disagree.
    assert_ne!(
        results[1].ir, results[3].ir,
        "risc1 and wide8 translations should differ"
    );
}
