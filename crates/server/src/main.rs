//! `presage-server` — the JSON-lines prediction daemon.
//!
//! ```text
//! presage-server [--workers N] [--wave N] [--advance-every N] [--listen ADDR]
//! ```
//!
//! Without `--listen`, serves one request stream on stdin/stdout (the
//! mode `scripts/ci.sh --server-only` and the perfsuite soak drive).
//! With `--listen HOST:PORT`, accepts TCP connections and serves them
//! sequentially, sharing one translation cache — and one reclamation
//! epoch timeline — across connections; each connection is its own
//! JSON-lines stream ended by the client's shutdown.

use presage_server::{Server, ServerConfig};
use std::io::{BufReader, Write};
use std::net::TcpListener;

fn usage() -> ! {
    eprintln!("usage: presage-server [--workers N] [--wave N] [--advance-every N] [--listen ADDR]");
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig::default();
    let mut listen: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a numeric argument");
                usage()
            })
        };
        match arg.as_str() {
            "--workers" => config.workers = num("--workers").max(1),
            "--wave" => config.wave_size = num("--wave").max(1),
            "--advance-every" => config.advance_every = num("--advance-every"),
            "--listen" => listen = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }

    let mut server = Server::new(config);
    let result = match listen {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            server.run(stdin.lock(), &mut stdout.lock())
        }
        Some(addr) => serve_tcp(&mut server, &addr),
    };
    match result {
        Ok(stats) => {
            eprintln!(
                "presage-server: {} jobs ({} ok, {} failed), {} waves, {} advances, p50 {}us p99 {}us",
                stats.jobs,
                stats.ok,
                stats.failed,
                stats.waves,
                stats.advances,
                stats.latency.p50_us,
                stats.latency.p99_us,
            );
        }
        Err(e) => {
            eprintln!("presage-server: {e}");
            std::process::exit(1);
        }
    }
}

/// Accepts connections forever, serving each as one JSON-lines stream.
/// Only a bind failure is fatal: a connection that dies between accept
/// and setup (reset mid-handshake, dead socket on `peer_addr` or
/// `try_clone`) is logged and skipped, so one bad client can never take
/// the daemon down. Under normal operation this never returns.
fn serve_tcp(server: &mut Server, addr: &str) -> std::io::Result<presage_server::ServerStats> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("presage-server: listening on {addr}");
    let mut last = presage_server::ServerStats::default();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("presage-server: accept failed: {e}");
                continue;
            }
        };
        let peer = match stream.peer_addr() {
            Ok(p) => p.to_string(),
            Err(_) => "<unknown peer>".to_string(),
        };
        let reader = match stream.try_clone() {
            Ok(clone) => BufReader::new(clone),
            Err(e) => {
                eprintln!("presage-server: {peer}: cannot clone stream: {e}");
                continue;
            }
        };
        let mut writer = stream;
        match server.run(reader, &mut writer) {
            Ok(stats) => {
                eprintln!(
                    "presage-server: {peer} closed after {} jobs ({} ok)",
                    stats.jobs, stats.ok
                );
                last = stats;
            }
            Err(e) => eprintln!("presage-server: {peer}: {e}"),
        }
        let _ = writer.flush();
    }
    Ok(last)
}
