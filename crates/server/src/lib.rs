//! A JSON-lines prediction daemon over the batch prediction engine.
//!
//! The paper's workload is a restructurer calling the predictor
//! "repeatedly during restructuring" (§3.2). This crate packages that
//! workload as a long-lived process: clients stream `(machine, source)`
//! jobs as JSON objects, one per line, and receive one response line per
//! job — the symbolic cost expression of every subroutine, or a typed
//! error. Jobs are grouped into *waves* and multiplexed onto
//! [`Predictor::predict_batch`]'s work-stealing workers, so a wave of
//! restructuring candidates shares the translation cache, the global
//! polynomial arena, and the two-level memo tables.
//!
//! What makes a *long-lived* server possible at all is the epoch
//! reclamation underneath (`presage_symbolic::epoch`): between waves the
//! server advances the epoch, which reclaims retired polynomial arena
//! slots and translation-arena blocks and wipes the id-keyed memo
//! tables, then evicts translation-cache entries whose generation fell
//! behind. Footprint is therefore bounded by the working set of a few
//! recent waves, not by the total number of distinct programs ever seen
//! — the unbounded-growth bug the epoch layer exists to fix.
//!
//! # Protocol
//!
//! Request (one line):
//!
//! ```json
//! {"id": 7, "machine": "power-like", "source": "subroutine s(...)..."}
//! ```
//!
//! - `machine` — a built-in machine name ([`machines::by_name`]) or one
//!   registered with [`Server::with_machine`];
//! - `source` — mini-Fortran source text (may contain `\n` escapes);
//! - `id` — optional, echoed verbatim in the response.
//!
//! Response (one line per request, in request order):
//!
//! ```json
//! {"id":7,"ok":true,"us":412,"predictions":[{"name":"s","cost":"4 + 11*n","concrete":false}]}
//! {"id":8,"ok":false,"kind":"machine","error":"unknown machine `vax`"}
//! ```
//!
//! When the job's machine declares a `cache` section, each prediction
//! additionally carries `"compute"` (the instruction-stream cost alone)
//! and a `"memory"` object — `{"cycles": ..., "lines": ..., "exact":
//! bool}` from the §2.3 cache-line access model — and `"cost"` is their
//! total. Perfect-cache machines (no `cache` section) are bit-identical
//! to the pre-cache protocol.
//!
//! After EOF the server writes one final `{"stats": ...}` line with
//! latency percentiles and cache/memo/arena telemetry, then returns the
//! same [`ServerStats`] to the caller.

use presage_core::batch::default_workers;
use presage_core::predictor::{PredictError, Predictor, PredictorOptions};
use presage_core::transcache::TranslationCache;
use presage_machine::json::Json;
use presage_machine::{machines, MachineDesc, MachineWarning};
use presage_symbolic::memo::MemoStats;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Instant;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads per wave (see
    /// [`presage_core::batch::predict_batch`]); 1 runs waves inline.
    pub workers: usize,
    /// Maximum jobs per wave. Responses for a wave are written together,
    /// so this bounds both batching gain and per-request latency.
    pub wave_size: usize,
    /// Advance the reclamation epoch every this many waves (0 disables —
    /// footprint then grows with the distinct-program count, which is
    /// only safe for short-lived runs).
    pub advance_every: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: default_workers(),
            wave_size: 64,
            advance_every: 1,
        }
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
struct Job {
    /// Echoed back verbatim ([`Json::Null`] when absent).
    id: Json,
    machine: String,
    source: String,
}

/// Why a request failed before (or during) prediction. The tag appears
/// as the `kind` member of error responses so clients can distinguish
/// their bugs (`parse`, `machine`) from program errors (`frontend`,
/// `translate`) and server bugs (`internal`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ErrorKind {
    Parse,
    Machine,
    Frontend,
    Translate,
    Internal,
}

impl ErrorKind {
    fn tag(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Machine => "machine",
            ErrorKind::Frontend => "frontend",
            ErrorKind::Translate => "translate",
            ErrorKind::Internal => "internal",
        }
    }

    fn of(err: &PredictError) -> ErrorKind {
        match err {
            PredictError::Frontend(_) => ErrorKind::Frontend,
            PredictError::Translate(_) => ErrorKind::Translate,
            PredictError::Internal(_) => ErrorKind::Internal,
        }
    }
}

/// Latency percentiles over every completed request, in microseconds.
/// A request's latency runs from the moment its line was read to the
/// moment its response line was formatted (its whole wave included).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst request.
    pub max_us: u64,
}

impl LatencySummary {
    fn from_sorted(sorted_us: &[u64]) -> LatencySummary {
        let pick = |p: usize| {
            if sorted_us.is_empty() {
                0
            } else {
                sorted_us[(sorted_us.len() - 1) * p / 100]
            }
        };
        LatencySummary {
            p50_us: pick(50),
            p90_us: pick(90),
            p99_us: pick(99),
            max_us: sorted_us.last().copied().unwrap_or(0),
        }
    }
}

/// End-of-stream telemetry, also emitted as the final `{"stats": ...}`
/// response line.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Request lines consumed (including malformed ones).
    pub jobs: u64,
    /// Requests answered `ok:true`.
    pub ok: u64,
    /// Requests answered `ok:false`.
    pub failed: u64,
    /// Waves dispatched.
    pub waves: u64,
    /// Epoch advances performed between waves.
    pub advances: u64,
    /// Per-request latency percentiles.
    pub latency: LatencySummary,
    /// Translation-cache hits over the whole run.
    pub translation_hits: u64,
    /// Translation-cache misses over the whole run.
    pub translation_misses: u64,
    /// Translation-cache entries evicted by generation between waves.
    pub translations_evicted: u64,
    /// Two-level memo telemetry summed over every wave's workers.
    pub memo: MemoStats,
    /// Polynomial-arena slots reclaimed by this server's advances.
    pub polys_reclaimed: u64,
    /// Translation-arena blocks reclaimed by this server's advances.
    pub blocks_reclaimed: u64,
    /// Scheduling-L2 entries wiped by this server's advances.
    pub sched_entries_cleared: u64,
    /// Block-bound-L2 entries wiped by this server's advances.
    pub bound_entries_cleared: u64,
    /// Non-fatal issues with registered machine descriptions, as
    /// `(machine name, warning)` — e.g. a cache section whose declared
    /// TLB fields are parsed but never charged.
    pub machine_warnings: Vec<(String, MachineWarning)>,
}

impl ServerStats {
    /// The stats line payload.
    pub fn to_json(&self) -> Json {
        let num = |n: u64| Json::Num(n as f64);
        Json::Obj(vec![(
            "stats".into(),
            Json::Obj(vec![
                ("jobs".into(), num(self.jobs)),
                ("ok".into(), num(self.ok)),
                ("failed".into(), num(self.failed)),
                ("waves".into(), num(self.waves)),
                ("advances".into(), num(self.advances)),
                (
                    "latency_us".into(),
                    Json::Obj(vec![
                        ("p50".into(), num(self.latency.p50_us)),
                        ("p90".into(), num(self.latency.p90_us)),
                        ("p99".into(), num(self.latency.p99_us)),
                        ("max".into(), num(self.latency.max_us)),
                    ]),
                ),
                (
                    "translation".into(),
                    Json::Obj(vec![
                        ("hits".into(), num(self.translation_hits)),
                        ("misses".into(), num(self.translation_misses)),
                        ("evicted".into(), num(self.translations_evicted)),
                    ]),
                ),
                (
                    "memo".into(),
                    Json::Obj(vec![
                        ("l1_hits".into(), num(self.memo.l1_hits)),
                        ("l2_hits".into(), num(self.memo.l2_hits)),
                        ("misses".into(), num(self.memo.misses)),
                    ]),
                ),
                (
                    "reclaimed".into(),
                    Json::Obj(vec![
                        ("polys".into(), num(self.polys_reclaimed)),
                        ("blocks".into(), num(self.blocks_reclaimed)),
                        ("sched_entries".into(), num(self.sched_entries_cleared)),
                        ("bound_entries".into(), num(self.bound_entries_cleared)),
                    ]),
                ),
                (
                    "machine_warnings".into(),
                    Json::Arr(
                        self.machine_warnings
                            .iter()
                            .map(|(name, w)| {
                                Json::Obj(vec![
                                    ("machine".into(), Json::Str(name.clone())),
                                    ("warning".into(), Json::Str(w.to_string())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        )])
    }
}

/// One pending request of the current wave.
struct Pending {
    enqueued: Instant,
    parsed: Result<Job, String>,
}

/// The prediction daemon: owns the shared translation cache, the machine
/// registry, and the prediction options; [`Server::run`] drives one
/// request stream through it. Run multiple streams through one `Server`
/// to share caches across connections.
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    options: PredictorOptions,
    cache: Arc<TranslationCache>,
    machines: HashMap<String, MachineDesc>,
}

impl Default for Server {
    fn default() -> Server {
        Server::new(ServerConfig::default())
    }
}

impl Server {
    /// A server with default prediction options and the built-in machine
    /// registry.
    pub fn new(config: ServerConfig) -> Server {
        Server {
            config,
            options: PredictorOptions::default(),
            cache: Arc::new(TranslationCache::new()),
            machines: HashMap::new(),
        }
    }

    /// Overrides the prediction options (memory model, library table,
    /// aggregation knobs).
    pub fn with_options(mut self, options: PredictorOptions) -> Server {
        self.options = options;
        self
    }

    /// Registers a machine beyond the built-ins; requests resolve
    /// `machine` names here first.
    pub fn with_machine(mut self, machine: MachineDesc) -> Server {
        self.machines.insert(machine.name().to_string(), machine);
        self
    }

    /// The shared translation cache (telemetry / tests).
    pub fn translation_cache(&self) -> &Arc<TranslationCache> {
        &self.cache
    }

    /// Serves one request stream to completion: reads JSON-lines jobs
    /// from `input` until EOF, writes one response line per job plus a
    /// final stats line to `output`, and returns the run's telemetry.
    ///
    /// # Errors
    ///
    /// Only I/O errors on `input`/`output` abort the run; per-job
    /// failures of any kind become `ok:false` response lines.
    pub fn run<R: BufRead, W: Write>(
        &mut self,
        input: R,
        output: &mut W,
    ) -> std::io::Result<ServerStats> {
        let mut stats = ServerStats::default();
        // Surface description issues for every registered machine up
        // front (built-ins resolved lazily per request are warning-free
        // by construction).
        let mut named: Vec<&String> = self.machines.keys().collect();
        named.sort();
        for name in named {
            for w in self.machines[name].warnings() {
                stats.machine_warnings.push((name.clone(), w));
            }
        }
        let mut latencies: Vec<u64> = Vec::new();
        let mut wave: Vec<Pending> = Vec::new();
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            stats.jobs += 1;
            wave.push(Pending {
                enqueued: Instant::now(),
                parsed: parse_job(&line),
            });
            if wave.len() >= self.config.wave_size.max(1) {
                self.dispatch(&mut wave, output, &mut stats, &mut latencies)?;
            }
        }
        if !wave.is_empty() {
            self.dispatch(&mut wave, output, &mut stats, &mut latencies)?;
        }
        latencies.sort_unstable();
        stats.latency = LatencySummary::from_sorted(&latencies);
        stats.translation_hits = self.cache.hits();
        stats.translation_misses = self.cache.misses();
        writeln!(output, "{}", stats.to_json().to_string_compact())?;
        output.flush()?;
        Ok(stats)
    }

    /// Runs one wave: resolves machines, fans the well-formed jobs out
    /// over the batch workers, writes responses in request order, then
    /// advances the reclamation epoch when the schedule says so.
    fn dispatch<W: Write>(
        &mut self,
        wave: &mut Vec<Pending>,
        output: &mut W,
        stats: &mut ServerStats,
        latencies: &mut Vec<u64>,
    ) -> std::io::Result<()> {
        // Resolve built-in machine names first (needs `&mut self.machines`,
        // so it cannot overlap the batch borrow below).
        for p in wave.iter() {
            if let Ok(job) = &p.parsed {
                if !self.machines.contains_key(&job.machine) {
                    if let Some(m) = machines::by_name(&job.machine) {
                        self.machines.insert(job.machine.clone(), m);
                    }
                }
            }
        }
        let mut batch: Vec<(&MachineDesc, &str)> = Vec::new();
        let mut slots: Vec<Option<usize>> = Vec::with_capacity(wave.len());
        for p in wave.iter() {
            slots.push(match &p.parsed {
                Ok(job) => self.machines.get(&job.machine).map(|m| {
                    batch.push((m, &job.source));
                    batch.len() - 1
                }),
                Err(_) => None,
            });
        }
        let report = Predictor::predict_batch_report(
            &batch,
            &self.options,
            &self.cache,
            self.config.workers,
        );
        stats.memo = stats.memo.merged(&report.memo_totals());
        let mut results: Vec<Option<_>> = report.results.into_iter().map(Some).collect();
        for (p, slot) in wave.iter().zip(&slots) {
            let response = match (&p.parsed, slot) {
                (Err(msg), _) => error_json(&Json::Null, ErrorKind::Parse, msg),
                (Ok(job), None) => error_json(
                    &job.id,
                    ErrorKind::Machine,
                    &format!("unknown machine `{}`", job.machine),
                ),
                (Ok(job), Some(i)) => {
                    let result = results[*i].take().expect("each batch slot consumed once");
                    let us = p.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    latencies.push(us);
                    match result {
                        Ok(predictions) => ok_json(&job.id, us, &predictions),
                        Err(e) => error_json(&job.id, ErrorKind::of(&e), &e.to_string()),
                    }
                }
            };
            if response.get("ok").and_then(Json::as_bool) == Some(true) {
                stats.ok += 1;
            } else {
                stats.failed += 1;
            }
            writeln!(output, "{}", response.to_string_compact())?;
        }
        output.flush()?;
        wave.clear();
        stats.waves += 1;
        if self.config.advance_every > 0
            && stats.waves.is_multiple_of(self.config.advance_every as u64)
        {
            let report = presage_symbolic::epoch::advance();
            stats.advances += 1;
            for entry in &report.reclaimed {
                match entry.name {
                    "poly" => stats.polys_reclaimed += entry.reclaimed as u64,
                    "blockir" => stats.blocks_reclaimed += entry.reclaimed as u64,
                    "sched-l2" => stats.sched_entries_cleared += entry.reclaimed as u64,
                    "blockcost-l2" => stats.bound_entries_cleared += entry.reclaimed as u64,
                    _ => {}
                }
            }
            stats.translations_evicted += self.cache.evict_older_than(report.retire_before) as u64;
        }
        Ok(())
    }
}

/// Parses one request line.
fn parse_job(line: &str) -> Result<Job, String> {
    let v = Json::parse(line)?;
    if v.as_obj().is_none() {
        return Err("request must be a JSON object".into());
    }
    let field = |name: &str| -> Result<String, String> {
        v.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing or non-string `{name}`"))
    };
    Ok(Job {
        id: v.get("id").cloned().unwrap_or(Json::Null),
        machine: field("machine")?,
        source: field("source")?,
    })
}

/// A success response line. `cost` is always the total; when the
/// machine declares a `cache` section each prediction additionally
/// carries the memory-vs-compute split (`compute` plus a `memory`
/// object with stall cycles, distinct-line count, and exactness), so
/// restructuring clients can tell a locality problem from an
/// instruction-mix problem without re-deriving the model.
fn ok_json(id: &Json, us: u64, predictions: &[presage_core::predictor::Prediction]) -> Json {
    let preds = predictions
        .iter()
        .map(|p| {
            let mut fields = vec![
                ("name".into(), Json::Str(p.name.clone())),
                ("cost".into(), Json::Str(p.total.to_string())),
                ("concrete".into(), Json::Bool(p.total.is_concrete())),
            ];
            if let Some(mc) = &p.memcost {
                fields.push(("compute".into(), Json::Str(p.compute.to_string())));
                fields.push((
                    "memory".into(),
                    Json::Obj(vec![
                        ("cycles".into(), Json::Str(mc.cycles.to_string())),
                        ("lines".into(), Json::Str(mc.lines.to_string())),
                        ("exact".into(), Json::Bool(mc.exact)),
                    ]),
                ));
            }
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Json::Bool(true)),
        ("us".into(), Json::Num(us as f64)),
        ("predictions".into(), Json::Arr(preds)),
    ])
}

/// A failure response line.
fn error_json(id: &Json, kind: ErrorKind, message: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Json::Bool(false)),
        ("kind".into(), Json::Str(kind.tag().into())),
        ("error".into(), Json::Str(message.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    const AXPY: &str = "subroutine axpy(y, x, a, n)\\nreal y(n), x(n), a\\ninteger i, n\\ndo i = 1, n\\ny(i) = y(i) + a * x(i)\\nend do\\nend";

    fn serve(input: &str, config: ServerConfig) -> (Vec<Json>, ServerStats) {
        let mut server = Server::new(config);
        let mut out = Vec::new();
        let stats = server.run(input.as_bytes(), &mut out).unwrap();
        let lines = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        (lines, stats)
    }

    #[test]
    fn serves_predictions_in_request_order() {
        let input = format!(
            "{{\"id\": 1, \"machine\": \"power-like\", \"source\": \"{AXPY}\"}}\n{{\"id\": 2, \"machine\": \"risc1\", \"source\": \"{AXPY}\"}}\n"
        );
        let (lines, stats) = serve(&input, ServerConfig::default());
        assert_eq!(lines.len(), 3, "two responses plus the stats line");
        for (i, line) in lines[..2].iter().enumerate() {
            assert_eq!(line.get("id").and_then(Json::as_u64), Some(i as u64 + 1));
            assert_eq!(line.get("ok").and_then(Json::as_bool), Some(true));
            let preds = line.get("predictions").unwrap().as_arr().unwrap();
            assert_eq!(preds[0].get("name").and_then(Json::as_str), Some("axpy"));
            assert_eq!(
                preds[0].get("concrete").and_then(Json::as_bool),
                Some(false)
            );
        }
        assert!(lines[2].get("stats").is_some());
        assert_eq!((stats.jobs, stats.ok, stats.failed), (2, 2, 0));
    }

    #[test]
    fn response_cost_matches_direct_prediction() {
        let input = format!("{{\"machine\": \"power-like\", \"source\": \"{AXPY}\"}}\n");
        let (lines, _) = serve(&input, ServerConfig::default());
        let served = lines[0].get("predictions").unwrap().as_arr().unwrap()[0]
            .get("cost")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let direct = Predictor::new(machines::power_like())
            .predict_source(&AXPY.replace("\\n", "\n"))
            .unwrap()[0]
            .total
            .to_string();
        assert_eq!(served, direct);
    }

    #[test]
    fn malformed_and_unknown_jobs_fail_without_poisoning_the_wave() {
        // One wave: garbage JSON, valid JSON with garbage source, unknown
        // machine, then a good job — the good job must still be served.
        let input = format!(
            "this is not json\n{{\"id\": \"bad\", \"machine\": \"power-like\", \"source\": \"subroutine s(\\nend\"}}\n{{\"id\": 3, \"machine\": \"vax\", \"source\": \"{AXPY}\"}}\n{{\"id\": 4, \"machine\": \"power-like\", \"source\": \"{AXPY}\"}}\n"
        );
        let (lines, stats) = serve(&input, ServerConfig::default());
        let kind = |i: usize| {
            lines[i]
                .get("kind")
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        assert_eq!(lines[0].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(kind(0).as_deref(), Some("parse"));
        assert_eq!(kind(1).as_deref(), Some("frontend"));
        assert_eq!(kind(2).as_deref(), Some("machine"));
        assert!(lines[2]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("vax"));
        assert_eq!(lines[3].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!((stats.ok, stats.failed), (1, 3));
    }

    #[test]
    fn missing_fields_are_parse_errors() {
        let (lines, _) = serve(
            "{\"machine\": \"power-like\"}\n{\"source\": \"x\"}\n",
            ServerConfig::default(),
        );
        for line in &lines[..2] {
            assert_eq!(line.get("kind").and_then(Json::as_str), Some("parse"));
        }
    }

    #[test]
    fn waves_advance_epochs_and_keep_serving() {
        // Three waves of two jobs with advance_every=1: the server must
        // advance between waves and every job must still come back right.
        let mut input = String::new();
        for i in 0..6 {
            let src = format!(
                "subroutine w{i}(a, n)\\nreal a(n)\\ninteger i, n\\ndo i = 1, n\\na(i) = a(i) + {i}.0\\nend do\\nend"
            );
            input.push_str(&format!(
                "{{\"id\": {i}, \"machine\": \"power-like\", \"source\": \"{src}\"}}\n"
            ));
        }
        let config = ServerConfig {
            workers: 2,
            wave_size: 2,
            advance_every: 1,
        };
        let (lines, stats) = serve(&input, config);
        assert_eq!(stats.waves, 3);
        assert_eq!(stats.advances, 3);
        assert_eq!(stats.ok, 6);
        for (i, line) in lines[..6].iter().enumerate() {
            assert_eq!(line.get("id").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(
                line.get("ok").and_then(Json::as_bool),
                Some(true),
                "{line:?}"
            );
        }
    }

    #[test]
    fn cache_machines_report_the_memory_split() {
        use presage_machine::CacheParams;
        // Register a cached variant over the built-in name: the registry
        // wins resolution, so every job in the wave sees the cache.
        let mut cached = machines::power_like();
        cached.cache = Some(CacheParams::default());
        let mut server = Server::new(ServerConfig::default()).with_machine(cached);
        let input = format!(
            "{{\"id\": 1, \"machine\": \"power-like\", \"source\": \"{AXPY}\"}}\n{{\"id\": 2, \"machine\": \"power-like\", \"source\": \"{AXPY}\"}}\n"
        );
        let mut out = Vec::new();
        server.run(input.as_bytes(), &mut out).unwrap();
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        for line in &lines[..2] {
            let pred = &line.get("predictions").unwrap().as_arr().unwrap()[0];
            let mem = pred.get("memory").expect("cache section => memory split");
            assert!(mem.get("cycles").and_then(Json::as_str).is_some());
            assert!(mem.get("lines").and_then(Json::as_str).is_some());
            assert_eq!(mem.get("exact").and_then(Json::as_bool), Some(true));
            assert!(pred.get("compute").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn perfect_cache_responses_omit_the_memory_split() {
        let input = format!("{{\"machine\": \"power-like\", \"source\": \"{AXPY}\"}}\n");
        let (lines, _) = serve(&input, ServerConfig::default());
        let pred = &lines[0].get("predictions").unwrap().as_arr().unwrap()[0];
        assert!(pred.get("memory").is_none());
        assert!(pred.get("compute").is_none());
    }

    #[test]
    fn custom_machine_registration() {
        use presage_machine::{MachineBuilder, UnitClass, UnitCost};
        let mut b = MachineBuilder::new("toy-server");
        b.unit(UnitClass::Alu, 1);
        let add = b.atomic("add", vec![UnitCost::new(UnitClass::Alu, 1, 0)]);
        b.map_all_to(add);
        let mut server = Server::new(ServerConfig::default()).with_machine(b.build().unwrap());
        let input = format!("{{\"machine\": \"toy-server\", \"source\": \"{AXPY}\"}}\n");
        let mut out = Vec::new();
        let stats = server.run(input.as_bytes(), &mut out).unwrap();
        assert_eq!((stats.ok, stats.failed), (1, 0));
    }

    #[test]
    fn declared_tlb_fields_surface_in_stats() {
        use presage_machine::CacheParams;
        let mut loud = machines::power_like();
        loud.cache = Some(CacheParams {
            tlb_declared: true,
            ..CacheParams::default()
        });
        let mut server = Server::new(ServerConfig::default()).with_machine(loud);
        let input = format!("{{\"machine\": \"power-like\", \"source\": \"{AXPY}\"}}\n");
        let mut out = Vec::new();
        let stats = server.run(input.as_bytes(), &mut out).unwrap();
        assert_eq!(
            stats.machine_warnings,
            vec![("power-like".to_string(), MachineWarning::TlbUncharged)]
        );
        let last = String::from_utf8(out).unwrap();
        let stats_line = Json::parse(last.lines().last().unwrap()).unwrap();
        let warnings = stats_line
            .get("stats")
            .and_then(|s| s.get("machine_warnings"))
            .and_then(Json::as_arr)
            .expect("stats line carries machine_warnings");
        assert_eq!(warnings.len(), 1);
        assert_eq!(
            warnings[0].get("machine").and_then(Json::as_str),
            Some("power-like")
        );
        assert!(warnings[0]
            .get("warning")
            .and_then(Json::as_str)
            .unwrap()
            .contains("TLB"));
    }

    #[test]
    fn empty_stream_emits_only_stats() {
        let (lines, stats) = serve("\n  \n", ServerConfig::default());
        assert_eq!(lines.len(), 1);
        assert!(lines[0].get("stats").is_some());
        assert_eq!(stats.jobs, 0);
    }
}
