//! Regression tests for the de-panicked canonicalization path: a program
//! variant whose re-emitted source does not parse used to panic the whole
//! search (`parse(..).unwrap()` in the canonicalization helpers). It must
//! now be rejected — counted in `SearchResult::rejected_variants`, or
//! reported as `WhatIfError::Canonicalize` — while the search and the
//! what-if comparator keep running.

use presage_core::Predictor;
use presage_frontend::{Expr, Span, Stmt, Subroutine};
use presage_machine::machines;
use presage_opt::whatif::loop_paths;
use presage_opt::{
    astar_search, compare_transform, parse_subroutine, SearchOptions, Transform, WhatIfError,
};

/// A structurally valid AST whose re-emission is not parsable: the
/// appended assignment's target prints as `end do = 0`, which closes the
/// enclosing block early. Models a transformation emitting an
/// unrepresentable program.
fn malformed() -> Subroutine {
    let mut sub = parse_subroutine(
        "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
    )
    .unwrap();
    sub.body.push(Stmt::Assign {
        target: Expr::Var("end do".into()),
        value: Expr::IntLit(0),
        span: Span::default(),
    });
    sub
}

#[test]
fn search_survives_malformed_variants_and_counts_them() {
    let predictor = Predictor::new(machines::wide4());
    let s = malformed();
    let opts = SearchOptions {
        max_expansions: 6,
        max_depth: 2,
        ..Default::default()
    };
    // Every derived variant inherits the unparsable statement; before the
    // fix this call panicked inside canonicalization.
    let r = astar_search(&s, &predictor, &opts);
    assert!(
        r.rejected_variants > 0,
        "malformed variants must be counted"
    );
    assert!(
        r.sequence.is_empty(),
        "no unrepresentable variant may be selected"
    );
    assert_eq!(
        r.best.to_string(),
        s.to_string(),
        "search falls back to the original"
    );
    assert!(r.best_cost.is_finite());
    assert_eq!(r.evaluated, 0, "rejected variants are never predicted");
}

#[test]
fn whatif_reports_canonicalization_errors() {
    let predictor = Predictor::new(machines::power_like());
    let s = malformed();
    let path = loop_paths(&s)
        .into_iter()
        .next()
        .expect("fixture has a loop");
    let err = compare_transform(&s, &path, &Transform::Unroll(2), &predictor)
        .expect_err("unrepresentable variant must be rejected");
    assert!(matches!(err, WhatIfError::Canonicalize(_)), "got {err}");
}

#[test]
fn well_formed_searches_reject_nothing() {
    let predictor = Predictor::new(machines::power_like());
    let s = parse_subroutine(
        "subroutine s(a, n)
           real a(n,n)
           integer i, j, n
           do i = 1, n
             do j = 1, n
               a(i,j) = a(i,j) * 2.0 + 1.0
             end do
           end do
         end",
    )
    .unwrap();
    let opts = SearchOptions {
        max_expansions: 6,
        max_depth: 2,
        ..Default::default()
    };
    let r = astar_search(&s, &predictor, &opts);
    assert_eq!(r.rejected_variants, 0);
    assert!(r.evaluated > 0);
}
