//! Bounded e-graph saturation over structural variant classes (§3.2).
//!
//! The A* engine explores transformation *sequences*: the same program
//! reached by `tile ∘ interchange` and `interchange ∘ tile` is two
//! search states until the closed set happens to collapse them — and
//! the collapse itself costs a re-emit + re-parse per candidate. This
//! engine explores *equivalence classes* instead. An [`EClass`] is the
//! set of all transformation-reachable programs sharing a
//! [structural key](crate::canon::structural_key); the catalog moves of
//! [`crate::transforms`] are its rewrites; saturation applies rewrites
//! best-first until the class **node budget**
//! ([`SearchConfig::node_budget`]) or the expansion budget is spent;
//! extraction returns the class with the cheapest predicted cost,
//! costed by [`Predictor::predict_subroutine_cost`] through the shared
//! sharded [`PredictionCache`].
//!
//! Because the structural key also merges commutative operand orders
//! and alpha-equivalent loop variables (which the textual key only
//! merges when the printed text coincides — e.g. differently-freshened
//! tile variables never do), the e-graph sees strictly fewer states for
//! the same reachable set, and each state costs a normalize + hash
//! instead of an emit + lex + parse + hash.
//!
//! A* remains available behind [`SearchStrategy::AStar`] as the
//! baseline and oracle: `tests/structural_search.rs` proves extraction
//! never returns a variant whose predicted cost exceeds the A* winner
//! on the Figure 7 corpus across all four machines.

use crate::cache::{EdgeOutcome, PredictionCache};
use crate::canon;
use crate::search::{
    bindings_of, bound_dominates, bound_key, edge_key, evaluate, evaluate_candidates,
    generate_moves, order_moves, SearchConfig, SearchResult, SearchStep,
};
use crate::transforms::Transform;
use crate::whatif::transformed;
use presage_core::predictor::Predictor;
use presage_frontend::Subroutine;
use presage_symbolic::PerfExpr;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// One equivalence class of program variants: every
/// transformation-reachable program whose [`crate::canon::structural_key`]
/// equals `key`. The representative is the first member discovered;
/// its cost is the class cost (structural equivalence is cost-preserving
/// — the differential suite enforces this).
#[derive(Clone, Debug)]
pub struct EClass {
    /// The class's structural key.
    pub key: u128,
    /// First-discovered member, used for rewriting and extraction.
    pub repr: Subroutine,
    /// Cheapest-known derivation of the representative from the root.
    pub sequence: Vec<SearchStep>,
    /// Symbolic predicted cost; `None` when prediction failed (a dead
    /// class: never expanded, never extracted).
    pub expr: Option<PerfExpr>,
    /// `expr` evaluated at the search's eval point (`+∞` when dead).
    pub cost: f64,
    /// Rewrite steps from the root to this class.
    pub depth: usize,
}

/// The e-graph: classes plus the key index that makes every rewrite
/// application an O(1) merge test.
#[derive(Debug, Default)]
pub struct EGraph {
    classes: Vec<EClass>,
    index: HashMap<u128, usize>,
}

impl EGraph {
    /// An empty e-graph.
    pub fn new() -> EGraph {
        EGraph::default()
    }

    /// Number of e-classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when no class has been added.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// All classes, in discovery order (the root is class 0).
    pub fn classes(&self) -> &[EClass] {
        &self.classes
    }

    /// The class holding `key`, if any.
    pub fn find(&self, key: u128) -> Option<usize> {
        self.index.get(&key).copied()
    }

    fn add(&mut self, class: EClass) -> usize {
        let id = self.classes.len();
        self.index.insert(class.key, id);
        self.classes.push(class);
        id
    }
}

/// Worklist entry: min-heap on evaluated cost, ties to the older class
/// so saturation order is deterministic.
struct WorkItem {
    cost: f64,
    id: usize,
}

impl PartialEq for WorkItem {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.id == other.id
    }
}
impl Eq for WorkItem {}
impl PartialOrd for WorkItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorkItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Runs bounded e-graph saturation from `sub` and extracts the cheapest
/// class, with a caller-owned [`PredictionCache`].
///
/// Saturation is best-first: the cheapest unexpanded class rewrites
/// next (with [`SearchConfig::heuristic`], its moves additionally
/// ordered by the explain verdict), so when the node budget truncates
/// the space, it truncates the expensive frontier first. Every counter
/// in the returned [`SearchResult`] has the same meaning as under A*;
/// [`SearchResult::merged_variants`] counts rewrite applications that
/// landed in an existing class — the transpositions A* would have
/// re-keyed textually.
pub fn egraph_search_cached(
    sub: &Subroutine,
    predictor: &Predictor,
    config: &SearchConfig,
    cache: &PredictionCache,
) -> SearchResult {
    let opts = &config.options;
    let hits_before = cache.hits();
    let misses_before = cache.misses();
    let mut rejected = 0usize;
    let mut merged = 0usize;
    let mut evaluated = 0usize;
    let mut expansions = 0usize;
    let mut pruned = 0usize;
    let bindings = bindings_of(opts);

    // An unrepresentable root still searches under the disjoint
    // fallback key family, counted as a rejection (same contract as
    // the A* engine).
    let root_key = match canon::structural_key(sub) {
        Ok(key) => key,
        Err(_) => {
            rejected += 1;
            canon::fallback_key(sub)
        }
    };
    let original_expr = cache
        .cost_of(root_key, sub, predictor)
        .expect("original program must predict");
    let original_cost = evaluate(&original_expr, opts);

    let mut g = EGraph::new();
    g.add(EClass {
        key: root_key,
        repr: sub.clone(),
        sequence: Vec::new(),
        expr: Some(original_expr.clone()),
        cost: original_cost,
        depth: 0,
    });
    let mut best_id = 0usize;
    let mut best_found_at = 0usize;

    let mut open = BinaryHeap::new();
    open.push(WorkItem {
        cost: original_cost,
        id: 0,
    });

    while let Some(item) = open.pop() {
        if expansions >= opts.max_expansions || g.len() >= config.node_budget {
            break;
        }
        let (repr, sequence, depth) = {
            let c = &g.classes[item.id];
            (c.repr.clone(), c.sequence.clone(), c.depth)
        };
        if depth >= opts.max_depth {
            continue;
        }
        expansions += 1;

        let mut moves = generate_moves(&repr, opts);
        if config.heuristic {
            order_moves(&mut moves, predictor, &repr);
        }

        // Rewrite, key, and merge serially (cheap, order-sensitive);
        // predict the genuinely new classes concurrently.
        let terminal = depth + 1 >= opts.max_depth;
        let mut batch_keys: HashSet<u128> = HashSet::new();
        let mut candidates: Vec<(Vec<usize>, Transform, Subroutine, u128)> = Vec::new();
        let parent_key = g.classes[item.id].key;
        for (path, t) in moves {
            // The edge memo dispositions repeat candidates from their
            // key alone: a variant that merges or prunes again is never
            // re-materialized (the transform application and the
            // structural hash dominate the warm-session profile). The
            // variant AST is built lazily, only when a bound or an
            // acceptance actually needs it.
            let mut materialized: Option<Subroutine> = None;
            let outcome = cache.edge_of(edge_key(parent_key, &path, &t), || {
                match transformed(&repr, &path, &t) {
                    Err(_) => EdgeOutcome::NotApplicable,
                    Ok(v) => match canon::structural_key(&v) {
                        Err(_) => EdgeOutcome::Unkeyable,
                        Ok(k) => {
                            materialized = Some(v);
                            EdgeOutcome::Child(k)
                        }
                    },
                }
            });
            let key = match outcome {
                EdgeOutcome::NotApplicable => continue,
                EdgeOutcome::Unkeyable => {
                    rejected += 1;
                    continue;
                }
                EdgeOutcome::Child(key) => key,
            };
            if g.find(key).is_some() || !batch_keys.insert(key) {
                merged += 1;
                continue;
            }
            // Terminal classes are costed but never expanded, so an
            // admissible floor above the incumbent proves the class
            // cannot win — skip the prediction (unless it is already
            // memoized and free). Pruned candidates consume no budget.
            if config.prune && terminal && !cache.contains(key) {
                let bound = cache.bound_of(bound_key(key, opts), || {
                    if materialized.is_none() {
                        materialized = transformed(&repr, &path, &t).ok();
                    }
                    let v = materialized.as_ref()?;
                    predictor.lower_bound_subroutine(v, &bindings).ok()
                });
                if let Some(bound) = bound {
                    if bound_dominates(bound, g.classes[best_id].cost) {
                        pruned += 1;
                        continue;
                    }
                }
            }
            // The node budget is charged per *accepted* candidate, after
            // merge/prune filtering, so rejected, merged, and pruned
            // moves never consume budget and saturation fills the graph
            // to exactly `node_budget` classes before stopping.
            if g.len() + candidates.len() >= config.node_budget {
                break;
            }
            let variant = match materialized {
                Some(v) => v,
                // A memoized edge being re-accepted (e.g. a fresh
                // e-graph over a warm cache): rebuild the variant now.
                None => match transformed(&repr, &path, &t) {
                    Ok(v) => v,
                    Err(_) => continue,
                },
            };
            candidates.push((path, t, variant, key));
        }
        let exprs = evaluate_candidates(&candidates, predictor, cache, opts.workers);

        for ((path, t, variant, key), expr) in candidates.into_iter().zip(exprs) {
            let (cost, expr) = match expr {
                Some(e) => {
                    evaluated += 1;
                    (evaluate(&e, opts), Some(e))
                }
                None => (f64::INFINITY, None),
            };
            let mut sequence = sequence.clone();
            sequence.push(SearchStep {
                path,
                transform: t,
                cost,
            });
            let live = expr.is_some();
            let id = g.add(EClass {
                key,
                repr: variant,
                sequence,
                expr,
                cost,
                depth: depth + 1,
            });
            if cost < g.classes[best_id].cost {
                best_id = id;
                best_found_at = evaluated;
            }
            if live && depth + 1 < opts.max_depth {
                open.push(WorkItem { cost, id });
            }
        }
    }

    let best = &g.classes[best_id];
    SearchResult {
        best: best.repr.clone(),
        best_expr: best
            .expr
            .clone()
            .expect("extracted class has a predicted cost"),
        best_cost: best.cost,
        original_cost,
        sequence: best.sequence.clone(),
        expansions,
        evaluated,
        cache_hits: cache.hits() - hits_before,
        cache_misses: cache.misses() - misses_before,
        rejected_variants: rejected,
        merged_variants: merged,
        pruned_variants: pruned,
        best_found_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{search, SearchStrategy};
    use presage_machine::machines;

    fn sub(src: &str) -> Subroutine {
        canon::parse_subroutine(src).unwrap()
    }

    const NEST: &str = "subroutine s(a, n)
        real a(n,n)
        integer i, j, n
        do i = 1, n
          do j = 1, n
            a(i,j) = a(i,j) * 2.0 + 1.0
          end do
        end do
      end";

    fn config(max_expansions: usize, max_depth: usize) -> SearchConfig {
        SearchConfig {
            strategy: SearchStrategy::EGraph,
            options: crate::search::SearchOptions {
                max_expansions,
                max_depth,
                ..Default::default()
            },
            node_budget: 128,
            heuristic: true,
            prune: true,
        }
    }

    #[test]
    fn egraph_never_worsens() {
        let predictor = Predictor::new(machines::power_like());
        let s = sub(NEST);
        let r = search(&s, &predictor, &config(8, 2));
        assert!(r.best_cost <= r.original_cost + 1e-9);
        assert!(r.speedup() >= 1.0);
        assert!(r.expansions >= 1);
        assert!(r.evaluated > 0);
    }

    #[test]
    fn transpositions_merge_into_one_class() {
        // Two sibling loops: rewrites applied in either order reach the
        // same program, which must key to one e-class, not two.
        let predictor = Predictor::new(machines::power_like());
        let s = sub("subroutine s(a, b, n)
               real a(n), b(n)
               integer i, n
               do i = 1, n
                 a(i) = 0.0
               end do
               do i = 1, n
                 b(i) = 0.0
               end do
             end");
        let r = search(&s, &predictor, &config(16, 2));
        assert!(
            r.merged_variants > 0,
            "transposed sequences must merge, got {r:?}"
        );
    }

    #[test]
    fn node_budget_bounds_the_graph() {
        let predictor = Predictor::new(machines::power_like());
        let s = sub(NEST);
        let mut cfg = config(64, 3);
        cfg.node_budget = 5;
        let r = search(&s, &predictor, &cfg);
        // Root + at most 4 discovered classes were costed.
        assert!(r.evaluated <= 5, "{r:?}");
        assert!(r.best_cost <= r.original_cost + 1e-9);
    }

    #[test]
    fn saturation_fills_the_budget_exactly() {
        // The budget is charged per accepted candidate: with room for
        // node_budget − 1 new classes beyond the root and plenty of
        // moves, saturation must cost exactly that many — no tail move
        // may be abandoned while budget remains.
        let predictor = Predictor::new(machines::power_like());
        let s = sub(NEST);
        let mut cfg = config(64, 3);
        cfg.node_budget = 5;
        cfg.prune = false;
        let r = search(&s, &predictor, &cfg);
        assert_eq!(
            r.evaluated, 4,
            "root + exactly node_budget - 1 new classes, got {r:?}"
        );
    }

    #[test]
    fn pruning_never_changes_the_winner() {
        for m in [
            machines::power_like(),
            machines::risc1(),
            machines::wide4(),
            machines::wide8(),
        ] {
            let predictor = Predictor::new(m);
            let s = sub(NEST);
            let mut on = config(12, 2);
            on.prune = true;
            let mut off = on.clone();
            off.prune = false;
            let r_on = search(&s, &predictor, &on);
            let r_off = search(&s, &predictor, &off);
            assert_eq!(
                r_on.best.to_string(),
                r_off.best.to_string(),
                "pruned winner must be bit-identical on {}",
                predictor.machine().name()
            );
            assert_eq!(r_on.best_cost, r_off.best_cost);
            assert!(
                r_on.evaluated + r_on.pruned_variants >= r_off.evaluated,
                "pruning skips predictions, it does not lose candidates: {r_on:?} vs {r_off:?}"
            );
        }
    }

    #[test]
    fn malformed_root_falls_back_and_counts() {
        let predictor = Predictor::new(machines::power_like());
        let s = canon::malformed_variant();
        let r = search(&s, &predictor, &config(4, 2));
        assert!(r.rejected_variants > 0);
        assert!(r.sequence.is_empty(), "no unrepresentable variant may win");
        assert_eq!(r.best_cost, r.original_cost);
    }

    #[test]
    fn heuristic_only_reorders_never_changes_the_winner() {
        let predictor = Predictor::new(machines::risc1());
        let s = sub(NEST);
        let mut on = config(12, 2);
        let mut off = on.clone();
        on.heuristic = true;
        off.heuristic = false;
        let r_on = search(&s, &predictor, &on);
        let r_off = search(&s, &predictor, &off);
        assert_eq!(r_on.best_cost, r_off.best_cost);
        assert_eq!(r_on.best.to_string(), r_off.best.to_string());
    }

    #[test]
    fn shared_cache_serves_repeat_searches() {
        let predictor = Predictor::new(machines::power_like());
        let s = sub(NEST);
        let cache = PredictionCache::new();
        let cfg = config(6, 2);
        let first = crate::search::search_cached(&s, &predictor, &cfg, &cache);
        assert!(first.cache_misses > 0);
        let second = crate::search::search_cached(&s, &predictor, &cfg, &cache);
        assert_eq!(second.cache_misses, 0, "rerun must not re-predict");
        assert_eq!(second.best.to_string(), first.best.to_string());
    }
}
