//! Statement-block ordering by cost-block shape (paper §2.4.2).
//!
//! "The shapes of the cost blocks can be used to decide the order of
//! statement blocks" — adjacent blocks overlap where one block's top gaps
//! meet the next block's bottom leads (Figure 9), so the order of
//! independent statement blocks changes total cost. This module searches
//! for the order with the best estimated combined cost.

use presage_core::costblock::CostBlock;
use presage_core::tetris::{place_block, PlaceOptions};
use presage_machine::MachineDesc;
use presage_translate::BlockIr;

/// Result of an ordering search.
#[derive(Clone, Debug)]
pub struct Ordering {
    /// Permutation of the input indices, best first-to-last.
    pub order: Vec<usize>,
    /// Estimated combined cost of that order (shape-based).
    pub estimated_cost: u32,
    /// Estimated cost of the original order, for comparison.
    pub original_cost: u32,
}

impl Ordering {
    /// Cycles saved by reordering (0 when the original order is best).
    pub fn saving(&self) -> u32 {
        self.original_cost.saturating_sub(self.estimated_cost)
    }
}

/// Shape-based cost of running blocks in the given order: spans minus
/// pairwise Figure 9 overlaps.
pub fn sequence_cost(shapes: &[CostBlock], order: &[usize]) -> u32 {
    let mut total = 0u32;
    for (k, &i) in order.iter().enumerate() {
        total += shapes[i].span();
        if k > 0 {
            let prev = &shapes[order[k - 1]];
            total = total.saturating_sub(prev.estimate_overlap(&shapes[i]));
        }
    }
    total
}

/// Finds the best order for a sequence of *independent* statement blocks.
///
/// Exhaustive for up to 6 blocks; greedy (best-next by pairwise overlap)
/// beyond that. Legality (independence of the blocks) is the caller's
/// responsibility, as everywhere in the paper's framework.
pub fn best_order(machine: &MachineDesc, blocks: &[BlockIr], opts: PlaceOptions) -> Ordering {
    let shapes: Vec<CostBlock> = blocks
        .iter()
        .map(|b| place_block(machine, b, opts))
        .collect();
    let identity: Vec<usize> = (0..blocks.len()).collect();
    let original_cost = sequence_cost(&shapes, &identity);

    if blocks.len() <= 1 {
        return Ordering {
            order: identity,
            estimated_cost: original_cost,
            original_cost,
        };
    }

    let best = if blocks.len() <= 6 {
        let mut best_order = identity.clone();
        let mut best_cost = original_cost;
        permute(&mut identity.clone(), 0, &mut |perm| {
            let c = sequence_cost(&shapes, perm);
            if c < best_cost {
                best_cost = c;
                best_order = perm.to_vec();
            }
        });
        (best_order, best_cost)
    } else {
        greedy_order(&shapes)
    };

    Ordering {
        order: best.0,
        estimated_cost: best.1,
        original_cost,
    }
}

fn permute(items: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

fn greedy_order(shapes: &[CostBlock]) -> (Vec<usize>, u32) {
    let n = shapes.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    // Start from the block with the largest span (most to hide behind).
    remaining.sort_by_key(|&i| std::cmp::Reverse(shapes[i].span()));
    let mut order = vec![remaining.remove(0)];
    while !remaining.is_empty() {
        let last = *order.last().unwrap();
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| shapes[last].estimate_overlap(&shapes[i]))
            .unwrap();
        order.push(remaining.remove(pos));
    }
    let cost = sequence_cost(shapes, &order);
    (order, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::{machines, BasicOp};
    use presage_translate::ValueDef;

    /// FXU-early/FPU-late block.
    fn int_then_float() -> BlockIr {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let mut v = x;
        for _ in 0..3 {
            v = b.emit(BasicOp::IAdd, vec![v, x]);
        }
        let mut f = b.emit(BasicOp::FAdd, vec![x, x]);
        f = b.emit(BasicOp::FAdd, vec![f, f]);
        let _ = f;
        b
    }

    /// Pure FPU chain block.
    fn float_chain() -> BlockIr {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let mut v = x;
        for _ in 0..4 {
            v = b.emit(BasicOp::FAdd, vec![v, v]);
        }
        b
    }

    /// Pure FXU chain block.
    fn int_chain() -> BlockIr {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let mut v = x;
        for _ in 0..4 {
            v = b.emit(BasicOp::IAdd, vec![v, x]);
        }
        b
    }

    #[test]
    fn single_block_is_trivial() {
        let m = machines::power_like();
        let o = best_order(&m, &[float_chain()], PlaceOptions::default());
        assert_eq!(o.order, vec![0]);
        assert_eq!(o.saving(), 0);
    }

    #[test]
    fn alternating_units_overlap() {
        // FPU-chain followed by FXU-chain overlaps fully; the estimator
        // must see that interleaving disjoint-unit blocks is free.
        let m = machines::power_like();
        let blocks = vec![float_chain(), int_chain()];
        let o = best_order(&m, &blocks, PlaceOptions::default());
        assert!(
            o.estimated_cost < 16,
            "disjoint units should overlap: cost {}",
            o.estimated_cost
        );
    }

    #[test]
    fn best_order_never_worse_than_original() {
        let m = machines::power_like();
        let blocks = vec![int_then_float(), float_chain(), int_chain()];
        let o = best_order(&m, &blocks, PlaceOptions::default());
        assert!(o.estimated_cost <= o.original_cost);
        // The order is a permutation.
        let mut sorted = o.order.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn greedy_handles_many_blocks() {
        let m = machines::power_like();
        let blocks: Vec<BlockIr> = (0..9)
            .map(|i| {
                if i % 2 == 0 {
                    float_chain()
                } else {
                    int_chain()
                }
            })
            .collect();
        let o = best_order(&m, &blocks, PlaceOptions::default());
        assert_eq!(o.order.len(), 9);
        assert!(o.estimated_cost <= o.original_cost);
    }

    #[test]
    fn sequence_cost_subtracts_overlap() {
        let m = machines::power_like();
        let shapes = vec![
            place_block(&m, &float_chain(), PlaceOptions::default()),
            place_block(&m, &int_chain(), PlaceOptions::default()),
        ];
        let joined = sequence_cost(&shapes, &[0, 1]);
        let separate = shapes[0].span() + shapes[1].span();
        assert!(joined < separate);
    }
}
