//! Run-time test generation (paper §3.4).
//!
//! "Multiple branches of instructions guided by well-chosen run-time tests
//! can be effective for programs whose performances depend on input data.
//! ... After the performance expression is found for a program fragment,
//! sensitivity analysis can be applied to find the top few variables that
//! produce the most perturbations to the performance. Run-time tests can
//! be formulated based on the most sensitive variables. Furthermore, the
//! conditions on the performance expressions can be used to formulate the
//! run-time tests."

use presage_frontend::Subroutine;
use presage_symbolic::sensitivity::{top_k, SensitivityOptions};
use presage_symbolic::signs::Sign;
use presage_symbolic::{Comparison, PerfExpr, Symbol};
use std::fmt;

/// Which variant wins on a region of the test variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Winner {
    /// The first (e.g. transformed) variant is cheaper.
    First,
    /// The second (e.g. original) variant is cheaper.
    Second,
    /// The variants tie on this region.
    Tie,
}

/// One region of the test variable's range with its winner.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Region {
    /// Left endpoint.
    pub lo: f64,
    /// Right endpoint.
    pub hi: f64,
    /// Which variant to run here.
    pub winner: Winner,
}

/// A plan for guarding two variants with run-time tests on one variable.
#[derive(Clone, Debug)]
pub struct MultiVersionPlan {
    /// The tested variable.
    pub variable: Symbol,
    /// Regions in ascending order; adjacent regions have distinct winners.
    pub regions: Vec<Region>,
    /// Values of the variable where the winner flips (the test thresholds).
    pub thresholds: Vec<f64>,
}

impl MultiVersionPlan {
    /// Number of run-time comparisons needed (`thresholds.len()`); the
    /// paper cautions that "usually only a few run-time tests can be
    /// afforded".
    pub fn test_count(&self) -> usize {
        self.thresholds.len()
    }
}

impl fmt::Display for MultiVersionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run-time tests on `{}`:", self.variable)?;
        for r in &self.regions {
            writeln!(
                f,
                "  [{:.1}, {:.1}] -> {}",
                r.lo,
                r.hi,
                match r.winner {
                    Winner::First => "variant A",
                    Winner::Second => "variant B",
                    Winner::Tie => "either",
                }
            )?;
        }
        Ok(())
    }
}

/// Builds a multi-version plan from a symbolic comparison whose difference
/// is univariate (the [`Comparison::regions`] case). The comparison's
/// `difference` is `C(first) − C(second)`: negative regions favor the
/// first variant.
///
/// Returns `None` when the comparison has no univariate sign regions.
pub fn plan_from_comparison(cmp: &Comparison) -> Option<MultiVersionPlan> {
    let regions = cmp.regions.as_ref()?;
    let symbols = cmp.difference.poly().symbols();
    let variable = symbols.into_iter().next()?;
    let mapped: Vec<Region> = regions
        .iter()
        .map(|r| Region {
            lo: r.lo,
            hi: r.hi,
            winner: match r.sign {
                Sign::Negative => Winner::First,
                Sign::Positive => Winner::Second,
                Sign::Zero => Winner::Tie,
            },
        })
        .collect();
    Some(MultiVersionPlan {
        variable,
        regions: mapped,
        thresholds: cmp.crossovers.clone(),
    })
}

/// Ranks a fragment's unknowns by performance sensitivity and returns the
/// top `k` as run-time-test candidates (§3.4's selection step).
pub fn test_candidates(expr: &PerfExpr, k: usize) -> Vec<Symbol> {
    top_k(expr, k, SensitivityOptions::default())
        .into_iter()
        .map(|s| s.symbol)
        .collect()
}

/// Emits multi-versioned source: run-time tests on the plan's variable
/// select between the two variants. The emitted text is parseable
/// mini-Fortran (thresholds are rounded to integers, the common case for
/// loop bounds).
pub fn emit_multiversion(
    plan: &MultiVersionPlan,
    first: &Subroutine,
    second: &Subroutine,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let var = plan.variable.name();
    let _ = writeln!(out, "! multi-version dispatch on {var}");
    let _ = writeln!(out, "subroutine {}_dispatch({})", first.name, {
        let mut ps = first.params.clone();
        if !ps.contains(&var.to_string()) {
            ps.push(var.to_string());
        }
        ps.join(", ")
    });
    let mut first_branch = true;
    for r in &plan.regions {
        let guard = if r.hi.is_finite() && (r.hi - r.hi.round()).abs() < 1e-6 {
            format!("{var} .le. {}", r.hi.round() as i64)
        } else {
            format!("{var} .le. {}", r.hi)
        };
        let callee = match r.winner {
            Winner::First => &first.name,
            Winner::Second | Winner::Tie => &second.name,
        };
        if first_branch {
            let _ = writeln!(out, "  if ({guard}) then");
            first_branch = false;
        } else if r.hi.is_finite() && plan.regions.last().map(|l| l.hi) != Some(r.hi) {
            let _ = writeln!(out, "  else if ({guard}) then");
        } else {
            let _ = writeln!(out, "  else");
        }
        let _ = writeln!(out, "    call {}({})", callee, first.params.join(", "));
    }
    if !plan.regions.is_empty() {
        let _ = writeln!(out, "  end if");
    }
    let _ = writeln!(out, "end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_symbolic::{PerfExpr, VarInfo};

    fn crossover_comparison() -> Comparison {
        // A: 100 + 2n, B: 10n — A wins for n > 12.5.
        let n = Symbol::new("n");
        let info = VarInfo::loop_bound(1.0, 100.0);
        let a = PerfExpr::cycles(2).repeat_symbolic(n.clone(), info) + PerfExpr::cycles(100);
        let b = PerfExpr::cycles(10).repeat_symbolic(n, info);
        a.compare(&b)
    }

    #[test]
    fn plan_reflects_crossover() {
        let plan = plan_from_comparison(&crossover_comparison()).unwrap();
        assert_eq!(plan.variable.name(), "n");
        assert_eq!(plan.test_count(), 1);
        assert!((plan.thresholds[0] - 12.5).abs() < 1e-6);
        assert_eq!(plan.regions.len(), 2);
        // Below the crossover B (second) is cheaper; above, A (first).
        assert_eq!(plan.regions[0].winner, Winner::Second);
        assert_eq!(plan.regions[1].winner, Winner::First);
    }

    #[test]
    fn no_regions_no_plan() {
        let a = PerfExpr::cycles(5);
        let b = PerfExpr::cycles(9);
        assert!(plan_from_comparison(&a.compare(&b)).is_none());
    }

    #[test]
    fn candidates_ranked_by_sensitivity() {
        let n = Symbol::new("n");
        let m = Symbol::new("m");
        let e = PerfExpr::cycles(1000).repeat_symbolic(n.clone(), VarInfo::loop_bound(0.0, 100.0))
            + PerfExpr::cycles(1).repeat_symbolic(m, VarInfo::loop_bound(0.0, 100.0));
        let c = test_candidates(&e, 1);
        assert_eq!(c, vec![n]);
    }

    #[test]
    fn multiversion_emits_dispatch() {
        let plan = plan_from_comparison(&crossover_comparison()).unwrap();
        let fast =
            presage_frontend::parse("subroutine fast(a, n)\nreal a(n)\ninteger n\nreturn\nend")
                .unwrap()
                .units
                .remove(0);
        let slow =
            presage_frontend::parse("subroutine slow(a, n)\nreal a(n)\ninteger n\nreturn\nend")
                .unwrap()
                .units
                .remove(0);
        let text = emit_multiversion(&plan, &fast, &slow);
        assert!(text.contains("if (n .le. "), "{text}");
        assert!(text.contains("call slow"), "{text}");
        assert!(text.contains("call fast"), "{text}");
    }
}
