//! Source-level restructuring transformations.
//!
//! The paper's optimizer chooses among restructuring transformations by
//! comparing their symbolic cost expressions (§3). This module implements
//! the classic catalog on the mini-Fortran AST: unrolling, interchange,
//! tiling, fusion, and distribution. Transformations are purely
//! structural; legality checking is the caller's concern (the cost model
//! answers "is it faster", not "is it safe", exactly as in the paper).

use presage_frontend::{BinOp, Expr, Intrinsic, Stmt};
use std::fmt;

/// A transformation request.
#[derive(Clone, PartialEq, Debug)]
pub enum Transform {
    /// Unroll the loop by the factor (≥ 2). The remainder loop (at most
    /// `factor − 1` iterations) is emitted guarded by a `min`-bounded tail.
    Unroll(u32),
    /// Swap a perfectly nested pair of loops (this loop and its only child).
    Interchange,
    /// Strip-mine the loop into tiles of the given size.
    Tile(u32),
    /// Fuse this loop with the following identical-header loop (apply to a
    /// two-statement sequence).
    Fuse,
    /// Split a multi-statement loop body into one loop per statement.
    Distribute,
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transform::Unroll(k) => write!(f, "unroll({k})"),
            Transform::Interchange => f.write_str("interchange"),
            Transform::Tile(s) => write!(f, "tile({s})"),
            Transform::Fuse => f.write_str("fuse"),
            Transform::Distribute => f.write_str("distribute"),
        }
    }
}

/// Errors from transformation application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TransformError {
    /// Target statement is not a loop (or not the required shape).
    NotApplicable(&'static str),
    /// A parameter was out of range (e.g. unroll factor < 2).
    BadParameter(&'static str),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NotApplicable(m) => write!(f, "transformation not applicable: {m}"),
            TransformError::BadParameter(m) => write!(f, "bad transformation parameter: {m}"),
        }
    }
}

impl std::error::Error for TransformError {}

/// Substitutes `var := replacement` in an expression.
pub fn subst_var(e: &Expr, var: &str, replacement: &Expr) -> Expr {
    match e {
        Expr::Var(n) if n == var => replacement.clone(),
        Expr::Var(_) | Expr::IntLit(_) | Expr::RealLit(_) | Expr::LogicalLit(_) => e.clone(),
        Expr::ArrayRef { name, indices } => Expr::ArrayRef {
            name: name.clone(),
            indices: indices
                .iter()
                .map(|i| subst_var(i, var, replacement))
                .collect(),
        },
        Expr::Unary { op, operand } => Expr::unary(*op, subst_var(operand, var, replacement)),
        Expr::Binary { op, lhs, rhs } => Expr::binary(
            *op,
            subst_var(lhs, var, replacement),
            subst_var(rhs, var, replacement),
        ),
        Expr::Intrinsic { func, args } => Expr::Intrinsic {
            func: *func,
            args: args
                .iter()
                .map(|a| subst_var(a, var, replacement))
                .collect(),
        },
    }
}

fn subst_stmt(s: &Stmt, var: &str, replacement: &Expr) -> Stmt {
    match s {
        Stmt::Assign {
            target,
            value,
            span,
        } => Stmt::Assign {
            target: subst_var(target, var, replacement),
            value: subst_var(value, var, replacement),
            span: *span,
        },
        Stmt::Do {
            var: v,
            lb,
            ub,
            step,
            body,
            span,
        } => Stmt::Do {
            var: v.clone(),
            lb: subst_var(lb, var, replacement),
            ub: subst_var(ub, var, replacement),
            step: step.as_ref().map(|s| subst_var(s, var, replacement)),
            body: body
                .iter()
                .map(|b| subst_stmt(b, var, replacement))
                .collect(),
            span: *span,
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
            span,
        } => Stmt::If {
            cond: subst_var(cond, var, replacement),
            then_body: then_body
                .iter()
                .map(|b| subst_stmt(b, var, replacement))
                .collect(),
            else_body: else_body
                .iter()
                .map(|b| subst_stmt(b, var, replacement))
                .collect(),
            span: *span,
        },
        Stmt::Call { name, args, span } => Stmt::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| subst_var(a, var, replacement))
                .collect(),
            span: *span,
        },
        Stmt::DoWhile { cond, body, span } => Stmt::DoWhile {
            cond: subst_var(cond, var, replacement),
            body: body
                .iter()
                .map(|b| subst_stmt(b, var, replacement))
                .collect(),
            span: *span,
        },
        Stmt::Return { span } => Stmt::Return { span: *span },
    }
}

fn simplify_add(e: Expr) -> Expr {
    // Fold `x + 0` and constant additions produced by unrolling offsets.
    if let Expr::Binary {
        op: BinOp::Add,
        lhs,
        rhs,
    } = &e
    {
        if let (Some(a), Some(b)) = (lhs.as_int(), rhs.as_int()) {
            return Expr::IntLit(a + b);
        }
        if rhs.as_int() == Some(0) {
            return (**lhs).clone();
        }
        if lhs.as_int() == Some(0) {
            return (**rhs).clone();
        }
    }
    e
}

/// Applies a transformation to the statement at `stmts[idx]` (plus the
/// following statement for [`Transform::Fuse`]), replacing it in place.
///
/// # Errors
///
/// [`TransformError`] when the target shape or parameters do not fit.
pub fn apply(
    stmts: &mut Vec<Stmt>,
    idx: usize,
    transform: &Transform,
) -> Result<(), TransformError> {
    match transform {
        Transform::Unroll(factor) => {
            let new = unroll(get_loop(stmts, idx)?, *factor)?;
            stmts.splice(idx..=idx, new);
            Ok(())
        }
        Transform::Interchange => {
            let new = interchange(get_loop(stmts, idx)?)?;
            stmts[idx] = new;
            Ok(())
        }
        Transform::Tile(size) => {
            let new = tile(get_loop(stmts, idx)?, *size)?;
            stmts[idx] = new;
            Ok(())
        }
        Transform::Fuse => {
            if idx + 1 >= stmts.len() {
                return Err(TransformError::NotApplicable("fuse needs a following loop"));
            }
            let new = fuse(&stmts[idx], &stmts[idx + 1])?;
            stmts.splice(idx..=idx + 1, [new]);
            Ok(())
        }
        Transform::Distribute => {
            let new = distribute(get_loop(stmts, idx)?)?;
            stmts.splice(idx..=idx, new);
            Ok(())
        }
    }
}

fn get_loop(stmts: &[Stmt], idx: usize) -> Result<&Stmt, TransformError> {
    match stmts.get(idx) {
        Some(s @ Stmt::Do { .. }) => Ok(s),
        _ => Err(TransformError::NotApplicable("target is not a do-loop")),
    }
}

/// Unrolls a loop by `factor`: main loop with step×factor and replicated,
/// offset-substituted bodies, plus a tail loop for the remainder.
pub fn unroll(stmt: &Stmt, factor: u32) -> Result<Vec<Stmt>, TransformError> {
    if factor < 2 {
        return Err(TransformError::BadParameter("unroll factor must be ≥ 2"));
    }
    let Stmt::Do {
        var,
        lb,
        ub,
        step,
        body,
        span,
    } = stmt
    else {
        return Err(TransformError::NotApplicable("unroll target is not a loop"));
    };
    let step_val = step.as_ref().map(|s| s.as_int()).unwrap_or(Some(1));
    let Some(step_val) = step_val else {
        return Err(TransformError::NotApplicable(
            "unroll needs a constant step",
        ));
    };

    let mut new_body = Vec::new();
    for k in 0..factor {
        let offset = k as i64 * step_val;
        let idx_expr = simplify_add(Expr::binary(
            BinOp::Add,
            Expr::Var(var.clone()),
            Expr::IntLit(offset),
        ));
        for s in body {
            new_body.push(subst_stmt(s, var, &idx_expr));
        }
    }
    // Main loop covers iterations that fit whole groups; the upper bound
    // shrinks so that var + (factor−1)·step stays within ub.
    let shrink = (factor as i64 - 1) * step_val;
    let main_ub = simplify_add(Expr::binary(BinOp::Add, ub.clone(), Expr::IntLit(-shrink)));
    let main = Stmt::Do {
        var: var.clone(),
        lb: lb.clone(),
        ub: main_ub,
        step: Some(Expr::IntLit(step_val * factor as i64)),
        body: new_body,
        span: *span,
    };
    // Tail loop: at most factor−1 iterations. Without an integer-division
    // form for the exact restart point, the tail conservatively re-checks
    // the last factor−1 candidates with the original body, guarded on a
    // max bound; cost-wise it contributes O(factor) iterations.
    let tail_lb = Expr::Intrinsic {
        func: Intrinsic::Max,
        args: vec![
            lb.clone(),
            simplify_add(Expr::binary(
                BinOp::Add,
                ub.clone(),
                Expr::IntLit(-shrink + step_val),
            )),
        ],
    };
    let tail = Stmt::Do {
        var: var.clone(),
        lb: tail_lb,
        ub: ub.clone(),
        step: step.clone(),
        body: body.clone(),
        span: *span,
    };
    Ok(vec![main, tail])
}

/// Swaps this loop with its single nested loop.
pub fn interchange(stmt: &Stmt) -> Result<Stmt, TransformError> {
    let Stmt::Do {
        var: v1,
        lb: lb1,
        ub: ub1,
        step: s1,
        body,
        span,
    } = stmt
    else {
        return Err(TransformError::NotApplicable(
            "interchange target is not a loop",
        ));
    };
    let [Stmt::Do {
        var: v2,
        lb: lb2,
        ub: ub2,
        step: s2,
        body: inner,
        span: span2,
    }] = &body[..]
    else {
        return Err(TransformError::NotApplicable(
            "interchange needs a perfectly nested pair",
        ));
    };
    // Triangular bounds referencing the outer variable cannot be swapped
    // by a pure header exchange.
    for e in [lb2, ub2] {
        if e.referenced_names().contains(&v1.to_string()) {
            return Err(TransformError::NotApplicable(
                "inner bounds depend on the outer index",
            ));
        }
    }
    Ok(Stmt::Do {
        var: v2.clone(),
        lb: lb2.clone(),
        ub: ub2.clone(),
        step: s2.clone(),
        body: vec![Stmt::Do {
            var: v1.clone(),
            lb: lb1.clone(),
            ub: ub1.clone(),
            step: s1.clone(),
            body: inner.clone(),
            span: *span,
        }],
        span: *span2,
    })
}

/// Whether `name` occurs anywhere in the expression.
fn expr_uses(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Var(n) => n == name,
        Expr::ArrayRef { name: n, indices } => {
            n == name || indices.iter().any(|i| expr_uses(i, name))
        }
        Expr::Unary { operand, .. } => expr_uses(operand, name),
        Expr::Binary { lhs, rhs, .. } => expr_uses(lhs, name) || expr_uses(rhs, name),
        Expr::Intrinsic { args, .. } => args.iter().any(|a| expr_uses(a, name)),
        Expr::IntLit(_) | Expr::RealLit(_) | Expr::LogicalLit(_) => false,
    }
}

/// Whether `name` occurs anywhere in the statement (as a variable, array,
/// loop control variable, or callee).
fn stmt_uses(stmt: &Stmt, name: &str) -> bool {
    match stmt {
        Stmt::Assign { target, value, .. } => expr_uses(target, name) || expr_uses(value, name),
        Stmt::Do {
            var,
            lb,
            ub,
            step,
            body,
            ..
        } => {
            var == name
                || expr_uses(lb, name)
                || expr_uses(ub, name)
                || step.as_ref().is_some_and(|s| expr_uses(s, name))
                || body.iter().any(|s| stmt_uses(s, name))
        }
        Stmt::DoWhile { cond, body, .. } => {
            expr_uses(cond, name) || body.iter().any(|s| stmt_uses(s, name))
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            expr_uses(cond, name)
                || then_body.iter().any(|s| stmt_uses(s, name))
                || else_body.iter().any(|s| stmt_uses(s, name))
        }
        Stmt::Call {
            name: callee, args, ..
        } => callee == name || args.iter().any(|a| expr_uses(a, name)),
        Stmt::Return { .. } => false,
    }
}

/// Strip-mines a loop into tiles of `size`.
pub fn tile(stmt: &Stmt, size: u32) -> Result<Stmt, TransformError> {
    if size < 2 {
        return Err(TransformError::BadParameter("tile size must be ≥ 2"));
    }
    let Stmt::Do {
        var,
        lb,
        ub,
        step,
        body,
        span,
    } = stmt
    else {
        return Err(TransformError::NotApplicable("tile target is not a loop"));
    };
    if step.is_some() && step.as_ref().and_then(|s| s.as_int()) != Some(1) {
        return Err(TransformError::NotApplicable("tiling requires unit step"));
    }
    // The tile-index variable must be a lexable identifier (the variant's
    // re-emitted source is re-parsed for canonicalization) and must not
    // capture a name the loop already uses; append underscores until
    // fresh. Keeping `var` as the prefix preserves its implicit type, so
    // the tile index stays an integer whenever the loop index is.
    let mut tile_var = format!("{var}_t");
    while stmt_uses(stmt, &tile_var) {
        tile_var.push('_');
    }
    let inner_ub = Expr::Intrinsic {
        func: Intrinsic::Min,
        args: vec![
            Expr::binary(
                BinOp::Add,
                Expr::Var(tile_var.clone()),
                Expr::IntLit(size as i64 - 1),
            ),
            ub.clone(),
        ],
    };
    Ok(Stmt::Do {
        var: tile_var.clone(),
        lb: lb.clone(),
        ub: ub.clone(),
        step: Some(Expr::IntLit(size as i64)),
        body: vec![Stmt::Do {
            var: var.clone(),
            lb: Expr::Var(tile_var),
            ub: inner_ub,
            step: None,
            body: body.clone(),
            span: *span,
        }],
        span: *span,
    })
}

/// Fuses two loops with identical headers into one.
pub fn fuse(a: &Stmt, b: &Stmt) -> Result<Stmt, TransformError> {
    let (
        Stmt::Do {
            var: v1,
            lb: lb1,
            ub: ub1,
            step: s1,
            body: b1,
            span,
        },
        Stmt::Do {
            var: v2,
            lb: lb2,
            ub: ub2,
            step: s2,
            body: b2,
            ..
        },
    ) = (a, b)
    else {
        return Err(TransformError::NotApplicable("fuse needs two loops"));
    };
    if v1 != v2 || lb1 != lb2 || ub1 != ub2 || s1 != s2 {
        return Err(TransformError::NotApplicable(
            "fuse needs identical headers",
        ));
    }
    let mut body = b1.clone();
    body.extend(b2.iter().cloned());
    Ok(Stmt::Do {
        var: v1.clone(),
        lb: lb1.clone(),
        ub: ub1.clone(),
        step: s1.clone(),
        body,
        span: *span,
    })
}

/// Splits a loop with `k` body statements into `k` loops.
pub fn distribute(stmt: &Stmt) -> Result<Vec<Stmt>, TransformError> {
    let Stmt::Do {
        var,
        lb,
        ub,
        step,
        body,
        span,
    } = stmt
    else {
        return Err(TransformError::NotApplicable(
            "distribute target is not a loop",
        ));
    };
    if body.len() < 2 {
        return Err(TransformError::NotApplicable(
            "distribute needs ≥ 2 body statements",
        ));
    }
    Ok(body
        .iter()
        .map(|s| Stmt::Do {
            var: var.clone(),
            lb: lb.clone(),
            ub: ub.clone(),
            step: step.clone(),
            body: vec![s.clone()],
            span: *span,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_frontend::parse;

    fn loop_of(src: &str) -> Vec<Stmt> {
        parse(src).unwrap().units.remove(0).body
    }

    const SAXPY: &str = "subroutine s(y, x, a, n)
        real y(n), x(n), a
        integer i, n
        do i = 1, n
          y(i) = y(i) + a * x(i)
        end do
      end";

    #[test]
    fn unroll_replicates_body() {
        let mut body = loop_of(SAXPY);
        apply(&mut body, 0, &Transform::Unroll(4)).unwrap();
        assert_eq!(body.len(), 2, "main + tail");
        let Stmt::Do {
            step,
            body: inner,
            ub,
            ..
        } = &body[0]
        else {
            panic!()
        };
        assert_eq!(step.as_ref().unwrap().as_int(), Some(4));
        assert_eq!(inner.len(), 4);
        assert_eq!(ub.to_string(), "(n + -3)");
        // Offsets 0..3 appear.
        let text = body[0].to_string();
        assert!(text.contains("y((i + 3))"), "{text}");
        assert!(text.contains("y(i)"), "{text}");
    }

    #[test]
    fn unroll_factor_one_rejected() {
        let mut body = loop_of(SAXPY);
        assert_eq!(
            apply(&mut body, 0, &Transform::Unroll(1)),
            Err(TransformError::BadParameter("unroll factor must be ≥ 2"))
        );
    }

    #[test]
    fn unrolled_source_reparses() {
        let mut prog = parse(SAXPY).unwrap();
        apply(&mut prog.units[0].body, 0, &Transform::Unroll(2)).unwrap();
        let emitted = prog.units[0].to_string();
        parse(&emitted).unwrap_or_else(|e| panic!("reparse failed: {e}\n{emitted}"));
    }

    const NEST: &str = "subroutine s(a, n, m)
        real a(n,m)
        integer i, j, n, m
        do i = 1, n
          do j = 1, m
            a(i,j) = 0.0
          end do
        end do
      end";

    #[test]
    fn interchange_swaps_headers() {
        let mut body = loop_of(NEST);
        apply(&mut body, 0, &Transform::Interchange).unwrap();
        let Stmt::Do {
            var, body: inner, ..
        } = &body[0]
        else {
            panic!()
        };
        assert_eq!(var, "j");
        let Stmt::Do { var: v2, .. } = &inner[0] else {
            panic!()
        };
        assert_eq!(v2, "i");
    }

    #[test]
    fn interchange_rejects_triangular() {
        let mut body = loop_of(
            "subroutine s(a, n)
               real a(n,n)
               integer i, j, n
               do i = 1, n
                 do j = i, n
                   a(i,j) = 0.0
                 end do
               end do
             end",
        );
        assert!(matches!(
            apply(&mut body, 0, &Transform::Interchange),
            Err(TransformError::NotApplicable(_))
        ));
    }

    #[test]
    fn interchange_rejects_imperfect_nest() {
        let mut body = loop_of(
            "subroutine s(a, n)
               real a(n)
               integer i, j, n
               do i = 1, n
                 a(i) = 0.0
                 do j = 1, n
                   a(j) = 1.0
                 end do
               end do
             end",
        );
        assert!(apply(&mut body, 0, &Transform::Interchange).is_err());
    }

    #[test]
    fn tile_strip_mines() {
        let mut body = loop_of(SAXPY);
        apply(&mut body, 0, &Transform::Tile(64)).unwrap();
        let Stmt::Do {
            var,
            step,
            body: inner,
            ..
        } = &body[0]
        else {
            panic!()
        };
        assert_eq!(var, "i_t");
        assert_eq!(step.as_ref().unwrap().as_int(), Some(64));
        let Stmt::Do { var: iv, ub, .. } = &inner[0] else {
            panic!()
        };
        assert_eq!(iv, "i");
        assert!(ub.to_string().starts_with("min("), "{ub}");
    }

    #[test]
    fn fuse_concatenates_bodies() {
        let mut body = loop_of(
            "subroutine s(a, b, n)
               real a(n), b(n)
               integer i, n
               do i = 1, n
                 a(i) = 0.0
               end do
               do i = 1, n
                 b(i) = 1.0
               end do
             end",
        );
        apply(&mut body, 0, &Transform::Fuse).unwrap();
        assert_eq!(body.len(), 1);
        let Stmt::Do { body: inner, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(inner.len(), 2);
    }

    #[test]
    fn fuse_rejects_mismatched_headers() {
        let mut body = loop_of(
            "subroutine s(a, b, n, m)
               real a(n), b(m)
               integer i, n, m
               do i = 1, n
                 a(i) = 0.0
               end do
               do i = 1, m
                 b(i) = 1.0
               end do
             end",
        );
        assert!(apply(&mut body, 0, &Transform::Fuse).is_err());
    }

    #[test]
    fn distribute_splits() {
        let mut body = loop_of(
            "subroutine s(a, b, n)
               real a(n), b(n)
               integer i, n
               do i = 1, n
                 a(i) = 0.0
                 b(i) = 1.0
               end do
             end",
        );
        apply(&mut body, 0, &Transform::Distribute).unwrap();
        assert_eq!(body.len(), 2);
        for s in &body {
            let Stmt::Do { body: inner, .. } = s else {
                panic!()
            };
            assert_eq!(inner.len(), 1);
        }
    }

    #[test]
    fn subst_var_in_nested_expr() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::ArrayRef {
                name: "a".into(),
                indices: vec![Expr::Var("i".into())],
            },
            Expr::Var("i".into()),
        );
        let r = subst_var(&e, "i", &Expr::IntLit(7));
        assert_eq!(r.to_string(), "(a(7) + 7)");
    }
}
