//! Performance-guided program optimization (paper §3).
//!
//! The framework's consumer side: a catalog of [restructuring
//! transformations](transforms), [what-if costing](whatif) that applies a
//! transformation to a copy and symbolically compares the variants (§3.1),
//! variant [search] over transformation sequences (§3.2) — bounded
//! [e-graph saturation](egraph) over structural equivalence classes by
//! default, classic A* behind [`SearchStrategy::AStar`] — and
//! [run-time test generation](rtt) from crossover points and sensitivity
//! analysis (§3.4).
//!
//! # Example: does unrolling pay?
//!
//! ```
//! use presage_core::predictor::Predictor;
//! use presage_machine::machines;
//! use presage_opt::{transforms::Transform, whatif::compare_transform};
//!
//! let predictor = Predictor::new(machines::power_like());
//! let sub = presage_frontend::parse(
//!     "subroutine s(a, n)
//!        real a(n)
//!        integer i, n
//!        do i = 1, n
//!          a(i) = a(i) * 2.0 + 1.0
//!        end do
//!      end").unwrap().units.remove(0);
//! let (variant, cmp) = compare_transform(&sub, &[0], &Transform::Unroll(2), &predictor).unwrap();
//! println!("C(unrolled) − C(original) = {}", cmp.difference);
//! # let _ = variant;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod canon;
pub mod egraph;
pub mod partition;
pub mod profile;
pub mod reorder;
pub mod rtt;
pub mod search;
pub mod transforms;
pub mod whatif;

pub use cache::PredictionCache;
pub use canon::{canonical_key, fallback_key, parse_subroutine, structural_key};
pub use egraph::{EClass, EGraph};
pub use profile::ProfileData;
pub use search::{
    astar_search, astar_search_cached, search, search_cached, SearchConfig, SearchOptions,
    SearchResult, SearchStep, SearchStrategy,
};
pub use transforms::{Transform, TransformError};
pub use whatif::{compare_transform, loop_paths, transformed, WhatIfError};
