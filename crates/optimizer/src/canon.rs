//! Canonical identity of program variants — the one place the search,
//! the what-if comparator, and the prediction cache derive their keys.
//!
//! The A* search canonicalizes every variant by re-emitting its source
//! and re-parsing it: re-emission normalizes formatting, and re-parsing
//! normalizes AST shapes that print identically (so different
//! transformation sequences reaching the same program — transpositions —
//! collapse to one state). The canonical *key* is the span-insensitive
//! structural hash of the re-parsed AST
//! ([`presage_frontend::fold::subroutine_hash`]): a 16-byte value that
//! the closed set and the caches compare in O(1), instead of the O(|src|)
//! string keys this module replaces.
//!
//! Historically each call site had its own copy of this helper, and each
//! copy called `parse(..).unwrap()` — a transformation emitting
//! unparsable source panicked the whole search. [`canonical_key`]
//! propagates the error instead; the search skips and counts such
//! variants ([`crate::search::SearchResult::rejected_variants`]), and the
//! what-if comparator reports [`crate::whatif::WhatIfError::Canonicalize`].

use presage_frontend::diag::{FrontendError, Phase};
use presage_frontend::fold::{encode_subroutine, fold128, subroutine_hash, AST_SEED};
use presage_frontend::normalize;
use presage_frontend::{parse, Span, Subroutine};

/// Seed for [`fallback_key`]s. Distinct from [`AST_SEED`], so a raw
/// fallback hash lives in a different key family than every canonical
/// or structural key — an unrepresentable root can never alias a
/// representable variant.
const FALLBACK_SEED: u64 = AST_SEED ^ 0x4641_4c4c_4241_434b; // "FALLBACK"

/// Parses `src` and returns its first subroutine — the shared helper
/// behind every "source text in, one variant out" path (tests included).
///
/// # Errors
///
/// Any front-end error; also an error when the source parses but contains
/// no subroutine.
pub fn parse_subroutine(src: &str) -> Result<Subroutine, FrontendError> {
    let mut program = parse(src)?;
    if program.units.is_empty() {
        return Err(FrontendError::new(
            Phase::Parse,
            "no subroutine in source",
            Span::default(),
        ));
    }
    Ok(program.units.remove(0))
}

/// The canonical 128-bit key of a program variant: re-emit, re-parse,
/// hash the span-insensitive structure of the result.
///
/// Two variants share a key exactly when their canonical re-emissions
/// coincide — the same equivalence the search's closed set has always
/// used, now without materializing the string as the key.
///
/// # Errors
///
/// Returns the front-end error when the variant's re-emitted source does
/// not parse (a transformation produced an unrepresentable program). The
/// variant is invalid and must be rejected, not predicted.
pub fn canonical_key(sub: &Subroutine) -> Result<u128, FrontendError> {
    let canonical = parse_subroutine(&sub.to_string())?;
    Ok(subroutine_hash(&canonical))
}

/// The structural 128-bit key of a program variant: validate that the
/// variant is representable, then hash its
/// [normalized](presage_frontend::normalize::normalize) AST — no source
/// is printed, lexed, or parsed.
///
/// This key *refines* [`canonical_key`]: variants with equal canonical
/// keys always have equal structural keys (proven differentially over
/// the transform corpus in `tests/normalize_differential.rs`), and the
/// structural key additionally merges commutative-operand orderings and
/// alpha-equivalent loop variables — transformation transpositions the
/// textual pipeline only catches when they produce identical text.
///
/// # Errors
///
/// Returns the front-end error when the variant's re-emitted source
/// would not parse (the same rejection set as [`canonical_key`],
/// decided by [`presage_frontend::normalize::validate_emittable`]).
pub fn structural_key(sub: &Subroutine) -> Result<u128, FrontendError> {
    normalize::validate_emittable(sub)?;
    Ok(normalize::structural_hash(sub))
}

/// Last-resort key for a subroutine that does not canonicalize (an
/// unrepresentable *root* — derived variants are rejected instead): the
/// raw span-insensitive fold under [`FALLBACK_SEED`], so it cannot
/// collide with any canonical or structural key family.
pub fn fallback_key(sub: &Subroutine) -> u128 {
    let mut buf = Vec::with_capacity(256);
    encode_subroutine(&mut buf, sub);
    fold128(&buf, FALLBACK_SEED)
}

/// Test fixture: a structurally valid AST whose re-emission is not
/// parsable (the assignment target "variable" is keyword soup), modeling
/// a transformation that emits unrepresentable source. Shared by the
/// search/what-if negative tests.
#[cfg(test)]
pub(crate) fn malformed_variant() -> Subroutine {
    use presage_frontend::{Expr, Stmt};
    let mut sub = parse_subroutine(
        "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
    )
    .unwrap();
    sub.body.push(Stmt::Assign {
        target: Expr::Var("end do".into()),
        value: Expr::IntLit(0),
        span: Span::default(),
    });
    sub
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEST: &str = "subroutine s(a, n)
        real a(n,n)
        integer i, j, n
        do i = 1, n
          do j = 1, n
            a(i,j) = a(i,j) * 2.0 + 1.0
          end do
        end do
      end";

    #[test]
    fn key_is_layout_insensitive() {
        let a = parse_subroutine(NEST).unwrap();
        let b = parse_subroutine(&a.to_string()).unwrap();
        assert_eq!(canonical_key(&a).unwrap(), canonical_key(&b).unwrap());
    }

    #[test]
    fn key_distinguishes_programs() {
        let a = parse_subroutine(NEST).unwrap();
        let b = parse_subroutine(&NEST.replace("2.0", "4.0")).unwrap();
        assert_ne!(canonical_key(&a).unwrap(), canonical_key(&b).unwrap());
    }

    #[test]
    fn malformed_variant_is_an_error_not_a_panic() {
        assert!(canonical_key(&malformed_variant()).is_err());
    }

    #[test]
    fn structural_key_agrees_with_the_textual_oracle_on_rejection() {
        assert!(structural_key(&malformed_variant()).is_err());
        let ok = parse_subroutine(NEST).unwrap();
        assert!(structural_key(&ok).is_ok());
    }

    #[test]
    fn structural_key_refines_canonical_key() {
        // Textual-equal implies structural-equal …
        let a = parse_subroutine(NEST).unwrap();
        let b = parse_subroutine(&a.to_string()).unwrap();
        assert_eq!(structural_key(&a).unwrap(), structural_key(&b).unwrap());
        // … and structural merges loop-variable renames that textual
        // keeps apart.
        let renamed = parse_subroutine(&NEST.replace('j', "k")).unwrap();
        assert_ne!(canonical_key(&a).unwrap(), canonical_key(&renamed).unwrap());
        assert_eq!(
            structural_key(&a).unwrap(),
            structural_key(&renamed).unwrap()
        );
    }

    #[test]
    fn fallback_key_is_disjoint_from_canonical_families() {
        let a = parse_subroutine(NEST).unwrap();
        assert_ne!(fallback_key(&a), canonical_key(&a).unwrap());
        assert_ne!(fallback_key(&a), structural_key(&a).unwrap());
    }

    #[test]
    fn empty_source_is_an_error() {
        assert!(parse_subroutine("").is_err());
    }
}
