//! Canonical identity of program variants — the one place the search,
//! the what-if comparator, and the prediction cache derive their keys.
//!
//! The A* search canonicalizes every variant by re-emitting its source
//! and re-parsing it: re-emission normalizes formatting, and re-parsing
//! normalizes AST shapes that print identically (so different
//! transformation sequences reaching the same program — transpositions —
//! collapse to one state). The canonical *key* is the span-insensitive
//! structural hash of the re-parsed AST
//! ([`presage_frontend::fold::subroutine_hash`]): a 16-byte value that
//! the closed set and the caches compare in O(1), instead of the O(|src|)
//! string keys this module replaces.
//!
//! Historically each call site had its own copy of this helper, and each
//! copy called `parse(..).unwrap()` — a transformation emitting
//! unparsable source panicked the whole search. [`canonical_key`]
//! propagates the error instead; the search skips and counts such
//! variants ([`crate::search::SearchResult::rejected_variants`]), and the
//! what-if comparator reports [`crate::whatif::WhatIfError::Canonicalize`].

use presage_frontend::diag::{FrontendError, Phase};
use presage_frontend::fold::subroutine_hash;
use presage_frontend::{parse, Span, Subroutine};

/// Parses `src` and returns its first subroutine — the shared helper
/// behind every "source text in, one variant out" path (tests included).
///
/// # Errors
///
/// Any front-end error; also an error when the source parses but contains
/// no subroutine.
pub fn parse_subroutine(src: &str) -> Result<Subroutine, FrontendError> {
    let mut program = parse(src)?;
    if program.units.is_empty() {
        return Err(FrontendError::new(
            Phase::Parse,
            "no subroutine in source",
            Span::default(),
        ));
    }
    Ok(program.units.remove(0))
}

/// The canonical 128-bit key of a program variant: re-emit, re-parse,
/// hash the span-insensitive structure of the result.
///
/// Two variants share a key exactly when their canonical re-emissions
/// coincide — the same equivalence the search's closed set has always
/// used, now without materializing the string as the key.
///
/// # Errors
///
/// Returns the front-end error when the variant's re-emitted source does
/// not parse (a transformation produced an unrepresentable program). The
/// variant is invalid and must be rejected, not predicted.
pub fn canonical_key(sub: &Subroutine) -> Result<u128, FrontendError> {
    let canonical = parse_subroutine(&sub.to_string())?;
    Ok(subroutine_hash(&canonical))
}

/// Test fixture: a structurally valid AST whose re-emission is not
/// parsable (the assignment target "variable" is keyword soup), modeling
/// a transformation that emits unrepresentable source. Shared by the
/// search/what-if negative tests.
#[cfg(test)]
pub(crate) fn malformed_variant() -> Subroutine {
    use presage_frontend::{Expr, Stmt};
    let mut sub = parse_subroutine(
        "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
    )
    .unwrap();
    sub.body.push(Stmt::Assign {
        target: Expr::Var("end do".into()),
        value: Expr::IntLit(0),
        span: Span::default(),
    });
    sub
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEST: &str = "subroutine s(a, n)
        real a(n,n)
        integer i, j, n
        do i = 1, n
          do j = 1, n
            a(i,j) = a(i,j) * 2.0 + 1.0
          end do
        end do
      end";

    #[test]
    fn key_is_layout_insensitive() {
        let a = parse_subroutine(NEST).unwrap();
        let b = parse_subroutine(&a.to_string()).unwrap();
        assert_eq!(canonical_key(&a).unwrap(), canonical_key(&b).unwrap());
    }

    #[test]
    fn key_distinguishes_programs() {
        let a = parse_subroutine(NEST).unwrap();
        let b = parse_subroutine(&NEST.replace("2.0", "4.0")).unwrap();
        assert_ne!(canonical_key(&a).unwrap(), canonical_key(&b).unwrap());
    }

    #[test]
    fn malformed_variant_is_an_error_not_a_panic() {
        assert!(canonical_key(&malformed_variant()).is_err());
    }

    #[test]
    fn empty_source_is_an_error() {
        assert!(parse_subroutine("").is_err());
    }
}
