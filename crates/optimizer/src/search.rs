//! Systematic transformation-sequence search (paper §3.2).
//!
//! "Based on the symbolic performance comparison, the compiler can utilize
//! graph search algorithms, such as the A* algorithm, to choose program
//! transformation sequence systematically."
//!
//! Two engines share this module's configuration and result types,
//! selected by [`SearchStrategy`] on [`SearchConfig`]:
//!
//! * **A\*** (this file) — best-first over transformation sequences,
//!   states identified by their
//!   [canonical key](crate::canon::canonical_key) — the span-insensitive
//!   structural hash of the re-emitted, re-parsed source. Retained as
//!   the baseline and the differential oracle.
//! * **E-graph** ([`crate::egraph`]) — bounded saturation over
//!   structural equivalence classes keyed by
//!   [`crate::canon::structural_key`], which never prints or re-parses
//!   source.
//!
//! Moves are `(loop path, transformation)` pairs; the objective is the
//! predicted cost evaluated over the unknowns' ranges. With
//! [`SearchConfig::heuristic`] set, each expansion's moves are ordered
//! by the hottest block's [`Bottleneck`] verdict from
//! [`Predictor::explain`] — attack the saturated unit first.
//!
//! A variant whose re-emitted source does not parse (a transformation
//! produced an unrepresentable program) is skipped and counted in
//! [`SearchResult::rejected_variants`]; it never aborts the search.

use crate::cache::PredictionCache;
use crate::canon;
use crate::transforms::Transform;
use crate::whatif::{loop_paths, transformed};
use presage_core::explain::Bottleneck;
use presage_core::predictor::Predictor;
use presage_frontend::Subroutine;
use presage_symbolic::PerfExpr;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Options for the search.
#[derive(Clone, Debug)]
pub struct SearchOptions {
    /// Unroll factors to try.
    pub unroll_factors: Vec<u32>,
    /// Tile sizes to try.
    pub tile_sizes: Vec<u32>,
    /// Consider interchange/fuse/distribute.
    pub structural: bool,
    /// Maximum number of states to expand.
    pub max_expansions: usize,
    /// Maximum sequence length.
    pub max_depth: usize,
    /// Evaluation point overrides (variable name → value); unknowns not
    /// listed evaluate at their range midpoints.
    pub eval_point: HashMap<String, f64>,
    /// Worker threads for candidate evaluation: each expansion's unseen
    /// successor variants are predicted concurrently. `1` evaluates
    /// inline; results are deterministic for any value (candidates are
    /// generated, deduplicated, and merged in move order — only the pure
    /// predictions run concurrently).
    pub workers: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            unroll_factors: vec![2, 4],
            tile_sizes: vec![32],
            structural: true,
            max_expansions: 64,
            max_depth: 3,
            eval_point: HashMap::new(),
            workers: 1,
        }
    }
}

/// Which engine explores the variant space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Best-first A* over transformation *sequences*, states keyed by
    /// the textual [`canon::canonical_key`]. Retained as the baseline
    /// and differential oracle for the e-graph.
    AStar,
    /// Bounded e-graph saturation over structural equivalence
    /// *classes* ([`crate::egraph`]), states keyed by
    /// [`canon::structural_key`] — no source is printed or re-parsed
    /// per candidate.
    EGraph,
}

/// Top-level search configuration: the engine plus its shared options.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Which engine runs.
    pub strategy: SearchStrategy,
    /// Options shared by both engines (budgets, factors, eval point).
    pub options: SearchOptions,
    /// E-graph node budget: saturation stops growing new e-classes at
    /// this many (ignored by A*, which bounds on
    /// [`SearchOptions::max_expansions`] alone).
    pub node_budget: usize,
    /// Order each expansion's moves by the hottest block's
    /// [`Bottleneck`] verdict ([`Predictor::explain`]): attack the
    /// saturated unit first. Ordering only — no move is pruned, so the
    /// reachable set is unchanged.
    pub heuristic: bool,
    /// Skip (never predict) terminal candidates whose admissible lower
    /// bound ([`Predictor::lower_bound_subroutine`]) already exceeds the
    /// incumbent's cost. Admissibility keeps the winner invariant: a
    /// pruned candidate's true cost is at least its bound, which is
    /// above a cost the search has already achieved.
    pub prune: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            strategy: SearchStrategy::EGraph,
            options: SearchOptions::default(),
            node_budget: 256,
            heuristic: true,
            prune: true,
        }
    }
}

/// One applied step of the winning sequence.
#[derive(Clone, Debug)]
pub struct SearchStep {
    /// Loop path the transformation applied to.
    pub path: Vec<usize>,
    /// The transformation.
    pub transform: Transform,
    /// Predicted cost after the step.
    pub cost: f64,
}

/// Result of a search.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The best variant found.
    pub best: Subroutine,
    /// Its symbolic cost.
    pub best_expr: PerfExpr,
    /// Its evaluated cost.
    pub best_cost: f64,
    /// Cost of the unmodified program.
    pub original_cost: f64,
    /// The applied sequence.
    pub sequence: Vec<SearchStep>,
    /// States expanded.
    pub expansions: usize,
    /// Candidate variants evaluated.
    pub evaluated: usize,
    /// Candidate predictions served from the memo table.
    pub cache_hits: u64,
    /// Candidate predictions computed from scratch.
    pub cache_misses: u64,
    /// Candidate variants discarded because their re-emitted source
    /// would not parse (the transformation produced an unrepresentable
    /// program) — plus one when the *original* does not canonicalize
    /// and the search fell back to [`canon::fallback_key`].
    pub rejected_variants: usize,
    /// Candidate variants that keyed to an already-known state — the
    /// transpositions the canonical key collapses (A*: closed-set
    /// duplicates; e-graph: e-class merges).
    pub merged_variants: usize,
    /// Candidate variants never predicted because their admissible
    /// lower bound exceeded the incumbent's cost
    /// ([`SearchConfig::prune`]) — the predictions the bound avoided.
    pub pruned_variants: usize,
    /// Value of [`SearchResult::evaluated`] when the winning variant
    /// was costed (0 when the original wins): how much exploration the
    /// result actually needed, the number the move-ordering heuristic
    /// drives down.
    pub best_found_at: usize,
}

impl SearchResult {
    /// Speedup of the best variant over the original.
    pub fn speedup(&self) -> f64 {
        if self.best_cost > 0.0 {
            self.original_cost / self.best_cost
        } else {
            1.0
        }
    }
}

struct Node {
    f: f64,
    sub: Subroutine,
    sequence: Vec<SearchStep>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f.
        other.f.partial_cmp(&self.f).unwrap_or(Ordering::Equal)
    }
}

pub(crate) fn evaluate(expr: &PerfExpr, opts: &SearchOptions) -> f64 {
    expr.eval_with_defaults(&bindings_of(opts))
}

/// Evaluation-point bindings shared by the objective ([`evaluate`]) and
/// the admissible lower bound, so both sides of a prune comparison see
/// the same point.
pub(crate) fn bindings_of(opts: &SearchOptions) -> HashMap<presage_symbolic::Symbol, f64> {
    opts.eval_point
        .iter()
        .map(|(k, v)| (presage_symbolic::Symbol::new(k), *v))
        .collect()
}

/// True when an admissible floor proves a candidate cannot beat the
/// incumbent. The tolerance mirrors the winner comparisons elsewhere: a
/// bound that merely *ties* the incumbent never prunes, so a variant
/// exactly as good as the incumbent is still evaluated.
pub(crate) fn bound_dominates(bound: f64, incumbent: f64) -> bool {
    bound > incumbent * (1.0 + 1e-9) + 1e-6
}

/// Memo key for a variant's numeric lower bound: the canonical key
/// folded with the evaluation point. Bounds, unlike the symbolic
/// predictions, are only sound at the point they were computed for, so
/// the point participates in the key — one [`PredictionCache`] shared
/// across a restructuring session that sweeps eval points keeps each
/// point's bounds separate.
pub(crate) fn bound_key(key: u128, opts: &SearchOptions) -> u128 {
    let mut buf = Vec::with_capacity(16 + 16 * opts.eval_point.len());
    buf.extend_from_slice(&key.to_le_bytes());
    let mut point: Vec<(&String, &f64)> = opts.eval_point.iter().collect();
    point.sort_by_key(|(name, _)| name.as_str());
    for (name, value) in point {
        buf.extend_from_slice(name.as_bytes());
        buf.push(0);
        buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    presage_frontend::fold::fold128(&buf, BOUND_KEY_SEED)
}

/// Seed for [`bound_key`], disjoint from the AST/canonicalization seeds
/// so salted bound keys can never alias canonical keys.
const BOUND_KEY_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Memo key for one rewrite edge: the parent class's canonical key
/// folded with the move. The parent key identifies the parent's content
/// under the same identity the whole engine trusts, and transform
/// application is a pure function of that content and the move, so the
/// edge's outcome ([`crate::cache::EdgeOutcome`]) is memoizable across
/// searches.
pub(crate) fn edge_key(parent: u128, path: &[usize], t: &Transform) -> u128 {
    let mut buf = Vec::with_capacity(16 + 4 * path.len() + 6);
    buf.extend_from_slice(&parent.to_le_bytes());
    for &p in path {
        buf.extend_from_slice(&(p as u32).to_le_bytes());
    }
    match t {
        Transform::Unroll(f) => {
            buf.push(1);
            buf.extend_from_slice(&f.to_le_bytes());
        }
        Transform::Interchange => buf.push(2),
        Transform::Tile(s) => {
            buf.push(3);
            buf.extend_from_slice(&s.to_le_bytes());
        }
        Transform::Fuse => buf.push(4),
        Transform::Distribute => buf.push(5),
    }
    presage_frontend::fold::fold128(&buf, EDGE_KEY_SEED)
}

/// Seed for [`edge_key`], disjoint from every other key family.
const EDGE_KEY_SEED: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// Runs the A* search from `sub`, returning the cheapest variant found.
///
/// Uses a search-private memo table; use [`astar_search_cached`] to share
/// one [`PredictionCache`] across repeated searches.
pub fn astar_search(sub: &Subroutine, predictor: &Predictor, opts: &SearchOptions) -> SearchResult {
    astar_search_cached(sub, predictor, opts, &PredictionCache::new())
}

/// Runs the engine selected by `config` with a private cache.
pub fn search(sub: &Subroutine, predictor: &Predictor, config: &SearchConfig) -> SearchResult {
    search_cached(sub, predictor, config, &PredictionCache::new())
}

/// Runs the engine selected by `config` with a caller-owned
/// [`PredictionCache`] — the one entry point both strategies share.
pub fn search_cached(
    sub: &Subroutine,
    predictor: &Predictor,
    config: &SearchConfig,
    cache: &PredictionCache,
) -> SearchResult {
    match config.strategy {
        SearchStrategy::AStar => astar_with(
            sub,
            predictor,
            &config.options,
            cache,
            config.heuristic,
            config.prune,
        ),
        SearchStrategy::EGraph => {
            crate::egraph::egraph_search_cached(sub, predictor, config, cache)
        }
    }
}

/// Every `(loop path, transformation)` move `opts` allows from `sub`,
/// in the deterministic catalog order both engines share.
pub(crate) fn generate_moves(
    sub: &Subroutine,
    opts: &SearchOptions,
) -> Vec<(Vec<usize>, Transform)> {
    let mut moves: Vec<(Vec<usize>, Transform)> = Vec::new();
    for path in loop_paths(sub) {
        for &k in &opts.unroll_factors {
            moves.push((path.clone(), Transform::Unroll(k)));
        }
        for &s in &opts.tile_sizes {
            moves.push((path.clone(), Transform::Tile(s)));
        }
        if opts.structural {
            moves.push((path.clone(), Transform::Interchange));
            moves.push((path.clone(), Transform::Fuse));
            moves.push((path.clone(), Transform::Distribute));
        }
    }
    moves
}

/// Stable-sorts `moves` by the hottest block's bottleneck verdict: a
/// latency-bound block tries bubble-fillers (unroll, fuse) first, a
/// resource-bound block tries restructurers (interchange, tile) first.
/// Ordering is advisory — every move is still generated — so this can
/// change *when* the winner is found, never *whether*.
pub(crate) fn order_moves(
    moves: &mut [(Vec<usize>, Transform)],
    predictor: &Predictor,
    sub: &Subroutine,
) {
    let Ok(report) = predictor.explain_subroutine(sub) else {
        return;
    };
    let Some(hot) = report.hottest() else {
        return;
    };
    let bottleneck = hot.bottleneck;
    moves.sort_by_key(|(_, t)| match bottleneck {
        Bottleneck::Latency => match t {
            Transform::Unroll(_) => 0,
            Transform::Fuse => 1,
            Transform::Distribute => 2,
            Transform::Interchange => 3,
            Transform::Tile(_) => 4,
        },
        Bottleneck::Resource(_) => match t {
            Transform::Interchange => 0,
            Transform::Tile(_) => 1,
            Transform::Distribute => 2,
            Transform::Fuse => 3,
            Transform::Unroll(_) => 4,
        },
        Bottleneck::Empty => 0,
    });
}

/// Runs the A* search with a caller-owned [`PredictionCache`].
///
/// The cache key is the variant's [canonical key](canon::canonical_key)
/// and the cached value is its symbolic cost, so the table is sound
/// across searches with different [`SearchOptions::eval_point`]s — the
/// restructuring workload the paper targets ("call repeatedly during
/// restructuring") re-predicts nothing it has already costed.
///
/// Runs with ordering and pruning both off — this entry point is the
/// differential oracle the pruned engines are checked against, so it
/// must visit the unrestricted frontier.
pub fn astar_search_cached(
    sub: &Subroutine,
    predictor: &Predictor,
    opts: &SearchOptions,
    cache: &PredictionCache,
) -> SearchResult {
    astar_with(sub, predictor, opts, cache, false, false)
}

/// The A* engine; `heuristic` enables [`order_moves`] per expansion,
/// `prune` the admissible lower-bound skip on terminal candidates.
fn astar_with(
    sub: &Subroutine,
    predictor: &Predictor,
    opts: &SearchOptions,
    cache: &PredictionCache,
    heuristic: bool,
    prune: bool,
) -> SearchResult {
    let hits_before = cache.hits();
    let misses_before = cache.misses();
    let mut evaluated = 0usize;
    let mut expansions = 0usize;
    let mut rejected = 0usize;
    let mut merged = 0usize;
    let mut pruned = 0usize;
    let bindings = bindings_of(opts);
    // A root that does not canonicalize still searches, under a key
    // from the disjoint fallback family ([`canon::fallback_key`]) so it
    // cannot alias a variant's canonical key; the fallback is counted
    // as a rejection. Only *derived* variants are skipped outright.
    let original_key = match canon::canonical_key(sub) {
        Ok(key) => key,
        Err(_) => {
            rejected += 1;
            canon::fallback_key(sub)
        }
    };
    let original_expr = cache
        .cost_of(original_key, sub, predictor)
        .expect("original program must predict");
    let original_cost = evaluate(&original_expr, opts);

    let mut open = BinaryHeap::new();
    let mut closed: HashSet<u128> = HashSet::new();

    let mut best = SearchResult {
        best: sub.clone(),
        best_expr: original_expr.clone(),
        best_cost: original_cost,
        original_cost,
        sequence: Vec::new(),
        expansions: 0,
        evaluated: 0,
        cache_hits: 0,
        cache_misses: 0,
        rejected_variants: 0,
        merged_variants: 0,
        pruned_variants: 0,
        best_found_at: 0,
    };

    open.push(Node {
        f: original_cost,
        sub: sub.clone(),
        sequence: Vec::new(),
    });
    closed.insert(original_key);

    while let Some(node) = open.pop() {
        if expansions >= opts.max_expansions {
            break;
        }
        expansions += 1;
        if node.sequence.len() >= opts.max_depth {
            continue;
        }

        let mut moves = generate_moves(&node.sub, opts);
        if heuristic {
            order_moves(&mut moves, predictor, &node.sub);
        }

        // Apply transformations and deduplicate serially (cheap and
        // order-sensitive), then predict the surviving unseen variants —
        // the expensive pure step — concurrently.
        let incumbent = best.best_cost;
        let terminal = node.sequence.len() + 1 >= opts.max_depth;
        let candidates: Vec<(Vec<usize>, Transform, Subroutine, u128)> = moves
            .into_iter()
            .filter_map(|(path, t)| {
                let variant = transformed(&node.sub, &path, &t).ok()?;
                let key = match canon::canonical_key(&variant) {
                    Ok(key) => key,
                    Err(_) => {
                        rejected += 1;
                        return None;
                    }
                };
                if !closed.insert(key) {
                    merged += 1;
                    return None;
                }
                // Terminal candidates are evaluated but never expanded,
                // so an admissible floor above the incumbent proves they
                // cannot affect the result — skip the prediction
                // entirely (unless it is already memoized and free).
                if prune && terminal && !cache.contains(key) {
                    let bound = cache.bound_of(bound_key(key, opts), || {
                        predictor.lower_bound_subroutine(&variant, &bindings).ok()
                    });
                    if let Some(bound) = bound {
                        if bound_dominates(bound, incumbent) {
                            pruned += 1;
                            return None;
                        }
                    }
                }
                Some((path, t, variant, key))
            })
            .collect();
        let exprs = evaluate_candidates(&candidates, predictor, cache, opts.workers);

        for ((path, t, variant, _), expr) in candidates.into_iter().zip(exprs) {
            let Some(expr) = expr else {
                continue;
            };
            evaluated += 1;
            let cost = evaluate(&expr, opts);
            let mut sequence = node.sequence.clone();
            sequence.push(SearchStep {
                path,
                transform: t,
                cost,
            });
            if cost < best.best_cost {
                best.best = variant.clone();
                best.best_expr = expr.clone();
                best.best_cost = cost;
                best.sequence = sequence.clone();
                best.best_found_at = evaluated;
            }
            open.push(Node {
                f: cost,
                sub: variant,
                sequence,
            });
        }
    }

    best.expansions = expansions;
    best.evaluated = evaluated;
    best.cache_hits = cache.hits() - hits_before;
    best.cache_misses = cache.misses() - misses_before;
    best.rejected_variants = rejected;
    best.merged_variants = merged;
    best.pruned_variants = pruned;
    best
}

/// Predicts each candidate's cost, fanning out over `workers` scoped
/// threads when it pays. Results come back in candidate order regardless
/// of worker count, so the search stays deterministic.
pub(crate) fn evaluate_candidates(
    candidates: &[(Vec<usize>, Transform, Subroutine, u128)],
    predictor: &Predictor,
    cache: &PredictionCache,
    workers: usize,
) -> Vec<Option<PerfExpr>> {
    let workers = workers.max(1).min(candidates.len());
    if workers <= 1 {
        return candidates
            .iter()
            .map(|(_, _, variant, key)| cache.cost_of(*key, variant, predictor))
            .collect();
    }
    let mut out: Vec<Option<PerfExpr>> = vec![None; candidates.len()];
    let chunk = candidates.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (results, work) in out.chunks_mut(chunk).zip(candidates.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, (_, _, variant, key)) in results.iter_mut().zip(work) {
                    *slot = cache.cost_of(*key, variant, predictor);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::machines;

    fn sub(src: &str) -> Subroutine {
        canon::parse_subroutine(src).unwrap()
    }

    #[test]
    fn search_never_worsens() {
        let predictor = Predictor::new(machines::power_like());
        let s = sub("subroutine s(a, n)
               real a(n,n)
               integer i, j, n
               do i = 1, n
                 do j = 1, n
                   a(i,j) = a(i,j) * 2.0 + 1.0
                 end do
               end do
             end");
        let opts = SearchOptions {
            max_expansions: 8,
            max_depth: 2,
            ..Default::default()
        };
        let r = astar_search(&s, &predictor, &opts);
        assert!(r.best_cost <= r.original_cost + 1e-9);
        assert!(r.speedup() >= 1.0);
        assert!(r.expansions >= 1);
    }

    #[test]
    fn search_finds_profitable_transform_under_focus_limits() {
        // On risc1 (scalar, latency-3 FP), a dependence chain across the
        // statement leaves pipeline bubbles per iteration; distributing or
        // unrolling can help. Mostly we assert the machinery explores.
        let predictor = Predictor::new(machines::risc1());
        let s = sub("subroutine s(a, b, n)
               real a(n), b(n)
               integer i, n
               do i = 1, n
                 a(i) = b(i) * 2.0 + 1.0
               end do
             end");
        let opts = SearchOptions {
            max_expansions: 6,
            max_depth: 1,
            ..Default::default()
        };
        let r = astar_search(&s, &predictor, &opts);
        assert!(r.evaluated > 0);
        assert!(r.best_cost <= r.original_cost + 1e-9);
    }

    #[test]
    fn sequence_reports_steps() {
        let predictor = Predictor::new(machines::power_like());
        let s = sub("subroutine s(a, b, n)
               real a(n), b(n)
               integer i, n
               do i = 1, n
                 a(i) = 0.0
               end do
               do i = 1, n
                 b(i) = 0.0
               end do
             end");
        let opts = SearchOptions {
            max_expansions: 10,
            max_depth: 2,
            ..Default::default()
        };
        let r = astar_search(&s, &predictor, &opts);
        for step in &r.sequence {
            assert!(step.cost.is_finite());
        }
    }

    #[test]
    fn repeated_search_is_served_from_cache() {
        let predictor = Predictor::new(machines::power_like());
        let s = sub("subroutine s(a, n)
               real a(n,n)
               integer i, j, n
               do i = 1, n
                 do j = 1, n
                   a(i,j) = a(i,j) * 2.0 + 1.0
                 end do
               end do
             end");
        let opts = SearchOptions {
            max_expansions: 6,
            max_depth: 2,
            ..Default::default()
        };
        let cache = PredictionCache::new();
        let first = astar_search_cached(&s, &predictor, &opts, &cache);
        assert_eq!(first.cache_hits, 0, "fresh cache cannot hit");
        assert!(first.cache_misses > 0);
        // Same search again: every prediction is memoized. A different
        // eval point is still sound — the cached PerfExpr is symbolic.
        let opts2 = SearchOptions {
            eval_point: HashMap::from([("n".to_string(), 512.0)]),
            ..opts.clone()
        };
        let second = astar_search_cached(&s, &predictor, &opts2, &cache);
        assert_eq!(second.cache_misses, 0, "rerun must not re-predict");
        assert!(second.cache_hits >= first.cache_misses);
        assert_eq!(second.best.to_string(), first.best.to_string());
    }

    #[test]
    fn workers_do_not_change_the_answer() {
        let predictor = Predictor::new(machines::wide4());
        let s = sub("subroutine s(a, b, n)
               real a(n,n), b(n,n)
               integer i, j, n
               do i = 1, n
                 do j = 1, n
                   a(i,j) = b(i,j) + a(i,j) * 3.0
                 end do
               end do
             end");
        let serial_opts = SearchOptions {
            max_expansions: 10,
            max_depth: 2,
            workers: 1,
            ..Default::default()
        };
        let parallel_opts = SearchOptions {
            workers: 4,
            ..serial_opts.clone()
        };
        let serial = astar_search(&s, &predictor, &serial_opts);
        let parallel = astar_search(&s, &predictor, &parallel_opts);
        assert_eq!(serial.best_cost, parallel.best_cost);
        assert_eq!(serial.best.to_string(), parallel.best.to_string());
        assert_eq!(serial.evaluated, parallel.evaluated);
        assert_eq!(serial.expansions, parallel.expansions);
    }

    #[test]
    fn malformed_variants_are_rejected_not_fatal() {
        // Every variant derived from this root inherits a statement whose
        // re-emission does not parse; each must be counted and skipped,
        // and the search must still return the (predictable) original.
        let predictor = Predictor::new(machines::power_like());
        let s = canon::malformed_variant();
        let opts = SearchOptions {
            max_expansions: 4,
            max_depth: 2,
            ..Default::default()
        };
        let r = astar_search(&s, &predictor, &opts);
        assert!(
            r.rejected_variants > 0,
            "variants should have been rejected"
        );
        assert!(r.sequence.is_empty(), "no unrepresentable variant may win");
        assert_eq!(r.best.to_string(), s.to_string());
        assert_eq!(r.best_cost, r.original_cost);
    }

    #[test]
    fn respects_expansion_budget() {
        let predictor = Predictor::new(machines::power_like());
        let s = sub(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
        );
        let opts = SearchOptions {
            max_expansions: 2,
            max_depth: 5,
            ..Default::default()
        };
        let r = astar_search(&s, &predictor, &opts);
        assert!(r.expansions <= 2);
    }
}
