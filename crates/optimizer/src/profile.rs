//! Profiling support (paper §3.4).
//!
//! "Profiling can be used to eliminate some variables that result from
//! unknown values in the control structures (such as the branching
//! probabilities of conditional statements). This is useful when the
//! program behavior is relatively independent of the input data."
//!
//! A [`ProfileData`] maps observed unknowns (loop trip counts, branch
//! probabilities) to values; applying it to a performance expression binds
//! exactly those unknowns, leaving everything else symbolic — profiling
//! narrows, it never replaces, the symbolic representation.

use presage_symbolic::{PerfExpr, Rational, Symbol, VarKind};
use std::collections::HashMap;
use std::fmt;

/// Observed run-time behavior to fold into predictions.
#[derive(Clone, Debug, Default)]
pub struct ProfileData {
    observations: HashMap<String, f64>,
}

impl ProfileData {
    /// An empty profile.
    pub fn new() -> ProfileData {
        ProfileData::default()
    }

    /// Records an observed value for a symbolic unknown (a loop bound
    /// variable like `n`, or a probability symbol like `p$(x > 0.5)`).
    pub fn observe(&mut self, symbol: impl Into<String>, value: f64) -> &mut Self {
        self.observations.insert(symbol.into(), value);
        self
    }

    /// Records a branch probability, clamped to `[0, 1]`.
    pub fn observe_branch(&mut self, symbol: impl Into<String>, taken_fraction: f64) -> &mut Self {
        self.observe(symbol, taken_fraction.clamp(0.0, 1.0))
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Returns `true` when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Binds every observed unknown in `expr`, returning the narrowed
    /// expression. Observations for symbols the expression does not
    /// mention are ignored; unknowns without observations stay symbolic.
    pub fn apply(&self, expr: &PerfExpr) -> PerfExpr {
        let mut out = expr.clone();
        for (name, value) in &self.observations {
            let sym = Symbol::new(name);
            if !out.poly().contains_symbol(&sym) {
                continue;
            }
            let rational = Rational::new((value * 1000.0).round() as i128, 1000);
            if let Ok(bound) = out.bind(&sym, rational) {
                out = bound;
            }
        }
        out
    }

    /// The unknowns of `expr` not covered by this profile — what §3.4
    /// would route to run-time tests instead.
    pub fn uncovered(&self, expr: &PerfExpr) -> Vec<Symbol> {
        expr.vars()
            .keys()
            .filter(|s| !self.observations.contains_key(s.name()))
            .cloned()
            .collect()
    }

    /// The branch-probability unknowns of `expr` this profile would
    /// eliminate (the paper's primary profiling target).
    pub fn eliminable_branch_probs(&self, expr: &PerfExpr) -> Vec<Symbol> {
        expr.vars()
            .iter()
            .filter(|(s, i)| {
                i.kind == VarKind::BranchProb && self.observations.contains_key(s.name())
            })
            .map(|(s, _)| s.clone())
            .collect()
    }
}

impl fmt::Display for ProfileData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "profile ({} observations):", self.observations.len())?;
        let mut keys: Vec<&String> = self.observations.keys().collect();
        keys.sort();
        for k in keys {
            writeln!(f, "  {k} = {}", self.observations[k])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_symbolic::VarInfo;

    fn expr_with_prob() -> PerfExpr {
        let n = Symbol::new("n");
        let p = Symbol::new("p$(x > 0.5)");
        let body = PerfExpr::conditional(p, &PerfExpr::cycles(40), &PerfExpr::cycles(4));
        body.repeat_symbolic(n, VarInfo::loop_bound(1.0, 1e6))
    }

    #[test]
    fn binding_branch_probability() {
        let e = expr_with_prob();
        assert_eq!(e.vars().len(), 2);
        let mut prof = ProfileData::new();
        prof.observe_branch("p$(x > 0.5)", 0.25);
        let narrowed = prof.apply(&e);
        // p eliminated: 0.25·40 + 0.75·4 = 13 per iteration.
        assert_eq!(narrowed.vars().len(), 1);
        assert_eq!(narrowed.poly().to_string(), "13*n");
    }

    #[test]
    fn binding_everything_makes_concrete() {
        let e = expr_with_prob();
        let mut prof = ProfileData::new();
        prof.observe_branch("p$(x > 0.5)", 0.5).observe("n", 100.0);
        let narrowed = prof.apply(&e);
        assert!(narrowed.is_concrete());
        assert_eq!(
            narrowed.concrete_cycles().unwrap(),
            Rational::from_int(2200)
        );
    }

    #[test]
    fn irrelevant_observations_ignored() {
        let e = expr_with_prob();
        let mut prof = ProfileData::new();
        prof.observe("zz", 7.0);
        assert_eq!(prof.apply(&e), e);
    }

    #[test]
    fn clamping_probabilities() {
        let mut prof = ProfileData::new();
        prof.observe_branch("p", 3.0);
        let p = Symbol::new("p");
        let e = PerfExpr::var(p, VarInfo::branch_prob());
        let narrowed = prof.apply(&e);
        assert_eq!(narrowed.concrete_cycles().unwrap(), Rational::ONE);
    }

    #[test]
    fn coverage_queries() {
        let e = expr_with_prob();
        let mut prof = ProfileData::new();
        prof.observe_branch("p$(x > 0.5)", 0.3);
        assert_eq!(prof.eliminable_branch_probs(&e).len(), 1);
        let unc = prof.uncovered(&e);
        assert_eq!(unc.len(), 1);
        assert_eq!(unc[0].name(), "n");
    }

    #[test]
    fn display_lists_observations() {
        let mut prof = ProfileData::new();
        prof.observe("n", 42.0);
        assert!(prof.to_string().contains("n = 42"));
        assert!(!prof.is_empty());
        assert_eq!(prof.len(), 1);
    }
}
