//! Memoized prediction for the transformation search (§3.2).
//!
//! The A* search canonicalizes every program variant by
//! [`crate::canon::canonical_key`] — the structural hash of its
//! re-emitted, re-parsed source, the same identity its closed set uses.
//! Prediction is a pure function of that identity and the machine, so
//! the cost of a variant can be memoized: within one search,
//! transpositions — different transformation sequences reaching the same
//! program — hit the cache, and across searches (the paper's "call
//! repeatedly during restructuring" workload) the entire frontier of a
//! re-run is served without re-prediction.
//!
//! The cached value is the *symbolic* [`PerfExpr`], which is independent
//! of the evaluation point, so one cache is sound across searches that
//! evaluate the unknowns at different points. Keys are 16-byte content
//! hashes, not variant source strings: lookups neither allocate nor
//! compare O(|src|) text.

use crate::whatif::cost_of;
use presage_core::predictor::Predictor;
use presage_frontend::Subroutine;
use presage_symbolic::PerfExpr;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independent lock shards; canonical keys are uniformly mixed
/// folds, so the low bits spread entries evenly and concurrent A* /
/// batch-prediction workers rarely contend on the same mutex.
const SHARDS: usize = 16;

/// A thread-safe memo table from a variant's canonical key to its
/// predicted symbolic cost.
///
/// Failed predictions are cached as `None` so the search never re-predicts
/// a variant it has already rejected. Interior mutability keeps the table
/// shareable across the parallel candidate-evaluation workers; the table
/// is split into [`SHARDS`] independently locked shards selected by the
/// low key bits.
#[derive(Debug)]
pub struct PredictionCache {
    shards: [Mutex<HashMap<u128, Option<PerfExpr>>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PredictionCache {
    fn default() -> PredictionCache {
        PredictionCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl PredictionCache {
    /// An empty cache.
    pub fn new() -> PredictionCache {
        PredictionCache::default()
    }

    /// Predicts `sub` under `key` (its [`crate::canon::canonical_key`]),
    /// serving a memoized result when one exists. Returns `None` when
    /// prediction fails (also memoized).
    ///
    /// The prediction itself runs outside the table lock, so concurrent
    /// workers only serialize on the lookup and the final insert.
    pub fn cost_of(&self, key: u128, sub: &Subroutine, predictor: &Predictor) -> Option<PerfExpr> {
        let shard = &self.shards[key as usize % SHARDS];
        if let Some(cached) = shard.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let expr = cost_of(sub, predictor).ok();
        shard.lock().unwrap().insert(key, expr.clone());
        expr
    }

    /// Number of lookups served from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to predict.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct variants memoized.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Returns `true` if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all memoized predictions and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::{canonical_key, parse_subroutine};
    use presage_machine::machines;

    fn sub(src: &str) -> Subroutine {
        parse_subroutine(src).unwrap()
    }

    #[test]
    fn second_lookup_hits() {
        let cache = PredictionCache::new();
        let predictor = Predictor::new(machines::power_like());
        let s = sub(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
        );
        let key = canonical_key(&s).unwrap();
        let first = cache.cost_of(key, &s, &predictor).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache.cost_of(key, &s, &predictor).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(first, second);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let cache = PredictionCache::new();
        let predictor = Predictor::new(machines::power_like());
        let s = sub(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
        );
        let key = canonical_key(&s).unwrap();
        cache.cost_of(key, &s, &predictor);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }
}
