//! Memoized prediction for the transformation search (§3.2).
//!
//! The A* search canonicalizes every program variant by
//! [`crate::canon::canonical_key`] — the structural hash of its
//! re-emitted, re-parsed source, the same identity its closed set uses.
//! Prediction is a pure function of that identity and the machine, so
//! the cost of a variant can be memoized: within one search,
//! transpositions — different transformation sequences reaching the same
//! program — hit the cache, and across searches (the paper's "call
//! repeatedly during restructuring" workload) the entire frontier of a
//! re-run is served without re-prediction.
//!
//! The cached value is the *symbolic* [`PerfExpr`], which is independent
//! of the evaluation point, so one cache is sound across searches that
//! evaluate the unknowns at different points. Keys are 16-byte content
//! hashes, not variant source strings: lookups neither allocate nor
//! compare O(|src|) text.

use crate::whatif::cost_of;
use presage_core::predictor::Predictor;
use presage_frontend::Subroutine;
use presage_symbolic::PerfExpr;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independent lock shards; canonical keys are uniformly mixed
/// folds, so the low bits spread entries evenly and concurrent A* /
/// batch-prediction workers rarely contend on the same mutex.
const SHARDS: usize = 16;

/// Outcome of one rewrite edge — applying `(path, transform)` to a
/// parent class — memoized by [`PredictionCache::edge_of`]. Transform
/// application is a pure function of the parent's content (which its
/// canonical key identifies), so repeated searches can disposition a
/// candidate that merges or prunes from its key alone, without
/// re-materializing the variant AST.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeOutcome {
    /// The transform does not apply at this path.
    NotApplicable,
    /// The variant materialized but could not be keyed.
    Unkeyable,
    /// The variant's canonical key.
    Child(u128),
}

/// A thread-safe memo table from a variant's canonical key to its
/// predicted symbolic cost.
///
/// Failed predictions are cached as `None` so the search never re-predicts
/// a variant it has already rejected. Interior mutability keeps the table
/// shareable across the parallel candidate-evaluation workers; the table
/// is split into [`SHARDS`] independently locked shards selected by the
/// low key bits.
#[derive(Debug)]
pub struct PredictionCache {
    shards: [Mutex<HashMap<u128, Option<PerfExpr>>>; SHARDS],
    /// Memoized admissible lower bounds, keyed by the variant's
    /// canonical key *salted with the evaluation point* (bounds are
    /// numeric, so unlike the symbolic predictions above they are only
    /// sound at the point they were computed for). `NAN` marks a failed
    /// bound computation — "never prunes", memoized like failed
    /// predictions so a search re-asks neither.
    bounds: [Mutex<HashMap<u128, f64>>; SHARDS],
    /// Memoized rewrite edges: `(parent key, path, transform)` folded
    /// into one key ([`crate::search::edge_key`]) → the child's
    /// disposition. Point-independent, like the predictions.
    edges: [Mutex<HashMap<u128, EdgeOutcome>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PredictionCache {
    fn default() -> PredictionCache {
        PredictionCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            bounds: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            edges: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl PredictionCache {
    /// An empty cache.
    pub fn new() -> PredictionCache {
        PredictionCache::default()
    }

    /// Predicts `sub` under `key` (its [`crate::canon::canonical_key`]),
    /// serving a memoized result when one exists. Returns `None` when
    /// prediction fails (also memoized).
    ///
    /// The prediction itself runs outside the table lock, so concurrent
    /// workers only serialize on the lookup and the final insert.
    pub fn cost_of(&self, key: u128, sub: &Subroutine, predictor: &Predictor) -> Option<PerfExpr> {
        let shard = &self.shards[key as usize % SHARDS];
        if let Some(cached) = shard.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let expr = cost_of(sub, predictor).ok();
        shard.lock().unwrap().insert(key, expr.clone());
        expr
    }

    /// True when `key` is already memoized (hit or failed prediction).
    /// A pure probe: unlike [`Self::cost_of`] it touches neither the
    /// hit nor the miss counter, so the searchers can ask "would this
    /// prediction be free?" before spending bound computation on a
    /// candidate — a memoized candidate is cheaper to look up than to
    /// bound.
    pub fn contains(&self, key: u128) -> bool {
        let shard = &self.shards[key as usize % SHARDS];
        shard.lock().unwrap().contains_key(&key)
    }

    /// Memoized admissible lower bound under `salted_key` (the variant's
    /// canonical key folded with the evaluation point — see
    /// [`crate::search::bound_key`]). `compute` runs at most once per
    /// key for the cache's lifetime; a `None` from it (bound computation
    /// failed) is memoized as "no bound" and never recomputed. Like
    /// [`Self::contains`], this table is counter-silent: hits/misses
    /// track predictions only.
    pub fn bound_of(&self, salted_key: u128, compute: impl FnOnce() -> Option<f64>) -> Option<f64> {
        let shard = &self.bounds[salted_key as usize % SHARDS];
        if let Some(&b) = shard.lock().unwrap().get(&salted_key) {
            return (!b.is_nan()).then_some(b);
        }
        let bound = compute();
        shard
            .lock()
            .unwrap()
            .insert(salted_key, bound.unwrap_or(f64::NAN));
        bound
    }

    /// Memoized rewrite-edge disposition under `edge_key` (see
    /// [`crate::search::edge_key`]). `compute` — materialize the variant
    /// and key it — runs at most once per edge for the cache's lifetime.
    /// Counter-silent like [`Self::contains`] and [`Self::bound_of`].
    pub fn edge_of(&self, edge_key: u128, compute: impl FnOnce() -> EdgeOutcome) -> EdgeOutcome {
        let shard = &self.edges[edge_key as usize % SHARDS];
        if let Some(&o) = shard.lock().unwrap().get(&edge_key) {
            return o;
        }
        let outcome = compute();
        shard.lock().unwrap().insert(edge_key, outcome);
        outcome
    }

    /// Number of lookups served from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to predict.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct variants memoized.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Returns `true` if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all memoized predictions, bounds, and edges and resets the
    /// counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
        for shard in &self.bounds {
            shard.lock().unwrap().clear();
        }
        for shard in &self.edges {
            shard.lock().unwrap().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::{canonical_key, parse_subroutine};
    use presage_machine::machines;

    fn sub(src: &str) -> Subroutine {
        parse_subroutine(src).unwrap()
    }

    #[test]
    fn second_lookup_hits() {
        let cache = PredictionCache::new();
        let predictor = Predictor::new(machines::power_like());
        let s = sub(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
        );
        let key = canonical_key(&s).unwrap();
        let first = cache.cost_of(key, &s, &predictor).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache.cost_of(key, &s, &predictor).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(first, second);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let cache = PredictionCache::new();
        let predictor = Predictor::new(machines::power_like());
        let s = sub(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
        );
        let key = canonical_key(&s).unwrap();
        cache.cost_of(key, &s, &predictor);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }
}
