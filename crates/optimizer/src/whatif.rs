//! What-if costing of transformations (paper §3).
//!
//! "When choosing among two transformations, only the changes that the
//! transformations have on the performance expressions need to be
//! computed. This usually allows cheaper evaluation before the
//! transformations are actually carried out."

use crate::transforms::{apply, Transform, TransformError};
use presage_core::predictor::{PredictError, Predictor};
use presage_frontend::diag::FrontendError;
use presage_frontend::{Stmt, Subroutine};
use presage_symbolic::{Comparison, PerfExpr};
use std::fmt;

/// Errors from what-if evaluation.
#[derive(Debug)]
pub enum WhatIfError {
    /// The transformation did not apply.
    Transform(TransformError),
    /// The transformed program failed to re-predict.
    Predict(PredictError),
    /// The statement path did not resolve to a loop body.
    BadPath,
    /// The transformed program's re-emitted source does not parse: the
    /// transformation produced an unrepresentable variant, which must be
    /// rejected rather than costed.
    Canonicalize(FrontendError),
}

impl fmt::Display for WhatIfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhatIfError::Transform(e) => write!(f, "{e}"),
            WhatIfError::Predict(e) => write!(f, "{e}"),
            WhatIfError::BadPath => f.write_str("statement path does not resolve"),
            WhatIfError::Canonicalize(e) => {
                write!(f, "variant does not canonicalize: {e}")
            }
        }
    }
}

impl std::error::Error for WhatIfError {}

impl From<TransformError> for WhatIfError {
    fn from(e: TransformError) -> Self {
        WhatIfError::Transform(e)
    }
}

impl From<PredictError> for WhatIfError {
    fn from(e: PredictError) -> Self {
        WhatIfError::Predict(e)
    }
}

impl From<FrontendError> for WhatIfError {
    fn from(e: FrontendError) -> Self {
        WhatIfError::Canonicalize(e)
    }
}

/// Navigates to the statement list containing the target: every path
/// element but the last descends into a `do` body; the last indexes the
/// target statement.
fn body_at_path<'a>(body: &'a mut Vec<Stmt>, path: &[usize]) -> Option<(&'a mut Vec<Stmt>, usize)> {
    match path {
        [] => None,
        [idx] => Some((body, *idx)),
        [first, rest @ ..] => match body.get_mut(*first)? {
            Stmt::Do { body: inner, .. } | Stmt::DoWhile { body: inner, .. } => {
                body_at_path(inner, rest)
            }
            _ => None,
        },
    }
}

/// Applies a transformation to a copy of the subroutine.
///
/// # Errors
///
/// [`WhatIfError::BadPath`] when the path does not lead through `do`
/// bodies; [`WhatIfError::Transform`] when the transformation rejects the
/// target.
pub fn transformed(
    sub: &Subroutine,
    path: &[usize],
    t: &Transform,
) -> Result<Subroutine, WhatIfError> {
    let mut out = sub.clone();
    let (body, idx) = body_at_path(&mut out.body, path).ok_or(WhatIfError::BadPath)?;
    apply(body, idx, t)?;
    Ok(out)
}

/// Predicts the cost of one subroutine variant.
///
/// # Errors
///
/// Propagates prediction failures.
pub fn cost_of(sub: &Subroutine, predictor: &Predictor) -> Result<PerfExpr, WhatIfError> {
    Ok(predictor.predict_subroutine_cost(sub)?)
}

/// Applies the transformation and symbolically compares the variant
/// against the original (§3.1): the returned [`Comparison`]'s
/// `difference = C(transformed) − C(original)`, so a
/// [`presage_symbolic::CompareOutcome::FirstCheaper`] verdict means the
/// transformation wins over the whole range of the unknowns.
///
/// The caller already holds the transformed AST, so the variant is
/// checked for representability structurally
/// ([`presage_frontend::normalize::validate_emittable`]) — the historic
/// re-emit + re-parse of the variant's source is gone from this path.
///
/// # Errors
///
/// Any [`WhatIfError`]; in particular [`WhatIfError::Canonicalize`] when
/// the variant's re-emitted source would not parse (the variant is not a
/// representable program, so comparing its cost would be meaningless).
pub fn compare_transform(
    sub: &Subroutine,
    path: &[usize],
    t: &Transform,
    predictor: &Predictor,
) -> Result<(Subroutine, Comparison), WhatIfError> {
    let variant = transformed(sub, path, t)?;
    presage_frontend::normalize::validate_emittable(&variant)?;
    let before = cost_of(sub, predictor)?;
    let after = cost_of(&variant, predictor)?;
    Ok((variant, after.compare(&before)))
}

/// Enumerates the paths of every `do` loop in the subroutine (the move
/// generator for the search).
pub fn loop_paths(sub: &Subroutine) -> Vec<Vec<usize>> {
    fn go(stmts: &[Stmt], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        for (i, s) in stmts.iter().enumerate() {
            match s {
                Stmt::Do { body, .. } => {
                    prefix.push(i);
                    out.push(prefix.clone());
                    go(body, prefix, out);
                    prefix.pop();
                }
                // While loops are not transformation targets themselves,
                // but counted loops nested inside them are.
                Stmt::DoWhile { body, .. } => {
                    prefix.push(i);
                    go(body, prefix, out);
                    prefix.pop();
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    go(&sub.body, &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::machines;
    use presage_symbolic::CompareOutcome;

    fn sub(src: &str) -> Subroutine {
        crate::canon::parse_subroutine(src).unwrap()
    }

    const NEST: &str = "subroutine s(a, n)
        real a(n,n)
        integer i, j, n
        do i = 1, n
          do j = 1, n
            a(i,j) = a(i,j) * 2.0 + 1.0
          end do
        end do
      end";

    #[test]
    fn loop_paths_enumerates_nest() {
        let s = sub(NEST);
        assert_eq!(loop_paths(&s), vec![vec![0], vec![0, 0]]);
    }

    #[test]
    fn transformed_applies_at_depth() {
        let s = sub(NEST);
        let v = transformed(&s, &[0, 0], &Transform::Unroll(2)).unwrap();
        let text = v.to_string();
        assert!(text.contains("j + 1") || text.contains("(j + 1)"), "{text}");
        // Original untouched.
        assert!(!s.to_string().contains("j + 1"));
    }

    #[test]
    fn bad_path_reported() {
        let s = sub(NEST);
        assert!(matches!(
            transformed(&s, &[5], &Transform::Unroll(2)),
            Err(WhatIfError::Transform(_)) | Err(WhatIfError::BadPath)
        ));
        assert!(matches!(
            transformed(&s, &[], &Transform::Unroll(2)),
            Err(WhatIfError::BadPath)
        ));
    }

    #[test]
    fn unrepresentable_variant_is_an_error_not_a_panic() {
        // The original carries a statement whose re-emission does not
        // parse; any variant derived from it inherits it, so the
        // comparator must reject the variant instead of costing it.
        let predictor = Predictor::new(machines::power_like());
        let s = crate::canon::malformed_variant();
        let path = loop_paths(&s)
            .into_iter()
            .next()
            .expect("fixture has a loop");
        let err = compare_transform(&s, &path, &Transform::Unroll(2), &predictor)
            .expect_err("malformed variant must be rejected");
        assert!(matches!(err, WhatIfError::Canonicalize(_)), "{err}");
    }

    #[test]
    fn compare_transform_runs_end_to_end() {
        let predictor = Predictor::new(machines::power_like());
        let s = sub(NEST);
        let (variant, cmp) =
            compare_transform(&s, &[0, 0], &Transform::Unroll(4), &predictor).unwrap();
        assert_ne!(variant.to_string(), s.to_string());
        // Unrolling a dependence-free FMA loop on power-like changes cost
        // only modestly; the comparison must at least be decidable.
        assert!(
            !matches!(cmp.outcome, CompareOutcome::Undetermined),
            "expected a verdict, difference = {}",
            cmp.difference
        );
    }
}
