//! Program-driven data-distribution choice.
//!
//! The paper cites Balasundaram–Fox–Kennedy–Kremer's distribution
//! estimator as the kind of decision its framework subsumes: distribution
//! costs become performance expressions, so block vs. cyclic is settled by
//! the §3.1 symbolic comparison instead of guessed problem sizes. This
//! module extracts the two features that drive the classic trade-off
//! straight from the program text:
//!
//! - the **halo radius**: constant offsets on the distributed index in
//!   array subscripts (stencils need neighbor data → communication);
//! - **triangularity**: inner loop bounds depending on the distributed
//!   index (block distributions then concentrate work on one processor).

use presage_core::comm::{stencil_exchange_cost, triangular_max_load, CommParams, Distribution};
use presage_core::predictor::Predictor;
use presage_frontend::analysis::affine_form;
use presage_frontend::{Expr, Stmt, Subroutine};
use presage_symbolic::{Comparison, PerfExpr, Rational, Symbol};

/// What the analyzer learned about a loop nest.
#[derive(Clone, Debug, PartialEq)]
pub struct NestShape {
    /// The distributed (outermost) loop variable.
    pub outer_var: String,
    /// Maximum |constant offset| applied to the distributed index in any
    /// array subscript — the stencil halo radius.
    pub halo_radius: u32,
    /// Whether any inner loop bound depends on the distributed index.
    pub triangular: bool,
}

/// Analyzes the first loop nest of a subroutine.
///
/// Returns `None` when the subroutine does not start with a `do` loop.
pub fn nest_shape(sub: &Subroutine) -> Option<NestShape> {
    let Stmt::Do { var, body, .. } = sub.body.iter().find(|s| matches!(s, Stmt::Do { .. }))? else {
        return None;
    };
    let mut shape = NestShape {
        outer_var: var.clone(),
        halo_radius: 0,
        triangular: false,
    };
    scan(body, var, &mut shape);
    Some(shape)
}

fn scan_expr_for_halo(e: &Expr, outer: &str, shape: &mut NestShape) {
    e.walk(&mut |node| {
        if let Expr::ArrayRef { indices, .. } = node {
            for ix in indices {
                if let Some(a) = affine_form(ix) {
                    if a.coeff(outer) != 0 && a.constant != 0 {
                        shape.halo_radius = shape.halo_radius.max(a.constant.unsigned_abs() as u32);
                    }
                }
            }
        }
    });
}

fn scan(stmts: &[Stmt], outer: &str, shape: &mut NestShape) {
    for s in stmts {
        match s {
            Stmt::Assign { target, value, .. } => {
                scan_expr_for_halo(target, outer, shape);
                scan_expr_for_halo(value, outer, shape);
            }
            Stmt::Do { lb, ub, body, .. } => {
                for bound in [lb, ub] {
                    if bound.referenced_names().iter().any(|n| n == outer) {
                        shape.triangular = true;
                    }
                }
                scan(body, outer, shape);
            }
            Stmt::DoWhile { body, .. } => scan(body, outer, shape),
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                scan_expr_for_halo(cond, outer, shape);
                scan(then_body, outer, shape);
                scan(else_body, outer, shape);
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    scan_expr_for_halo(a, outer, shape);
                }
            }
            Stmt::Return { .. } => {}
        }
    }
}

/// Cost of running the nest under a distribution: per-processor compute
/// (sequential cost over `P`, inflated by the block distribution's
/// triangular imbalance) plus the halo-exchange communication.
pub fn distribution_cost(
    sub: &Subroutine,
    predictor: &Predictor,
    params: &CommParams,
    dist: Distribution,
    size_sym: &Symbol,
    size_range: (f64, f64),
) -> Result<DistributionCost, crate::whatif::WhatIfError> {
    let compute = crate::whatif::cost_of(sub, predictor)?;
    let shape = nest_shape(sub).unwrap_or(NestShape {
        outer_var: String::new(),
        halo_radius: 0,
        triangular: false,
    });
    let p = params.procs.max(1) as i128;

    // Per-processor compute share.
    let imbalance = match (shape.triangular, dist) {
        // Block distribution of a triangular space: the widest rows land
        // on one processor — (2P−1)/P of the mean.
        (true, Distribution::Block) => Rational::new(2 * p - 1, p),
        _ => Rational::ONE,
    };
    let parallel_compute = compute.scale(Rational::new(1, p) * imbalance);

    let comm = if shape.halo_radius > 0 {
        stencil_exchange_cost(params, dist, size_sym, shape.halo_radius, size_range)
    } else {
        PerfExpr::zero()
    };
    let total = parallel_compute.clone() + comm.clone();
    Ok(DistributionCost {
        distribution: dist,
        shape,
        parallel_compute,
        comm,
        total,
    })
}

/// One distribution's predicted cost breakdown.
#[derive(Clone, Debug)]
pub struct DistributionCost {
    /// The distribution analyzed.
    pub distribution: Distribution,
    /// The nest features that drove the model.
    pub shape: NestShape,
    /// Per-processor compute share (imbalance-adjusted).
    pub parallel_compute: PerfExpr,
    /// Halo-exchange communication cost.
    pub comm: PerfExpr,
    /// Sum of the above.
    pub total: PerfExpr,
}

/// Chooses between block and cyclic distribution for the subroutine's
/// first nest by symbolic comparison; returns both costings and the
/// comparison (`difference = C(block) − C(cyclic)`).
pub fn choose_distribution(
    sub: &Subroutine,
    predictor: &Predictor,
    params: &CommParams,
    size_sym: &Symbol,
    size_range: (f64, f64),
) -> Result<(DistributionCost, DistributionCost, Comparison), crate::whatif::WhatIfError> {
    let block = distribution_cost(
        sub,
        predictor,
        params,
        Distribution::Block,
        size_sym,
        size_range,
    )?;
    let cyclic = distribution_cost(
        sub,
        predictor,
        params,
        Distribution::Cyclic,
        size_sym,
        size_range,
    )?;
    let cmp = block.total.compare(&cyclic.total);
    Ok((block, cyclic, cmp))
}

/// Reference on `triangular_max_load` for callers wanting the standalone
/// load curves (re-exported convenience).
pub use presage_core::comm::Distribution as Dist;
#[doc(hidden)]
pub fn _load_curves(params: &CommParams, n: &Symbol, range: (f64, f64)) -> (PerfExpr, PerfExpr) {
    (
        triangular_max_load(params, Distribution::Block, n, range),
        triangular_max_load(params, Distribution::Cyclic, n, range),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::machines;
    use presage_symbolic::CompareOutcome;

    fn sub(src: &str) -> Subroutine {
        presage_frontend::parse(src).unwrap().units.remove(0)
    }

    const JACOBI: &str = "subroutine jacobi(a, b, n)
       real a(n,n), b(n,n)
       integer i, j, n
       do j = 2, n-1
         do i = 2, n-1
           a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
         end do
       end do
     end";

    const TRIANGULAR: &str = "subroutine tri(a, n)
       real a(n,n)
       integer i, j, n
       do i = 1, n
         do j = i, n
           a(i,j) = a(i,j) * 0.5
         end do
       end do
     end";

    #[test]
    fn jacobi_shape_detected() {
        let shape = nest_shape(&sub(JACOBI)).unwrap();
        assert_eq!(shape.outer_var, "j");
        assert_eq!(shape.halo_radius, 1, "±1 stencil offsets");
        assert!(!shape.triangular);
    }

    #[test]
    fn triangular_shape_detected() {
        let shape = nest_shape(&sub(TRIANGULAR)).unwrap();
        assert_eq!(shape.outer_var, "i");
        assert_eq!(shape.halo_radius, 0, "no neighbor offsets");
        assert!(shape.triangular, "inner lb depends on i");
    }

    #[test]
    fn jacobi_prefers_block() {
        let predictor = Predictor::new(machines::power_like());
        let n = Symbol::new("n");
        let (block, cyclic, cmp) = choose_distribution(
            &sub(JACOBI),
            &predictor,
            &CommParams::default(),
            &n,
            (256.0, 8192.0),
        )
        .unwrap();
        assert_eq!(
            cmp.outcome,
            CompareOutcome::FirstCheaper,
            "block wins stencils"
        );
        assert!(!block.comm.poly().is_zero());
        assert!(!cyclic.comm.poly().is_zero());
    }

    #[test]
    fn triangular_prefers_cyclic() {
        let predictor = Predictor::new(machines::power_like());
        let n = Symbol::new("n");
        let (_, _, cmp) = choose_distribution(
            &sub(TRIANGULAR),
            &predictor,
            &CommParams::default(),
            &n,
            (256.0, 8192.0),
        )
        .unwrap();
        assert_eq!(
            cmp.outcome,
            CompareOutcome::SecondCheaper,
            "cyclic balances: {}",
            cmp.difference
        );
    }

    #[test]
    fn no_halo_means_no_comm() {
        let predictor = Predictor::new(machines::power_like());
        let n = Symbol::new("n");
        let c = distribution_cost(
            &sub(TRIANGULAR),
            &predictor,
            &CommParams::default(),
            Distribution::Block,
            &n,
            (256.0, 8192.0),
        )
        .unwrap();
        assert!(c.comm.poly().is_zero());
        assert!(c.shape.triangular);
    }

    #[test]
    fn straight_line_subroutine_has_no_nest() {
        assert!(nest_shape(&sub("subroutine s(x)\nreal x\nx = 1.0\nend")).is_none());
    }
}
