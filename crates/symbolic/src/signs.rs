//! Sign analysis of performance expressions over bounded ranges.
//!
//! This implements §3.1 of the paper: given `P = C(f) − C(g)`, determine the
//! regions of the unknown's range where `P` is positive or negative (Figure
//! 10), measure those regions, and integrate `P+`/`P−` as comparison
//! metrics. For multivariate expressions, a conservative interval-arithmetic
//! verdict over a box of variable bounds is provided.

use crate::interval::Interval;
use crate::roots::{horner, real_roots_in};
use crate::{Poly, Symbol};
use std::collections::HashMap;
use std::fmt;

/// The sign of an expression on a region.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Sign {
    /// Strictly negative throughout the region.
    Negative,
    /// Identically zero throughout the region.
    Zero,
    /// Strictly positive throughout the region.
    Positive,
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sign::Negative => "-",
            Sign::Zero => "0",
            Sign::Positive => "+",
        })
    }
}

/// A maximal subinterval of the analyzed range on which the expression keeps
/// one sign.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SignRegion {
    /// Left endpoint.
    pub lo: f64,
    /// Right endpoint.
    pub hi: f64,
    /// Sign of the expression on `(lo, hi)`.
    pub sign: Sign,
}

impl SignRegion {
    /// Width of the region.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

impl fmt::Display for SignRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.6}, {:.6}]: {}", self.lo, self.hi, self.sign)
    }
}

/// Errors from sign analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SignError {
    /// The expression mentions symbols other than the analyzed one.
    NotUnivariate(Vec<String>),
    /// The range contains `x = 0` but the expression has `x^-k` terms
    /// (a pole inside the range).
    PoleInRange,
    /// The range is empty (`lo > hi`).
    EmptyRange,
}

impl fmt::Display for SignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignError::NotUnivariate(extra) => {
                write!(
                    f,
                    "expression is not univariate; extra symbols: {}",
                    extra.join(", ")
                )
            }
            SignError::PoleInRange => {
                f.write_str("expression has a pole (x^-k term) inside the range")
            }
            SignError::EmptyRange => f.write_str("empty analysis range"),
        }
    }
}

impl std::error::Error for SignError {}

/// Returns the univariate dense coefficients of `poly` in `sym` after
/// clearing negative exponents by `x^shift`, i.e. `poly = q(x) / x^shift`.
fn cleared_coeffs(poly: &Poly, sym: &Symbol) -> Result<(Vec<f64>, i32), SignError> {
    let extra: Vec<String> = poly
        .symbols()
        .into_iter()
        .filter(|s| s != sym)
        .map(|s| s.name().to_string())
        .collect();
    if !extra.is_empty() {
        return Err(SignError::NotUnivariate(extra));
    }
    let parts = poly.as_univariate(sym);
    let min_exp = parts.first().map(|(e, _)| *e).unwrap_or(0).min(0);
    let shift = -min_exp;
    let max_exp = parts.last().map(|(e, _)| *e).unwrap_or(0);
    let mut coeffs = vec![0.0; (max_exp + shift + 1) as usize];
    for (e, p) in &parts {
        // `p` is constant because no other symbols exist.
        coeffs[(e + shift) as usize] = p.constant_value().expect("univariate coefficient").to_f64();
    }
    Ok((coeffs, shift))
}

/// Computes the sign regions of a univariate `poly` in `sym` over `[lo, hi]`
/// (Figure 10 of the paper).
///
/// Laurent terms (`x^-k`) are supported as long as the range does not
/// contain the pole at zero.
///
/// # Errors
///
/// - [`SignError::NotUnivariate`] if other symbols appear;
/// - [`SignError::PoleInRange`] if `0 ∈ [lo, hi]` while `x^-k` terms exist;
/// - [`SignError::EmptyRange`] if `lo > hi`.
///
/// # Examples
///
/// ```
/// use presage_symbolic::{Poly, Symbol, signs::{sign_regions, Sign}};
///
/// let x = Symbol::new("x");
/// // (x-1)(x-3) is negative between the roots.
/// let p = (Poly::var(x.clone()) - Poly::from(1)) * (Poly::var(x.clone()) - Poly::from(3));
/// let regions = sign_regions(&p, &x, 0.0, 4.0).unwrap();
/// assert_eq!(regions.len(), 3);
/// assert_eq!(regions[1].sign, Sign::Negative);
/// ```
pub fn sign_regions(
    poly: &Poly,
    sym: &Symbol,
    lo: f64,
    hi: f64,
) -> Result<Vec<SignRegion>, SignError> {
    if lo > hi {
        return Err(SignError::EmptyRange);
    }
    let (coeffs, shift) = cleared_coeffs(poly, sym)?;
    if shift > 0 && lo <= 0.0 && hi >= 0.0 {
        return Err(SignError::PoleInRange);
    }
    if coeffs.iter().all(|c| c.abs() == 0.0) {
        return Ok(vec![SignRegion {
            lo,
            hi,
            sign: Sign::Zero,
        }]);
    }

    let mut breakpoints = vec![lo];
    breakpoints.extend(real_roots_in(&coeffs, lo, hi));
    breakpoints.push(hi);
    breakpoints.sort_by(|a, b| a.partial_cmp(b).unwrap());
    breakpoints.dedup_by(|a, b| (*a - *b).abs() <= 1e-12 * (1.0 + a.abs()));

    let eval = |x: f64| -> f64 { horner(&coeffs, x) / x.powi(shift) };

    let mut regions: Vec<SignRegion> = Vec::new();
    for w in breakpoints.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b - a <= 0.0 {
            continue;
        }
        let v = eval(0.5 * (a + b));
        let sign = if v > 0.0 {
            Sign::Positive
        } else if v < 0.0 {
            Sign::Negative
        } else {
            Sign::Zero
        };
        match regions.last_mut() {
            Some(last) if last.sign == sign => last.hi = b,
            _ => regions.push(SignRegion { lo: a, hi: b, sign }),
        }
    }
    if regions.is_empty() {
        // Degenerate point range.
        let v = eval(lo);
        let sign = if v > 0.0 {
            Sign::Positive
        } else if v < 0.0 {
            Sign::Negative
        } else {
            Sign::Zero
        };
        regions.push(SignRegion { lo, hi, sign });
    }
    Ok(regions)
}

/// Total width of the regions where the expression is positive / negative.
///
/// The paper proposes "size of the area where P+ and P− are nonzero" as one
/// comparison metric between transformations.
///
/// # Errors
///
/// Same conditions as [`sign_regions`].
pub fn sign_measures(poly: &Poly, sym: &Symbol, lo: f64, hi: f64) -> Result<(f64, f64), SignError> {
    let regions = sign_regions(poly, sym, lo, hi)?;
    let mut pos = 0.0;
    let mut neg = 0.0;
    for r in regions {
        match r.sign {
            Sign::Positive => pos += r.width(),
            Sign::Negative => neg += r.width(),
            Sign::Zero => {}
        }
    }
    Ok((pos, neg))
}

/// Definite integral of a univariate `poly` in `sym` over `[lo, hi]`.
///
/// `x^-1` terms integrate to `ln|x|`; other Laurent terms use the power
/// rule. Poles inside the range are rejected.
///
/// # Errors
///
/// Same conditions as [`sign_regions`].
pub fn integrate(poly: &Poly, sym: &Symbol, lo: f64, hi: f64) -> Result<f64, SignError> {
    if lo > hi {
        return Err(SignError::EmptyRange);
    }
    let extra: Vec<String> = poly
        .symbols()
        .into_iter()
        .filter(|s| s != sym)
        .map(|s| s.name().to_string())
        .collect();
    if !extra.is_empty() {
        return Err(SignError::NotUnivariate(extra));
    }
    let parts = poly.as_univariate(sym);
    if parts.iter().any(|(e, _)| *e < 0) && lo <= 0.0 && hi >= 0.0 {
        return Err(SignError::PoleInRange);
    }
    let mut total = 0.0;
    for (e, p) in parts {
        let c = p.constant_value().expect("univariate coefficient").to_f64();
        total += if e == -1 {
            c * (hi.abs().ln() - lo.abs().ln())
        } else {
            let k = (e + 1) as f64;
            c * (hi.powi(e + 1) - lo.powi(e + 1)) / k
        };
    }
    Ok(total)
}

/// Integrals of the positive part `P+` and negative part `P−` over the range
/// (the paper's "integral values of P+ and P−" comparison metric). The
/// negative-part integral is returned as a non-negative magnitude.
///
/// # Errors
///
/// Same conditions as [`sign_regions`].
pub fn signed_areas(poly: &Poly, sym: &Symbol, lo: f64, hi: f64) -> Result<(f64, f64), SignError> {
    let regions = sign_regions(poly, sym, lo, hi)?;
    let mut pos = 0.0;
    let mut neg = 0.0;
    for r in regions {
        match r.sign {
            Sign::Positive => pos += integrate(poly, sym, r.lo, r.hi)?,
            Sign::Negative => neg -= integrate(poly, sym, r.lo, r.hi)?,
            Sign::Zero => {}
        }
    }
    Ok((pos, neg))
}

/// Verdict of a conservative multivariate sign query over a box of variable
/// ranges.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SignVerdict {
    /// Provably `> 0` everywhere in the box.
    AlwaysPositive,
    /// Provably `≥ 0` everywhere in the box (zero possible).
    NonNegative,
    /// Provably `< 0` everywhere in the box.
    AlwaysNegative,
    /// Provably `≤ 0` everywhere in the box (zero possible).
    NonPositive,
    /// Identically zero.
    AlwaysZero,
    /// The interval bound straddles zero: undetermined.
    Unknown,
}

impl fmt::Display for SignVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SignVerdict::AlwaysPositive => "always positive",
            SignVerdict::NonNegative => "non-negative",
            SignVerdict::AlwaysNegative => "always negative",
            SignVerdict::NonPositive => "non-positive",
            SignVerdict::AlwaysZero => "always zero",
            SignVerdict::Unknown => "unknown",
        })
    }
}

/// Determines the sign of `poly` over a box of per-variable bounds using
/// interval arithmetic. Conservative: `Unknown` never lies, but a definite
/// verdict may be missed when intervals over-approximate.
///
/// Unbound symbols yield `Unknown`.
pub fn sign_over_box(poly: &Poly, box_: &HashMap<Symbol, Interval>) -> SignVerdict {
    if poly.is_zero() {
        return SignVerdict::AlwaysZero;
    }
    match Interval::eval_poly(poly, box_) {
        None => SignVerdict::Unknown,
        Some(iv) => {
            if iv.lo() > 0.0 {
                SignVerdict::AlwaysPositive
            } else if iv.hi() < 0.0 {
                SignVerdict::AlwaysNegative
            } else if iv.lo() == 0.0 && iv.hi() == 0.0 {
                SignVerdict::AlwaysZero
            } else if iv.lo() == 0.0 {
                SignVerdict::NonNegative
            } else if iv.hi() == 0.0 {
                SignVerdict::NonPositive
            } else {
                SignVerdict::Unknown
            }
        }
    }
}

/// Recursively bisects the box to sharpen [`sign_over_box`] verdicts; `depth`
/// limits the number of splits (the work is `O(2^depth)` in the worst case).
///
/// Returns a definite verdict if every leaf box agrees; otherwise `Unknown`.
pub fn sign_over_box_refined(
    poly: &Poly,
    box_: &HashMap<Symbol, Interval>,
    depth: u32,
) -> SignVerdict {
    let v = sign_over_box(poly, box_);
    if v != SignVerdict::Unknown || depth == 0 {
        return v;
    }
    // Split the widest interval.
    let widest = box_
        .iter()
        .max_by(|a, b| a.1.width().partial_cmp(&b.1.width()).unwrap())
        .map(|(s, _)| s.clone());
    let Some(sym) = widest else {
        return SignVerdict::Unknown;
    };
    let iv = box_[&sym];
    if iv.width() <= 1e-9 {
        return SignVerdict::Unknown;
    }
    let mut left = box_.clone();
    left.insert(sym.clone(), Interval::new(iv.lo(), iv.mid()));
    let mut right = box_.clone();
    right.insert(sym, Interval::new(iv.mid(), iv.hi()));
    let vl = sign_over_box_refined(poly, &left, depth - 1);
    let vr = sign_over_box_refined(poly, &right, depth - 1);
    combine_verdicts(vl, vr)
}

fn combine_verdicts(a: SignVerdict, b: SignVerdict) -> SignVerdict {
    use SignVerdict::*;
    if a == b {
        return a;
    }
    match (a, b) {
        (AlwaysPositive, NonNegative) | (NonNegative, AlwaysPositive) => NonNegative,
        (AlwaysNegative, NonPositive) | (NonPositive, AlwaysNegative) => NonPositive,
        (AlwaysZero, NonNegative) | (NonNegative, AlwaysZero) => NonNegative,
        (AlwaysZero, NonPositive) | (NonPositive, AlwaysZero) => NonPositive,
        (AlwaysZero, AlwaysPositive) | (AlwaysPositive, AlwaysZero) => NonNegative,
        (AlwaysZero, AlwaysNegative) | (AlwaysNegative, AlwaysZero) => NonPositive,
        _ => Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rational;

    fn x() -> Symbol {
        Symbol::new("x")
    }

    fn xp() -> Poly {
        Poly::var(x())
    }

    #[test]
    fn cubic_fig10_regions() {
        // Figure 10: cubic with a > 0, negative regions below roots.
        // (x+1)(x-2)(x-5): negative on (-inf,-1) and (2,5).
        let p = (xp() + Poly::from(1)) * (xp() - Poly::from(2)) * (xp() - Poly::from(5));
        let regions = sign_regions(&p, &x(), -3.0, 7.0).unwrap();
        let signs: Vec<Sign> = regions.iter().map(|r| r.sign).collect();
        assert_eq!(
            signs,
            [
                Sign::Negative,
                Sign::Positive,
                Sign::Negative,
                Sign::Positive
            ]
        );
        assert!((regions[0].hi + 1.0).abs() < 1e-6);
        assert!((regions[2].lo - 2.0).abs() < 1e-6);
        assert!((regions[2].hi - 5.0).abs() < 1e-6);
    }

    #[test]
    fn always_positive() {
        let p = &xp() * &xp() + Poly::from(1);
        let regions = sign_regions(&p, &x(), -10.0, 10.0).unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].sign, Sign::Positive);
    }

    #[test]
    fn zero_polynomial() {
        let regions = sign_regions(&Poly::zero(), &x(), 0.0, 1.0).unwrap();
        assert_eq!(
            regions,
            vec![SignRegion {
                lo: 0.0,
                hi: 1.0,
                sign: Sign::Zero
            }]
        );
    }

    #[test]
    fn laurent_ok_when_pole_outside() {
        // 1/x^2 - 1 on [0.5, 2]: positive below 1, negative above.
        let p = Poly::term(Rational::ONE, crate::Monomial::power(x(), -2)) - Poly::from(1);
        let regions = sign_regions(&p, &x(), 0.5, 2.0).unwrap();
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].sign, Sign::Positive);
        assert_eq!(regions[1].sign, Sign::Negative);
        assert!((regions[0].hi - 1.0).abs() < 1e-6);
    }

    #[test]
    fn laurent_pole_in_range_rejected() {
        let p = Poly::term(Rational::ONE, crate::Monomial::power(x(), -1));
        assert_eq!(
            sign_regions(&p, &x(), -1.0, 1.0),
            Err(SignError::PoleInRange)
        );
    }

    #[test]
    fn not_univariate_rejected() {
        let p = xp() + Poly::var(Symbol::new("y"));
        match sign_regions(&p, &x(), 0.0, 1.0) {
            Err(SignError::NotUnivariate(extra)) => assert_eq!(extra, ["y"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_range_rejected() {
        assert_eq!(
            sign_regions(&xp(), &x(), 2.0, 1.0),
            Err(SignError::EmptyRange)
        );
    }

    #[test]
    fn measures() {
        // (x-1)(x-3) on [0,4]: negative width 2, positive width 2.
        let p = (xp() - Poly::from(1)) * (xp() - Poly::from(3));
        let (pos, neg) = sign_measures(&p, &x(), 0.0, 4.0).unwrap();
        assert!((pos - 2.0).abs() < 1e-6);
        assert!((neg - 2.0).abs() < 1e-6);
    }

    #[test]
    fn integrate_polynomial() {
        // ∫_0^2 3x^2 dx = 8
        let p = (&xp() * &xp()).scale(3);
        assert!((integrate(&p, &x(), 0.0, 2.0).unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_log_term() {
        // ∫_1^e 1/x dx = 1
        let p = Poly::term(Rational::ONE, crate::Monomial::power(x(), -1));
        let v = integrate(&p, &x(), 1.0, std::f64::consts::E).unwrap();
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn signed_areas_split() {
        // x on [-1, 2]: P+ area = 2, P- area = 1/2.
        let (pos, neg) = signed_areas(&xp(), &x(), -1.0, 2.0).unwrap();
        assert!((pos - 2.0).abs() < 1e-9);
        assert!((neg - 0.5).abs() < 1e-9);
    }

    #[test]
    fn box_verdicts() {
        let n = Symbol::new("n");
        let p = Poly::var(n.clone()) - Poly::from(2); // n - 2
        let mut box_ = HashMap::new();
        box_.insert(n.clone(), Interval::new(3.0, 10.0));
        assert_eq!(sign_over_box(&p, &box_), SignVerdict::AlwaysPositive);
        box_.insert(n.clone(), Interval::new(0.0, 1.0));
        assert_eq!(sign_over_box(&p, &box_), SignVerdict::AlwaysNegative);
        box_.insert(n, Interval::new(0.0, 10.0));
        assert_eq!(sign_over_box(&p, &box_), SignVerdict::Unknown);
    }

    #[test]
    fn box_refinement_sharpens() {
        // x^2 - x + 1 > 0 everywhere, but naive intervals on [0, 2] give
        // [0,4] - [0,2] + 1 = [-1, 5]: unknown. Bisection resolves it.
        let p = &xp() * &xp() - xp() + Poly::from(1);
        let mut box_ = HashMap::new();
        box_.insert(x(), Interval::new(0.0, 2.0));
        assert_eq!(sign_over_box(&p, &box_), SignVerdict::Unknown);
        // Bisection tightens the bound enough to certify non-negativity
        // (interval endpoints touch zero exactly at the split point x = 1).
        assert_eq!(
            sign_over_box_refined(&p, &box_, 6),
            SignVerdict::NonNegative
        );
    }

    #[test]
    fn unbound_symbol_is_unknown() {
        let p = Poly::var(Symbol::new("q"));
        assert_eq!(sign_over_box(&p, &HashMap::new()), SignVerdict::Unknown);
    }
}
