//! Real-root finding for univariate polynomials.
//!
//! The paper (§3.1) relies on the fact that performance differences of loop
//! transformations are usually univariate polynomials of degree ≤ 4, for
//! which closed-form roots exist. We implement the closed forms
//! (linear/quadratic/Cardano/Ferrari) with a Newton polish, and fall back to
//! recursive critical-point bisection for higher degrees so callers never
//! hit a hard degree wall.

/// Relative tolerance used when deduplicating and polishing roots.
const EPS: f64 = 1e-9;

/// Evaluates a dense ascending-coefficient polynomial at `x` (Horner).
pub fn horner(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

fn derivative_coeffs(coeffs: &[f64]) -> Vec<f64> {
    coeffs
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &c)| c * i as f64)
        .collect()
}

fn newton_polish(coeffs: &[f64], mut x: f64) -> f64 {
    let d = derivative_coeffs(coeffs);
    for _ in 0..40 {
        let fx = horner(coeffs, x);
        let dx = horner(&d, x);
        if dx.abs() < 1e-300 {
            break;
        }
        let step = fx / dx;
        x -= step;
        if step.abs() <= EPS * (1.0 + x.abs()) {
            break;
        }
    }
    x
}

fn trim_leading_zeros(coeffs: &[f64]) -> &[f64] {
    let mut n = coeffs.len();
    // Scale-aware zero test for the leading coefficient.
    let scale = coeffs.iter().fold(0.0f64, |a, c| a.max(c.abs())).max(1.0);
    while n > 0 && coeffs[n - 1].abs() <= 1e-14 * scale {
        n -= 1;
    }
    &coeffs[..n]
}

fn dedupe_sorted(mut roots: Vec<f64>) -> Vec<f64> {
    roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
    roots.dedup_by(|a, b| (*a - *b).abs() <= 1e-7 * (1.0 + a.abs().max(b.abs())));
    roots
}

fn roots_quadratic(c: f64, b: f64, a: f64) -> Vec<f64> {
    // a x^2 + b x + c
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return Vec::new();
    }
    if disc == 0.0 {
        return vec![-b / (2.0 * a)];
    }
    // Numerically stable form avoiding cancellation.
    let q = -0.5 * (b + b.signum() * disc.sqrt());
    let mut out = vec![q / a];
    if q.abs() > 0.0 {
        out.push(c / q);
    } else {
        out.push(0.0);
    }
    out
}

fn roots_cubic(d: f64, c: f64, b: f64, a: f64) -> Vec<f64> {
    // a x^3 + b x^2 + c x + d = 0 -> depressed t^3 + p t + q with x = t - b/3a
    let b = b / a;
    let c = c / a;
    let d = d / a;
    let shift = b / 3.0;
    let p = c - b * b / 3.0;
    let q = 2.0 * b * b * b / 27.0 - b * c / 3.0 + d;
    let disc = q * q / 4.0 + p * p * p / 27.0;
    let mut roots = Vec::new();
    if disc > 1e-13 * (1.0 + q * q + p.abs().powi(3)) {
        // One real root (Cardano).
        let sq = disc.sqrt();
        let u = (-q / 2.0 + sq).cbrt();
        let v = (-q / 2.0 - sq).cbrt();
        roots.push(u + v - shift);
    } else if disc.abs() <= 1e-13 * (1.0 + q * q + p.abs().powi(3)) {
        if p.abs() < 1e-13 {
            roots.push(-shift); // triple root
        } else {
            roots.push(3.0 * q / p - shift);
            roots.push(-3.0 * q / (2.0 * p) - shift);
        }
    } else {
        // Three real roots (trigonometric method).
        let m = 2.0 * (-p / 3.0).sqrt();
        let theta = (3.0 * q / (p * m)).clamp(-1.0, 1.0).acos() / 3.0;
        for k in 0..3 {
            roots.push(m * (theta - 2.0 * std::f64::consts::PI * k as f64 / 3.0).cos() - shift);
        }
    }
    roots
}

fn roots_quartic(e: f64, d: f64, c: f64, b: f64, a: f64) -> Vec<f64> {
    // a x^4 + b x^3 + c x^2 + d x + e = 0; depressed y^4 + p y^2 + q y + r
    let b = b / a;
    let c = c / a;
    let d = d / a;
    let e = e / a;
    let shift = b / 4.0;
    let p = c - 3.0 * b * b / 8.0;
    let q = d - b * c / 2.0 + b * b * b / 8.0;
    let r = e - b * d / 4.0 + b * b * c / 16.0 - 3.0 * b * b * b * b / 256.0;

    let mut roots = Vec::new();
    if q.abs() < 1e-12 * (1.0 + p.abs() + r.abs()) {
        // Biquadratic: y^4 + p y^2 + r = 0.
        for z in roots_quadratic(r, p, 1.0) {
            if z >= -1e-12 {
                let s = z.max(0.0).sqrt();
                roots.push(s - shift);
                roots.push(-s - shift);
            }
        }
        return dedupe_sorted(roots);
    }

    // Ferrari: resolvent cubic 8m^3 + 8pm^2 + (2p^2-8r)m - q^2 = 0.
    let res = roots_cubic(-q * q, 2.0 * p * p - 8.0 * r, 8.0 * p, 8.0);
    let m = res
        .into_iter()
        .filter(|&m| m > 1e-14)
        .fold(
            f64::NAN,
            |acc, m| if acc.is_nan() || m > acc { m } else { acc },
        );
    if m.is_nan() {
        return Vec::new();
    }
    let sqrt2m = (2.0 * m).sqrt();
    // y^2 ± sqrt(2m) y + (p/2 + m ∓ q/(2 sqrt(2m))) = 0
    let c1 = p / 2.0 + m - q / (2.0 * sqrt2m);
    let c2 = p / 2.0 + m + q / (2.0 * sqrt2m);
    for y in roots_quadratic(c1, sqrt2m, 1.0) {
        roots.push(y - shift);
    }
    for y in roots_quadratic(c2, -sqrt2m, 1.0) {
        roots.push(y - shift);
    }
    roots
}

/// Roots for degree ≥ 5 via critical points of the derivative plus bisection
/// on the sign-alternating segments.
fn roots_high_degree(coeffs: &[f64]) -> Vec<f64> {
    let deriv = derivative_coeffs(coeffs);
    let mut crits = real_roots(&deriv);
    // Cauchy bound on root magnitude.
    let lead = *coeffs.last().unwrap();
    let bound = 1.0
        + coeffs[..coeffs.len() - 1]
            .iter()
            .map(|c| (c / lead).abs())
            .fold(0.0, f64::max);
    crits.insert(0, -bound);
    crits.push(bound);
    crits = dedupe_sorted(crits);

    let mut roots = Vec::new();
    for w in crits.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let (flo, fhi) = (horner(coeffs, lo), horner(coeffs, hi));
        if flo == 0.0 {
            roots.push(lo);
        }
        if flo * fhi < 0.0 {
            // Bisection: monotone between consecutive critical points.
            let (mut a, mut b) = (lo, hi);
            for _ in 0..200 {
                let mid = 0.5 * (a + b);
                let fm = horner(coeffs, mid);
                if fm == 0.0 || (b - a) < EPS * (1.0 + mid.abs()) {
                    break;
                }
                if flo * fm < 0.0 {
                    b = mid;
                } else {
                    a = mid;
                }
            }
            roots.push(0.5 * (a + b));
        }
    }
    if horner(coeffs, *crits.last().unwrap()) == 0.0 {
        roots.push(*crits.last().unwrap());
    }
    roots
}

/// All distinct real roots of the dense ascending-coefficient polynomial
/// `coeffs[0] + coeffs[1] x + ...`, sorted ascending.
///
/// Degrees ≤ 4 use closed forms (the paper's "simple to find the roots ...
/// for polynomials of up to degree of 4"); higher degrees fall back to
/// derivative-guided bisection. The constant zero polynomial returns no
/// roots (the caller should treat it as identically zero).
///
/// # Examples
///
/// ```
/// use presage_symbolic::roots::real_roots;
///
/// // x^2 - 3x + 2 = (x-1)(x-2)
/// let r = real_roots(&[2.0, -3.0, 1.0]);
/// assert_eq!(r.len(), 2);
/// assert!((r[0] - 1.0).abs() < 1e-9 && (r[1] - 2.0).abs() < 1e-9);
/// ```
pub fn real_roots(coeffs: &[f64]) -> Vec<f64> {
    let coeffs = trim_leading_zeros(coeffs);
    let raw: Vec<f64> = match coeffs.len() {
        0 | 1 => Vec::new(),
        2 => vec![-coeffs[0] / coeffs[1]],
        3 => roots_quadratic(coeffs[0], coeffs[1], coeffs[2]),
        4 => roots_cubic(coeffs[0], coeffs[1], coeffs[2], coeffs[3]),
        5 => roots_quartic(coeffs[0], coeffs[1], coeffs[2], coeffs[3], coeffs[4]),
        _ => roots_high_degree(coeffs),
    };
    let polished: Vec<f64> = raw
        .into_iter()
        .map(|r| newton_polish(coeffs, r))
        .filter(|r| {
            let scale = coeffs.iter().fold(0.0f64, |a, c| a.max(c.abs()));
            horner(coeffs, *r).abs() <= 1e-5 * scale * (1.0 + r.abs()).powi(coeffs.len() as i32 - 1)
        })
        .collect();
    dedupe_sorted(polished)
}

/// Real roots restricted to the closed interval `[lo, hi]`.
pub fn real_roots_in(coeffs: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    real_roots(coeffs)
        .into_iter()
        .filter(|r| *r >= lo - EPS && *r <= hi + EPS)
        .map(|r| r.clamp(lo, hi))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_roots(coeffs: &[f64], expected: &[f64]) {
        let r = real_roots(coeffs);
        assert_eq!(
            r.len(),
            expected.len(),
            "roots {r:?} vs expected {expected:?}"
        );
        for (a, b) in r.iter().zip(expected) {
            assert!((a - b).abs() < 1e-6, "root {a} != {b} in {r:?}");
        }
    }

    #[test]
    fn constant_and_zero() {
        assert!(real_roots(&[5.0]).is_empty());
        assert!(real_roots(&[]).is_empty());
        assert!(real_roots(&[0.0, 0.0]).is_empty());
    }

    #[test]
    fn linear() {
        assert_roots(&[-6.0, 2.0], &[3.0]);
    }

    #[test]
    fn quadratic_two_roots() {
        assert_roots(&[2.0, -3.0, 1.0], &[1.0, 2.0]);
    }

    #[test]
    fn quadratic_no_real_roots() {
        assert!(real_roots(&[1.0, 0.0, 1.0]).is_empty());
    }

    #[test]
    fn quadratic_double_root() {
        assert_roots(&[1.0, -2.0, 1.0], &[1.0]);
    }

    #[test]
    fn cubic_three_roots() {
        // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
        assert_roots(&[-6.0, 11.0, -6.0, 1.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn cubic_one_root() {
        // x^3 + x + 1 has a single real root near -0.6823
        let r = real_roots(&[1.0, 1.0, 0.0, 1.0]);
        assert_eq!(r.len(), 1);
        assert!((r[0] + 0.682_327_8).abs() < 1e-5);
    }

    #[test]
    fn cubic_triple_root() {
        // (x-2)^3
        assert_roots(&[-8.0, 12.0, -6.0, 1.0], &[2.0]);
    }

    #[test]
    fn quartic_four_roots() {
        // (x+2)(x+1)(x-1)(x-2) = x^4 - 5x^2 + 4
        assert_roots(&[4.0, 0.0, -5.0, 0.0, 1.0], &[-2.0, -1.0, 1.0, 2.0]);
    }

    #[test]
    fn quartic_general() {
        // (x-1)(x-2)(x-3)(x-4) = x^4 -10x^3 +35x^2 -50x +24
        assert_roots(&[24.0, -50.0, 35.0, -10.0, 1.0], &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn quartic_no_real_roots() {
        // x^4 + 1
        assert!(real_roots(&[1.0, 0.0, 0.0, 0.0, 1.0]).is_empty());
    }

    #[test]
    fn quintic_fallback() {
        // (x)(x-1)(x+1)(x-2)(x+2) = x^5 - 5x^3 + 4x
        assert_roots(
            &[0.0, 4.0, 0.0, -5.0, 0.0, 1.0],
            &[-2.0, -1.0, 0.0, 1.0, 2.0],
        );
    }

    #[test]
    fn degree_six_fallback() {
        // (x^2-1)(x^2-4)(x^2-9) = x^6 -14x^4 +49x^2 -36
        assert_roots(
            &[-36.0, 0.0, 49.0, 0.0, -14.0, 0.0, 1.0],
            &[-3.0, -2.0, -1.0, 1.0, 2.0, 3.0],
        );
    }

    #[test]
    fn roots_in_range() {
        let r = real_roots_in(&[-6.0, 11.0, -6.0, 1.0], 1.5, 3.5);
        assert_eq!(r.len(), 2);
        assert!((r[0] - 2.0).abs() < 1e-9 && (r[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn paper_cubic_example_shape() {
        // Figure 10: y = a x^3 + b x^2 + c x + d with a > 0 can have negative
        // regions between roots; verify we can locate them.
        // y = (x+1)(x-2)(x-5) = x^3 -6x^2 +3x +10
        let r = real_roots(&[10.0, 3.0, -6.0, 1.0]);
        assert_eq!(r.len(), 3);
        assert!(horner(&[10.0, 3.0, -6.0, 1.0], 3.0) < 0.0);
        assert!(horner(&[10.0, 3.0, -6.0, 1.0], 6.0) > 0.0);
    }

    #[test]
    fn large_coefficient_scale() {
        // 1e6 (x-1)(x-2)
        assert_roots(&[2.0e6, -3.0e6, 1.0e6], &[1.0, 2.0]);
    }
}
