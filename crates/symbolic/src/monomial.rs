//! Laurent monomials: products of symbol powers with integer (possibly
//! negative) exponents.
//!
//! Negative exponents are required because aggregated cost expressions
//! contain terms like `1/x^3` (paper §3.1's simplification example) and
//! per-iteration divisions by symbolic step counts.

use crate::symbol::Symbol;
use crate::Rational;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

/// A product of symbol powers, e.g. `n^2 * p^-1`.
///
/// The factor list is kept sorted by symbol with all exponents nonzero, so
/// equal monomials are structurally equal.
///
/// # Examples
///
/// ```
/// use presage_symbolic::{Monomial, Symbol};
///
/// let n = Symbol::new("n");
/// let m = Monomial::var(n.clone()).mul(&Monomial::power(n, 1));
/// assert_eq!(m.to_string(), "n^2");
/// assert_eq!(m.total_degree(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Monomial {
    /// Sorted by symbol; exponents never zero.
    factors: Vec<(Symbol, i32)>,
}

impl Monomial {
    /// The empty monomial (multiplicative identity, i.e. the constant 1).
    pub fn one() -> Monomial {
        Monomial {
            factors: Vec::new(),
        }
    }

    /// A single variable to the first power.
    pub fn var(sym: Symbol) -> Monomial {
        Monomial::power(sym, 1)
    }

    /// A single variable raised to `exp` (which may be negative).
    pub fn power(sym: Symbol, exp: i32) -> Monomial {
        if exp == 0 {
            Monomial::one()
        } else {
            Monomial {
                factors: vec![(sym, exp)],
            }
        }
    }

    /// Builds a monomial from `(symbol, exponent)` pairs; zero exponents are
    /// dropped and repeated symbols are combined.
    pub fn from_pairs<I>(pairs: I) -> Monomial
    where
        I: IntoIterator<Item = (Symbol, i32)>,
    {
        let mut acc = Monomial::one();
        for (sym, exp) in pairs {
            acc = acc.mul(&Monomial::power(sym, exp));
        }
        acc
    }

    /// Returns `true` if this is the constant monomial 1.
    pub fn is_one(&self) -> bool {
        self.factors.is_empty()
    }

    /// Iterates over `(symbol, exponent)` factors in symbol order.
    pub fn factors(&self) -> impl Iterator<Item = (&Symbol, i32)> {
        self.factors.iter().map(|(s, e)| (s, *e))
    }

    /// The exponent of `sym` in this monomial (0 if absent).
    pub fn exponent_of(&self, sym: &Symbol) -> i32 {
        self.factors
            .binary_search_by(|(s, _)| s.cmp(sym))
            .map(|i| self.factors[i].1)
            .unwrap_or(0)
    }

    /// Sum of all exponents (Laurent total degree; may be negative).
    pub fn total_degree(&self) -> i32 {
        self.factors.iter().map(|(_, e)| e).sum()
    }

    /// Returns `true` if any exponent is negative.
    pub fn has_negative_exponent(&self) -> bool {
        self.factors.iter().any(|(_, e)| *e < 0)
    }

    /// The set of symbols appearing in this monomial.
    pub fn symbols(&self) -> impl Iterator<Item = &Symbol> {
        self.factors.iter().map(|(s, _)| s)
    }

    /// Multiplies two monomials (merges factor lists, adding exponents).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out = Vec::with_capacity(self.factors.len() + other.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            match self.factors[i].0.cmp(&other.factors[j].0) {
                Ordering::Less => {
                    out.push(self.factors[i].clone());
                    i += 1;
                }
                Ordering::Greater => {
                    out.push(other.factors[j].clone());
                    j += 1;
                }
                Ordering::Equal => {
                    let e = self.factors[i].1 + other.factors[j].1;
                    if e != 0 {
                        out.push((self.factors[i].0.clone(), e));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.factors[i..]);
        out.extend_from_slice(&other.factors[j..]);
        Monomial { factors: out }
    }

    /// Divides by `other` (exponent subtraction; always exact for Laurent
    /// monomials).
    pub fn div(&self, other: &Monomial) -> Monomial {
        self.mul(&other.pow(-1))
    }

    /// Raises every exponent by the factor `exp`.
    pub fn pow(&self, exp: i32) -> Monomial {
        if exp == 0 {
            return Monomial::one();
        }
        Monomial {
            factors: self
                .factors
                .iter()
                .map(|(s, e)| (s.clone(), e * exp))
                .collect(),
        }
    }

    /// Removes `sym` from the monomial, returning the removed exponent and
    /// the remaining monomial.
    pub fn split_symbol(&self, sym: &Symbol) -> (i32, Monomial) {
        let exp = self.exponent_of(sym);
        if exp == 0 {
            return (0, self.clone());
        }
        let rest = Monomial {
            factors: self
                .factors
                .iter()
                .filter(|(s, _)| s != sym)
                .cloned()
                .collect(),
        };
        (exp, rest)
    }

    /// Evaluates with exact rational bindings.
    ///
    /// Returns `None` if a symbol is unbound or a zero value is raised to a
    /// negative power.
    pub fn eval(&self, bindings: &HashMap<Symbol, Rational>) -> Option<Rational> {
        let mut acc = Rational::ONE;
        for (sym, exp) in &self.factors {
            let v = bindings.get(sym)?;
            if v.is_zero() && *exp < 0 {
                return None;
            }
            acc *= v.pow(*exp);
        }
        Some(acc)
    }

    /// Evaluates with floating-point bindings.
    ///
    /// Returns `None` if a symbol is unbound.
    pub fn eval_f64(&self, bindings: &HashMap<Symbol, f64>) -> Option<f64> {
        let mut acc = 1.0;
        for (sym, exp) in &self.factors {
            let v = bindings.get(sym)?;
            acc *= v.powi(*exp);
        }
        Some(acc)
    }
}

/// Graded-lexicographic ordering: higher total degree first inside [`crate::Poly`]
/// displays, ties broken lexicographically by factors.
impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Monomial) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    fn cmp(&self, other: &Monomial) -> Ordering {
        self.total_degree()
            .cmp(&other.total_degree())
            .then_with(|| self.factors.cmp(&other.factors))
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return f.write_str("1");
        }
        let mut first = true;
        for (sym, exp) in &self.factors {
            if !first {
                f.write_str("*")?;
            }
            first = false;
            if *exp == 1 {
                write!(f, "{sym}")?;
            } else {
                write!(f, "{sym}^{exp}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Monomial({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    #[test]
    fn one_is_empty() {
        assert!(Monomial::one().is_one());
        assert_eq!(Monomial::power(sym("x"), 0), Monomial::one());
        assert_eq!(Monomial::one().to_string(), "1");
    }

    #[test]
    fn mul_merges_sorted() {
        let m = Monomial::var(sym("y")).mul(&Monomial::var(sym("x")));
        assert_eq!(m.to_string(), "x*y");
        let m2 = m.mul(&Monomial::power(sym("x"), 2));
        assert_eq!(m2.to_string(), "x^3*y");
    }

    #[test]
    fn mul_cancels_to_one() {
        let m = Monomial::power(sym("x"), 2).mul(&Monomial::power(sym("x"), -2));
        assert!(m.is_one());
    }

    #[test]
    fn div_and_pow() {
        let m = Monomial::power(sym("n"), 3).div(&Monomial::var(sym("n")));
        assert_eq!(m, Monomial::power(sym("n"), 2));
        assert_eq!(m.pow(-1), Monomial::power(sym("n"), -2));
        assert_eq!(m.pow(0), Monomial::one());
    }

    #[test]
    fn degree_and_negative_exponents() {
        let m = Monomial::from_pairs([(sym("x"), 2), (sym("y"), -3)]);
        assert_eq!(m.total_degree(), -1);
        assert!(m.has_negative_exponent());
        assert_eq!(m.exponent_of(&sym("y")), -3);
        assert_eq!(m.exponent_of(&sym("z")), 0);
    }

    #[test]
    fn split_symbol() {
        let m = Monomial::from_pairs([(sym("x"), 2), (sym("y"), 1)]);
        let (e, rest) = m.split_symbol(&sym("x"));
        assert_eq!(e, 2);
        assert_eq!(rest, Monomial::var(sym("y")));
        let (e0, rest0) = m.split_symbol(&sym("z"));
        assert_eq!(e0, 0);
        assert_eq!(rest0, m);
    }

    #[test]
    fn eval_rational() {
        let m = Monomial::from_pairs([(sym("x"), 2), (sym("y"), -1)]);
        let mut b = HashMap::new();
        b.insert(sym("x"), Rational::from_int(3));
        b.insert(sym("y"), Rational::from_int(2));
        assert_eq!(m.eval(&b), Some(Rational::new(9, 2)));
        b.insert(sym("y"), Rational::ZERO);
        assert_eq!(m.eval(&b), None, "division by zero must be detected");
    }

    #[test]
    fn eval_missing_binding() {
        let m = Monomial::var(sym("q"));
        assert_eq!(m.eval(&HashMap::new()), None);
        assert_eq!(m.eval_f64(&HashMap::new()), None);
    }

    #[test]
    fn grlex_order() {
        let x2 = Monomial::power(sym("x"), 2);
        let xy = Monomial::from_pairs([(sym("x"), 1), (sym("y"), 1)]);
        let x = Monomial::var(sym("x"));
        assert!(x < x2);
        assert!(
            xy < x2,
            "same degree: higher power of the earlier symbol sorts later"
        );
    }
}
