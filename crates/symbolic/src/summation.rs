//! Closed-form summation of polynomials over an index variable.
//!
//! Triangular and trapezoidal loop nests make an inner loop's cost depend
//! on the outer index (`do j = i, n` runs `n − i + 1` times). Aggregating
//! the outer loop then needs `Σ_{i=lb}^{ub} p(i)` in closed form —
//! Faulhaber's formulas — rather than a count×body product. Degrees up to
//! 4 are supported, matching the rest of the framework's closed-form
//! budget.

use crate::intern::{PolyId, SymId, POLY_UNINTERNED};
use crate::memo::{self, ShardedMemo};
use crate::{Poly, Rational, Symbol};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::LazyLock;

const MEMO_CAP: usize = 1 << 12;
const L2_SHARDS: usize = 16;
const L2_CAP_PER_SHARD: usize = MEMO_CAP / L2_SHARDS * 2;

thread_local! {
    /// `(m's PolyId, k) -> Σ_{t=0}^{m} t^k` — Faulhaber expansion memo.
    /// `None` values record "no closed form for this exponent".
    static POWERS_MEMO: RefCell<HashMap<(PolyId, u32), Option<PolyId>>> =
        RefCell::new(HashMap::new());
    /// `(p, var, lb, ub)` as interned ids `-> Σ_{var=lb}^{ub} p(var)` —
    /// aggregation asks for the same triangular-nest sums on every
    /// prediction; id keys make a hit two table lookups instead of cloning
    /// and hashing three whole polynomials.
    static RANGE_MEMO: RefCell<HashMap<RangeKey, Option<PolyId>>> =
        RefCell::new(HashMap::new());
}

/// `(summand, summation variable, lower bound, upper bound)` — key of the
/// range-sum memos (L1 and L2).
type RangeKey = (PolyId, SymId, PolyId, PolyId);

/// Sharded L2s behind the thread-local memos: fresh batch workers inherit
/// warm Faulhaber expansions and range sums instead of recomputing them.
static POWERS_L2: LazyLock<ShardedMemo<(PolyId, u32), Option<PolyId>>> =
    LazyLock::new(|| ShardedMemo::new(L2_SHARDS, L2_CAP_PER_SHARD));
static RANGE_L2: LazyLock<ShardedMemo<RangeKey, Option<PolyId>>> =
    LazyLock::new(|| ShardedMemo::new(L2_SHARDS, L2_CAP_PER_SHARD));

/// Total entries across the summation L2 memos (soak telemetry).
pub(crate) fn l2_memo_entries() -> usize {
    POWERS_L2.len() + RANGE_L2.len()
}

/// Drops every entry in the summation L2 memos. Called from
/// [`crate::epoch::advance`] before arena slots are reclaimed, so no
/// retired `PolyId` can ever be served from an L2 again.
pub(crate) fn clear_l2_memos() {
    POWERS_L2.clear();
    RANGE_L2.clear();
}

thread_local! {
    /// Pin epoch the L1 memos above were last validated at; see
    /// `poly::sync_l1_epoch` for the invariant. Cleared-on-mismatch so a
    /// stale `PolyId` can never be served across an epoch boundary.
    static L1_EPOCH: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn sync_l1_epoch(pin_epoch: u64) {
    L1_EPOCH.with(|e| {
        if e.get() != pin_epoch {
            e.set(pin_epoch);
            POWERS_MEMO.with(|m| m.borrow_mut().clear());
            RANGE_MEMO.with(|m| m.borrow_mut().clear());
        }
    });
}

/// Two-level id-keyed memoization: thread-local L1 (no atomics on hit)
/// backed by a sharded process-wide L2. Results are stored as arena ids; a
/// result that fails to intern (arena at capacity) is returned uncached.
fn memoize<K: std::hash::Hash + Eq + Copy, F: FnOnce() -> Option<Poly>>(
    cache: &RefCell<HashMap<K, Option<PolyId>>>,
    l2: &ShardedMemo<K, Option<PolyId>>,
    key: K,
    compute: F,
) -> Option<Poly> {
    if let Some(hit) = cache.borrow().get(&key) {
        memo::record_l1_hit();
        return hit.map(Poly::from_interned);
    }
    let entry = if let Some(hit) = l2.get(&key) {
        memo::record_l2_hit();
        hit
    } else {
        memo::record_miss();
        let value = compute();
        let entry = match &value {
            Some(p) => {
                let id = p.interned_id();
                if id == POLY_UNINTERNED {
                    return value;
                }
                Some(id)
            }
            None => None,
        };
        l2.insert(key, entry);
        entry
    };
    let mut cache = cache.borrow_mut();
    if cache.len() >= MEMO_CAP {
        cache.clear();
    }
    cache.insert(key, entry);
    entry.map(Poly::from_interned)
}

/// `Σ_{t=0}^{m} t^k` as a polynomial in `m`, for `k ≤ 4` (memoized per
/// thread).
///
/// Returns `None` for larger exponents.
pub fn sum_powers(m: &Poly, k: u32) -> Option<Poly> {
    // The pin covers acquisition of `id` through its use as a memo key
    // and the final resolution — ids are epoch-confined.
    let guard = crate::epoch::pin();
    sync_l1_epoch(guard.epoch());
    let id = m.interned_id();
    if id == POLY_UNINTERNED {
        return sum_powers_uncached(m, k);
    }
    POWERS_MEMO.with(|cache| memoize(cache, &POWERS_L2, (id, k), || sum_powers_uncached(m, k)))
}

fn sum_powers_uncached(m: &Poly, k: u32) -> Option<Poly> {
    let m1 = m + &Poly::one();
    Some(match k {
        0 => m1,
        1 => (m * &m1).scale(Rational::new(1, 2)),
        2 => {
            let two_m1 = m.scale(2) + Poly::one();
            (&(m * &m1) * &two_m1).scale(Rational::new(1, 6))
        }
        3 => {
            let s1 = (m * &m1).scale(Rational::new(1, 2));
            &s1 * &s1
        }
        4 => {
            // m(m+1)(2m+1)(3m² + 3m − 1)/30
            let two_m1 = m.scale(2) + Poly::one();
            let q = (m * m).scale(3) + m.scale(3) - Poly::one();
            (&(&(m * &m1) * &two_m1) * &q).scale(Rational::new(1, 30))
        }
        _ => return None,
    })
}

/// `Σ_{var=0}^{m} p(var)`: sums a polynomial over an index running from 0
/// to `m` (inclusive), eliminating `var`.
///
/// Returns `None` when `p` has `var`-degree above 4 or negative powers of
/// `var` (no closed polynomial form).
pub fn sum_over(p: &Poly, var: &Symbol, m: &Poly) -> Option<Poly> {
    let mut total = Poly::zero();
    for (exp, coeff) in p.as_univariate(var) {
        if exp < 0 {
            return None;
        }
        let s = sum_powers(m, exp as u32)?;
        total += &coeff * &s;
    }
    Some(total)
}

/// `Σ_{var=lb}^{ub} p(var)` with unit step: substitutes `var := lb + t`
/// and sums `t` from 0 to `ub − lb`. Memoized per thread on the interned
/// forms of all four inputs.
///
/// Returns `None` under the same conditions as [`sum_over`], or when the
/// substitution fails.
pub fn sum_range(p: &Poly, var: &Symbol, lb: &Poly, ub: &Poly) -> Option<Poly> {
    let guard = crate::epoch::pin();
    sync_l1_epoch(guard.epoch());
    let (pid, lbid, ubid) = (p.interned_id(), lb.interned_id(), ub.interned_id());
    if pid == POLY_UNINTERNED || lbid == POLY_UNINTERNED || ubid == POLY_UNINTERNED {
        return sum_range_uncached(p, var, lb, ub);
    }
    RANGE_MEMO.with(|cache| {
        let key = (pid, crate::intern::sym_id(var), lbid, ubid);
        memoize(cache, &RANGE_L2, key, || sum_range_uncached(p, var, lb, ub))
    })
}

fn sum_range_uncached(p: &Poly, var: &Symbol, lb: &Poly, ub: &Poly) -> Option<Poly> {
    let t = Symbol::interned("$sum_t");
    let replacement = lb + &Poly::var(t.clone());
    let shifted = p.subst(var, &replacement).ok()?;
    let m = ub - lb;
    sum_over(&shifted, &t, &m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn n() -> Symbol {
        Symbol::new("n")
    }

    fn eval_at(p: &Poly, pairs: &[(&str, i64)]) -> Rational {
        let b: HashMap<Symbol, Rational> = pairs
            .iter()
            .map(|(s, v)| (Symbol::new(*s), Rational::from_int(*v)))
            .collect();
        p.eval(&b).unwrap()
    }

    #[test]
    fn power_sum_formulas_match_brute_force() {
        for k in 0..=4u32 {
            let m = Poly::var(n());
            let formula = sum_powers(&m, k).unwrap();
            for mv in 0i64..=12 {
                let brute: i64 = (0..=mv).map(|t| t.pow(k)).sum();
                assert_eq!(
                    eval_at(&formula, &[("n", mv)]),
                    Rational::from_int(brute),
                    "k={k}, m={mv}"
                );
            }
        }
    }

    #[test]
    fn degree_five_unsupported() {
        assert!(sum_powers(&Poly::var(n()), 5).is_none());
        let p = Poly::var(Symbol::new("i")).pow(5);
        assert!(sum_over(&p, &Symbol::new("i"), &Poly::var(n())).is_none());
    }

    #[test]
    fn negative_powers_unsupported() {
        let i = Symbol::new("i");
        let p = Poly::term(Rational::ONE, crate::Monomial::power(i.clone(), -1));
        assert!(sum_over(&p, &i, &Poly::var(n())).is_none());
    }

    #[test]
    fn sum_over_mixed_polynomial() {
        // Σ_{i=0}^{m} (3i² + 2i + 1) checked against brute force.
        let i = Symbol::new("i");
        let p = Poly::var(i.clone()).pow(2).scale(3) + Poly::var(i.clone()).scale(2) + Poly::one();
        let s = sum_over(&p, &i, &Poly::var(n())).unwrap();
        for mv in 0i64..=10 {
            let brute: i64 = (0..=mv).map(|t| 3 * t * t + 2 * t + 1).sum();
            assert_eq!(eval_at(&s, &[("n", mv)]), Rational::from_int(brute));
        }
    }

    #[test]
    fn sum_range_triangular() {
        // Σ_{i=1}^{n} (n − i + 1) = n(n+1)/2 — the triangular nest count.
        let i = Symbol::new("i");
        let p = Poly::var(n()) - Poly::var(i.clone()) + Poly::one();
        let s = sum_range(&p, &i, &Poly::one(), &Poly::var(n())).unwrap();
        let expected =
            (&Poly::var(n()) * &(Poly::var(n()) + Poly::one())).scale(Rational::new(1, 2));
        assert_eq!(s, expected, "{s}");
    }

    #[test]
    fn sum_range_keeps_other_symbols() {
        // Σ_{i=1}^{m} (c·i) = c·m(m+1)/2 with c symbolic.
        let i = Symbol::new("i");
        let c = Poly::var(Symbol::new("c"));
        let p = &c * &Poly::var(i.clone());
        let m = Poly::var(Symbol::new("m"));
        let s = sum_range(&p, &i, &Poly::one(), &m).unwrap();
        for (mv, expect) in [(1i64, 1), (4, 10), (10, 55)] {
            assert_eq!(
                eval_at(&s, &[("m", mv), ("c", 7)]),
                Rational::from_int(7 * expect),
                "m={mv}"
            );
        }
    }

    #[test]
    fn constant_body_reduces_to_count() {
        // Σ_{i=lb}^{ub} 5 = 5(ub − lb + 1).
        let i = Symbol::new("i");
        let s = sum_range(&Poly::from(5), &i, &Poly::from(3), &Poly::var(n())).unwrap();
        let expected = (Poly::var(n()) - Poly::from(2)).scale(5);
        assert_eq!(s, expected);
    }
}
