//! Performance expressions: polynomials plus metadata about the program
//! unknowns they mention.
//!
//! A [`PerfExpr`] is the unit of currency of the whole framework (paper
//! §2.4): straight-line costs enter as constants, loops multiply by symbolic
//! iteration counts, conditionals blend branches with probability symbols,
//! and transformation decisions compare two expressions symbolically
//! (§3.1). The variable metadata carries each unknown's kind and known
//! range so comparisons can often be decided without guessing.

use crate::interval::Interval;
use crate::signs::{sign_over_box_refined, sign_regions, SignRegion, SignVerdict};
use crate::{Poly, Rational, Symbol};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// What a symbolic unknown stands for.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum VarKind {
    /// A loop bound or trip count (integer ≥ 0 unless a range says otherwise).
    LoopBound,
    /// A branching probability in `[0, 1]`.
    BranchProb,
    /// A general problem-size or machine parameter.
    Param,
}

impl fmt::Display for VarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VarKind::LoopBound => "loop-bound",
            VarKind::BranchProb => "branch-prob",
            VarKind::Param => "param",
        })
    }
}

/// Metadata about one unknown.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct VarInfo {
    /// What the unknown represents.
    pub kind: VarKind,
    /// Known bounds for the unknown's value.
    pub range: Interval,
}

impl VarInfo {
    /// A loop bound known to lie in `[lo, hi]`.
    pub fn loop_bound(lo: f64, hi: f64) -> VarInfo {
        VarInfo {
            kind: VarKind::LoopBound,
            range: Interval::new(lo, hi),
        }
    }

    /// A branch probability (range `[0, 1]`).
    pub fn branch_prob() -> VarInfo {
        VarInfo {
            kind: VarKind::BranchProb,
            range: Interval::new(0.0, 1.0),
        }
    }

    /// A general parameter in `[lo, hi]`.
    pub fn param(lo: f64, hi: f64) -> VarInfo {
        VarInfo {
            kind: VarKind::Param,
            range: Interval::new(lo, hi),
        }
    }
}

/// A symbolic performance expression: estimated cycles as a polynomial over
/// program unknowns, with per-unknown kind/range metadata.
///
/// # Examples
///
/// ```
/// use presage_symbolic::{PerfExpr, VarInfo, Symbol};
///
/// let n = Symbol::new("n");
/// // A loop executing a 12-cycle body n times plus 3 cycles of overhead.
/// let body = PerfExpr::cycles(12);
/// let cost = body.repeat_symbolic(n.clone(), VarInfo::loop_bound(1.0, 1e6)) + PerfExpr::cycles(3);
/// assert_eq!(cost.poly().to_string(), "12*n + 3");
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct PerfExpr {
    poly: Poly,
    vars: BTreeMap<Symbol, VarInfo>,
}

impl PerfExpr {
    /// The zero-cost expression.
    pub fn zero() -> PerfExpr {
        PerfExpr::default()
    }

    /// A constant cycle count.
    pub fn cycles(n: i64) -> PerfExpr {
        PerfExpr {
            poly: Poly::from(n),
            vars: BTreeMap::new(),
        }
    }

    /// A constant rational cycle count.
    pub fn cycles_rational(r: Rational) -> PerfExpr {
        PerfExpr {
            poly: Poly::constant(r),
            vars: BTreeMap::new(),
        }
    }

    /// Wraps a polynomial with explicit variable metadata.
    ///
    /// Symbols of `poly` that are missing from `vars` get a default
    /// `Param` kind with range `[0, 1e9]`.
    pub fn from_poly(poly: Poly, vars: impl IntoIterator<Item = (Symbol, VarInfo)>) -> PerfExpr {
        let mut map: BTreeMap<Symbol, VarInfo> = vars.into_iter().collect();
        poly.for_each_symbol(|sym| {
            if !map.contains_key(sym) {
                map.insert(sym.clone(), VarInfo::param(0.0, 1e9));
            }
        });
        PerfExpr { poly, vars: map }
    }

    /// Wraps a polynomial, deriving metadata in a single walk: `info` is
    /// called once per distinct symbol. This is the allocation-light cousin
    /// of [`PerfExpr::from_poly`] for callers (aggregation's `wrap`) that
    /// would otherwise build an intermediate symbol set just to look each
    /// name up again.
    pub fn from_poly_with(poly: Poly, mut info: impl FnMut(&Symbol) -> VarInfo) -> PerfExpr {
        let mut map: BTreeMap<Symbol, VarInfo> = BTreeMap::new();
        poly.for_each_symbol(|sym| {
            if !map.contains_key(sym) {
                let i = info(sym);
                map.insert(sym.clone(), i);
            }
        });
        PerfExpr { poly, vars: map }
    }

    /// A bare unknown as an expression.
    pub fn var(sym: Symbol, info: VarInfo) -> PerfExpr {
        PerfExpr {
            poly: Poly::var(sym.clone()),
            vars: BTreeMap::from([(sym, info)]),
        }
    }

    /// The underlying polynomial.
    pub fn poly(&self) -> &Poly {
        &self.poly
    }

    /// The variable metadata map.
    pub fn vars(&self) -> &BTreeMap<Symbol, VarInfo> {
        &self.vars
    }

    /// Returns `true` if the expression has no unknowns.
    pub fn is_concrete(&self) -> bool {
        self.poly.is_constant()
    }

    /// The exact value when concrete.
    pub fn concrete_cycles(&self) -> Option<Rational> {
        self.poly.constant_value()
    }

    /// Folds `other` into `out`, keeping the tighter range on conflicts.
    fn merge_vars_into(out: &mut BTreeMap<Symbol, VarInfo>, other: &BTreeMap<Symbol, VarInfo>) {
        for (sym, info) in other {
            out.entry(sym.clone())
                .and_modify(|e| {
                    if let Some(tight) = e.range.intersect(&info.range) {
                        e.range = tight;
                    }
                })
                .or_insert(*info);
        }
    }

    /// Merges variable metadata, keeping the tighter range on conflicts.
    fn merged_vars(&self, other: &PerfExpr) -> BTreeMap<Symbol, VarInfo> {
        let mut out = self.vars.clone();
        PerfExpr::merge_vars_into(&mut out, &other.vars);
        out
    }

    fn prune_vars(mut self) -> PerfExpr {
        self.prune_vars_in_place();
        self
    }

    fn prune_vars_in_place(&mut self) {
        if self.vars.is_empty() {
            return;
        }
        // Interned symbol ids avoid the `BTreeSet<Symbol>` build (and its
        // per-symbol `Arc` churn) that made this the hot spot of `+`/`mul`.
        let used = self.poly.symbol_ids();
        if used.len() == self.vars.len()
            && self
                .vars
                .keys()
                .all(|s| used.binary_search(&crate::intern::sym_id(s)).is_ok())
        {
            return;
        }
        self.vars
            .retain(|s, _| used.binary_search(&crate::intern::sym_id(s)).is_ok());
    }

    /// Scales the expression by a rational factor (e.g. an issue-width
    /// correction or a probability constant).
    pub fn scale(&self, c: impl Into<Rational>) -> PerfExpr {
        PerfExpr {
            poly: self.poly.scale(c),
            vars: self.vars.clone(),
        }
        .prune_vars()
    }

    /// Multiplies by another expression (used for `count × body`).
    pub fn mul(&self, other: &PerfExpr) -> PerfExpr {
        let vars = if other.vars.is_empty() {
            self.vars.clone()
        } else if self.vars.is_empty() {
            other.vars.clone()
        } else {
            self.merged_vars(other)
        };
        PerfExpr {
            poly: &self.poly * &other.poly,
            vars,
        }
        .prune_vars()
    }

    /// Cost of repeating this expression a symbolic number of times:
    /// `count_sym * self` (paper §2.4.1, the `Σ_{k∈Iter}` factor when the
    /// body cost is iteration-independent).
    pub fn repeat_symbolic(&self, count_sym: Symbol, info: VarInfo) -> PerfExpr {
        self.mul(&PerfExpr::var(count_sym, info))
    }

    /// Cost of repeating this expression `count` times where the count is an
    /// arbitrary expression such as `(ub − lb + 1)/step`.
    pub fn repeat(&self, count: &PerfExpr) -> PerfExpr {
        self.mul(count)
    }

    /// Combines branch costs for a conditional (paper §2.4.1):
    /// `p * then + (1 − p) * else_`, where `p` is a fresh probability symbol.
    pub fn conditional(prob_sym: Symbol, then_cost: &PerfExpr, else_cost: &PerfExpr) -> PerfExpr {
        let p = PerfExpr::var(prob_sym, VarInfo::branch_prob());
        let one_minus_p = PerfExpr::cycles(1) - p.clone();
        p.mul(then_cost) + one_minus_p.mul(else_cost)
    }

    /// Substitutes an unknown with a polynomial (e.g. a discovered constant
    /// or an expression in other unknowns). Metadata for the substituted
    /// symbol is dropped; symbols introduced by `replacement` get `info`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::poly::SubstError`] for negative-power conflicts.
    pub fn subst(
        &self,
        sym: &Symbol,
        replacement: &Poly,
        info: impl IntoIterator<Item = (Symbol, VarInfo)>,
    ) -> Result<PerfExpr, crate::poly::SubstError> {
        let poly = self.poly.subst(sym, replacement)?;
        let mut vars = self.vars.clone();
        vars.remove(sym);
        for (s, i) in info {
            vars.insert(s, i);
        }
        Ok(PerfExpr { poly, vars }.prune_vars())
    }

    /// Binds an unknown to a concrete value.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::poly::SubstError`] (zero into a negative power).
    pub fn bind(&self, sym: &Symbol, value: Rational) -> Result<PerfExpr, crate::poly::SubstError> {
        self.subst(sym, &Poly::constant(value), [])
    }

    /// Evaluates numerically with explicit bindings; missing unknowns fall
    /// back to the midpoint of their recorded range (this is the explicit,
    /// *late* guess the paper allows once symbolic methods are exhausted).
    pub fn eval_with_defaults(&self, bindings: &HashMap<Symbol, f64>) -> f64 {
        let mut full = bindings.clone();
        for (sym, info) in &self.vars {
            full.entry(sym.clone()).or_insert_with(|| info.range.mid());
        }
        self.poly.eval_f64(&full).unwrap_or(f64::NAN)
    }

    /// The box of recorded variable ranges.
    pub fn range_box(&self) -> HashMap<Symbol, Interval> {
        self.vars
            .iter()
            .map(|(s, i)| (s.clone(), i.range))
            .collect()
    }

    /// Bounds the expression's value over the recorded ranges.
    pub fn value_bounds(&self) -> Option<Interval> {
        Interval::eval_poly(&self.poly, &self.range_box())
    }

    /// Drops terms that are negligible over the recorded ranges (paper §3.1:
    /// "change expressions to simpler expressions by dropping some terms",
    /// e.g. `4x^4 + 2x^3 − 4x + 1/x^3 → 4x^4 + 2x^3 − 4x` for `x ∈ [3,100]`).
    ///
    /// A term is dropped when its maximum magnitude over the box is at most
    /// `epsilon` times the largest guaranteed magnitude among all terms.
    pub fn drop_negligible_terms(&self, epsilon: f64) -> PerfExpr {
        let box_ = self.range_box();
        // Largest guaranteed (minimum-over-box) magnitude of any term.
        let mut dominant = 0.0f64;
        let mut term_max: Vec<(crate::Monomial, f64)> = Vec::new();
        for (mono, coeff) in self.poly.terms() {
            let mut iv = Interval::point(coeff.to_f64());
            for (sym, exp) in mono.factors() {
                let Some(r) = box_.get(sym) else {
                    return self.clone();
                };
                iv = iv * r.powi(exp);
            }
            let min_abs = if iv.contains_zero() {
                0.0
            } else {
                iv.lo().abs().min(iv.hi().abs())
            };
            let max_abs = iv.lo().abs().max(iv.hi().abs());
            dominant = dominant.max(min_abs);
            term_max.push((mono.clone(), max_abs));
        }
        if dominant == 0.0 {
            return self.clone();
        }
        let threshold = epsilon * dominant;
        let keep: std::collections::HashSet<crate::Monomial> = term_max
            .into_iter()
            .filter(|(_, max_abs)| *max_abs > threshold)
            .map(|(m, _)| m)
            .collect();
        let poly = self.poly.filter_terms(|m, _| keep.contains(m));
        PerfExpr {
            poly,
            vars: self.vars.clone(),
        }
        .prune_vars()
    }

    /// Symbolically compares two cost expressions ("is `self` cheaper than
    /// `other`?"), the decision procedure of §3.1.
    ///
    /// The difference `P = self − other` is analyzed:
    /// 1. If `P` is constant, the answer is exact.
    /// 2. If `P` is univariate, sign regions over the unknown's range are
    ///    computed (Figure 10) and crossover points reported.
    /// 3. Otherwise interval arithmetic over the merged range box gives a
    ///    conservative verdict, refined by bisection.
    pub fn compare(&self, other: &PerfExpr) -> Comparison {
        let diff_poly = &self.poly - &other.poly;
        let vars = self.merged_vars(other);
        let diff = PerfExpr {
            poly: diff_poly,
            vars,
        }
        .prune_vars();

        if let Some(c) = diff.poly.constant_value() {
            let outcome = match c.signum() {
                s if s < 0 => CompareOutcome::FirstCheaper,
                s if s > 0 => CompareOutcome::SecondCheaper,
                _ => CompareOutcome::AlwaysEqual,
            };
            return Comparison {
                outcome,
                difference: diff,
                regions: None,
                crossovers: Vec::new(),
            };
        }

        let syms: Vec<Symbol> = diff.poly.symbols().into_iter().collect();
        if syms.len() == 1 {
            let sym = &syms[0];
            let range = diff.vars[sym].range;
            if let Ok(regions) = sign_regions(&diff.poly, sym, range.lo(), range.hi()) {
                let crossovers: Vec<f64> = regions
                    .windows(2)
                    .map(|w| w[0].hi)
                    .filter(|b| *b > range.lo() && *b < range.hi())
                    .collect();
                let has_pos = regions
                    .iter()
                    .any(|r| r.sign == crate::signs::Sign::Positive);
                let has_neg = regions
                    .iter()
                    .any(|r| r.sign == crate::signs::Sign::Negative);
                let outcome = match (has_pos, has_neg) {
                    (false, true) => CompareOutcome::FirstCheaper,
                    (true, false) => CompareOutcome::SecondCheaper,
                    (false, false) => CompareOutcome::AlwaysEqual,
                    (true, true) => CompareOutcome::DependsOnUnknowns,
                };
                return Comparison {
                    outcome,
                    difference: diff,
                    regions: Some(regions),
                    crossovers,
                };
            }
        }

        let box_ = diff.range_box();
        let outcome = match sign_over_box_refined(&diff.poly, &box_, 8) {
            SignVerdict::AlwaysNegative | SignVerdict::NonPositive => CompareOutcome::FirstCheaper,
            SignVerdict::AlwaysPositive | SignVerdict::NonNegative => CompareOutcome::SecondCheaper,
            SignVerdict::AlwaysZero => CompareOutcome::AlwaysEqual,
            SignVerdict::Unknown => CompareOutcome::Undetermined,
        };
        Comparison {
            outcome,
            difference: diff,
            regions: None,
            crossovers: Vec::new(),
        }
    }
}

/// Outcome of a symbolic cost comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompareOutcome {
    /// `self` costs less over the entire range of the unknowns.
    FirstCheaper,
    /// `other` costs less over the entire range.
    SecondCheaper,
    /// Costs are identical.
    AlwaysEqual,
    /// The winner flips within the unknowns' ranges; see the sign regions.
    /// This is the case that motivates run-time tests (§3.4).
    DependsOnUnknowns,
    /// The conservative analysis could not decide.
    Undetermined,
}

impl fmt::Display for CompareOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompareOutcome::FirstCheaper => "first is cheaper",
            CompareOutcome::SecondCheaper => "second is cheaper",
            CompareOutcome::AlwaysEqual => "always equal",
            CompareOutcome::DependsOnUnknowns => "depends on unknowns",
            CompareOutcome::Undetermined => "undetermined",
        })
    }
}

/// Full result of [`PerfExpr::compare`].
#[derive(Clone, Debug)]
pub struct Comparison {
    /// The decision.
    pub outcome: CompareOutcome,
    /// `self − other` with merged metadata.
    pub difference: PerfExpr,
    /// Sign regions of the difference when it is univariate.
    pub regions: Option<Vec<SignRegion>>,
    /// Values of the unknown where the winner flips.
    pub crossovers: Vec<f64>,
}

impl std::ops::Add for PerfExpr {
    type Output = PerfExpr;
    fn add(mut self, rhs: PerfExpr) -> PerfExpr {
        self += rhs;
        self
    }
}

impl std::ops::Sub for PerfExpr {
    type Output = PerfExpr;
    fn sub(self, rhs: PerfExpr) -> PerfExpr {
        if rhs.vars.is_empty() && rhs.poly.is_constant() {
            return PerfExpr {
                poly: self.poly - rhs.poly,
                vars: self.vars,
            };
        }
        let vars = self.merged_vars(&rhs);
        PerfExpr {
            poly: self.poly - rhs.poly,
            vars,
        }
        .prune_vars()
    }
}

impl std::ops::AddAssign for PerfExpr {
    /// In-place accumulation: the workhorse of `aggregate`'s `total += node`
    /// loops, so it must not clone the metadata map or the term vector.
    fn add_assign(&mut self, rhs: PerfExpr) {
        // Adding a concrete cost (the common case in block aggregation) can
        // only touch the constant term: metadata and symbol set are
        // unchanged, so both the merge and the prune pass are skipped.
        if rhs.vars.is_empty() && rhs.poly.is_constant() {
            self.poly += rhs.poly;
            return;
        }
        if self.vars.is_empty() && self.poly.is_constant() {
            let lhs = std::mem::take(&mut self.poly);
            self.poly = rhs.poly + lhs;
            self.vars = rhs.vars;
            return;
        }
        PerfExpr::merge_vars_into(&mut self.vars, &rhs.vars);
        self.poly += rhs.poly;
        self.prune_vars_in_place();
    }
}

impl std::iter::Sum for PerfExpr {
    fn sum<I: Iterator<Item = PerfExpr>>(iter: I) -> PerfExpr {
        let mut acc = PerfExpr::zero();
        for e in iter {
            acc += e;
        }
        acc
    }
}

impl fmt::Display for PerfExpr {
    /// `{}` prints the polynomial; `{:#}` appends the variable ranges.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.poly)?;
        if !self.vars.is_empty() && f.alternate() {
            write!(f, "  where ")?;
            let mut first = true;
            for (sym, info) in &self.vars {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{sym} ∈ {} ({})", info.range, info.kind)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n() -> Symbol {
        Symbol::new("n")
    }

    #[test]
    fn loop_aggregation_shape() {
        // Paper §2.4.1: C(do) = C(lb)+C(ub)+C(step) + Σ C(B).
        let overhead = PerfExpr::cycles(3);
        let body = PerfExpr::cycles(12);
        let total = body.repeat_symbolic(n(), VarInfo::loop_bound(1.0, 1e6)) + overhead;
        assert_eq!(total.poly().to_string(), "12*n + 3");
        assert!(!total.is_concrete());
    }

    #[test]
    fn conditional_aggregation() {
        // C(if) = p*C(Bt) + (1-p)*C(Bf); with C(cond) added by the caller.
        let p = Symbol::new("p1");
        let c = PerfExpr::conditional(p.clone(), &PerfExpr::cycles(10), &PerfExpr::cycles(4));
        assert_eq!(c.poly().to_string(), "6*p1 + 4");
        assert_eq!(c.vars()[&p].kind, VarKind::BranchProb);
    }

    #[test]
    fn nested_loops_multiply() {
        let m = Symbol::new("m");
        let body = PerfExpr::cycles(5);
        let inner = body.repeat_symbolic(n(), VarInfo::loop_bound(1.0, 1e6));
        let outer = inner.repeat_symbolic(m.clone(), VarInfo::loop_bound(1.0, 1e6));
        assert_eq!(outer.poly().to_string(), "5*m*n");
        assert_eq!(outer.vars().len(), 2);
    }

    #[test]
    fn concrete_detection() {
        let e = PerfExpr::cycles(7);
        assert!(e.is_concrete());
        assert_eq!(e.concrete_cycles(), Some(Rational::from_int(7)));
    }

    #[test]
    fn bind_makes_concrete() {
        let e = PerfExpr::cycles(2).repeat_symbolic(n(), VarInfo::loop_bound(0.0, 100.0));
        let bound = e.bind(&n(), Rational::from_int(10)).unwrap();
        assert_eq!(bound.concrete_cycles(), Some(Rational::from_int(20)));
        assert!(bound.vars().is_empty(), "metadata pruned after binding");
    }

    #[test]
    fn compare_constant() {
        let a = PerfExpr::cycles(5);
        let b = PerfExpr::cycles(9);
        assert_eq!(a.compare(&b).outcome, CompareOutcome::FirstCheaper);
        assert_eq!(b.compare(&a).outcome, CompareOutcome::SecondCheaper);
        assert_eq!(a.compare(&a.clone()).outcome, CompareOutcome::AlwaysEqual);
    }

    #[test]
    fn compare_univariate_dominated() {
        // 10n vs 12n for n ≥ 1: first always cheaper.
        let a = PerfExpr::cycles(10).repeat_symbolic(n(), VarInfo::loop_bound(1.0, 1e6));
        let b = PerfExpr::cycles(12).repeat_symbolic(n(), VarInfo::loop_bound(1.0, 1e6));
        assert_eq!(a.compare(&b).outcome, CompareOutcome::FirstCheaper);
    }

    #[test]
    fn compare_with_crossover() {
        // 100 + 2n vs 10n: crossover at n = 12.5 within [1, 100].
        let info = VarInfo::loop_bound(1.0, 100.0);
        let a = PerfExpr::cycles(2).repeat_symbolic(n(), info) + PerfExpr::cycles(100);
        let b = PerfExpr::cycles(10).repeat_symbolic(n(), info);
        let cmp = a.compare(&b);
        assert_eq!(cmp.outcome, CompareOutcome::DependsOnUnknowns);
        assert_eq!(cmp.crossovers.len(), 1);
        assert!((cmp.crossovers[0] - 12.5).abs() < 1e-6);
    }

    #[test]
    fn compare_multivariate_interval() {
        // m*n + 1 vs m*n: second always cheaper regardless of m, n.
        let m = Symbol::new("m");
        let prod = PerfExpr::cycles(1)
            .repeat_symbolic(n(), VarInfo::loop_bound(1.0, 1e3))
            .repeat_symbolic(m, VarInfo::loop_bound(1.0, 1e3));
        let a = prod.clone() + PerfExpr::cycles(1);
        assert_eq!(a.compare(&prod).outcome, CompareOutcome::SecondCheaper);
    }

    #[test]
    fn drop_negligible_paper_example() {
        // 4x^4 + 2x^3 − 4x + x^-3 over x ∈ [3, 100] drops the x^-3 term.
        let x = Symbol::new("x");
        let poly = Poly::term(4, crate::Monomial::power(x.clone(), 4))
            + Poly::term(2, crate::Monomial::power(x.clone(), 3))
            + Poly::term(-4, crate::Monomial::var(x.clone()))
            + Poly::term(1, crate::Monomial::power(x.clone(), -3));
        let e = PerfExpr::from_poly(poly, [(x.clone(), VarInfo::param(3.0, 100.0))]);
        let simplified = e.drop_negligible_terms(1e-3);
        let expected = Poly::term(4, crate::Monomial::power(x.clone(), 4))
            + Poly::term(2, crate::Monomial::power(x.clone(), 3))
            + Poly::term(-4, crate::Monomial::var(x));
        assert_eq!(simplified.poly(), &expected);
    }

    #[test]
    fn eval_with_defaults_uses_midpoints() {
        let e = PerfExpr::cycles(2).repeat_symbolic(n(), VarInfo::loop_bound(0.0, 10.0));
        let v = e.eval_with_defaults(&HashMap::new());
        assert!((v - 10.0).abs() < 1e-9, "midpoint 5 × 2 cycles");
        let mut b = HashMap::new();
        b.insert(n(), 3.0);
        assert!((e.eval_with_defaults(&b) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn value_bounds() {
        let e = PerfExpr::cycles(2).repeat_symbolic(n(), VarInfo::loop_bound(1.0, 4.0));
        let iv = e.value_bounds().unwrap();
        assert_eq!((iv.lo(), iv.hi()), (2.0, 8.0));
    }

    #[test]
    fn var_ranges_tighten_on_merge() {
        let a = PerfExpr::var(n(), VarInfo::loop_bound(0.0, 100.0));
        let b = PerfExpr::var(n(), VarInfo::loop_bound(10.0, 200.0));
        let merged = a + b;
        let r = merged.vars()[&n()].range;
        assert_eq!((r.lo(), r.hi()), (10.0, 100.0));
    }
}
