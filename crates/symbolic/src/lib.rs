//! Symbolic performance expressions for compile-time performance prediction.
//!
//! This crate implements the symbolic layer of Wang's PLDI 1994 framework
//! (*Precise Compile-Time Performance Prediction for Superscalar-Based
//! Computers*): aggregated costs of loops and conditionals are represented
//! as multivariate Laurent polynomials over program unknowns, so the
//! compiler can **delay or avoid guessing** unknown loop bounds and branch
//! probabilities, and can **compare transformations symbolically**.
//!
//! # Layers
//!
//! - [`Rational`], [`Symbol`], [`Monomial`], [`Poly`]: exact polynomial
//!   arithmetic.
//! - [`Interval`] + [`signs`]: sign regions over ranges (paper Figure 10),
//!   positive/negative-part measures and integrals, conservative
//!   interval-arithmetic verdicts over multivariate boxes.
//! - [`roots`]: closed-form real roots up to degree 4 (Cardano/Ferrari) with
//!   a bisection fallback.
//! - [`PerfExpr`]: polynomials tagged with per-unknown kind and range; loop
//!   and conditional aggregation; symbolic comparison.
//! - [`sensitivity`]: ranking unknowns by their performance impact (§3.4).
//!
//! # Example: choosing a transformation without guessing `n`
//!
//! ```
//! use presage_symbolic::{PerfExpr, VarInfo, Symbol, CompareOutcome};
//!
//! let n = Symbol::new("n");
//! let info = VarInfo::loop_bound(1.0, 1000.0);
//! // Version A: 100-cycle setup + 2 cycles/iteration.
//! let a = PerfExpr::cycles(2).repeat_symbolic(n.clone(), info) + PerfExpr::cycles(100);
//! // Version B: no setup, 10 cycles/iteration.
//! let b = PerfExpr::cycles(10).repeat_symbolic(n.clone(), info);
//! let cmp = a.compare(&b);
//! assert_eq!(cmp.outcome, CompareOutcome::DependsOnUnknowns);
//! assert!((cmp.crossovers[0] - 12.5).abs() < 1e-6); // run-time test threshold
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod expr;
mod intern;
mod interval;
mod monomial;
mod poly;
mod rational;
mod symbol;

pub mod epoch;
pub mod memo;
pub mod reference;
pub mod roots;
pub mod sensitivity;
pub mod signs;
pub mod summation;

pub use expr::{CompareOutcome, Comparison, PerfExpr, VarInfo, VarKind};
pub use intern::{arena_stats, ArenaStats};
#[doc(hidden)]
pub use intern::{poly_id_is_live, set_poly_shard_cap_for_tests};

/// Total entries across this crate's process-wide L2 memo tables
/// (`pow`/`subst`/product and summation memos) — the soak-check probe for
/// bounding memo footprint under sustained batch load.
pub fn l2_memo_entries() -> usize {
    poly::l2_memo_entries() + summation::l2_memo_entries()
}
pub use interval::Interval;
pub use monomial::Monomial;
pub use poly::{Poly, SubstError};
pub use rational::Rational;
pub use symbol::Symbol;
