//! Multivariate Laurent polynomials with exact rational coefficients.
//!
//! This is the representation behind the paper's *performance expressions*:
//! aggregated costs of loops and conditionals are polynomials in the
//! program's unknowns (loop bounds, branch probabilities, problem sizes).
//! Keeping them exact until a decision is forced is the paper's central
//! "delay the guess" idea.
//!
//! Representation: terms are a flat `Vec<(MonoId, Rational)>` sorted by
//! interned monomial id (see [`crate::intern`]'s module docs), so `add` is a
//! sorted merge of `u32` runs, `mul` is a scratch-buffer product + sort +
//! coalesce, and structural queries read packed factor lists instead of
//! walking `BTreeMap` nodes. `substitute` and `pow` are memoized two-level
//! (thread-local L1, sharded process-wide L2 — see [`crate::memo`]),
//! keyed on the interned form. The seed `BTreeMap<Monomial, Rational>`
//! implementation is preserved verbatim in [`crate::reference`] and the
//! differential suite proves both produce identical canonical forms.

use crate::intern::{self, MonoId, PolyId, SymId, MONO_ONE, POLY_UNINTERNED};
use crate::memo::{self, ShardedMemo};
use crate::monomial::Monomial;
use crate::symbol::Symbol;
use crate::Rational;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::LazyLock;

/// A multivariate Laurent polynomial with [`Rational`] coefficients.
///
/// # Examples
///
/// ```
/// use presage_symbolic::{Poly, Symbol};
///
/// let n = Poly::var(Symbol::new("n"));
/// let cost = &(&n * &n) * &Poly::from(3) + &n * &Poly::from(2) + Poly::from(7);
/// assert_eq!(cost.to_string(), "3*n^2 + 2*n + 7");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    /// Canonical form: sorted by interned monomial id, coefficients nonzero.
    /// `MONO_ONE` is id 0, so the constant term (if any) is always first.
    terms: Vec<(MonoId, Rational)>,
}

const MEMO_CAP: usize = 1 << 13;

/// Shard count for the process-wide L2 memo tables.
const L2_SHARDS: usize = 16;
/// Per-shard L2 capacity: totals match the thread-local caps, but each
/// shard clears independently (one hot shard cannot wipe the others).
const L2_CAP_PER_SHARD: usize = MEMO_CAP / L2_SHARDS * 2;

/// Polynomials with at most this many terms bypass the arena and the memos:
/// hashing and interning them costs as much as just computing the answer, and
/// they are the overwhelming majority of per-block costs.
const SMALL_POLY: usize = 2;

/// `(source poly, substituted symbol, replacement poly)` — key of the
/// substitution memos (L1 and L2) below.
type SubstKey = (PolyId, SymId, PolyId);

thread_local! {
    /// `(base PolyId << 32 | exp) -> result PolyId` for exponents ≥ 2 on
    /// interned (> [`SMALL_POLY`]-term) bases. L1 of the two-level memo:
    /// a hit costs no atomics.
    static POW_MEMO: RefCell<HashMap<u64, PolyId>> = RefCell::new(HashMap::new());
    /// `(PolyId, SymId, replacement PolyId) -> substituted id` — aggregation
    /// re-runs the same handful of substitutions (loop shifts, steady-state
    /// probes) constantly, so this is the single highest-value cache in the
    /// engine. Id keys: a hit costs two table lookups instead of cloning and
    /// hashing three whole term vectors.
    static SUBST_MEMO: RefCell<HashMap<SubstKey, Result<PolyId, SubstError>>> =
        RefCell::new(HashMap::new());
    /// Order-normalized `(min PolyId << 32 | max PolyId) -> product id` for
    /// products where both operands exceed [`SMALL_POLY`] terms.
    static MUL_MEMO: RefCell<HashMap<u64, PolyId>> = RefCell::new(HashMap::new());
}

/// Sharded L2 memos behind the thread-local L1s above: freshly spawned
/// batch workers (whose thread-local memos start empty) inherit warm
/// results here instead of recomputing every shape once per thread.
static POW_L2: LazyLock<ShardedMemo<u64, PolyId>> =
    LazyLock::new(|| ShardedMemo::new(L2_SHARDS, L2_CAP_PER_SHARD));
static SUBST_L2: LazyLock<ShardedMemo<SubstKey, Result<PolyId, SubstError>>> =
    LazyLock::new(|| ShardedMemo::new(L2_SHARDS, L2_CAP_PER_SHARD));
static MUL_L2: LazyLock<ShardedMemo<u64, PolyId>> =
    LazyLock::new(|| ShardedMemo::new(L2_SHARDS, L2_CAP_PER_SHARD));

/// Total entries across the polynomial-algebra L2 memos (soak telemetry).
pub(crate) fn l2_memo_entries() -> usize {
    POW_L2.len() + SUBST_L2.len() + MUL_L2.len()
}

/// Drops every entry in the polynomial-algebra L2 memos. Called from
/// [`crate::epoch::advance`] *before* arena slots are reclaimed, so no
/// retired `PolyId` can ever be served from an L2 again.
pub(crate) fn clear_l2_memos() {
    POW_L2.clear();
    SUBST_L2.clear();
    MUL_L2.clear();
}

thread_local! {
    /// Pin epoch the L1 memos above were last validated at. `PolyId`s are
    /// epoch-confined, so a stale L1 hit must never cross an epoch
    /// boundary: [`sync_l1_epoch`] clears all three maps on the first
    /// memoized operation under a newer pin — before any id they hold
    /// could be returned. (This is the fix for the stale-L1 bug: an L2
    /// shard wipe used to leave L1 entries pointing at ids the wipe had
    /// orphaned.)
    static L1_EPOCH: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Invalidates the thread-local L1 memos when the thread's pin epoch has
/// moved since they were last used. Must be called under the pin guard
/// whose epoch is passed in, before consulting any L1.
fn sync_l1_epoch(pin_epoch: u64) {
    L1_EPOCH.with(|e| {
        if e.get() != pin_epoch {
            e.set(pin_epoch);
            POW_MEMO.with(|m| m.borrow_mut().clear());
            SUBST_MEMO.with(|m| m.borrow_mut().clear());
            MUL_MEMO.with(|m| m.borrow_mut().clear());
        }
    });
}

/// Clear-on-cap insert into a thread-local L1 memo.
fn l1_insert<K: std::hash::Hash + Eq + 'static, V: 'static>(
    l1: &'static std::thread::LocalKey<RefCell<HashMap<K, V>>>,
    key: K,
    value: V,
) {
    l1.with(|m| {
        let mut m = m.borrow_mut();
        if m.len() >= MEMO_CAP {
            m.clear();
        }
        m.insert(key, value);
    });
}

#[cfg(test)]
fn pow_memo_len() -> usize {
    POW_MEMO.with(|m| m.borrow().len())
}

#[cfg(test)]
fn subst_memo_len() -> usize {
    SUBST_MEMO.with(|m| m.borrow().len())
}

/// Merges two id-sorted term runs; `negate_b` subtracts instead of adding.
fn merge_terms(
    a: &[(MonoId, Rational)],
    b: &[(MonoId, Rational)],
    negate_b: bool,
    out: &mut Vec<(MonoId, Rational)>,
) {
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                let (m, c) = b[j];
                out.push((m, if negate_b { -c } else { c }));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let c = if negate_b {
                    a[i].1 - b[j].1
                } else {
                    a[i].1 + b[j].1
                };
                if !c.is_zero() {
                    out.push((a[i].0, c));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    if negate_b {
        out.extend(b[j..].iter().map(|&(m, c)| (m, -c)));
    } else {
        out.extend_from_slice(&b[j..]);
    }
}

/// Sorts a scratch product buffer by id and coalesces equal monomials.
fn coalesce(scratch: &mut [(MonoId, Rational)]) -> Vec<(MonoId, Rational)> {
    scratch.sort_unstable_by_key(|&(id, _)| id);
    let mut out: Vec<(MonoId, Rational)> = Vec::with_capacity(scratch.len());
    for &(id, c) in scratch.iter() {
        match out.last_mut() {
            Some(last) if last.0 == id => {
                last.1 += c;
                if last.1.is_zero() {
                    out.pop();
                }
            }
            _ => {
                if !c.is_zero() {
                    out.push((id, c));
                }
            }
        }
    }
    out
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly { terms: Vec::new() }
    }

    /// The constant polynomial 1.
    pub fn one() -> Poly {
        Poly::constant(Rational::ONE)
    }

    /// A constant polynomial.
    pub fn constant(c: impl Into<Rational>) -> Poly {
        let c = c.into();
        if c.is_zero() {
            Poly::zero()
        } else {
            Poly {
                terms: vec![(MONO_ONE, c)],
            }
        }
    }

    /// The polynomial consisting of a single variable.
    pub fn var(sym: Symbol) -> Poly {
        Poly {
            terms: vec![(intern::mono_power(&sym, 1), Rational::ONE)],
        }
    }

    /// A single-term polynomial `coeff * mono`.
    pub fn term(coeff: impl Into<Rational>, mono: Monomial) -> Poly {
        let coeff = coeff.into();
        if coeff.is_zero() {
            Poly::zero()
        } else {
            Poly {
                terms: vec![(intern::intern_mono(&mono), coeff)],
            }
        }
    }

    fn from_id(id: MonoId, coeff: Rational) -> Poly {
        if coeff.is_zero() {
            Poly::zero()
        } else {
            Poly {
                terms: vec![(id, coeff)],
            }
        }
    }

    /// Interns the canonical term slice into the global arena; returns
    /// [`POLY_UNINTERNED`] once the arena is at capacity.
    pub(crate) fn interned_id(&self) -> PolyId {
        intern::intern_poly(&self.terms)
    }

    /// Test hook: the arena id this polynomial interns to right now
    /// (`u32::MAX` is the un-interned sentinel). The cap-pressure suite
    /// uses it to prove fallback keys never alias real ids.
    #[doc(hidden)]
    pub fn interned_id_for_tests(&self) -> u32 {
        let _guard = crate::epoch::pin();
        self.interned_id()
    }

    /// Reconstructs a polynomial from its arena id (copies the shared slice).
    pub(crate) fn from_interned(id: PolyId) -> Poly {
        Poly {
            terms: intern::poly_terms(id).to_vec(),
        }
    }

    /// Builds a univariate polynomial from coefficients `c0 + c1*x + c2*x^2 + ...`.
    pub fn from_coeffs(sym: &Symbol, coeffs: &[Rational]) -> Poly {
        let mut scratch: Vec<(MonoId, Rational)> = Vec::with_capacity(coeffs.len());
        for (i, c) in coeffs.iter().enumerate() {
            if !c.is_zero() {
                scratch.push((intern::mono_power(sym, i as i32), *c));
            }
        }
        Poly {
            terms: coalesce(&mut scratch),
        }
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` if the polynomial has no variables.
    pub fn is_constant(&self) -> bool {
        match self.terms.len() {
            0 => true,
            1 => self.terms[0].0 == MONO_ONE,
            _ => false,
        }
    }

    /// The constant value, if [`Poly::is_constant`].
    pub fn constant_value(&self) -> Option<Rational> {
        match self.terms.len() {
            0 => Some(Rational::ZERO),
            1 if self.terms[0].0 == MONO_ONE => Some(self.terms[0].1),
            _ => None,
        }
    }

    /// The coefficient of the constant (degree-0) term.
    pub fn constant_term(&self) -> Rational {
        match self.terms.first() {
            Some(&(MONO_ONE, c)) => c,
            _ => Rational::ZERO,
        }
    }

    /// Number of (nonzero) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over `(monomial, coefficient)` pairs in a deterministic
    /// internal order (interned-id order, *not* grlex — [`fmt::Display`]
    /// sorts grlex for human-readable output).
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, Rational)> {
        self.terms.iter().map(|&(id, c)| {
            let m: &Monomial = intern::mono(id);
            (m, c)
        })
    }

    /// The coefficient attached to `mono` (zero if absent).
    pub fn coeff(&self, mono: &Monomial) -> Rational {
        let id = intern::intern_mono(mono);
        self.terms
            .binary_search_by_key(&id, |&(m, _)| m)
            .map(|i| self.terms[i].1)
            .unwrap_or(Rational::ZERO)
    }

    /// All symbols appearing in the polynomial.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for &(id, _) in &self.terms {
            out.extend(intern::mono(id).symbols().cloned());
        }
        out
    }

    /// Visits every symbol occurrence (with repeats across terms) without
    /// materializing a set — the allocation-free walk behind
    /// [`crate::PerfExpr::from_poly`]'s completeness check.
    pub(crate) fn for_each_symbol(&self, mut f: impl FnMut(&Symbol)) {
        for &(id, _) in &self.terms {
            for s in intern::mono(id).symbols() {
                f(s);
            }
        }
    }

    /// Sorted, deduplicated interned symbol ids — the allocation-light
    /// alternative to [`Poly::symbols`] for the hot metadata-pruning path.
    pub(crate) fn symbol_ids(&self) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for &(id, _) in &self.terms {
            for &(s, _) in intern::mono_entry(id).factors.as_slice() {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Returns `true` if `sym` occurs in the polynomial.
    pub fn contains_symbol(&self, sym: &Symbol) -> bool {
        if self.terms.is_empty() {
            return false;
        }
        let sid = intern::sym_id(sym);
        self.terms.iter().any(|&(id, _)| {
            intern::mono_entry(id)
                .factors
                .as_slice()
                .iter()
                .any(|&(s, _)| s == sid)
        })
    }

    /// Returns `true` if any term has a negative exponent (a `1/x^k` term).
    pub fn has_negative_exponents(&self) -> bool {
        self.terms
            .iter()
            .any(|&(id, _)| intern::mono_entry(id).has_neg)
    }

    /// Highest exponent of `sym` across terms (0 for absent symbols; may be
    /// negative if `sym` appears only in denominators).
    pub fn degree_in(&self, sym: &Symbol) -> i32 {
        if self.terms.is_empty() {
            return 0;
        }
        let sid = intern::sym_id(sym);
        self.terms
            .iter()
            .map(|&(id, _)| {
                intern::mono_entry(id)
                    .factors
                    .as_slice()
                    .iter()
                    .find(|&&(s, _)| s == sid)
                    .map(|&(_, e)| e)
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Maximum total degree across terms (0 for the zero polynomial).
    pub fn total_degree(&self) -> i32 {
        self.terms
            .iter()
            .map(|&(id, _)| intern::mono_entry(id).degree)
            .max()
            .unwrap_or(0)
    }

    fn insert_id(&mut self, id: MonoId, coeff: Rational) {
        if coeff.is_zero() {
            return;
        }
        match self.terms.binary_search_by_key(&id, |&(m, _)| m) {
            Ok(i) => {
                self.terms[i].1 += coeff;
                if self.terms[i].1.is_zero() {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (id, coeff)),
        }
    }

    /// Merges `rhs` into `self` in place through a pooled scratch buffer —
    /// the zero-allocation steady state of `+=`-heavy aggregation loops.
    fn merge_in(&mut self, rhs: &Poly, negate: bool) {
        if rhs.terms.is_empty() {
            return;
        }
        if self.terms.is_empty() {
            self.terms.clear();
            if negate {
                self.terms.extend(rhs.terms.iter().map(|&(m, c)| (m, -c)));
            } else {
                self.terms.extend_from_slice(&rhs.terms);
            }
            return;
        }
        let mut scratch = intern::take_scratch();
        merge_terms(&self.terms, &rhs.terms, negate, &mut scratch);
        self.terms.clear();
        self.terms.extend_from_slice(&scratch);
        intern::put_scratch(scratch);
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, c: impl Into<Rational>) -> Poly {
        let c = c.into();
        if c.is_zero() {
            return Poly::zero();
        }
        Poly {
            terms: self.terms.iter().map(|&(m, v)| (m, v * c)).collect(),
        }
    }

    /// Raises the polynomial to a non-negative power (memoized per thread on
    /// the interned id for exponents ≥ 2; bases of at most [`SMALL_POLY`]
    /// terms compute inline without touching the arena).
    pub fn pow(&self, exp: u32) -> Poly {
        match exp {
            0 => return Poly::one(),
            1 => return self.clone(),
            _ => {}
        }
        if let Some(c) = self.constant_value() {
            return Poly::constant(c.pow(exp as i32));
        }
        if self.terms.len() <= SMALL_POLY {
            return self.pow_uncached(exp);
        }
        // The pin covers the whole memoized operation: every id acquired
        // below stays live until the guard drops.
        let guard = crate::epoch::pin();
        sync_l1_epoch(guard.epoch());
        let id = self.interned_id();
        if id == POLY_UNINTERNED {
            return self.pow_uncached(exp);
        }
        let key = ((id as u64) << 32) | exp as u64;
        if let Some(hit) = POW_MEMO.with(|m| m.borrow().get(&key).copied()) {
            memo::record_l1_hit();
            return Poly::from_interned(hit);
        }
        if let Some(hit) = POW_L2.get(&key) {
            memo::record_l2_hit();
            l1_insert(&POW_MEMO, key, hit);
            return Poly::from_interned(hit);
        }
        memo::record_miss();
        let acc = self.pow_uncached(exp);
        let rid = acc.interned_id();
        if rid != POLY_UNINTERNED {
            l1_insert(&POW_MEMO, key, rid);
            POW_L2.insert(key, rid);
        }
        acc
    }

    fn pow_uncached(&self, exp: u32) -> Poly {
        let mut acc = self.clone();
        for _ in 1..exp {
            acc = &acc * self;
        }
        acc
    }

    /// Substitutes `sym := replacement` throughout the polynomial.
    ///
    /// Negative powers of `sym` are supported when `replacement` is a single
    /// nonzero term (a scaled monomial), which covers the cost-model use
    /// cases (substituting numeric bounds or simple size parameters into
    /// `1/x^k` terms). Otherwise terms with negative powers of `sym` are
    /// rejected.
    ///
    /// Results are memoized per thread, keyed on the interned forms of all
    /// three inputs.
    ///
    /// # Errors
    ///
    /// Returns [`SubstError`] when a negative power of `sym` meets a
    /// replacement that is zero or not a single term.
    pub fn subst(&self, sym: &Symbol, replacement: &Poly) -> Result<Poly, SubstError> {
        if !self.contains_symbol(sym) {
            return Ok(self.clone());
        }
        let sid = intern::sym_id(sym);
        if self.terms.len() <= SMALL_POLY {
            // Inline fast path: the heavy part of substituting a tiny
            // polynomial is `replacement.pow`, which carries its own memo.
            return self.subst_uncached(sym, sid, replacement);
        }
        let guard = crate::epoch::pin();
        sync_l1_epoch(guard.epoch());
        let id = self.interned_id();
        let rid = replacement.interned_id();
        if id == POLY_UNINTERNED || rid == POLY_UNINTERNED {
            return self.subst_uncached(sym, sid, replacement);
        }
        let key = (id, sid, rid);
        if let Some(hit) = SUBST_MEMO.with(|m| m.borrow().get(&key).cloned()) {
            memo::record_l1_hit();
            return hit.map(Poly::from_interned);
        }
        if let Some(hit) = SUBST_L2.get(&key) {
            memo::record_l2_hit();
            l1_insert(&SUBST_MEMO, key, hit.clone());
            return hit.map(Poly::from_interned);
        }
        memo::record_miss();
        let result = self.subst_uncached(sym, sid, replacement);
        let entry = match &result {
            Ok(p) => {
                let pid = p.interned_id();
                if pid == POLY_UNINTERNED {
                    return result;
                }
                Ok(pid)
            }
            Err(e) => Err(e.clone()),
        };
        l1_insert(&SUBST_MEMO, key, entry.clone());
        SUBST_L2.insert(key, entry);
        result
    }

    fn subst_uncached(
        &self,
        sym: &Symbol,
        sid: u32,
        replacement: &Poly,
    ) -> Result<Poly, SubstError> {
        let mut out = Poly::zero();
        for &(id, coeff) in &self.terms {
            let (exp, rest) = intern::mono_split(id, sid);
            if exp == 0 {
                out.insert_id(rest, coeff);
            } else if exp > 0 {
                let powed = replacement.pow(exp as u32);
                let shifted = powed.scale(coeff).mul_mono(rest);
                out.merge_in(&shifted, false);
            } else {
                // Negative power: replacement must be invertible as a monomial.
                let (rc, rm) = replacement.single_term_id().ok_or_else(|| {
                    SubstError::new(
                        sym,
                        "replacement for a negative power must be a single nonzero term",
                    )
                })?;
                if rc.is_zero() {
                    return Err(SubstError::new(
                        sym,
                        "cannot substitute zero into a negative power",
                    ));
                }
                let inv = Poly::from_id(intern::mono_pow(rm, exp), rc.pow(exp)).scale(coeff);
                let shifted = inv.mul_mono(rest);
                out.merge_in(&shifted, false);
            }
        }
        Ok(out)
    }

    /// Multiplies every term by the interned monomial `id`. Ids are not
    /// order-compatible with monomial products, so the result re-coalesces.
    fn mul_mono(&self, id: MonoId) -> Poly {
        if id == MONO_ONE || self.terms.is_empty() {
            return self.clone();
        }
        let mut scratch = intern::take_scratch();
        for &(m, c) in &self.terms {
            scratch.push((intern::mono_mul(m, id), c));
        }
        let terms = coalesce(&mut scratch);
        intern::put_scratch(scratch);
        Poly { terms }
    }

    /// Substitutes many symbols at once (applied left to right).
    ///
    /// # Errors
    ///
    /// Propagates [`SubstError`] from [`Poly::subst`].
    pub fn subst_all(&self, bindings: &[(Symbol, Poly)]) -> Result<Poly, SubstError> {
        let mut p = self.clone();
        for (sym, rep) in bindings {
            p = p.subst(sym, rep)?;
        }
        Ok(p)
    }

    /// If the polynomial is a single term, returns its coefficient and monomial.
    pub fn single_term(&self) -> Option<(Rational, Monomial)> {
        if self.terms.len() == 1 {
            let (id, c) = self.terms[0];
            Some((c, intern::mono(id).clone()))
        } else {
            None
        }
    }

    fn single_term_id(&self) -> Option<(Rational, MonoId)> {
        if self.terms.len() == 1 {
            let (id, c) = self.terms[0];
            Some((c, id))
        } else {
            None
        }
    }

    /// Evaluates with exact rational bindings; `None` when a symbol is
    /// unbound or a zero value meets a negative exponent.
    pub fn eval(&self, bindings: &HashMap<Symbol, Rational>) -> Option<Rational> {
        let mut acc = Rational::ZERO;
        for &(id, coeff) in &self.terms {
            acc += coeff * intern::mono(id).eval(bindings)?;
        }
        Some(acc)
    }

    /// Evaluates with floating-point bindings; `None` when a symbol is unbound.
    pub fn eval_f64(&self, bindings: &HashMap<Symbol, f64>) -> Option<f64> {
        let mut acc = 0.0;
        for &(id, coeff) in &self.terms {
            acc += coeff.to_f64() * intern::mono(id).eval_f64(bindings)?;
        }
        Some(acc)
    }

    /// Evaluates a univariate polynomial at `x` (unbound symbols other than
    /// `sym` make this return `None`).
    pub fn eval_univariate(&self, sym: &Symbol, x: f64) -> Option<f64> {
        let mut b = HashMap::new();
        b.insert(sym.clone(), x);
        self.eval_f64(&b)
    }

    /// Partial derivative with respect to `sym`.
    pub fn derivative(&self, sym: &Symbol) -> Poly {
        if self.terms.is_empty() {
            return Poly::zero();
        }
        let sid = intern::sym_id(sym);
        let mut out = Poly::zero();
        for &(id, coeff) in &self.terms {
            let (exp, rest) = intern::mono_split(id, sid);
            if exp == 0 {
                continue;
            }
            let new_mono = intern::mono_mul(rest, intern::mono_power(sym, exp - 1));
            out.insert_id(new_mono, coeff * Rational::from_int(exp as i64));
        }
        out
    }

    /// Antiderivative with respect to `sym` (constant of integration zero).
    ///
    /// # Errors
    ///
    /// Returns [`SubstError`] if any term has `sym^-1` (which would integrate
    /// to a logarithm, outside the polynomial ring). Callers in the sign/area
    /// machinery drop such terms first (paper §3.1 drops negligible `1/x^k`
    /// terms explicitly).
    pub fn antiderivative(&self, sym: &Symbol) -> Result<Poly, SubstError> {
        let sid = intern::sym_id(sym);
        let mut out = Poly::zero();
        for &(id, coeff) in &self.terms {
            let (exp, rest) = intern::mono_split(id, sid);
            if exp == -1 {
                return Err(SubstError::new(
                    sym,
                    "x^-1 integrates to a logarithm; drop the term first",
                ));
            }
            let new_mono = intern::mono_mul(rest, intern::mono_power(sym, exp + 1));
            out.insert_id(new_mono, coeff / Rational::from_int((exp + 1) as i64));
        }
        Ok(out)
    }

    /// Views the polynomial as univariate in `sym`: returns
    /// `(exponent, coefficient-polynomial)` pairs sorted by ascending exponent.
    pub fn as_univariate(&self, sym: &Symbol) -> Vec<(i32, Poly)> {
        if self.terms.is_empty() {
            return Vec::new();
        }
        let sid = intern::sym_id(sym);
        let mut by_exp: BTreeMap<i32, Poly> = BTreeMap::new();
        for &(id, coeff) in &self.terms {
            let (exp, rest) = intern::mono_split(id, sid);
            by_exp
                .entry(exp)
                .or_insert_with(Poly::zero)
                .insert_id(rest, coeff);
        }
        by_exp.into_iter().filter(|(_, p)| !p.is_zero()).collect()
    }

    /// Dense coefficient list `[c0, c1, ...]` when the polynomial is
    /// univariate in `sym` with non-negative exponents; `None` otherwise.
    pub fn univariate_coeffs(&self, sym: &Symbol) -> Option<Vec<Rational>> {
        let parts = self.as_univariate(sym);
        let max = parts.last().map(|(e, _)| *e).unwrap_or(0);
        if parts.iter().any(|(e, _)| *e < 0) {
            return None;
        }
        let mut coeffs = vec![Rational::ZERO; (max + 1) as usize];
        for (e, p) in parts {
            coeffs[e as usize] = p.constant_value()?;
        }
        Some(coeffs)
    }

    /// Applies `f` to every coefficient, dropping terms mapped to zero.
    pub fn map_coeffs(&self, mut f: impl FnMut(&Monomial, Rational) -> Rational) -> Poly {
        let terms = self
            .terms
            .iter()
            .filter_map(|&(id, c)| {
                let c = f(intern::mono(id), c);
                if c.is_zero() {
                    None
                } else {
                    Some((id, c))
                }
            })
            .collect();
        Poly { terms }
    }

    /// Retains only terms satisfying the predicate.
    pub fn filter_terms(&self, mut keep: impl FnMut(&Monomial, Rational) -> bool) -> Poly {
        let terms = self
            .terms
            .iter()
            .filter(|&&(id, c)| keep(intern::mono(id), c))
            .copied()
            .collect();
        Poly { terms }
    }
}

/// Error from [`Poly::subst`] or [`Poly::antiderivative`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstError {
    symbol: String,
    reason: &'static str,
}

impl SubstError {
    pub(crate) fn new(sym: &Symbol, reason: &'static str) -> SubstError {
        SubstError {
            symbol: sym.name().to_string(),
            reason,
        }
    }

    /// The symbol that triggered the failure.
    pub fn symbol(&self) -> &str {
        &self.symbol
    }
}

impl fmt::Display for SubstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "substitution failed for `{}`: {}",
            self.symbol, self.reason
        )
    }
}

impl std::error::Error for SubstError {}

impl From<i64> for Poly {
    fn from(n: i64) -> Poly {
        Poly::constant(Rational::from_int(n))
    }
}

impl From<Rational> for Poly {
    fn from(r: Rational) -> Poly {
        Poly::constant(r)
    }
}

impl From<Symbol> for Poly {
    fn from(s: Symbol) -> Poly {
        Poly::var(s)
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        if rhs.terms.is_empty() {
            return self.clone();
        }
        if self.terms.is_empty() {
            return rhs.clone();
        }
        let mut out = Vec::new();
        merge_terms(&self.terms, &rhs.terms, false, &mut out);
        Poly { terms: out }
    }
}

impl Add for Poly {
    type Output = Poly;
    fn add(mut self, rhs: Poly) -> Poly {
        self.merge_in(&rhs, false);
        self
    }
}

impl AddAssign for Poly {
    fn add_assign(&mut self, rhs: Poly) {
        self.merge_in(&rhs, false);
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        if rhs.terms.is_empty() {
            return self.clone();
        }
        let mut out = Vec::new();
        merge_terms(&self.terms, &rhs.terms, true, &mut out);
        Poly { terms: out }
    }
}

impl Sub for Poly {
    type Output = Poly;
    fn sub(mut self, rhs: Poly) -> Poly {
        self.merge_in(&rhs, true);
        self
    }
}

impl SubAssign for Poly {
    fn sub_assign(&mut self, rhs: Poly) {
        self.merge_in(&rhs, true);
    }
}

/// The full scratch-buffer product (no memo consultation).
fn mul_raw(a: &Poly, b: &Poly) -> Poly {
    let mut scratch = intern::take_scratch();
    for &(ma, ca) in &a.terms {
        for &(mb, cb) in &b.terms {
            scratch.push((intern::mono_mul(ma, mb), ca * cb));
        }
    }
    let terms = coalesce(&mut scratch);
    intern::put_scratch(scratch);
    Poly { terms }
}

/// Id-keyed product memo for operands that both exceed [`SMALL_POLY`] terms.
/// Multiplication is commutative, so the key is order-normalized. Returns
/// `None` when either operand fails to intern (arena at capacity) — the
/// caller then computes directly.
fn mul_memoized(a: &Poly, b: &Poly) -> Option<Poly> {
    let guard = crate::epoch::pin();
    sync_l1_epoch(guard.epoch());
    let (ia, ib) = (a.interned_id(), b.interned_id());
    if ia == POLY_UNINTERNED || ib == POLY_UNINTERNED {
        return None;
    }
    let key = ((ia.min(ib) as u64) << 32) | ia.max(ib) as u64;
    if let Some(hit) = MUL_MEMO.with(|m| m.borrow().get(&key).copied()) {
        memo::record_l1_hit();
        return Some(Poly::from_interned(hit));
    }
    if let Some(hit) = MUL_L2.get(&key) {
        memo::record_l2_hit();
        l1_insert(&MUL_MEMO, key, hit);
        return Some(Poly::from_interned(hit));
    }
    memo::record_miss();
    let prod = mul_raw(a, b);
    let rid = prod.interned_id();
    if rid != POLY_UNINTERNED {
        l1_insert(&MUL_MEMO, key, rid);
        MUL_L2.insert(key, rid);
    }
    Some(prod)
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        if self.terms.is_empty() || rhs.terms.is_empty() {
            return Poly::zero();
        }
        if let Some(c) = self.constant_value() {
            return rhs.scale(c);
        }
        if let Some(c) = rhs.constant_value() {
            return self.scale(c);
        }
        if self.terms.len() > SMALL_POLY && rhs.terms.len() > SMALL_POLY {
            if let Some(p) = mul_memoized(self, rhs) {
                return p;
            }
        }
        mul_raw(self, rhs)
    }
}

impl Mul for Poly {
    type Output = Poly;
    fn mul(self, rhs: Poly) -> Poly {
        &self * &rhs
    }
}

impl MulAssign for Poly {
    fn mul_assign(&mut self, rhs: Poly) {
        *self = &*self * &rhs;
    }
}

impl Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scale(Rational::from_int(-1))
    }
}

impl Neg for Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        -&self
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Highest-degree terms first reads naturally: sort descending grlex
        // at format time (display is cold; arithmetic order is id order).
        let mut view: Vec<(&Monomial, Rational)> = self
            .terms
            .iter()
            .map(|&(id, c)| (intern::mono(id), c))
            .collect();
        view.sort_unstable_by(|a, b| b.0.cmp(a.0));
        let mut first = true;
        for (mono, coeff) in view {
            if first {
                if coeff.is_negative() {
                    f.write_str("-")?;
                }
            } else if coeff.is_negative() {
                f.write_str(" - ")?;
            } else {
                f.write_str(" + ")?;
            }
            first = false;
            let mag = coeff.abs();
            if mono.is_one() {
                write!(f, "{mag}")?;
            } else if mag.is_one() {
                write!(f, "{mono}")?;
            } else {
                write!(f, "{mag}*{mono}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Poly({self})")
    }
}

impl std::iter::Sum for Poly {
    fn sum<I: Iterator<Item = Poly>>(iter: I) -> Poly {
        let mut acc = Poly::zero();
        for p in iter {
            acc += p;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    fn var(s: &str) -> Poly {
        Poly::var(sym(s))
    }

    #[test]
    fn constants_collapse() {
        assert!(Poly::constant(Rational::ZERO).is_zero());
        assert_eq!(Poly::from(3).constant_value(), Some(Rational::from_int(3)));
        assert_eq!(Poly::zero().constant_value(), Some(Rational::ZERO));
    }

    #[test]
    fn add_cancels() {
        let p = var("x") - var("x");
        assert!(p.is_zero());
    }

    #[test]
    fn mul_distributes() {
        let p = (var("x") + Poly::from(1)) * (var("x") - Poly::from(1));
        let expected = &var("x") * &var("x") - Poly::from(1);
        assert_eq!(p, expected);
        assert_eq!(p.to_string(), "x^2 - 1");
    }

    #[test]
    fn display_ordering() {
        let p = var("n").scale(2) + Poly::from(7) + (&var("n") * &var("n")).scale(3);
        assert_eq!(p.to_string(), "3*n^2 + 2*n + 7");
    }

    #[test]
    fn display_negative_leading() {
        let p = -(&var("x") * &var("x")) + var("x");
        assert_eq!(p.to_string(), "-x^2 + x");
    }

    #[test]
    fn degree_queries() {
        let p = &(&var("x") * &var("x")) * &var("y") + var("y");
        assert_eq!(p.degree_in(&sym("x")), 2);
        assert_eq!(p.degree_in(&sym("y")), 1);
        assert_eq!(p.degree_in(&sym("z")), 0);
        assert_eq!(p.total_degree(), 3);
    }

    #[test]
    fn subst_positive_power() {
        // (x^2 + x)[x := y + 1] = y^2 + 3y + 2
        let p = &var("x") * &var("x") + var("x");
        let r = p.subst(&sym("x"), &(var("y") + Poly::from(1))).unwrap();
        assert_eq!(r.to_string(), "y^2 + 3*y + 2");
    }

    #[test]
    fn subst_negative_power_with_monomial() {
        // x^-2 [x := 2y] = (1/4) y^-2
        let p = Poly::term(Rational::ONE, Monomial::power(sym("x"), -2));
        let r = p.subst(&sym("x"), &var("y").scale(2)).unwrap();
        assert_eq!(
            r,
            Poly::term(Rational::new(1, 4), Monomial::power(sym("y"), -2))
        );
    }

    #[test]
    fn subst_negative_power_rejects_sums() {
        let p = Poly::term(Rational::ONE, Monomial::power(sym("x"), -1));
        let err = p.subst(&sym("x"), &(var("y") + Poly::from(1))).unwrap_err();
        assert_eq!(err.symbol(), "x");
    }

    #[test]
    fn subst_negative_power_rejects_zero() {
        let p = Poly::term(Rational::ONE, Monomial::power(sym("x"), -1));
        assert!(p.subst(&sym("x"), &Poly::zero()).is_err());
    }

    #[test]
    fn subst_memo_hits_stay_correct() {
        let p = &var("x") * &var("x") + var("x").scale(3);
        let rep = var("y") + Poly::from(2);
        let first = p.subst(&sym("x"), &rep).unwrap();
        let second = p.subst(&sym("x"), &rep).unwrap();
        assert_eq!(first, second);
        assert_eq!(first.to_string(), "y^2 + 7*y + 10");
    }

    #[test]
    fn eval_exact() {
        let p = (&var("x") * &var("x")).scale(4) + var("x").scale(2) + Poly::from(1);
        let mut b = HashMap::new();
        b.insert(sym("x"), Rational::new(1, 2));
        assert_eq!(p.eval(&b), Some(Rational::from_int(3)));
    }

    #[test]
    fn derivative_basic() {
        // d/dx (4x^4 + 2x^3 - 4x + 1/x^3) = 16x^3 + 6x^2 - 4 - 3x^-4
        let x = sym("x");
        let p = Poly::term(4, Monomial::power(x.clone(), 4))
            + Poly::term(2, Monomial::power(x.clone(), 3))
            + Poly::term(-4, Monomial::var(x.clone()))
            + Poly::term(1, Monomial::power(x.clone(), -3));
        let d = p.derivative(&x);
        let expected = Poly::term(16, Monomial::power(x.clone(), 3))
            + Poly::term(6, Monomial::power(x.clone(), 2))
            + Poly::from(-4)
            + Poly::term(-3, Monomial::power(x.clone(), -4));
        assert_eq!(d, expected);
    }

    #[test]
    fn antiderivative_roundtrip() {
        let x = sym("x");
        let p = Poly::term(3, Monomial::power(x.clone(), 2)) + Poly::from(5);
        let ad = p.antiderivative(&x).unwrap();
        assert_eq!(ad.derivative(&x), p);
    }

    #[test]
    fn antiderivative_rejects_log_terms() {
        let x = sym("x");
        let p = Poly::term(1, Monomial::power(x.clone(), -1));
        assert!(p.antiderivative(&x).is_err());
    }

    #[test]
    fn univariate_views() {
        let p = &(&var("x") * &var("x")) * &var("y") + var("x").scale(2) + Poly::from(9);
        let parts = p.as_univariate(&sym("x"));
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], (0, Poly::from(9)));
        assert_eq!(parts[1], (1, Poly::from(2)));
        assert_eq!(parts[2], (2, var("y")));

        let q = (&var("x") * &var("x")).scale(4) + var("x") + Poly::from(7);
        assert_eq!(
            q.univariate_coeffs(&sym("x")),
            Some(vec![
                Rational::from_int(7),
                Rational::from_int(1),
                Rational::from_int(4)
            ])
        );
        assert_eq!(
            p.univariate_coeffs(&sym("x")),
            None,
            "coefficient contains y"
        );
    }

    #[test]
    fn symbols_set() {
        let p = &var("a") * &var("b") + var("c");
        let syms: Vec<String> = p.symbols().iter().map(|s| s.name().to_string()).collect();
        assert_eq!(syms, ["a", "b", "c"]);
    }

    #[test]
    fn sum_iterator() {
        let total: Poly = (0..4).map(|i| var("x").scale(i as i64)).sum();
        assert_eq!(total, var("x").scale(6));
    }

    #[test]
    fn pow_zero_is_one() {
        assert_eq!(var("x").pow(0), Poly::one());
        assert_eq!(var("x").pow(3).to_string(), "x^3");
    }

    #[test]
    fn memo_caps_evict_instead_of_growing() {
        // Drive both id-keyed memos past MEMO_CAP with distinct >SMALL_POLY
        // bases and check they clear rather than grow without bound — the
        // regression this guards is a multi-machine run accreting a memo
        // entry per (machine × polynomial) shape forever.
        let x = var("x");
        let x2 = &x * &x;
        let y = sym("y");
        for i in 0..(MEMO_CAP as i64 + 64) {
            let base = &x2 + &(&x + &Poly::from(i + 1));
            assert_eq!(base.num_terms(), 3);
            let sq = base.pow(2);
            assert_eq!(sq.degree_in(&sym("x")), 4);
            let sub = base.subst(&sym("x"), &Poly::var(y.clone())).unwrap();
            assert_eq!(sub.degree_in(&y), 2);
            assert!(pow_memo_len() <= MEMO_CAP, "POW_MEMO grew past its cap");
            assert!(subst_memo_len() <= MEMO_CAP, "SUBST_MEMO grew past its cap");
        }
    }

    #[test]
    fn small_polys_bypass_the_memos() {
        let before_pow = pow_memo_len();
        let before_subst = subst_memo_len();
        let p = var("u") + Poly::from(1);
        assert_eq!(p.pow(3).to_string(), "u^3 + 3*u^2 + 3*u + 1");
        let s = p.subst(&sym("u"), &(var("v") + Poly::from(2))).unwrap();
        assert_eq!(s.to_string(), "v + 3");
        assert_eq!(
            pow_memo_len(),
            before_pow,
            "2-term base should not be memoized"
        );
        assert_eq!(
            subst_memo_len(),
            before_subst,
            "2-term subst should not be memoized"
        );
    }

    #[test]
    fn interned_round_trip_preserves_canonical_form() {
        // Pin across acquisition and resolution — sibling tests advance
        // the epoch concurrently and poly ids are epoch-confined.
        let _g = crate::epoch::pin();
        let p = (&var("a") + &var("b")) * (&var("a") - &var("b")) + Poly::from(9);
        let id = p.interned_id();
        assert_ne!(id, POLY_UNINTERNED);
        assert_eq!(Poly::from_interned(id), p);
        assert_eq!(p.interned_id(), id, "re-interning is stable");
    }

    #[test]
    fn constant_term_is_first_in_storage() {
        // MONO_ONE is id 0, so binary ops must keep it in front.
        let p = var("z") + Poly::from(5);
        assert_eq!(p.constant_term(), Rational::from_int(5));
        let q = p - var("z");
        assert_eq!(q.constant_value(), Some(Rational::from_int(5)));
    }
}
