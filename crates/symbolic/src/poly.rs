//! Multivariate Laurent polynomials with exact rational coefficients.
//!
//! This is the representation behind the paper's *performance expressions*:
//! aggregated costs of loops and conditionals are polynomials in the
//! program's unknowns (loop bounds, branch probabilities, problem sizes).
//! Keeping them exact until a decision is forced is the paper's central
//! "delay the guess" idea.

use crate::monomial::Monomial;
use crate::symbol::Symbol;
use crate::Rational;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A multivariate Laurent polynomial with [`Rational`] coefficients.
///
/// # Examples
///
/// ```
/// use presage_symbolic::{Poly, Symbol};
///
/// let n = Poly::var(Symbol::new("n"));
/// let cost = &(&n * &n) * &Poly::from(3) + &n * &Poly::from(2) + Poly::from(7);
/// assert_eq!(cost.to_string(), "3*n^2 + 2*n + 7");
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Poly {
    /// Canonical form: monomial -> nonzero coefficient.
    terms: BTreeMap<Monomial, Rational>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly { terms: BTreeMap::new() }
    }

    /// The constant polynomial 1.
    pub fn one() -> Poly {
        Poly::constant(Rational::ONE)
    }

    /// A constant polynomial.
    pub fn constant(c: impl Into<Rational>) -> Poly {
        let c = c.into();
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Monomial::one(), c);
        }
        Poly { terms }
    }

    /// The polynomial consisting of a single variable.
    pub fn var(sym: Symbol) -> Poly {
        Poly::term(Rational::ONE, Monomial::var(sym))
    }

    /// A single-term polynomial `coeff * mono`.
    pub fn term(coeff: impl Into<Rational>, mono: Monomial) -> Poly {
        let coeff = coeff.into();
        let mut terms = BTreeMap::new();
        if !coeff.is_zero() {
            terms.insert(mono, coeff);
        }
        Poly { terms }
    }

    /// Builds a univariate polynomial from coefficients `c0 + c1*x + c2*x^2 + ...`.
    pub fn from_coeffs(sym: &Symbol, coeffs: &[Rational]) -> Poly {
        let mut p = Poly::zero();
        for (i, c) in coeffs.iter().enumerate() {
            p += Poly::term(*c, Monomial::power(sym.clone(), i as i32));
        }
        p
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` if the polynomial has no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.keys().all(|m| m.is_one())
    }

    /// The constant value, if [`Poly::is_constant`].
    pub fn constant_value(&self) -> Option<Rational> {
        if self.is_zero() {
            Some(Rational::ZERO)
        } else if self.is_constant() {
            self.terms.get(&Monomial::one()).copied()
        } else {
            None
        }
    }

    /// The coefficient of the constant (degree-0) term.
    pub fn constant_term(&self) -> Rational {
        self.terms.get(&Monomial::one()).copied().unwrap_or(Rational::ZERO)
    }

    /// Number of (nonzero) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over `(monomial, coefficient)` pairs in ascending grlex order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, Rational)> {
        self.terms.iter().map(|(m, c)| (m, *c))
    }

    /// The coefficient attached to `mono` (zero if absent).
    pub fn coeff(&self, mono: &Monomial) -> Rational {
        self.terms.get(mono).copied().unwrap_or(Rational::ZERO)
    }

    /// All symbols appearing in the polynomial.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for m in self.terms.keys() {
            out.extend(m.symbols().cloned());
        }
        out
    }

    /// Returns `true` if `sym` occurs in the polynomial.
    pub fn contains_symbol(&self, sym: &Symbol) -> bool {
        self.terms.keys().any(|m| m.exponent_of(sym) != 0)
    }

    /// Returns `true` if any term has a negative exponent (a `1/x^k` term).
    pub fn has_negative_exponents(&self) -> bool {
        self.terms.keys().any(|m| m.has_negative_exponent())
    }

    /// Highest exponent of `sym` across terms (0 for absent symbols; may be
    /// negative if `sym` appears only in denominators).
    pub fn degree_in(&self, sym: &Symbol) -> i32 {
        self.terms
            .keys()
            .map(|m| m.exponent_of(sym))
            .max()
            .unwrap_or(0)
    }

    /// Maximum total degree across terms (0 for the zero polynomial).
    pub fn total_degree(&self) -> i32 {
        self.terms
            .keys()
            .map(|m| m.total_degree())
            .max()
            .unwrap_or(0)
    }

    fn insert_term(&mut self, mono: Monomial, coeff: Rational) {
        if coeff.is_zero() {
            return;
        }
        match self.terms.entry(mono) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(coeff);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let sum = *e.get() + coeff;
                if sum.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = sum;
                }
            }
        }
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, c: impl Into<Rational>) -> Poly {
        let c = c.into();
        if c.is_zero() {
            return Poly::zero();
        }
        Poly {
            terms: self.terms.iter().map(|(m, v)| (m.clone(), *v * c)).collect(),
        }
    }

    /// Raises the polynomial to a non-negative power.
    pub fn pow(&self, exp: u32) -> Poly {
        let mut acc = Poly::one();
        for _ in 0..exp {
            acc = &acc * self;
        }
        acc
    }

    /// Substitutes `sym := replacement` throughout the polynomial.
    ///
    /// Negative powers of `sym` are supported when `replacement` is a single
    /// nonzero term (a scaled monomial), which covers the cost-model use
    /// cases (substituting numeric bounds or simple size parameters into
    /// `1/x^k` terms). Otherwise terms with negative powers of `sym` are
    /// rejected.
    ///
    /// # Errors
    ///
    /// Returns [`SubstError`] when a negative power of `sym` meets a
    /// replacement that is zero or not a single term.
    pub fn subst(&self, sym: &Symbol, replacement: &Poly) -> Result<Poly, SubstError> {
        let mut out = Poly::zero();
        for (mono, coeff) in &self.terms {
            let (exp, rest) = mono.split_symbol(sym);
            if exp == 0 {
                out.insert_term(rest, *coeff);
            } else if exp > 0 {
                let powed = replacement.pow(exp as u32);
                let scaled = powed.scale(*coeff);
                let shifted = &scaled * &Poly::term(Rational::ONE, rest);
                out += shifted;
            } else {
                // Negative power: replacement must be invertible as a monomial.
                let (rc, rm) = replacement
                    .single_term()
                    .ok_or_else(|| SubstError::new(sym, "replacement for a negative power must be a single nonzero term"))?;
                if rc.is_zero() {
                    return Err(SubstError::new(sym, "cannot substitute zero into a negative power"));
                }
                let inv = Poly::term(rc.pow(exp), rm.pow(exp));
                let shifted = &inv.scale(*coeff) * &Poly::term(Rational::ONE, rest);
                out += shifted;
            }
        }
        Ok(out)
    }

    /// Substitutes many symbols at once (applied left to right).
    ///
    /// # Errors
    ///
    /// Propagates [`SubstError`] from [`Poly::subst`].
    pub fn subst_all(&self, bindings: &[(Symbol, Poly)]) -> Result<Poly, SubstError> {
        let mut p = self.clone();
        for (sym, rep) in bindings {
            p = p.subst(sym, rep)?;
        }
        Ok(p)
    }

    /// If the polynomial is a single term, returns its coefficient and monomial.
    pub fn single_term(&self) -> Option<(Rational, Monomial)> {
        if self.terms.len() == 1 {
            let (m, c) = self.terms.iter().next().unwrap();
            Some((*c, m.clone()))
        } else {
            None
        }
    }

    /// Evaluates with exact rational bindings; `None` when a symbol is
    /// unbound or a zero value meets a negative exponent.
    pub fn eval(&self, bindings: &HashMap<Symbol, Rational>) -> Option<Rational> {
        let mut acc = Rational::ZERO;
        for (mono, coeff) in &self.terms {
            acc += *coeff * mono.eval(bindings)?;
        }
        Some(acc)
    }

    /// Evaluates with floating-point bindings; `None` when a symbol is unbound.
    pub fn eval_f64(&self, bindings: &HashMap<Symbol, f64>) -> Option<f64> {
        let mut acc = 0.0;
        for (mono, coeff) in &self.terms {
            acc += coeff.to_f64() * mono.eval_f64(bindings)?;
        }
        Some(acc)
    }

    /// Evaluates a univariate polynomial at `x` (unbound symbols other than
    /// `sym` make this return `None`).
    pub fn eval_univariate(&self, sym: &Symbol, x: f64) -> Option<f64> {
        let mut b = HashMap::new();
        b.insert(sym.clone(), x);
        self.eval_f64(&b)
    }

    /// Partial derivative with respect to `sym`.
    pub fn derivative(&self, sym: &Symbol) -> Poly {
        let mut out = Poly::zero();
        for (mono, coeff) in &self.terms {
            let (exp, rest) = mono.split_symbol(sym);
            if exp == 0 {
                continue;
            }
            let new_mono = rest.mul(&Monomial::power(sym.clone(), exp - 1));
            out.insert_term(new_mono, *coeff * Rational::from_int(exp as i64));
        }
        out
    }

    /// Antiderivative with respect to `sym` (constant of integration zero).
    ///
    /// # Errors
    ///
    /// Returns [`SubstError`] if any term has `sym^-1` (which would integrate
    /// to a logarithm, outside the polynomial ring). Callers in the sign/area
    /// machinery drop such terms first (paper §3.1 drops negligible `1/x^k`
    /// terms explicitly).
    pub fn antiderivative(&self, sym: &Symbol) -> Result<Poly, SubstError> {
        let mut out = Poly::zero();
        for (mono, coeff) in &self.terms {
            let (exp, rest) = mono.split_symbol(sym);
            if exp == -1 {
                return Err(SubstError::new(sym, "x^-1 integrates to a logarithm; drop the term first"));
            }
            let new_mono = rest.mul(&Monomial::power(sym.clone(), exp + 1));
            out.insert_term(new_mono, *coeff / Rational::from_int((exp + 1) as i64));
        }
        Ok(out)
    }

    /// Views the polynomial as univariate in `sym`: returns
    /// `(exponent, coefficient-polynomial)` pairs sorted by ascending exponent.
    pub fn as_univariate(&self, sym: &Symbol) -> Vec<(i32, Poly)> {
        let mut by_exp: BTreeMap<i32, Poly> = BTreeMap::new();
        for (mono, coeff) in &self.terms {
            let (exp, rest) = mono.split_symbol(sym);
            by_exp
                .entry(exp)
                .or_insert_with(Poly::zero)
                .insert_term(rest, *coeff);
        }
        by_exp.into_iter().filter(|(_, p)| !p.is_zero()).collect()
    }

    /// Dense coefficient list `[c0, c1, ...]` when the polynomial is
    /// univariate in `sym` with non-negative exponents; `None` otherwise.
    pub fn univariate_coeffs(&self, sym: &Symbol) -> Option<Vec<Rational>> {
        let parts = self.as_univariate(sym);
        let max = parts.last().map(|(e, _)| *e).unwrap_or(0);
        if parts.iter().any(|(e, _)| *e < 0) {
            return None;
        }
        let mut coeffs = vec![Rational::ZERO; (max + 1) as usize];
        for (e, p) in parts {
            coeffs[e as usize] = p.constant_value()?;
        }
        Some(coeffs)
    }

    /// Applies `f` to every coefficient, dropping terms mapped to zero.
    pub fn map_coeffs(&self, mut f: impl FnMut(&Monomial, Rational) -> Rational) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in &self.terms {
            out.insert_term(m.clone(), f(m, *c));
        }
        out
    }

    /// Retains only terms satisfying the predicate.
    pub fn filter_terms(&self, mut keep: impl FnMut(&Monomial, Rational) -> bool) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in &self.terms {
            if keep(m, *c) {
                out.insert_term(m.clone(), *c);
            }
        }
        out
    }
}

/// Error from [`Poly::subst`] or [`Poly::antiderivative`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstError {
    symbol: String,
    reason: &'static str,
}

impl SubstError {
    fn new(sym: &Symbol, reason: &'static str) -> SubstError {
        SubstError { symbol: sym.name().to_string(), reason }
    }

    /// The symbol that triggered the failure.
    pub fn symbol(&self) -> &str {
        &self.symbol
    }
}

impl fmt::Display for SubstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "substitution failed for `{}`: {}", self.symbol, self.reason)
    }
}

impl std::error::Error for SubstError {}

impl From<i64> for Poly {
    fn from(n: i64) -> Poly {
        Poly::constant(Rational::from_int(n))
    }
}

impl From<Rational> for Poly {
    fn from(r: Rational) -> Poly {
        Poly::constant(r)
    }
}

impl From<Symbol> for Poly {
    fn from(s: Symbol) -> Poly {
        Poly::var(s)
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.insert_term(m.clone(), *c);
        }
        out
    }
}

impl Add for Poly {
    type Output = Poly;
    fn add(self, rhs: Poly) -> Poly {
        &self + &rhs
    }
}

impl AddAssign for Poly {
    fn add_assign(&mut self, rhs: Poly) {
        for (m, c) in rhs.terms {
            self.insert_term(m, c);
        }
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.insert_term(m.clone(), -*c);
        }
        out
    }
}

impl Sub for Poly {
    type Output = Poly;
    fn sub(self, rhs: Poly) -> Poly {
        &self - &rhs
    }
}

impl SubAssign for Poly {
    fn sub_assign(&mut self, rhs: Poly) {
        for (m, c) in rhs.terms {
            self.insert_term(m, -c);
        }
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &rhs.terms {
                out.insert_term(ma.mul(mb), *ca * *cb);
            }
        }
        out
    }
}

impl Mul for Poly {
    type Output = Poly;
    fn mul(self, rhs: Poly) -> Poly {
        &self * &rhs
    }
}

impl MulAssign for Poly {
    fn mul_assign(&mut self, rhs: Poly) {
        *self = &*self * &rhs;
    }
}

impl Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scale(Rational::from_int(-1))
    }
}

impl Neg for Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        -&self
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Highest-degree terms first reads naturally.
        let mut first = true;
        for (mono, coeff) in self.terms.iter().rev() {
            if first {
                if coeff.is_negative() {
                    f.write_str("-")?;
                }
            } else if coeff.is_negative() {
                f.write_str(" - ")?;
            } else {
                f.write_str(" + ")?;
            }
            first = false;
            let mag = coeff.abs();
            if mono.is_one() {
                write!(f, "{mag}")?;
            } else if mag.is_one() {
                write!(f, "{mono}")?;
            } else {
                write!(f, "{mag}*{mono}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Poly({self})")
    }
}

impl std::iter::Sum for Poly {
    fn sum<I: Iterator<Item = Poly>>(iter: I) -> Poly {
        let mut acc = Poly::zero();
        for p in iter {
            acc += p;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    fn var(s: &str) -> Poly {
        Poly::var(sym(s))
    }

    #[test]
    fn constants_collapse() {
        assert!(Poly::constant(Rational::ZERO).is_zero());
        assert_eq!(Poly::from(3).constant_value(), Some(Rational::from_int(3)));
        assert_eq!(Poly::zero().constant_value(), Some(Rational::ZERO));
    }

    #[test]
    fn add_cancels() {
        let p = var("x") - var("x");
        assert!(p.is_zero());
    }

    #[test]
    fn mul_distributes() {
        let p = (var("x") + Poly::from(1)) * (var("x") - Poly::from(1));
        let expected = &var("x") * &var("x") - Poly::from(1);
        assert_eq!(p, expected);
        assert_eq!(p.to_string(), "x^2 - 1");
    }

    #[test]
    fn display_ordering() {
        let p = var("n").scale(2) + Poly::from(7) + (&var("n") * &var("n")).scale(3);
        assert_eq!(p.to_string(), "3*n^2 + 2*n + 7");
    }

    #[test]
    fn display_negative_leading() {
        let p = -(&var("x") * &var("x")) + var("x");
        assert_eq!(p.to_string(), "-x^2 + x");
    }

    #[test]
    fn degree_queries() {
        let p = &(&var("x") * &var("x")) * &var("y") + var("y");
        assert_eq!(p.degree_in(&sym("x")), 2);
        assert_eq!(p.degree_in(&sym("y")), 1);
        assert_eq!(p.degree_in(&sym("z")), 0);
        assert_eq!(p.total_degree(), 3);
    }

    #[test]
    fn subst_positive_power() {
        // (x^2 + x)[x := y + 1] = y^2 + 3y + 2
        let p = &var("x") * &var("x") + var("x");
        let r = p.subst(&sym("x"), &(var("y") + Poly::from(1))).unwrap();
        assert_eq!(r.to_string(), "y^2 + 3*y + 2");
    }

    #[test]
    fn subst_negative_power_with_monomial() {
        // x^-2 [x := 2y] = (1/4) y^-2
        let p = Poly::term(Rational::ONE, Monomial::power(sym("x"), -2));
        let r = p.subst(&sym("x"), &var("y").scale(2)).unwrap();
        assert_eq!(
            r,
            Poly::term(Rational::new(1, 4), Monomial::power(sym("y"), -2))
        );
    }

    #[test]
    fn subst_negative_power_rejects_sums() {
        let p = Poly::term(Rational::ONE, Monomial::power(sym("x"), -1));
        let err = p.subst(&sym("x"), &(var("y") + Poly::from(1))).unwrap_err();
        assert_eq!(err.symbol(), "x");
    }

    #[test]
    fn subst_negative_power_rejects_zero() {
        let p = Poly::term(Rational::ONE, Monomial::power(sym("x"), -1));
        assert!(p.subst(&sym("x"), &Poly::zero()).is_err());
    }

    #[test]
    fn eval_exact() {
        let p = (&var("x") * &var("x")).scale(4) + var("x").scale(2) + Poly::from(1);
        let mut b = HashMap::new();
        b.insert(sym("x"), Rational::new(1, 2));
        assert_eq!(p.eval(&b), Some(Rational::from_int(3)));
    }

    #[test]
    fn derivative_basic() {
        // d/dx (4x^4 + 2x^3 - 4x + 1/x^3) = 16x^3 + 6x^2 - 4 - 3x^-4
        let x = sym("x");
        let p = Poly::term(4, Monomial::power(x.clone(), 4))
            + Poly::term(2, Monomial::power(x.clone(), 3))
            + Poly::term(-4, Monomial::var(x.clone()))
            + Poly::term(1, Monomial::power(x.clone(), -3));
        let d = p.derivative(&x);
        let expected = Poly::term(16, Monomial::power(x.clone(), 3))
            + Poly::term(6, Monomial::power(x.clone(), 2))
            + Poly::from(-4)
            + Poly::term(-3, Monomial::power(x.clone(), -4));
        assert_eq!(d, expected);
    }

    #[test]
    fn antiderivative_roundtrip() {
        let x = sym("x");
        let p = Poly::term(3, Monomial::power(x.clone(), 2)) + Poly::from(5);
        let ad = p.antiderivative(&x).unwrap();
        assert_eq!(ad.derivative(&x), p);
    }

    #[test]
    fn antiderivative_rejects_log_terms() {
        let x = sym("x");
        let p = Poly::term(1, Monomial::power(x.clone(), -1));
        assert!(p.antiderivative(&x).is_err());
    }

    #[test]
    fn univariate_views() {
        let p = &(&var("x") * &var("x")) * &var("y") + var("x").scale(2) + Poly::from(9);
        let parts = p.as_univariate(&sym("x"));
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], (0, Poly::from(9)));
        assert_eq!(parts[1], (1, Poly::from(2)));
        assert_eq!(parts[2], (2, var("y")));

        let q = (&var("x") * &var("x")).scale(4) + var("x") + Poly::from(7);
        assert_eq!(
            q.univariate_coeffs(&sym("x")),
            Some(vec![
                Rational::from_int(7),
                Rational::from_int(1),
                Rational::from_int(4)
            ])
        );
        assert_eq!(p.univariate_coeffs(&sym("x")), None, "coefficient contains y");
    }

    #[test]
    fn symbols_set() {
        let p = &var("a") * &var("b") + var("c");
        let syms: Vec<String> = p.symbols().iter().map(|s| s.name().to_string()).collect();
        assert_eq!(syms, ["a", "b", "c"]);
    }

    #[test]
    fn sum_iterator() {
        let total: Poly = (0..4).map(|i| var("x").scale(i as i64)).sum();
        assert_eq!(total, var("x").scale(6));
    }

    #[test]
    fn pow_zero_is_one() {
        assert_eq!(var("x").pow(0), Poly::one());
        assert_eq!(var("x").pow(3).to_string(), "x^3");
    }
}
