//! Closed-interval arithmetic over `f64`.
//!
//! Used to bound the value of a performance expression over a box of
//! variable ranges (paper §3.1: "there are many situations where it is
//! possible to determine whether the expression is positive or negative
//! based on bounds on the variables"). The arithmetic is conservative:
//! the true range is always contained in the computed interval.

use crate::{Poly, Symbol};
use std::collections::HashMap;
use std::fmt;

/// A closed interval `[lo, hi]` on the real line.
///
/// # Examples
///
/// ```
/// use presage_symbolic::Interval;
///
/// let a = Interval::new(1.0, 2.0);
/// let b = Interval::new(-1.0, 3.0);
/// assert_eq!(a + b, Interval::new(0.0, 5.0));
/// assert_eq!(a * b, Interval::new(-2.0, 6.0));
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates an interval; `lo` and `hi` are reordered if needed.
    pub fn new(lo: f64, hi: f64) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// A degenerate single-point interval.
    pub fn point(x: f64) -> Interval {
        Interval { lo: x, hi: x }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Returns `true` if `x` lies in the interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Returns `true` if zero lies in the interval.
    pub fn contains_zero(&self) -> bool {
        self.contains(0.0)
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Integer power, tight for even powers straddling zero.
    pub fn powi(&self, n: i32) -> Interval {
        if n == 0 {
            return Interval::point(1.0);
        }
        if n < 0 {
            // 1 / [lo,hi]^|n|; if the interval straddles zero the reciprocal
            // is unbounded — return the whole line conservatively.
            let p = self.powi(-n);
            if p.contains_zero() {
                return Interval::new(f64::NEG_INFINITY, f64::INFINITY);
            }
            return Interval::new(1.0 / p.hi, 1.0 / p.lo);
        }
        let a = self.lo.powi(n);
        let b = self.hi.powi(n);
        if n % 2 == 0 && self.contains_zero() {
            Interval::new(0.0, a.max(b))
        } else {
            Interval::new(a.min(b), a.max(b))
        }
    }

    /// Evaluates `poly` over a box of variable intervals, conservatively.
    ///
    /// Returns `None` if a symbol of the polynomial has no interval binding.
    pub fn eval_poly(poly: &Poly, box_: &HashMap<Symbol, Interval>) -> Option<Interval> {
        let mut acc = Interval::point(0.0);
        for (mono, coeff) in poly.terms() {
            let mut term = Interval::point(coeff.to_f64());
            for (sym, exp) in mono.factors() {
                let iv = box_.get(sym)?;
                term = term * iv.powi(exp);
            }
            acc = acc + term;
        }
        Some(acc)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
        }
    }
}

impl std::ops::Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo - rhs.hi,
            hi: self.hi - rhs.lo,
        }
    }
}

impl std::ops::Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        let c = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let lo = c.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval { lo, hi }
    }
}

impl std::ops::Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_reorders() {
        assert_eq!(Interval::new(3.0, 1.0), Interval::new(1.0, 3.0));
    }

    #[test]
    fn arithmetic() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-1.0, 1.0);
        assert_eq!(a + b, Interval::new(0.0, 3.0));
        assert_eq!(a - b, Interval::new(0.0, 3.0));
        assert_eq!(a * b, Interval::new(-2.0, 2.0));
        assert_eq!(-a, Interval::new(-2.0, -1.0));
    }

    #[test]
    fn even_power_straddling_zero() {
        let b = Interval::new(-2.0, 1.0);
        assert_eq!(b.powi(2), Interval::new(0.0, 4.0));
        assert_eq!(b.powi(3), Interval::new(-8.0, 1.0));
    }

    #[test]
    fn negative_power() {
        let a = Interval::new(2.0, 4.0);
        assert_eq!(a.powi(-1), Interval::new(0.25, 0.5));
        let b = Interval::new(-1.0, 1.0);
        let r = b.powi(-1);
        assert!(r.lo().is_infinite() && r.hi().is_infinite());
    }

    #[test]
    fn intersect() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.intersect(&b), Some(Interval::new(1.0, 2.0)));
        assert_eq!(a.intersect(&Interval::new(5.0, 6.0)), None);
    }

    #[test]
    fn eval_poly_conservative() {
        use crate::Poly;
        let x = Symbol::new("x");
        // x^2 - x over [0, 1] has true range [-1/4, 0]; interval arithmetic
        // yields [-1, 1], which must contain it.
        let p = &Poly::var(x.clone()) * &Poly::var(x.clone()) - Poly::var(x.clone());
        let mut box_ = HashMap::new();
        box_.insert(x, Interval::new(0.0, 1.0));
        let iv = Interval::eval_poly(&p, &box_).unwrap();
        assert!(iv.lo() <= -0.25 && iv.hi() >= 0.0);
    }

    #[test]
    fn eval_poly_unbound_symbol() {
        let p = Poly::var(Symbol::new("q"));
        assert_eq!(Interval::eval_poly(&p, &HashMap::new()), None);
    }
}
