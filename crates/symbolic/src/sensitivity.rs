//! Sensitivity analysis of performance expressions (paper §3.4).
//!
//! "After the performance expression is found for a program fragment,
//! sensitivity analysis can be applied to find the top few variables that
//! produce the most perturbations to the performance." Those variables are
//! the best candidates for run-time tests or profiling.

use crate::{PerfExpr, Symbol};
use std::collections::HashMap;
use std::fmt;

/// Sensitivity of the expression to one unknown.
#[derive(Clone, Debug, PartialEq)]
pub struct Sensitivity {
    /// The unknown.
    pub symbol: Symbol,
    /// Absolute perturbation: `|f(x + δ·w) − f(x − δ·w)| / 2` at the range
    /// midpoint, where `w` is the range width.
    pub absolute: f64,
    /// `absolute` normalized by `|f(midpoint)|` (0 when the base value is 0).
    pub relative: f64,
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: Δ={:.4} ({:.2}%)",
            self.symbol,
            self.absolute,
            self.relative * 100.0
        )
    }
}

/// Options for [`analyze`].
#[derive(Clone, Copy, Debug)]
pub struct SensitivityOptions {
    /// Fraction of each variable's range used as the perturbation step.
    pub delta_fraction: f64,
}

impl Default for SensitivityOptions {
    fn default() -> Self {
        SensitivityOptions {
            delta_fraction: 0.05,
        }
    }
}

/// Ranks the unknowns of `expr` by how strongly small perturbations around
/// the range midpoints change the predicted cost. Result is sorted by
/// descending absolute sensitivity.
///
/// Variables are perturbed one at a time (the paper's "varies the values of
/// the variables for small amounts and measures the resulting
/// perturbations").
///
/// # Examples
///
/// ```
/// use presage_symbolic::{PerfExpr, Symbol, VarInfo};
/// use presage_symbolic::sensitivity::{analyze, SensitivityOptions};
///
/// let n = Symbol::new("n");
/// let p = Symbol::new("p");
/// // 1000·n dominates 2·p.
/// let e = PerfExpr::cycles(1000).repeat_symbolic(n.clone(), VarInfo::loop_bound(1.0, 100.0))
///     + PerfExpr::cycles(2).repeat_symbolic(p.clone(), VarInfo::loop_bound(1.0, 100.0));
/// let ranked = analyze(&e, SensitivityOptions::default());
/// assert_eq!(ranked[0].symbol, n);
/// ```
pub fn analyze(expr: &PerfExpr, opts: SensitivityOptions) -> Vec<Sensitivity> {
    let midpoints: HashMap<Symbol, f64> = expr
        .vars()
        .iter()
        .map(|(s, i)| (s.clone(), i.range.mid()))
        .collect();
    let base = expr.eval_with_defaults(&midpoints);

    let mut out: Vec<Sensitivity> = expr
        .vars()
        .iter()
        .map(|(sym, info)| {
            let step = (info.range.width() * opts.delta_fraction).max(f64::MIN_POSITIVE);
            let mut up = midpoints.clone();
            up.insert(sym.clone(), (info.range.mid() + step).min(info.range.hi()));
            let mut down = midpoints.clone();
            down.insert(sym.clone(), (info.range.mid() - step).max(info.range.lo()));
            let fu = expr.eval_with_defaults(&up);
            let fd = expr.eval_with_defaults(&down);
            let absolute = (fu - fd).abs() / 2.0;
            let relative = if base.abs() > 0.0 {
                absolute / base.abs()
            } else {
                0.0
            };
            Sensitivity {
                symbol: sym.clone(),
                absolute,
                relative,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.absolute
            .partial_cmp(&a.absolute)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Returns the `k` most sensitive unknowns (paper: run-time tests are
/// formulated on "the top few variables").
pub fn top_k(expr: &PerfExpr, k: usize, opts: SensitivityOptions) -> Vec<Sensitivity> {
    let mut all = analyze(expr, opts);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarInfo;

    #[test]
    fn dominant_variable_ranks_first() {
        let n = Symbol::new("n");
        let m = Symbol::new("m");
        let e = PerfExpr::cycles(500).repeat_symbolic(n.clone(), VarInfo::loop_bound(0.0, 10.0))
            + PerfExpr::cycles(1).repeat_symbolic(m.clone(), VarInfo::loop_bound(0.0, 10.0));
        let ranked = analyze(&e, SensitivityOptions::default());
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].symbol, n);
        assert!(ranked[0].absolute > ranked[1].absolute * 100.0);
    }

    #[test]
    fn range_width_matters() {
        // Same coefficient, but q's range is 100× wider: q is more sensitive.
        let p = Symbol::new("p");
        let q = Symbol::new("q");
        let e = PerfExpr::cycles(1).repeat_symbolic(p.clone(), VarInfo::loop_bound(0.0, 1.0))
            + PerfExpr::cycles(1).repeat_symbolic(q.clone(), VarInfo::loop_bound(0.0, 100.0));
        let ranked = analyze(&e, SensitivityOptions::default());
        assert_eq!(ranked[0].symbol, q);
    }

    #[test]
    fn concrete_expression_has_no_sensitivities() {
        assert!(analyze(&PerfExpr::cycles(5), SensitivityOptions::default()).is_empty());
    }

    #[test]
    fn top_k_truncates() {
        let syms: Vec<Symbol> = (0..5).map(|i| Symbol::new(format!("v{i}"))).collect();
        let mut e = PerfExpr::zero();
        for (i, s) in syms.iter().enumerate() {
            e += PerfExpr::cycles((i as i64 + 1) * 10)
                .repeat_symbolic(s.clone(), VarInfo::loop_bound(0.0, 10.0));
        }
        let top = top_k(&e, 2, SensitivityOptions::default());
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].symbol, syms[4]);
        assert_eq!(top[1].symbol, syms[3]);
    }

    #[test]
    fn nonlinear_sensitivity_at_midpoint() {
        // f = n^2 over [0, 10]: derivative at midpoint 5 is 10, so a ±0.5
        // perturbation gives |f(5.5)-f(4.5)|/2 = 5.
        let n = Symbol::new("n");
        let e = PerfExpr::var(n.clone(), VarInfo::loop_bound(0.0, 10.0));
        let sq = e.mul(&e.clone());
        let ranked = analyze(&sq, SensitivityOptions::default());
        assert!((ranked[0].absolute - 5.0).abs() < 1e-9);
    }
}
