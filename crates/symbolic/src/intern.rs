//! Hash-consed symbol, monomial, and polynomial tables behind the optimized
//! [`crate::Poly`].
//!
//! Every distinct monomial is interned exactly once and identified by a
//! [`MonoId`]; id equality is structural equality, so polynomial arithmetic
//! reduces to merging sorted `u32` runs instead of cloning and re-comparing
//! `Vec<(Symbol, i32)>` factor lists. A second table does the same for whole
//! canonical polynomials: a [`PolyId`] names one id-sorted term vector, so
//! the algebra memos (`pow`, `subst`, products, summations) key on packed
//! integer ids instead of hashing and cloning entire `Poly` values.
//!
//! # Concurrency architecture (sharded, lock-free reads)
//!
//! The single process-wide `RwLock` this design replaces serialized every
//! batch-prediction worker on one lock and copied whole table tails into
//! per-thread mirrors under it. The tables are now **sharded and
//! append-only**:
//!
//! - Each table (symbols, monomials, polynomials) is split into
//!   [`NUM_SHARDS`] shards selected by content hash. An id packs its
//!   coordinates as `(index << SHARD_BITS) | shard`, so ids stay `u32`,
//!   [`MONO_ONE`] stays `0` (shard 0, slot 0 is pre-seeded with the
//!   constant monomial), and [`POLY_UNINTERNED`] (`u32::MAX`) can never
//!   collide with a real id (per-shard poly capacity keeps indices far
//!   below the packing limit).
//! - **Interning** (key → id) takes exactly one shard mutex for one
//!   hash-map probe and, on a miss, one append. Distinct shapes hash to
//!   distinct shards, so concurrent workers interning different content
//!   almost never touch the same lock. A thread-local key → id cache in
//!   front makes repeat interning from the same thread lock-free.
//! - **Resolving** (id → entry) never locks: each shard stores entries in
//!   a [`SlotArena`] — a bucketed, append-only slot array whose buckets
//!   are published with release stores and whose length is the
//!   release/acquire fence. Readers index straight into shared memory.
//!
//! # Lifecycle: immortal monomials, epoch-confined polynomials
//!
//! Symbol and monomial entries leak their canonical data (`&'static
//! Monomial`, `&'static` factor lists) so every thread reads the same
//! storage without ownership gymnastics. That leak is deliberate and
//! bounded: [`crate::Poly`] values embed `MonoId`s and outlive any job,
//! so those two tables must stay append-only forever, and their growth is
//! limited by the number of distinct variable names × exponent shapes
//! ever seen — structurally tiny.
//!
//! Polynomial entries are different: a `PolyId` only ever lives in memo
//! keys/values and in-flight computation (never inside a `Poly`), so the
//! poly shards participate in [`crate::epoch`]-based reclamation instead
//! of leaking. Every entry carries the *generation* (epoch) in which it
//! was last interned or re-interned; [`reclaim_polys`] — called from
//! `epoch::advance` after every `PolyId`-bearing L2 memo has been
//! cleared — frees the term slices of entries retired by every active
//! pin and recycles their slots through a per-shard free list. Slot reuse
//! means a numeric id can name different content across generations;
//! that is sound because the epoch protocol guarantees no retired id
//! survives anywhere reachable (L2s cleared on advance, thread-local L1s
//! epoch-stamped, stack-held ids covered by their thread's pin).
//!
//! Each poly shard additionally caps its *live* entry count at
//! [`POLY_ARENA_CAP`]`/`[`NUM_SHARDS`]; past the cap [`intern_poly`]
//! reports [`POLY_UNINTERNED`] for shapes hashing into that shard and
//! callers fall back to direct (unmemoized) computation until the next
//! epoch advance frees room. A pathological workload fills shards
//! independently instead of stalling every worker on one global
//! eviction.

use crate::monomial::Monomial;
use crate::symbol::Symbol;
use crate::Rational;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Interned symbol id: packed `(index, shard)` into the symbol table.
pub(crate) type SymId = u32;
/// Interned monomial id: packed `(index, shard)` into the monomial table.
pub(crate) type MonoId = u32;

/// Interned polynomial id: packed `(index, shard)` into the polynomial table.
pub(crate) type PolyId = u32;

/// Shard-count exponent: ids reserve this many low bits for the shard.
const SHARD_BITS: u32 = 4;

/// Number of independent shards per table. Shard selection is by content
/// hash, so concurrent interning of distinct shapes spreads evenly.
pub(crate) const NUM_SHARDS: usize = 1 << SHARD_BITS;

/// The constant monomial `1` is always id 0 (shard 0, slot 0 — pre-seeded
/// at table construction), so a polynomial's constant term (if present) is
/// always the first element of its id-sorted term list.
pub(crate) const MONO_ONE: MonoId = 0;

/// Sentinel returned by [`intern_poly`] once the target shard is full: the
/// polynomial is *not* interned and the caller must compute unmemoized.
/// Never a valid table index (see [`POLY_SHARD_CAP`]).
pub(crate) const POLY_UNINTERNED: PolyId = u32::MAX;

/// Hard cap on distinct interned polynomials across all shards. Entries
/// leak (by design — ids must stay valid forever), so a pathological
/// workload producing unboundedly many distinct polynomials must not grow
/// the arena without limit; past the cap the algebra simply stops
/// memoizing new shapes.
pub(crate) const POLY_ARENA_CAP: usize = 1 << 20;

/// Per-shard polynomial capacity. Indices therefore stay at most 16 bits,
/// so a packed poly id can never reach [`POLY_UNINTERNED`].
const POLY_SHARD_CAP: usize = POLY_ARENA_CAP / NUM_SHARDS;

/// Test-only override of the per-shard poly cap (`0` = use the default).
/// Lives behind a runtime atomic because `cfg(test)` does not cross crate
/// boundaries and the cap-pressure tests drive shards past capacity.
static POLY_SHARD_CAP_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn poly_shard_cap() -> usize {
    match POLY_SHARD_CAP_OVERRIDE.load(Ordering::Relaxed) {
        0 => POLY_SHARD_CAP,
        n => n,
    }
}

/// Overrides the per-shard live-entry cap of the polynomial arena.
/// Test hook only — pass `0` to restore the default.
#[doc(hidden)]
pub fn set_poly_shard_cap_for_tests(cap: usize) {
    POLY_SHARD_CAP_OVERRIDE.store(cap, Ordering::Relaxed);
}

/// Generation stamp of a vacant (reclaimed, not yet reused) poly slot.
const VACANT_GEN: u64 = u64::MAX;

/// Cumulative count of polynomial entries reclaimed by [`reclaim_polys`].
static POLYS_RECLAIMED: AtomicUsize = AtomicUsize::new(0);

/// Thread-local key→id caches and op memos clear (not evict) past this
/// size; the workloads here never approach it, it only guards against
/// pathological inputs.
const CACHE_CAP: usize = 1 << 14;

#[inline]
fn shard_of(id: u32) -> usize {
    (id & (NUM_SHARDS as u32 - 1)) as usize
}

#[inline]
fn index_of(id: u32) -> u32 {
    id >> SHARD_BITS
}

#[inline]
fn pack_id(shard: usize, index: u32) -> u32 {
    debug_assert!(index <= u32::MAX >> SHARD_BITS);
    (index << SHARD_BITS) | shard as u32
}

/// Packed factor list: `(SymId, exponent)` pairs sorted by `SymId`, with
/// inline storage for the ≤2-variable case.
#[derive(Clone, Copy)]
pub(crate) enum Factors {
    /// Up to two factors stored in the entry itself.
    Inline { len: u8, fac: [(SymId, i32); 2] },
    /// Larger factor lists, interned once and leaked.
    Spill(&'static [(SymId, i32)]),
}

impl Factors {
    pub(crate) fn as_slice(&self) -> &[(SymId, i32)] {
        match self {
            Factors::Inline { len, fac } => &fac[..*len as usize],
            Factors::Spill(s) => s,
        }
    }

    fn from_slice(fs: &[(SymId, i32)]) -> Factors {
        if fs.len() <= 2 {
            let mut fac = [(0, 0); 2];
            fac[..fs.len()].copy_from_slice(fs);
            Factors::Inline {
                len: fs.len() as u8,
                fac,
            }
        } else {
            Factors::Spill(Box::leak(fs.to_vec().into_boxed_slice()))
        }
    }
}

/// One monomial-table entry. `Copy` so slot reads hand out the leaked data.
#[derive(Clone, Copy)]
pub(crate) struct MonoEntry {
    /// The canonical (name-sorted) monomial, leaked for `&'static` access.
    pub(crate) mono: &'static Monomial,
    /// Id-sorted factor list used by the arithmetic fast paths.
    pub(crate) factors: Factors,
    /// Laurent total degree (sum of exponents).
    pub(crate) degree: i32,
    /// Whether any exponent is negative.
    pub(crate) has_neg: bool,
}

/// One polynomial-table entry: the canonical id-sorted term slice, leaked
/// so every thread shares the same storage.
type PolyTerms = &'static [(MonoId, Rational)];

// ---- lock-free slot storage -------------------------------------------------

/// Capacity of bucket 0; bucket `k` holds `FIRST_BUCKET << k` slots.
const FIRST_BUCKET: usize = 32;
/// Bucket count: cumulative capacity `FIRST_BUCKET * (2^BUCKETS - 1)`
/// comfortably exceeds the `u32 >> SHARD_BITS` index space.
const BUCKETS: usize = 24;

/// Append-only slot array with lock-free reads.
///
/// Slots live in geometrically growing buckets behind atomic pointers.
/// Appends happen under the owning shard's mutex (single writer at a
/// time); the published `len` is the release/acquire fence that makes a
/// slot's contents — and its bucket pointer — visible to every reader
/// that observes an index below it.
struct SlotArena<T> {
    len: AtomicU32,
    buckets: [AtomicPtr<T>; BUCKETS],
}

impl<T: Copy> SlotArena<T> {
    fn new() -> SlotArena<T> {
        SlotArena {
            len: AtomicU32::new(0),
            buckets: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }

    /// `(bucket, offset)` coordinates of slot `idx`.
    #[inline]
    fn locate(idx: u32) -> (usize, usize) {
        let n = idx as usize / FIRST_BUCKET + 1;
        let k = (usize::BITS - 1 - n.leading_zeros()) as usize;
        let start = FIRST_BUCKET * ((1usize << k) - 1);
        (k, idx as usize - start)
    }

    /// Published slot count (acquire: pairs with the release in `push`).
    #[inline]
    fn len(&self) -> u32 {
        self.len.load(Ordering::Acquire)
    }

    /// Reads slot `idx`. Caller must have observed `idx < self.len()`.
    #[inline]
    fn get(&self, idx: u32) -> T {
        let (k, off) = Self::locate(idx);
        let ptr = self.buckets[k].load(Ordering::Acquire);
        debug_assert!(!ptr.is_null(), "slot read below published len");
        // SAFETY: `idx < len` was observed with acquire ordering, and the
        // writer stored `len` with release ordering *after* writing this
        // slot and publishing its bucket, so both are visible here. Slots
        // are never mutated after publication (append-only).
        unsafe { *ptr.add(off) }
    }

    /// Appends `value`, returning its index. Must be called while holding
    /// the owning shard's mutex — that exclusivity is what makes the
    /// relaxed `len` read and the raw slot write sound.
    fn push(&self, value: T) -> u32 {
        let idx = self.len.load(Ordering::Relaxed);
        assert!(
            (idx as usize) < FIRST_BUCKET * ((1usize << BUCKETS) - 1),
            "intern arena shard exhausted its slot space"
        );
        let (k, off) = Self::locate(idx);
        let mut ptr = self.buckets[k].load(Ordering::Relaxed);
        if ptr.is_null() {
            let cap = FIRST_BUCKET << k;
            let storage: Box<[MaybeUninit<T>]> = Box::new_uninit_slice(cap);
            ptr = Box::leak(storage).as_mut_ptr() as *mut T;
            // Release so a reader that follows the pointer (after seeing
            // a published len) also sees initialized bucket memory.
            self.buckets[k].store(ptr, Ordering::Release);
        }
        // SAFETY: `off < cap` by construction; this writer is the only
        // one appending (shard mutex held) and `idx >= len` means no
        // reader may touch the slot yet.
        unsafe { ptr.add(off).write(value) };
        self.len.store(idx + 1, Ordering::Release);
        idx
    }

    /// Overwrites an existing slot (free-list reuse). Must be called while
    /// holding the owning shard's mutex with `idx < len`.
    ///
    /// Unlike `push` there is no length fence to publish the write; the
    /// caller's epoch protocol must guarantee that (a) no thread still
    /// holds an id naming the slot's previous occupant, and (b) the new id
    /// reaches readers only through a synchronizing handoff (the shard
    /// mutex, an L2 memo mutex, a scoped-thread join) that happens-after
    /// this write.
    fn replace(&self, idx: u32, value: T) {
        debug_assert!(idx < self.len.load(Ordering::Relaxed));
        let (k, off) = Self::locate(idx);
        let ptr = self.buckets[k].load(Ordering::Acquire);
        debug_assert!(!ptr.is_null());
        // SAFETY: `idx < len` so the bucket is allocated and the slot in
        // bounds; exclusivity and reader visibility per the doc contract.
        unsafe { ptr.add(off).write(value) };
    }
}

// ---- sharded tables ---------------------------------------------------------

/// One shard of one table: the key → id map (guarding appends) plus the
/// lock-free slot storage resolved ids read from.
struct ShardTab<K, T> {
    /// Maps interned content to its packed id. The mutex also serializes
    /// appends to `slots`; critical sections are one probe or one probe
    /// plus one append.
    map: Mutex<HashMap<K, u32>>,
    slots: SlotArena<T>,
}

impl<K: Hash + Eq, T: Copy> ShardTab<K, T> {
    fn new() -> ShardTab<K, T> {
        ShardTab {
            map: Mutex::new(HashMap::new()),
            slots: SlotArena::new(),
        }
    }

    /// Resolves `id` to its entry, lock-free in the steady state.
    ///
    /// An id always originates from an intern call whose effects reach
    /// other threads through some synchronizing handoff (scoped-thread
    /// join, shared-cache mutex, …), so the published length normally
    /// covers it already. If it does not — an id raced ahead of any such
    /// handoff — taking the shard mutex synchronizes with the writer that
    /// produced the id, after which the length must cover it.
    fn entry(&self, idx: u32) -> T {
        if idx < self.slots.len() {
            return self.slots.get(idx);
        }
        drop(self.map.lock().unwrap_or_else(|e| e.into_inner()));
        assert!(
            idx < self.slots.len(),
            "interned id {idx} beyond published table length"
        );
        self.slots.get(idx)
    }
}

/// Book-keeping for one polynomial shard, all guarded by one mutex:
/// content → id map (live entries only), per-slot generation stamps
/// ([`VACANT_GEN`] marks reclaimed slots), and the free list of
/// recyclable slot indices.
#[derive(Default)]
struct PolyState {
    map: HashMap<Box<[(MonoId, Rational)]>, u32>,
    gens: Vec<u64>,
    free: Vec<u32>,
}

/// One polynomial shard: locked state plus the lock-free slot storage
/// resolved ids read from. Unlike [`ShardTab`], slots here are *recycled*
/// across epochs (see the module docs for why that is sound).
struct PolyShard {
    state: Mutex<PolyState>,
    slots: SlotArena<PolyTerms>,
}

impl PolyShard {
    fn new() -> PolyShard {
        PolyShard {
            state: Mutex::new(PolyState::default()),
            slots: SlotArena::new(),
        }
    }

    /// Resolves a slot index to its term slice; same synchronization
    /// contract as [`ShardTab::entry`].
    fn entry(&self, idx: u32) -> PolyTerms {
        if idx < self.slots.len() {
            return self.slots.get(idx);
        }
        drop(self.state.lock().unwrap_or_else(|e| e.into_inner()));
        assert!(
            idx < self.slots.len(),
            "interned poly id {idx} beyond published table length"
        );
        self.slots.get(idx)
    }
}

/// Canonical monomial content: sorted `(symbol id, exponent)` pairs.
type MonoKey = Box<[(SymId, i32)]>;

struct Tables {
    syms: [ShardTab<Symbol, &'static Symbol>; NUM_SHARDS],
    monos: [ShardTab<MonoKey, MonoEntry>; NUM_SHARDS],
    polys: [PolyShard; NUM_SHARDS],
    /// Shard selector; per-process random keys are fine — ids are
    /// process-local — and hardened against adversarial shard pile-up.
    hasher: RandomState,
}

impl Tables {
    fn new() -> Tables {
        let t = Tables {
            syms: std::array::from_fn(|_| ShardTab::new()),
            monos: std::array::from_fn(|_| ShardTab::new()),
            polys: std::array::from_fn(|_| PolyShard::new()),
            hasher: RandomState::new(),
        };
        // Pre-seed MONO_ONE at shard 0, slot 0: the empty factor list is
        // special-cased before hashing, so no other shard can alias it.
        let one: &'static Monomial = Box::leak(Box::new(Monomial::one()));
        let entry = MonoEntry {
            mono: one,
            factors: Factors::from_slice(&[]),
            degree: 0,
            has_neg: false,
        };
        let shard = &t.monos[0];
        let guard = shard.map.lock().unwrap_or_else(|e| e.into_inner());
        let idx = shard.slots.push(entry);
        debug_assert_eq!(pack_id(0, idx), MONO_ONE);
        drop(guard);
        t
    }

    #[inline]
    fn shard_for<Q: Hash + ?Sized>(&self, key: &Q) -> usize {
        self.hasher.hash_one(key) as usize & (NUM_SHARDS - 1)
    }
}

static TABLES: OnceLock<Tables> = OnceLock::new();

fn tables() -> &'static Tables {
    TABLES.get_or_init(Tables::new)
}

// ---- thread-local L1 --------------------------------------------------------

/// Per-thread key → id caches (so repeat interning never locks) and op
/// memos (monomial products, `split_symbol` results), plus a
/// scratch-buffer pool for merge-based polynomial ops. All maps
/// clear-on-cap at [`CACHE_CAP`] independently.
#[derive(Default)]
struct Local {
    sym_ids: HashMap<Symbol, SymId>,
    mono_ids: HashMap<MonoKey, MonoId>,
    poly_ids: HashMap<Box<[(MonoId, Rational)]>, PolyId>,
    /// Pin epoch `poly_ids` was last validated at: poly ids are
    /// epoch-confined, so the L1 self-clears on the first intern under a
    /// newer pin (before any stale id could be returned).
    poly_epoch: u64,
    mul_cache: HashMap<(MonoId, MonoId), MonoId>,
    split_cache: HashMap<(MonoId, SymId), (i32, MonoId)>,
    scratch: Vec<Vec<(MonoId, Rational)>>,
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::default());
}

fn cache_insert<K: Hash + Eq, V>(cache: &mut HashMap<K, V>, key: K, value: V) {
    if cache.len() >= CACHE_CAP {
        cache.clear();
    }
    cache.insert(key, value);
}

// ---- interning --------------------------------------------------------------

fn sym_id_in(l: &mut Local, sym: &Symbol) -> SymId {
    if let Some(&id) = l.sym_ids.get(sym) {
        return id;
    }
    let t = tables();
    let shard_no = t.shard_for(sym.name());
    let shard = &t.syms[shard_no];
    let mut map = shard.map.lock().unwrap_or_else(|e| e.into_inner());
    let id = match map.get(sym) {
        Some(&id) => id,
        None => {
            let leaked: &'static Symbol = Box::leak(Box::new(sym.clone()));
            let idx = shard.slots.push(leaked);
            let id = pack_id(shard_no, idx);
            map.insert(sym.clone(), id);
            id
        }
    };
    drop(map);
    cache_insert(&mut l.sym_ids, sym.clone(), id);
    id
}

/// Interns an id-sorted, zero-free factor list.
fn intern_factors_in(l: &mut Local, fs: &[(SymId, i32)]) -> MonoId {
    if fs.is_empty() {
        return MONO_ONE;
    }
    if let Some(&id) = l.mono_ids.get(fs) {
        return id;
    }
    let t = tables();
    let shard_no = t.shard_for(fs);
    let shard = &t.monos[shard_no];
    let mut map = shard.map.lock().unwrap_or_else(|e| e.into_inner());
    let id = match map.get(fs) {
        Some(&id) => id,
        None => {
            // Resolving sym ids here is lock-free, so building the
            // canonical Monomial holds only this shard's mutex.
            let pairs: Vec<(Symbol, i32)> = fs
                .iter()
                .map(|&(sid, exp)| (sym(sid).clone(), exp))
                .collect();
            let mono: &'static Monomial = Box::leak(Box::new(Monomial::from_pairs(pairs)));
            let entry = MonoEntry {
                mono,
                factors: Factors::from_slice(fs),
                degree: fs.iter().map(|&(_, e)| e).sum(),
                has_neg: fs.iter().any(|&(_, e)| e < 0),
            };
            let idx = shard.slots.push(entry);
            let id = pack_id(shard_no, idx);
            map.insert(fs.to_vec().into_boxed_slice(), id);
            id
        }
    };
    drop(map);
    cache_insert(&mut l.mono_ids, fs.to_vec().into_boxed_slice(), id);
    id
}

/// Interns a canonical (id-sorted, zero-free) polynomial term slice.
/// Returns [`POLY_UNINTERNED`] once the target shard holds its share of
/// [`POLY_ARENA_CAP`] *live* polynomials; callers must then skip
/// memoization for this shape until an epoch advance frees room.
///
/// `pin_epoch` is the calling thread's validated pin: it gates the L1
/// cache (cleared on the first call under a newer pin) and lower-bounds
/// the generation stamp written to the arena.
fn intern_poly_in(l: &mut Local, terms: &[(MonoId, Rational)], pin_epoch: u64) -> PolyId {
    if l.poly_epoch != pin_epoch {
        l.poly_ids.clear();
        l.poly_epoch = pin_epoch;
    }
    if let Some(&id) = l.poly_ids.get(terms) {
        return id;
    }
    let t = tables();
    let shard_no = t.shard_for(terms);
    let shard = &t.polys[shard_no];
    let mut st = shard.state.lock().unwrap_or_else(|e| e.into_inner());
    let id = match st.map.get(terms) {
        Some(&id) => {
            // Re-stamp on hit so shapes in active use survive the next
            // advance. `current()` cannot lag the pin (same-thread
            // coherence after the pin's SeqCst load), so the stamp never
            // moves backwards past the reclaim bound.
            let slot = index_of(id) as usize;
            let gen = crate::epoch::current().max(pin_epoch);
            st.gens[slot] = st.gens[slot].max(gen);
            id
        }
        None => {
            if st.map.len() >= poly_shard_cap() {
                return POLY_UNINTERNED;
            }
            let leaked: PolyTerms = Box::leak(terms.to_vec().into_boxed_slice());
            let gen = crate::epoch::current().max(pin_epoch);
            let idx = match st.free.pop() {
                Some(idx) => {
                    // Recycle a reclaimed slot: sound because no thread
                    // can still hold the retired id (see module docs).
                    shard.slots.replace(idx, leaked);
                    st.gens[idx as usize] = gen;
                    idx
                }
                None => {
                    let idx = shard.slots.push(leaked);
                    debug_assert_eq!(st.gens.len(), idx as usize);
                    st.gens.push(gen);
                    idx
                }
            };
            let id = pack_id(shard_no, idx);
            st.map.insert(terms.to_vec().into_boxed_slice(), id);
            id
        }
    };
    drop(st);
    cache_insert(&mut l.poly_ids, terms.to_vec().into_boxed_slice(), id);
    id
}

/// Frees polynomial-arena entries whose generation is strictly below
/// `retire_before`, recycling their slots. Called only from
/// [`crate::epoch::advance`], *after* every `PolyId`-bearing L2 memo has
/// been cleared — that ordering (plus epoch-stamped L1s and active-pin
/// accounting in the bound) is what makes freeing the leaked term slices
/// sound. Returns the number of entries freed.
pub(crate) fn reclaim_polys(retire_before: u64) -> usize {
    if retire_before == 0 {
        return 0;
    }
    let t = tables();
    let mut freed = 0usize;
    for shard in &t.polys {
        let mut st = shard.state.lock().unwrap_or_else(|e| e.into_inner());
        let PolyState { map, gens, free } = &mut *st;
        let slots = &shard.slots;
        map.retain(|_, id| {
            let idx = index_of(*id);
            if gens[idx as usize] >= retire_before {
                return true;
            }
            let terms = slots.get(idx);
            // SAFETY: the slice was created by `Box::leak` in
            // `intern_poly_in` with exactly this pointer and length, and
            // the epoch protocol guarantees no thread can reach it again
            // through this (now retired) id.
            unsafe {
                drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                    terms.as_ptr() as *mut (MonoId, Rational),
                    terms.len(),
                )));
            }
            gens[idx as usize] = VACANT_GEN;
            free.push(idx);
            freed += 1;
            false
        });
    }
    POLYS_RECLAIMED.fetch_add(freed, Ordering::Relaxed);
    freed
}

/// Whether `id` currently names a live (non-reclaimed) arena entry.
/// Test hook for the reclamation and fallback-key suites.
#[doc(hidden)]
pub fn poly_id_is_live(id: u32) -> bool {
    if id == POLY_UNINTERNED {
        return false;
    }
    let st = tables().polys[shard_of(id)]
        .state
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let idx = index_of(id) as usize;
    idx < st.gens.len() && st.gens[idx] != VACANT_GEN
}

// ---- monomial algebra (thread-local memos over lock-free reads) -------------

fn mono_mul_in(l: &mut Local, a: MonoId, b: MonoId) -> MonoId {
    if a == MONO_ONE {
        return b;
    }
    if b == MONO_ONE {
        return a;
    }
    if let Some(&id) = l.mul_cache.get(&(a, b)) {
        return id;
    }
    let fa = mono_entry(a).factors;
    let fb = mono_entry(b).factors;
    let (sa, sb) = (fa.as_slice(), fb.as_slice());
    let mut out: Vec<(SymId, i32)> = Vec::with_capacity(sa.len() + sb.len());
    let (mut i, mut j) = (0, 0);
    while i < sa.len() && j < sb.len() {
        match sa[i].0.cmp(&sb[j].0) {
            std::cmp::Ordering::Less => {
                out.push(sa[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(sb[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let e = sa[i].1 + sb[j].1;
                if e != 0 {
                    out.push((sa[i].0, e));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&sa[i..]);
    out.extend_from_slice(&sb[j..]);
    let id = intern_factors_in(l, &out);
    cache_insert(&mut l.mul_cache, (a, b), id);
    id
}

fn mono_split_in(l: &mut Local, id: MonoId, sid: SymId) -> (i32, MonoId) {
    if id == MONO_ONE {
        return (0, MONO_ONE);
    }
    if let Some(&r) = l.split_cache.get(&(id, sid)) {
        return r;
    }
    let factors = mono_entry(id).factors;
    let fs = factors.as_slice();
    let r = match fs.iter().position(|&(s, _)| s == sid) {
        None => (0, id),
        Some(pos) => {
            let exp = fs[pos].1;
            let mut rest: Vec<(SymId, i32)> = Vec::with_capacity(fs.len() - 1);
            rest.extend_from_slice(&fs[..pos]);
            rest.extend_from_slice(&fs[pos + 1..]);
            (exp, intern_factors_in(l, &rest))
        }
    };
    cache_insert(&mut l.split_cache, (id, sid), r);
    r
}

// ---- public (crate) surface -------------------------------------------------

/// Interns a canonical polynomial term slice; see [`intern_poly_in`].
///
/// Pins the calling thread for the duration of the intern. Callers that
/// go on to *use* the returned id (resolve it, key a memo with it) must
/// hold their own covering pin — the id is only guaranteed live while a
/// pin taken at or before acquisition is held.
pub(crate) fn intern_poly(terms: &[(MonoId, Rational)]) -> PolyId {
    let guard = crate::epoch::pin();
    LOCAL.with(|l| intern_poly_in(&mut l.borrow_mut(), terms, guard.epoch()))
}

/// The canonical term slice for an interned polynomial id (lock-free).
pub(crate) fn poly_terms(id: PolyId) -> PolyTerms {
    debug_assert_ne!(id, POLY_UNINTERNED);
    tables().polys[shard_of(id)].entry(index_of(id))
}

pub(crate) fn sym_id(sym: &Symbol) -> SymId {
    LOCAL.with(|l| sym_id_in(&mut l.borrow_mut(), sym))
}

/// The canonical interned symbol for `id` (lock-free).
fn sym(id: SymId) -> &'static Symbol {
    tables().syms[shard_of(id)].entry(index_of(id))
}

/// The canonical shared [`Symbol`] for `name`, interning it on first use —
/// the allocation-free path behind [`Symbol::interned`].
pub(crate) fn symbol_named(name: &str) -> Symbol {
    LOCAL.with(|l| {
        let l = &mut *l.borrow_mut();
        if let Some((sym, _)) = l.sym_ids.get_key_value(name) {
            return sym.clone();
        }
        let sym = Symbol::new(name);
        let id = sym_id_in(l, &sym);
        // Hand back the canonical leaked Arc so clones share storage.
        self::sym(id).clone()
    })
}

/// The canonical interned monomial for `id` (lock-free).
pub(crate) fn mono(id: MonoId) -> &'static Monomial {
    mono_entry(id).mono
}

/// A copy of the full table entry (factors, degree, negativity flag) —
/// lock-free.
pub(crate) fn mono_entry(id: MonoId) -> MonoEntry {
    tables().monos[shard_of(id)].entry(index_of(id))
}

/// Interns an API-level monomial (name-sorted factors → id-sorted key).
pub(crate) fn intern_mono(m: &Monomial) -> MonoId {
    LOCAL.with(|l| {
        let l = &mut *l.borrow_mut();
        let mut fs: Vec<(SymId, i32)> = m.factors().map(|(s, e)| (sym_id_in(l, s), e)).collect();
        fs.sort_unstable_by_key(|&(s, _)| s);
        intern_factors_in(l, &fs)
    })
}

/// `sym^exp` as an interned id (`MONO_ONE` when `exp == 0`).
pub(crate) fn mono_power(sym: &Symbol, exp: i32) -> MonoId {
    if exp == 0 {
        return MONO_ONE;
    }
    LOCAL.with(|l| {
        let l = &mut *l.borrow_mut();
        let sid = sym_id_in(l, sym);
        intern_factors_in(l, &[(sid, exp)])
    })
}

/// Product of two interned monomials (memoized per thread).
pub(crate) fn mono_mul(a: MonoId, b: MonoId) -> MonoId {
    LOCAL.with(|l| mono_mul_in(&mut l.borrow_mut(), a, b))
}

/// Raises every exponent by `exp` (id order is preserved, so no re-sort).
pub(crate) fn mono_pow(id: MonoId, exp: i32) -> MonoId {
    if exp == 0 || id == MONO_ONE {
        return if exp == 0 { MONO_ONE } else { id };
    }
    if exp == 1 {
        return id;
    }
    let factors = mono_entry(id).factors;
    let fs: Vec<(SymId, i32)> = factors
        .as_slice()
        .iter()
        .map(|&(s, e)| (s, e * exp))
        .collect();
    LOCAL.with(|l| intern_factors_in(&mut l.borrow_mut(), &fs))
}

/// Removes `sym` from the monomial: `(removed exponent, remaining id)`,
/// memoized per thread — the backbone of `subst`/`derivative`/`as_univariate`.
pub(crate) fn mono_split(id: MonoId, sid: SymId) -> (i32, MonoId) {
    LOCAL.with(|l| mono_split_in(&mut l.borrow_mut(), id, sid))
}

/// Grabs a reusable term buffer from the thread-local pool.
pub(crate) fn take_scratch() -> Vec<(MonoId, Rational)> {
    LOCAL
        .with(|l| l.borrow_mut().scratch.pop())
        .map(|mut v| {
            v.clear();
            v
        })
        .unwrap_or_default()
}

/// Returns a term buffer to the pool for reuse.
pub(crate) fn put_scratch(v: Vec<(MonoId, Rational)>) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if l.scratch.len() < 8 {
            l.scratch.push(v);
        }
    })
}

/// Footprint of the process-wide intern arenas — the soak-check probe.
///
/// Symbol and monomial counts are published table lengths (those entries
/// never leave, so they are monotone). `polynomials` counts **live**
/// entries only — epoch advances reclaim retired ones — while
/// `poly_slots` is the monotone allocated-slot high-water mark and
/// `poly_reclaimed` the cumulative reclamation total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct interned symbols.
    pub symbols: usize,
    /// Distinct interned monomials (including the constant `1`).
    pub monomials: usize,
    /// Live (non-reclaimed) interned polynomials.
    pub polynomials: usize,
    /// Allocated polynomial slots (monotone high-water mark; vacant slots
    /// are recycled before new ones are allocated).
    pub poly_slots: usize,
    /// Cumulative polynomial entries reclaimed across all epoch advances.
    pub poly_reclaimed: usize,
    /// Total live-polynomial capacity across shards ([`POLY_ARENA_CAP`]).
    pub poly_capacity: usize,
}

/// Current sizes of the global symbol/monomial/polynomial arenas.
pub fn arena_stats() -> ArenaStats {
    let t = tables();
    let count = |lens: &mut dyn Iterator<Item = u32>| lens.map(|n| n as usize).sum::<usize>();
    ArenaStats {
        symbols: count(&mut t.syms.iter().map(|s| s.slots.len())),
        monomials: count(&mut t.monos.iter().map(|s| s.slots.len())),
        polynomials: t
            .polys
            .iter()
            .map(|s| s.state.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum(),
        poly_slots: count(&mut t.polys.iter().map(|s| s.slots.len())),
        poly_reclaimed: POLYS_RECLAIMED.load(Ordering::Relaxed),
        poly_capacity: POLY_ARENA_CAP,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: &str) -> Symbol {
        Symbol::new(n)
    }

    #[test]
    fn ids_are_structural_identity() {
        let a = intern_mono(&Monomial::from_pairs([(s("x"), 2), (s("y"), 1)]));
        let b = intern_mono(&Monomial::from_pairs([(s("y"), 1), (s("x"), 2)]));
        assert_eq!(a, b);
        assert_ne!(a, intern_mono(&Monomial::var(s("x"))));
        assert_eq!(intern_mono(&Monomial::one()), MONO_ONE);
    }

    #[test]
    fn mul_merges_and_cancels() {
        let x2 = mono_power(&s("x"), 2);
        let xinv2 = mono_power(&s("x"), -2);
        assert_eq!(mono_mul(x2, xinv2), MONO_ONE);
        let y = mono_power(&s("y"), 1);
        let xy = mono_mul(mono_power(&s("x"), 1), y);
        assert_eq!(mono(xy).to_string(), "x*y");
        assert_eq!(mono_entry(xy).degree, 2);
    }

    #[test]
    fn split_round_trips() {
        let m = intern_mono(&Monomial::from_pairs([(s("x"), 3), (s("y"), -1)]));
        let sid = sym_id(&s("x"));
        let (e, rest) = mono_split(m, sid);
        assert_eq!(e, 3);
        assert_eq!(mono(rest).to_string(), "y^-1");
        assert_eq!(mono_mul(rest, mono_power(&s("x"), 3)), m);
    }

    #[test]
    fn cross_thread_ids_resolve() {
        let id = std::thread::spawn(|| intern_mono(&Monomial::from_pairs([(s("tq"), 5)])))
            .join()
            .unwrap();
        assert_eq!(mono(id).to_string(), "tq^5");
    }

    #[test]
    fn poly_ids_are_structural_identity() {
        // Pin across acquisition and resolution: ids are epoch-confined,
        // and sibling tests advance the epoch concurrently.
        let _g = crate::epoch::pin();
        let x = mono_power(&s("px"), 1);
        let terms = [
            (MONO_ONE, Rational::from_int(3)),
            (x, Rational::from_int(2)),
        ];
        let a = intern_poly(&terms);
        let b = intern_poly(&terms);
        assert_eq!(a, b);
        assert_ne!(a, POLY_UNINTERNED);
        assert_eq!(poly_terms(a), &terms[..]);
        let other = intern_poly(&[(x, Rational::from_int(7))]);
        assert_ne!(a, other);
    }

    #[test]
    fn cross_thread_poly_ids_resolve() {
        // The spawning thread's pin covers the child's id: the child
        // interns at the current epoch (>= our pin), so the entry outlives
        // any advance that could run while we hold the guard.
        let _g = crate::epoch::pin();
        let id = std::thread::spawn(|| {
            let y = mono_power(&s("py"), 2);
            intern_poly(&[(y, Rational::from_int(5))])
        })
        .join()
        .unwrap();
        let terms = poly_terms(id);
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].1, Rational::from_int(5));
    }

    #[test]
    fn reclaim_frees_retired_polys_and_recycles_slots() {
        let x = mono_power(&s("rcl_x"), 1);
        let terms = [
            (MONO_ONE, Rational::from_int(11)),
            (x, Rational::from_int(3)),
        ];
        let id = {
            let _g = crate::epoch::pin();
            intern_poly(&terms)
        };
        assert_ne!(id, POLY_UNINTERNED);
        assert!(poly_id_is_live(id));
        // With no pin held, the entry retires after its generation falls
        // behind the reclaim bound. Sibling tests' short pins can hold
        // the bound back transiently, so advance until it lands.
        for _ in 0..64 {
            crate::epoch::advance();
            if !poly_id_is_live(id) {
                break;
            }
        }
        assert!(!poly_id_is_live(id), "retired entry was never reclaimed");
        assert!(arena_stats().poly_reclaimed >= 1);
        // Re-interning the same shape under a fresh pin is live again and
        // resolves to identical content (slot recycling preserved
        // structural identity).
        let _g = crate::epoch::pin();
        let id2 = intern_poly(&terms);
        assert_ne!(id2, POLY_UNINTERNED);
        assert!(poly_id_is_live(id2));
        assert_eq!(poly_terms(id2), &terms[..]);
    }

    #[test]
    fn pow_scales_exponents() {
        let m = intern_mono(&Monomial::from_pairs([(s("a"), 1), (s("b"), 2)]));
        let m2 = mono_pow(m, 2);
        assert_eq!(mono(m2).to_string(), "a^2*b^4");
        assert_eq!(mono_pow(m, 0), MONO_ONE);
    }

    #[test]
    fn id_packing_round_trips() {
        for shard in 0..NUM_SHARDS {
            for index in [0u32, 1, 31, 32, 95, 96, 1 << 16, (1 << 20) - 1] {
                let id = pack_id(shard, index);
                assert_eq!(shard_of(id), shard);
                assert_eq!(index_of(id), index);
            }
        }
        assert_eq!(pack_id(0, 0), MONO_ONE);
        // POLY_UNINTERNED can never be a legal poly id: per-shard caps
        // keep indices 16-bit, far below the sentinel's 28-bit index.
        assert!(index_of(POLY_UNINTERNED) as usize >= POLY_SHARD_CAP);
    }

    #[test]
    fn slot_arena_bucket_math_is_contiguous() {
        let mut expect = 0u32;
        for idx in 0..10_000u32 {
            let (k, off) = SlotArena::<u32>::locate(idx);
            if off == 0 && idx > 0 {
                // Bucket boundary: previous bucket was exactly full.
                let (pk, poff) = SlotArena::<u32>::locate(idx - 1);
                assert_eq!(pk + 1, k, "idx {idx}");
                assert_eq!(poff + 1, FIRST_BUCKET << pk, "idx {idx}");
            }
            assert!(off < FIRST_BUCKET << k, "idx {idx}");
            expect += 1;
            let _ = expect;
        }
    }

    #[test]
    fn concurrent_interning_converges_on_one_id() {
        // All threads intern the same shapes; every id must agree, and
        // resolution must be readable from the spawning thread.
        let ids: Vec<Vec<MonoId>> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        (0..64)
                            .map(|k| {
                                intern_mono(&Monomial::from_pairs([
                                    (s("cc_a"), k % 5 + 1),
                                    (s("cc_b"), k % 7 + 1),
                                ]))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other, "interned ids diverged across threads");
        }
        for &id in &ids[0] {
            assert!(!mono(id).to_string().is_empty());
        }
    }

    #[test]
    fn arena_stats_are_monotone() {
        let before = arena_stats();
        let _ = intern_mono(&Monomial::from_pairs([(s("stat_probe"), 3)]));
        let after = arena_stats();
        assert!(after.monomials > 0);
        assert!(after.symbols >= before.symbols);
        assert!(after.monomials >= before.monomials);
        assert_eq!(after.poly_capacity, POLY_ARENA_CAP);
    }
}
